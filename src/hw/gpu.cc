#include "hw/gpu.h"

namespace naspipe {

namespace {

std::string
engineName(int id, const char *suffix)
{
    return "gpu" + std::to_string(id) + "." + suffix;
}

} // namespace

Gpu::Gpu(Simulator &sim, int id, const GpuConfig &config)
    : _id(id), _config(config),
      _compute(sim, engineName(id, "compute")),
      _h2d(sim, engineName(id, "h2d"), config.pcieBytesPerSec,
           config.pcieLatency),
      _d2h(sim, engineName(id, "d2h"), config.pcieBytesPerSec,
           config.pcieLatency)
{
}

double
Gpu::aluUtilization(double windowEnd) const
{
    return _compute.utilization().utilization(windowEnd);
}

void
Gpu::reset()
{
    _compute.reset();
    _h2d.reset();
    _d2h.reset();
    _failed = false;
}

} // namespace naspipe
