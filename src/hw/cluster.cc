#include "hw/cluster.h"

#include "common/logging.h"

namespace naspipe {

Cluster::Cluster(Simulator &sim, const ClusterConfig &config)
    : _sim(sim), _config(config)
{
    NASPIPE_ASSERT(config.numStages >= 1, "cluster needs >= 1 stage");
    NASPIPE_ASSERT(config.gpusPerHost >= 1,
                   "cluster needs >= 1 GPU per host");

    _gpus.reserve(static_cast<std::size_t>(config.numStages));
    for (int s = 0; s < config.numStages; s++)
        _gpus.push_back(std::make_unique<Gpu>(sim, s, config.gpu));

    for (int s = 0; s + 1 < config.numStages; s++) {
        LinkType type = hostOf(s) == hostOf(s + 1)
                            ? LinkType::IntraHostPcie
                            : LinkType::CrossHostEther;
        _links.push_back(std::make_unique<StageLink>(
            sim, s, s + 1, type, config.interconnect));
        _links.push_back(std::make_unique<StageLink>(
            sim, s + 1, s, type, config.interconnect));
    }
}

Gpu &
Cluster::gpu(int stage)
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    return *_gpus[static_cast<std::size_t>(stage)];
}

const Gpu &
Cluster::gpu(int stage) const
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    return *_gpus[static_cast<std::size_t>(stage)];
}

int
Cluster::hostOf(int stage) const
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    return stage / _config.gpusPerHost;
}

std::size_t
Cluster::linkIndex(int fromStage, int toStage) const
{
    NASPIPE_ASSERT(fromStage >= 0 && fromStage < numStages() &&
                       toStage >= 0 && toStage < numStages(),
                   "link endpoints out of range");
    NASPIPE_ASSERT(fromStage + 1 == toStage || toStage + 1 == fromStage,
                   "links exist only between adjacent stages");
    if (fromStage + 1 == toStage)
        return static_cast<std::size_t>(fromStage) * 2;
    return static_cast<std::size_t>(toStage) * 2 + 1;
}

StageLink &
Cluster::link(int fromStage, int toStage)
{
    return *_links[linkIndex(fromStage, toStage)];
}

void
Cluster::degradeBoundary(int boundary, double factor)
{
    link(boundary, boundary + 1).degrade(factor);
    link(boundary + 1, boundary).degrade(factor);
}

void
Cluster::restoreBoundary(int boundary)
{
    link(boundary, boundary + 1).restore();
    link(boundary + 1, boundary).restore();
}

void
Cluster::dropBoundary(int boundary)
{
    link(boundary, boundary + 1).setDown();
    link(boundary + 1, boundary).setDown();
}

bool
Cluster::healthy() const
{
    for (const auto &gpu : _gpus) {
        if (gpu->failed())
            return false;
    }
    for (const auto &link : _links) {
        if (link->down())
            return false;
    }
    return true;
}

double
Cluster::totalAluUtilization(double windowEnd) const
{
    double total = 0.0;
    for (const auto &gpu : _gpus)
        total += gpu->aluUtilization(windowEnd);
    return total;
}

double
Cluster::meanBubbleRatio() const
{
    if (_gpus.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &gpu : _gpus)
        total += gpu->compute().utilization().bubbleRatio();
    return total / static_cast<double>(_gpus.size());
}

void
Cluster::reset()
{
    for (auto &gpu : _gpus)
        gpu->reset();
    for (auto &link : _links)
        link->reset();
}

} // namespace naspipe
