/**
 * @file
 * Inter-GPU interconnect model.
 *
 * The testbed (paper §5) connects 4 GPUs per host over PCIe 3.0 x16
 * and hosts over 40 Gbps Ethernet with 0.17 ms ping latency; the
 * measured application-level cross-host bandwidth was 867 MB/s. The
 * pipeline sends activations forward and gradients backward over the
 * link between consecutive stages; whether that link is intra-host
 * PCIe peer-to-peer or cross-host Ethernet depends on where the two
 * stages' GPUs live.
 */

#ifndef NASPIPE_HW_INTERCONNECT_H
#define NASPIPE_HW_INTERCONNECT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace naspipe {

/** Link technology between two GPUs. */
enum class LinkType {
    IntraHostPcie,   ///< PCIe peer-to-peer within one host
    CrossHostEther,  ///< Ethernet between hosts
};

/** Printable link-type name. */
const char *linkTypeName(LinkType type);

/** Parameters of the two link technologies. */
struct InterconnectConfig {
    double intraHostBytesPerSec = 11.0 * 1e9;   ///< PCIe p2p payload
    Tick intraHostLatency = 5 * kTicksPerUs;
    double crossHostBytesPerSec = 867.0 * 1e6;  ///< measured (paper §5)
    Tick crossHostLatency = 170 * kTicksPerUs;  ///< 0.17 ms ping
};

/**
 * A directed link between two pipeline stages (one per direction per
 * stage pair: the forward activation path and the backward gradient
 * path share the physical medium but are modelled as one serialized
 * channel, which is conservative and matches duplex contention on
 * PCIe switches).
 */
class StageLink
{
  public:
    /**
     * @param sim owning simulator
     * @param fromStage producer stage index
     * @param toStage consumer stage index
     * @param type link technology
     * @param config bandwidth/latency parameters
     */
    StageLink(Simulator &sim, int fromStage, int toStage, LinkType type,
              const InterconnectConfig &config);

    LinkType type() const { return _type; }
    int fromStage() const { return _from; }
    int toStage() const { return _to; }

    /** Completion time of a @p bytes message sent at/after now. */
    Tick send(std::uint64_t bytes);

    /** Completion time of a message sent no earlier than @p earliest. */
    Tick sendFrom(Tick earliest, std::uint64_t bytes);

    /** Wire time of @p bytes excluding queueing. */
    Tick messageTime(std::uint64_t bytes) const;

    /** @name Fault state (driven by the fault injector)
     * A degraded link delivers at 1/factor of its bandwidth (modeled
     * as factor-times-larger payloads); a down link is a fail-stop
     * condition — in-flight traffic is lost and the runtime recovers
     * from the last checkpoint.
     * @{ */
    /** Slow the link down by @p factor (>= 1). */
    void degrade(double factor);

    /** Restore nominal bandwidth and bring the link back up. */
    void restore();

    /** Take the link down (fail-stop fault). */
    void setDown() { _down = true; }

    bool down() const { return _down; }
    double slowdown() const { return _slowdown; }
    /** @} */

    const Channel &channel() const { return _channel; }

    void reset()
    {
        _channel.reset();
        _slowdown = 1.0;
        _down = false;
    }

  private:
    std::uint64_t effectiveBytes(std::uint64_t bytes) const;

    int _from;
    int _to;
    LinkType _type;
    Channel _channel;
    double _slowdown = 1.0;
    bool _down = false;
};

} // namespace naspipe

#endif // NASPIPE_HW_INTERCONNECT_H
