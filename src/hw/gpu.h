/**
 * @file
 * GPU device model.
 *
 * Models one Nvidia 2080Ti-class device as the paper's testbed uses:
 * an exclusive compute engine (the ALU whose utilization Table 2 and
 * Figure 7 report), separate H2D and D2H DMA engines over PCIe 3.0
 * x16 (so parameter copies overlap compute, the property the context
 * manager exploits), and a fixed physical memory capacity.
 */

#ifndef NASPIPE_HW_GPU_H
#define NASPIPE_HW_GPU_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace naspipe {

/** Static description of one GPU device. */
struct GpuConfig {
    std::uint64_t memoryBytes = 11ULL << 30;  ///< 11 GB (2080Ti)
    double pcieBytesPerSec = 15760.0 * 1e6;   ///< PCIe 3.0 x16
    Tick pcieLatency = 10 * kTicksPerUs;      ///< DMA setup latency
};

/**
 * One GPU: compute engine + DMA engines + capacity. Utilization
 * statistics accumulate on the engines.
 */
class Gpu
{
  public:
    /**
     * @param sim owning simulator
     * @param id device index within the cluster
     * @param config device parameters
     */
    Gpu(Simulator &sim, int id, const GpuConfig &config);

    int id() const { return _id; }
    std::uint64_t memoryBytes() const { return _config.memoryBytes; }

    /** The ALU / SM array: exactly one task executes at a time. */
    SerialEngine &compute() { return _compute; }
    const SerialEngine &compute() const { return _compute; }

    /** Host-to-device DMA engine. */
    Channel &h2d() { return _h2d; }
    const Channel &h2d() const { return _h2d; }

    /** Device-to-host DMA engine. */
    Channel &d2h() { return _d2h; }
    const Channel &d2h() const { return _d2h; }

    /** ALU busy fraction of [0, windowEnd] seconds. */
    double aluUtilization(double windowEnd) const;

    /** @name Fault state (driven by the fault injector)
     * A failed GPU is a fail-stop condition: the runtime abandons the
     * phase and recovers from the last checkpoint, after which the
     * device is considered replaced (repair()). The crash counter
     * survives repair for diagnostics.
     * @{ */
    /** Mark the device dead (fail-stop fault). */
    void fail() { _failed = true; _crashes++; }

    /** Bring a replacement device online. */
    void repair() { _failed = false; }

    /** Whether the device is currently dead. */
    bool failed() const { return _failed; }

    /** Number of crashes injected into this device slot. */
    int crashes() const { return _crashes; }
    /** @} */

    /** Clear all engine statistics (between runs). */
    void reset();

  private:
    int _id;
    GpuConfig _config;
    SerialEngine _compute;
    Channel _h2d;
    Channel _d2h;
    bool _failed = false;
    int _crashes = 0;
};

} // namespace naspipe

#endif // NASPIPE_HW_GPU_H
