#include "hw/interconnect.h"

#include <string>

namespace naspipe {

const char *
linkTypeName(LinkType type)
{
    return type == LinkType::IntraHostPcie ? "pcie-p2p" : "ethernet";
}

namespace {

std::string
linkName(int from, int to, LinkType type)
{
    return std::string("link.") + std::to_string(from) + "->" +
           std::to_string(to) + "." + linkTypeName(type);
}

double
bandwidthFor(LinkType type, const InterconnectConfig &config)
{
    return type == LinkType::IntraHostPcie
               ? config.intraHostBytesPerSec
               : config.crossHostBytesPerSec;
}

Tick
latencyFor(LinkType type, const InterconnectConfig &config)
{
    return type == LinkType::IntraHostPcie ? config.intraHostLatency
                                           : config.crossHostLatency;
}

} // namespace

StageLink::StageLink(Simulator &sim, int fromStage, int toStage,
                     LinkType type, const InterconnectConfig &config)
    : _from(fromStage), _to(toStage), _type(type),
      _channel(sim, linkName(fromStage, toStage, type),
               bandwidthFor(type, config), latencyFor(type, config))
{
}

std::uint64_t
StageLink::effectiveBytes(std::uint64_t bytes) const
{
    if (_slowdown <= 1.0)
        return bytes;
    return static_cast<std::uint64_t>(
        static_cast<double>(bytes) * _slowdown);
}

Tick
StageLink::send(std::uint64_t bytes)
{
    return _channel.transfer(effectiveBytes(bytes));
}

Tick
StageLink::sendFrom(Tick earliest, std::uint64_t bytes)
{
    return _channel.transferFrom(earliest, effectiveBytes(bytes));
}

Tick
StageLink::messageTime(std::uint64_t bytes) const
{
    return _channel.transferTime(effectiveBytes(bytes));
}

void
StageLink::degrade(double factor)
{
    _slowdown = factor < 1.0 ? 1.0 : factor;
}

void
StageLink::restore()
{
    _slowdown = 1.0;
    _down = false;
}

} // namespace naspipe
