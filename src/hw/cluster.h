/**
 * @file
 * Cluster model: hosts x GPUs plus the stage-to-stage links.
 *
 * Defaults reproduce the paper's testbed: 8 hosts x 4 Nvidia 2080Ti,
 * 20 CPU cores and 64 GB RAM per host, PCIe 3.0 x16 to each GPU and
 * 40 Gbps Ethernet between hosts. Pipeline stage i runs on GPU i,
 * hosts are filled in order (GPUs 0-3 on host 0, 4-7 on host 1, ...),
 * matching how the evaluation scales from 4 to 16 GPUs.
 */

#ifndef NASPIPE_HW_CLUSTER_H
#define NASPIPE_HW_CLUSTER_H

#include <memory>
#include <vector>

#include "hw/gpu.h"
#include "hw/interconnect.h"
#include "sim/simulator.h"

namespace naspipe {

/** Static cluster parameters. */
struct ClusterConfig {
    int numStages = 8;        ///< pipeline depth D == GPU count
    int gpusPerHost = 4;
    GpuConfig gpu;
    InterconnectConfig interconnect;
    std::uint64_t hostMemoryBytes = 64ULL << 30;  ///< pinned-CPU pool
};

/**
 * The simulated cluster: owns the GPUs and the links between
 * consecutive pipeline stages.
 */
class Cluster
{
  public:
    /**
     * @param sim owning simulator
     * @param config cluster parameters
     */
    Cluster(Simulator &sim, const ClusterConfig &config);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    int numStages() const { return _config.numStages; }
    const ClusterConfig &config() const { return _config; }

    /** GPU serving pipeline stage @p stage. */
    Gpu &gpu(int stage);
    const Gpu &gpu(int stage) const;

    /** Host index of the GPU serving @p stage. */
    int hostOf(int stage) const;

    /**
     * Link carrying traffic from @p fromStage to the adjacent stage
     * in either direction (|from - to| must be 1).
     */
    StageLink &link(int fromStage, int toStage);

    /** @name Fault-state helpers (driven by the fault injector)
     * @{ */
    /** Fail-stop the GPU serving @p stage. */
    void failStage(int stage) { gpu(stage).fail(); }

    /** Slow both directions of the @p boundary↔boundary+1 link. */
    void degradeBoundary(int boundary, double factor);

    /** Restore both directions of a degraded/down boundary link. */
    void restoreBoundary(int boundary);

    /** Take both directions of a boundary link down (fail-stop). */
    void dropBoundary(int boundary);

    /** True when no GPU has failed and no link is down. */
    bool healthy() const;
    /** @} */

    /** CPU memory available for pinned parameter storage per host. */
    std::uint64_t hostMemoryBytes() const
    {
        return _config.hostMemoryBytes;
    }

    /** Sum of ALU utilizations over all GPUs in [0, windowEnd]. */
    double totalAluUtilization(double windowEnd) const;

    /** Mean bubble ratio over all GPU compute engines. */
    double meanBubbleRatio() const;

    /** Reset all engine statistics. */
    void reset();

  private:
    std::size_t linkIndex(int fromStage, int toStage) const;

    Simulator &_sim;
    ClusterConfig _config;
    std::vector<std::unique_ptr<Gpu>> _gpus;
    /// Links stored as [i*2] = i->i+1 (forward), [i*2+1] = i+1->i.
    std::vector<std::unique_ptr<StageLink>> _links;
};

} // namespace naspipe

#endif // NASPIPE_HW_CLUSTER_H
