#include "session/training_session.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "tensor/loss.h"

namespace naspipe {

TrainingSession::TrainingSession(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _space(space), _config(config), _model(config.system),
      _numStages(config.numStages),
      _activation(config.activation.bytesPerSample
                      ? config.activation
                      : defaultActivationModel(space.family())),
      _scoreScale(config.scoreScale > 0.0
                      ? config.scoreScale
                      : defaultScoreScale(space.family()))
{
    NASPIPE_ASSERT(_numStages >= 1, "need >= 1 stage");
    NASPIPE_ASSERT(config.totalSubnets >= 1, "need >= 1 subnet");
}

bool
TrainingSession::initRun()
{
    // Capacity planning decides whether this system can run at all
    // and at which batch size; an explicitly pinned batch (the
    // reproducibility methodology) is checked against capacity too.
    CapacityPlanner planner(_space, _config.cluster.gpu, _activation);
    _plan = _config.batch > 0
                ? planner.planWithBatch(_model, _numStages,
                                        _config.batch)
                : planner.plan(_model, _numStages);
    if (!_plan.fits)
        return false;
    _batch = _plan.batch;

    if (_config.samplerFactory) {
        _sampler = _config.samplerFactory(_space, _config.seed);
        NASPIPE_ASSERT(_sampler, "sampler factory returned null");
    } else if (_config.hybridStreams > 0) {
        _sampler = std::make_unique<HybridSampler>(
            _space, _config.seed, _config.hybridStreams);
    } else if (_config.evolutionSearch) {
        _sampler =
            std::make_unique<EvolutionSampler>(_space, _config.seed);
    } else {
        _sampler =
            std::make_unique<UniformSampler>(_space, _config.seed);
    }
    _partitioner = std::make_unique<Partitioner>(_space, _batch);

    _store = std::make_shared<ParameterStore>(_space, _config.seed,
                                              _config.precision);
    _store->accessLog().enabled(_config.numeric);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(_config.seed, "data");
    ec.sgd = _config.sgd;
    ec.batch = _batch;
    ec.precision = _config.precision;
    _exec = std::make_unique<NumericExecutor>(*_store, ec);
    _tracker = std::make_unique<ConvergenceTracker>(_scoreScale);
    _trace = std::make_shared<Trace>();
    _trace->enabled(_config.traceEnabled);

    _subnets.clear();
    _partitions.clear();
    _losses.clear();
    _completionSec.clear();
    _scoreBuffer.clear();
    _nextScoreToReport = 0;
    _injected = 0;
    _finished = 0;
    _inflight = 0;
    _nextCkptAt = ckptEnabled() ? ckptStride() : 0;
    return true;
}

const Subnet &
TrainingSession::subnetOf(SubnetId id) const
{
    NASPIPE_ASSERT(id >= 0 &&
                       static_cast<std::size_t>(id) < _subnets.size(),
                   "unknown SN", id);
    return _subnets[static_cast<std::size_t>(id)];
}

const SubnetPartition &
TrainingSession::partitionOf(SubnetId id) const
{
    NASPIPE_ASSERT(id >= 0 && static_cast<std::size_t>(id) <
                                  _partitions.size(),
                   "no partition for SN", id);
    return _partitions[static_cast<std::size_t>(id)];
}

std::pair<int, int>
TrainingSession::blockRange(int stage, SubnetId id) const
{
    const SubnetPartition &p = partitionOf(id);
    // lo > hi means the stage owns no blocks of this subnet.
    return {p.firstBlock(stage), p.lastBlock(stage)};
}

int
TrainingSession::effectiveFeedbackLag() const
{
    if (_config.feedbackLag != 0)
        return std::max(0, _config.feedbackLag);
    return _config.evolutionSearch ? 32 : 0;
}

void
TrainingSession::deliverScoresBelow(SubnetId maxIdExclusive)
{
    // Deliver quality feedback to the exploration algorithm in
    // sequence-ID order, never past the cap, so feedback-driven
    // samplers stay deterministic regardless of completion
    // interleavings.
    while (_nextScoreToReport < maxIdExclusive) {
        auto it = _scoreBuffer.find(_nextScoreToReport);
        if (it == _scoreBuffer.end())
            break;
        _sampler->reportScore(it->first, it->second);
        _scoreBuffer.erase(it);
        _nextScoreToReport++;
    }
}

int
TrainingSession::pump()
{
    return pump(_config.totalSubnets);
}

bool
TrainingSession::admissible()
{
    NASPIPE_ASSERT(_backend, "no execution backend attached");
    if (_injected >= _config.totalSubnets)
        return false;
    if (_inflight >= _model.effectiveInflight(_numStages))
        return false;
    if (ckptEnabled() && _injected >= _nextCkptAt)
        return false;
    if (!_backend->canAdmit(_injected))
        return false;
    int lag = effectiveFeedbackLag();
    if (lag > 0) {
        deliverScoresBelow(_injected - lag + 1);
        if (_injected - _nextScoreToReport >= lag)
            return false;
    }
    return true;
}

int
TrainingSession::pump(int maxCount)
{
    NASPIPE_ASSERT(_backend, "no execution backend attached");
    int limit = _model.effectiveInflight(_numStages);
    int lag = effectiveFeedbackLag();
    int count = 0;
    while (count < maxCount && _injected < _config.totalSubnets &&
           _inflight < limit) {
        SubnetId nextId = _injected;
        // Drain the pipeline for the next checkpoint barrier: at most
        // nextCkptAt subnets are ever injected before the barrier, so
        // finished == nextCkptAt implies inflight == 0 — the drained
        // state a checkpoint captures is a pure function of the
        // completed count under CSP.
        if (ckptEnabled() && _injected >= _nextCkptAt)
            break;
        if (!_backend->canAdmit(nextId))
            break;
        if (lag > 0) {
            // Feedback-driven samplers see *exactly* the scores of
            // subnets <= i - lag before drawing subnet i, so their
            // draws replay identically on any cluster.
            deliverScoresBelow(nextId - lag + 1);
            if (nextId - _nextScoreToReport >= lag)
                break;  // required scores not yet available
        }
        Subnet sn = _sampler->next();
        NASPIPE_ASSERT(sn.id() == nextId, "sampler IDs out of sync");

        _partitions.push_back(
            _model.balancedPartition
                ? _partitioner->balanced(sn, _numStages)
                : Partitioner::even(sn.size(), _numStages));
        _subnets.push_back(std::move(sn));
        if (_config.numeric)
            _exec->beginSubnet(_subnets.back());
        _backend->admit(nextId);
        _injected++;
        _inflight++;
        count++;
    }
    return count;
}

bool
TrainingSession::recordCompletion(SubnetId id, float loss,
                                  double atSeconds)
{
    _inflight--;
    _finished++;
    _losses[id] = loss;
    _completionSec[id] = atSeconds;
    _tracker->addSample(atSeconds, loss);
    _scoreBuffer[id] = lossToScore(loss, _scoreScale);
    if (effectiveFeedbackLag() == 0)
        deliverScoresBelow(_config.totalSubnets);
    return ckptEnabled() && _finished == _nextCkptAt;
}

int
TrainingSession::ckptStride() const
{
    int stride = _config.ckptInterval;
    if (_model.bulkFlush) {
        // Under bulk flushing only a closed bulk leaves the store
        // drained (deferred updates land at the bulk barrier), so
        // checkpoint boundaries round up to bulk multiples.
        int bulk = _model.effectiveBulk(_numStages);
        stride = (stride + bulk - 1) / bulk * bulk;
    }
    return stride;
}

int
TrainingSession::boundaryAfter(int completedCount) const
{
    int stride = ckptStride();
    return (completedCount / stride + 1) * stride;
}

RunCheckpoint
TrainingSession::buildCheckpoint(double nowSeconds,
                                 double busySeconds) const
{
    RunCheckpoint ckpt;
    ckpt.seed = _config.seed;
    ckpt.spaceBlocks = static_cast<std::uint32_t>(_space.numBlocks());
    ckpt.spaceChoices =
        static_cast<std::uint32_t>(_space.choicesPerBlock());
    ckpt.totalSubnets =
        static_cast<std::uint64_t>(_config.totalSubnets);
    ckpt.completed = static_cast<std::uint64_t>(_finished);
    ckpt.simSeconds = nowSeconds;
    ckpt.busySeconds = busySeconds;
    ckpt.checkpointsWritten =
        static_cast<std::uint64_t>(_checkpointsWritten + 1);
    ckpt.losses.reserve(static_cast<std::size_t>(_finished));
    ckpt.completionSec.reserve(static_cast<std::size_t>(_finished));
    for (SubnetId i = 0; i < _finished; i++) {
        ckpt.losses.push_back(_losses.at(i));
        ckpt.completionSec.push_back(_completionSec.at(i));
    }
    std::ostringstream ss(std::ios::binary);
    _store->save(ss);
    ckpt.storeBytes = ss.str();
    std::ostringstream ls(std::ios::binary);
    _store->accessLog().saveTo(ls);
    ckpt.accessLogBytes = ls.str();
    return ckpt;
}

double
TrainingSession::commitCheckpoint(const RunCheckpoint &ckpt)
{
    NASPIPE_ASSERT(_inflight == 0, "checkpoint barrier reached with ",
                   _inflight, " subnets in flight");
    std::ostringstream os(std::ios::binary);
    bool ok = ckpt.save(os);
    NASPIPE_ASSERT(ok, "in-memory checkpoint serialization failed");
    _lastCkpt = os.str();
    _checkpointsWritten++;
    _checkpointBytes = _lastCkpt.size();
    if (!_config.ckptPath.empty() &&
        !ckpt.saveFileAtomic(_config.ckptPath)) {
        warn("continuing without the on-disk checkpoint");
    }
    double writeSec = static_cast<double>(_lastCkpt.size()) /
                          std::max(1.0, _config.ckptWriteBytesPerSec) +
                      0.001;
    _checkpointSecondsTotal += writeSec;
    _nextCkptAt = boundaryAfter(_finished);
    return writeSec;
}

bool
TrainingSession::compatible(const RunCheckpoint &ckpt) const
{
    if (ckpt.seed == _config.seed &&
        ckpt.spaceBlocks ==
            static_cast<std::uint32_t>(_space.numBlocks()) &&
        ckpt.spaceChoices ==
            static_cast<std::uint32_t>(_space.choicesPerBlock()) &&
        ckpt.totalSubnets ==
            static_cast<std::uint64_t>(_config.totalSubnets)) {
        return true;
    }
    warn("run checkpoint does not match this run: seed ", ckpt.seed,
         " space ", ckpt.spaceBlocks, "x", ckpt.spaceChoices,
         " total ", ckpt.totalSubnets, " vs seed ", _config.seed,
         " space ", _space.numBlocks(), "x",
         _space.choicesPerBlock(), " total ", _config.totalSubnets);
    return false;
}

bool
TrainingSession::restore(const RunCheckpoint &ckpt)
{
    NASPIPE_ASSERT(_backend, "no execution backend attached");
    if (!compatible(ckpt))
        return false;
    {
        std::istringstream in(ckpt.storeBytes);
        if (!_store->load(in))
            return false;
    }
    {
        std::istringstream in(ckpt.accessLogBytes);
        if (!_store->accessLog().loadFrom(in)) {
            warn("run checkpoint: access log unreadable");
            return false;
        }
    }

    const auto completed = static_cast<SubnetId>(ckpt.completed);
    for (SubnetId i = 0; i < completed; i++) {
        auto loss = static_cast<float>(
            ckpt.losses[static_cast<std::size_t>(i)]);
        _losses[i] = loss;
        _completionSec[i] =
            ckpt.completionSec[static_cast<std::size_t>(i)];
        _scoreBuffer[i] = lossToScore(loss, _scoreScale);
    }
    {
        // Re-feed the convergence tracker in completion-time order.
        std::vector<std::pair<double, float>> samples;
        samples.reserve(static_cast<std::size_t>(completed));
        for (SubnetId i = 0; i < completed; i++)
            samples.emplace_back(_completionSec[i], _losses[i]);
        std::sort(samples.begin(), samples.end());
        for (const auto &[when, loss] : samples)
            _tracker->addSample(when, loss);
    }

    // Replay the sampler with feedback-lag-faithful score delivery:
    // draws are a pure function of (seed, scores-by-ID), so this
    // reproduces the exact subnet sequence the checkpointed run drew
    // — the CSP property Definition 1 rests on.
    int lag = effectiveFeedbackLag();
    for (SubnetId i = 0; i < completed; i++) {
        if (lag > 0)
            deliverScoresBelow(i - lag + 1);
        Subnet sn = _sampler->next();
        NASPIPE_ASSERT(sn.id() == i, "sampler replay out of sync: ",
                       sn.id(), " vs ", i);
        _partitions.push_back(
            _model.balancedPartition
                ? _partitioner->balanced(sn, _numStages)
                : Partitioner::even(sn.size(), _numStages));
        _subnets.push_back(std::move(sn));
        _backend->restoreCompleted(i);
    }
    if (lag == 0)
        deliverScoresBelow(completed);

    _injected = static_cast<int>(completed);
    _finished = static_cast<int>(completed);
    _inflight = 0;
    if (ckptEnabled())
        _nextCkptAt = boundaryAfter(static_cast<int>(completed));
    // A later fail-stop fault rolls back to this state.
    std::ostringstream os(std::ios::binary);
    if (ckpt.save(os))
        _lastCkpt = os.str();
    return true;
}

void
TrainingSession::setTimeOffsets(double secOffset, double busyOffset)
{
    _secOffset = secOffset;
    _busyOffset = busyOffset;
}

RunResult
TrainingSession::collect(double totalSeconds, double busyTotal)
{
    RunResult out;
    out.plan = _plan;
    out.losses = _losses;
    out.store = _store;
    out.trace = _trace;
    out.sampled = _subnets;  // by construction in sequence order
    out.partitions = _partitions;

    RunMetrics &m = out.metrics;
    m.finishedSubnets = _finished;
    m.batch = _batch;
    m.simSeconds = totalSeconds;
    if (totalSeconds > 0.0) {
        m.samplesPerSec =
            static_cast<double>(_finished) * _batch / totalSeconds;
        m.subnetsPerHour =
            static_cast<double>(_finished) / totalSeconds * 3600.0;
    }
    if (_finished > 0)
        m.meanExecSeconds = busyTotal / _finished;

    m.gpuMemFactor =
        static_cast<double>(_plan.residentParamBytesPerGpu +
                            _plan.activationBytesPerGpu +
                            CapacityPlanner::kReserveBytes) /
        static_cast<double>(_config.cluster.gpu.memoryBytes) *
        _numStages;
    m.cpuMemBytes = _plan.cpuMemBytesTotal;
    m.reportedParamBytes = _plan.reportedParamBytes;

    m.checkpointsWritten = _checkpointsWritten;
    m.checkpointBytes = _checkpointBytes;
    m.checkpointSeconds = _checkpointSecondsTotal;

    // The "supernet loss" is the trailing-window mean over the last
    // subnets *by sequence ID* (not completion order), so the metric
    // itself is invariant across GPU counts whenever the per-subnet
    // losses are.
    if (!_losses.empty()) {
        std::size_t window =
            std::min<std::size_t>(16, _losses.size());
        double total = 0.0;
        auto it = _losses.end();
        for (std::size_t i = 0; i < window; i++)
            total += (--it)->second;
        m.finalLoss = total / static_cast<double>(window);
        m.finalScore = lossToScore(m.finalLoss, _scoreScale);
    }
    out.curve = _tracker->curve(64);

    if (_config.numeric) {
        out.supernetHash = _store->supernetHash();
        m.supernetHash = out.supernetHash;
        int violations = 0;
        for (const LayerId &layer :
             _store->accessLog().touchedLayers()) {
            if (!_store->accessLog().sequentiallyEquivalent(layer))
                violations++;
        }
        m.causalViolations = violations;

        SearchResult search =
            searchBestSubnet(*_exec, out.sampled, _scoreScale,
                             deriveSeed(_config.seed, "search"));
        out.bestSubnet = search.best.id();
        out.searchAccuracy = search.accuracy;
    }
    return out;
}

} // namespace naspipe
