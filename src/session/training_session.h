/**
 * @file
 * TrainingSession: the runtime-agnostic coordinator core.
 *
 * Both executors — the discrete-event simulator (PipelineRuntime) and
 * the real thread pool (ParallelRuntime) — used to reimplement the
 * same coordinator: draw subnets in sequence order, gate injection on
 * the in-flight limit / feedback lag / checkpoint drain barrier,
 * deliver quality scores to the sampler in sequence-ID order, take
 * drained checkpoints, replay a checkpoint on resume, and assemble
 * the shared half of RunMetrics. That logic is *exactly* the part of
 * NASPipe that makes a run a pure function of (seed, scores-by-ID)
 * (Definition 1), so duplicating it was a reproducibility hazard:
 * any drift between the two copies silently broke the bitwise
 * sim ≡ threads equivalence the test suite asserts.
 *
 * TrainingSession owns that logic once. An executor plugs in behind
 * the small ExecutionBackend interface: it is handed each freshly
 * sampled subnet (admit), each checkpoint-restored subnet
 * (restoreCompleted), and may veto injection (canAdmit — the
 * simulator's BSP bulk barrier). Everything the executor does between
 * admit() and recordCompletion() — simulated events or real worker
 * threads — is its own business; the session only requires that
 * completions are reported once per subnet with a deterministic loss.
 *
 * Checkpoints are taken at pipeline-drain barriers (injection pauses
 * at nextCkptAt, so finished == nextCkptAt implies inflight == 0).
 * At a drained barrier the entire training state is a pure function
 * of the completed count under CSP, which is why a checkpoint written
 * by one executor resumes bitwise-identically on the other.
 */

#ifndef NASPIPE_SESSION_TRAINING_SESSION_H
#define NASPIPE_SESSION_TRAINING_SESSION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/pipeline_runtime.h"
#include "train/run_checkpoint.h"

namespace naspipe {

/**
 * What an executor must provide to run under a TrainingSession. All
 * calls arrive on the coordinator thread.
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /**
     * Extra injection gating before subnet @p next is drawn (the
     * simulator's BSP bulk barrier). Default: always admit.
     */
    virtual bool
    canAdmit(SubnetId next) const
    {
        (void)next;
        return true;
    }

    /**
     * Take ownership of executing subnet @p id. Called after the
     * session has recorded the subnet and partition (subnetOf /
     * partitionOf are valid) and opened its numeric context, so the
     * backend may register dependencies and dispatch immediately.
     */
    virtual void admit(SubnetId id) = 0;

    /**
     * Note that subnet @p id was completed by the checkpointed run
     * being restored: advance whatever executor-local frontiers need
     * to skip past it. The restored store already holds its weight
     * updates; the backend must NOT re-execute anything.
     */
    virtual void restoreCompleted(SubnetId id) = 0;
};

/**
 * The shared coordinator: sampling/injection order, score delivery,
 * checkpoint cadence, resume/replay, and metrics assembly.
 */
class TrainingSession
{
  public:
    /**
     * @param space the search space (must outlive the session)
     * @param config run configuration (shared with the executors)
     */
    TrainingSession(const SearchSpace &space,
                    const RuntimeConfig &config);

    TrainingSession(const TrainingSession &) = delete;
    TrainingSession &operator=(const TrainingSession &) = delete;

    /** Attach the executor; required before pump()/restore(). */
    void attach(ExecutionBackend *backend) { _backend = backend; }

    /**
     * (Re)initialize one run phase: plan capacity, build the sampler
     * / store / numeric executor / tracker / trace, and clear the
     * per-run state. Cumulative diagnostics (checkpoint totals, time
     * offsets) survive — the simulator's fault recovery re-inits the
     * session without losing them. Returns false when the capacity
     * planner rejects the run (plan() still reports the attempt).
     */
    bool initRun();

    /**
     * Inject as many subnets as every gate allows: the in-flight
     * limit, the checkpoint drain barrier, the backend's own veto,
     * and the feedback lag. Each injected subnet is handed to the
     * backend via admit(). Returns the number injected.
     */
    int pump();

    /**
     * As pump(), but injects at most @p maxCount subnets. The serve
     * layer's cross-job scheduler admits one subnet per scheduling
     * slot (pump(1)) so a weighted round-robin over jobs decides the
     * global interleaving instead of each job greedily filling its
     * window.
     */
    int pump(int maxCount);

    /**
     * Whether pump() would inject at least one subnet right now —
     * the same gate checks (injection budget, in-flight window,
     * checkpoint drain barrier, backend veto, feedback lag) without
     * admitting anything. Not const: due scores are delivered to the
     * sampler, exactly as pump() would before drawing — delivery is
     * uniquely determined by sequence ID, so probing never perturbs
     * the deterministic draw order.
     */
    bool admissible();

    /**
     * Record subnet @p id's completion at absolute time @p atSeconds
     * with training loss @p loss. Updates counters, the convergence
     * tracker and the score buffer (delivering immediately when the
     * feedback lag is 0). Returns true when this completion reached a
     * drained checkpoint barrier — the caller should then build and
     * commit a checkpoint before pumping again.
     */
    bool recordCompletion(SubnetId id, float loss, double atSeconds);

    /** @name Feedback-lag-exact score delivery
     * @{ */
    int effectiveFeedbackLag() const;
    void deliverScoresBelow(SubnetId maxIdExclusive);
    /** @} */

    /** @name Drained-checkpoint cadence
     * @{ */
    bool ckptEnabled() const { return _config.ckptInterval > 0; }
    int ckptStride() const;
    int boundaryAfter(int completedCount) const;

    /**
     * Snapshot the drained run state. @p nowSeconds / @p busySeconds
     * are absolute (offset-inclusive) run totals at the barrier.
     */
    RunCheckpoint buildCheckpoint(double nowSeconds,
                                  double busySeconds) const;

    /**
     * Account and persist @p ckpt: serialize it as the in-memory
     * rollback target, write the on-disk copy when configured, and
     * advance the next barrier. Aborts unless the pipeline is
     * drained. Returns the modeled write seconds (checkpoint bytes
     * over the configured bandwidth) the caller may charge.
     */
    double commitCheckpoint(const RunCheckpoint &ckpt);

    /**
     * Rebuild the run state from @p ckpt: load the store and access
     * log, refill losses/scores, re-feed the tracker, and replay the
     * sampler with feedback-lag-faithful score delivery so it draws
     * the exact subnet sequence the checkpointed run drew. The
     * backend sees restoreCompleted() for every restored subnet.
     * Returns false on an incompatible or unreadable checkpoint.
     */
    bool restore(const RunCheckpoint &ckpt);

    /** Serialized last checkpoint (fail-stop rollback target). */
    const std::string &lastCheckpoint() const { return _lastCkpt; }

    /** Carry run time across phases (recovery) or from a resume. */
    void setTimeOffsets(double secOffset, double busyOffset);

    /** Adopt the producing run's checkpoint count on resume. */
    void setCheckpointsWritten(int n) { _checkpointsWritten = n; }
    /** @} */

    /**
     * Assemble the executor-independent half of the result: plan,
     * losses, sampled subnets, store, trace, throughput, memory
     * plan figures, checkpoint accounting, the trailing-window final
     * loss, the convergence curve, the supernet hash, the causal
     * audit, and the post-training search. @p totalSeconds and
     * @p busyTotal are absolute run totals; the executor then fills
     * in its own timing/cache/fault specifics.
     */
    RunResult collect(double totalSeconds, double busyTotal);

    /** @name Run state accessors
     * @{ */
    const CapacityPlan &plan() const { return _plan; }
    int batch() const { return _batch; }
    double scoreScale() const { return _scoreScale; }
    const ActivationModel &activationModel() const
    {
        return _activation;
    }
    const std::shared_ptr<ParameterStore> &store() const
    {
        return _store;
    }
    NumericExecutor &exec() { return *_exec; }
    ConvergenceTracker &tracker() { return *_tracker; }
    const std::shared_ptr<Trace> &trace() const { return _trace; }

    const Subnet &subnetOf(SubnetId id) const;
    const SubnetPartition &partitionOf(SubnetId id) const;
    /** Stage @p stage's block range under @p id's partition. */
    std::pair<int, int> blockRange(int stage, SubnetId id) const;

    int injected() const { return _injected; }
    int finished() const { return _finished; }
    int inflight() const { return _inflight; }
    int totalSubnets() const { return _config.totalSubnets; }
    int nextCkptAt() const { return _nextCkptAt; }
    double secOffset() const { return _secOffset; }
    double busyOffset() const { return _busyOffset; }
    /** @} */

  private:
    bool compatible(const RunCheckpoint &ckpt) const;

    const SearchSpace &_space;
    const RuntimeConfig &_config;
    SystemModel _model;
    int _numStages;
    ActivationModel _activation;
    double _scoreScale;
    ExecutionBackend *_backend = nullptr;

    CapacityPlan _plan;
    int _batch = 1;

    std::unique_ptr<SubnetSampler> _sampler;
    std::unique_ptr<Partitioner> _partitioner;
    std::shared_ptr<ParameterStore> _store;
    std::unique_ptr<NumericExecutor> _exec;
    std::unique_ptr<ConvergenceTracker> _tracker;
    std::shared_ptr<Trace> _trace;

    // Sequence IDs are consecutive from 0, so position == ID.
    std::vector<Subnet> _subnets;
    std::vector<SubnetPartition> _partitions;
    std::map<SubnetId, float> _losses;
    std::map<SubnetId, double> _completionSec;
    SubnetId _nextScoreToReport = 0;
    std::map<SubnetId, double> _scoreBuffer;

    int _injected = 0;
    int _finished = 0;
    int _inflight = 0;

    // Checkpoint state. Offsets and the written/bytes/seconds totals
    // are cumulative across recovery phases.
    int _nextCkptAt = 0;
    double _secOffset = 0.0;
    double _busyOffset = 0.0;
    std::string _lastCkpt;
    int _checkpointsWritten = 0;
    std::uint64_t _checkpointBytes = 0;
    double _checkpointSecondsTotal = 0.0;
};

} // namespace naspipe

#endif // NASPIPE_SESSION_TRAINING_SESSION_H
