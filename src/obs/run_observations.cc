#include "obs/run_observations.h"

namespace naspipe {
namespace obs {

StageObservation::StageObservation()
    : gateWaitSeconds(latencySecondsBounds()),
      commitGapSeconds(latencySecondsBounds())
{
}

void
StageObservation::recordGateWait(std::uint64_t layerKey,
                                 double seconds)
{
    gateWaitSeconds.record(seconds);
    GateWaitByLayer &slot = waitsByLayer[layerKey];
    slot.count++;
    slot.seconds += seconds;
}

} // namespace obs
} // namespace naspipe
