#include "obs/logical_schedule.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.h"

namespace naspipe {
namespace obs {

namespace {

/** One dependency edge: when `from` completes, `to` loses one unmet
 *  dependency. Gate edges carry the block whose layer chain they
 *  model (-1 for structural pipeline edges). */
struct DepEdge {
    int to = -1;
    int gateBlock = -1;
};

struct TaskState {
    Tick cost = 0;
    int unmet = 0;
    Tick pipeReady = 0;   ///< max end over structural deps
    Tick gateReady = 0;   ///< max end over gate (commit) deps
    int gateBlocker = -1; ///< task whose commit set gateReady
    int gateBlock = -1;   ///< block of the binding gate edge
    Tick start = 0;
    Tick end = 0;
    bool scheduled = false;
};

} // namespace

LogicalSchedule
buildLogicalSchedule(const SearchSpace &space,
                     const std::vector<Subnet> &subnets,
                     const std::vector<SubnetPartition> &partitions,
                     int numStages, int batch, int inflightLimit)
{
    NASPIPE_ASSERT(subnets.size() == partitions.size(),
                   "subnets/partitions size mismatch");
    LogicalSchedule out;
    out.stageBusyTicks.assign(static_cast<std::size_t>(numStages), 0);
    const int n = static_cast<int>(subnets.size());
    if (n == 0 || numStages < 1)
        return out;
    if (batch < 1)
        batch = 1;
    const int refBatch = space.referenceBatch();
    const int total = 2 * n * numStages;

    // Task ids: forward(i, s) = 2*(i*D + s), backward(i, s) = +1.
    auto fwdId = [&](int i, int s) { return 2 * (i * numStages + s); };
    auto bwdId = [&](int i, int s) {
        return 2 * (i * numStages + s) + 1;
    };
    auto subnetOf = [&](int tid) { return (tid / 2) / numStages; };
    auto stageOf = [&](int tid) { return (tid / 2) % numStages; };
    auto isBackward = [&](int tid) { return (tid & 1) != 0; };

    std::vector<TaskState> tasks(static_cast<std::size_t>(total));
    std::vector<std::vector<DepEdge>> dependents(
        static_cast<std::size_t>(total));
    auto addDep = [&](int from, int to, int gateBlock) {
        dependents[static_cast<std::size_t>(from)].push_back(
            DepEdge{to, gateBlock});
        tasks[static_cast<std::size_t>(to)].unmet++;
    };

    // Ascending activator list per (block, choice): the causal chain
    // the CommitGate keeps, rebuilt from the sampled sequence.
    const int choices = space.choicesPerBlock();
    std::vector<std::vector<int>> chains(
        static_cast<std::size_t>(space.numBlocks() * choices));
    for (int i = 0; i < n; i++) {
        const Subnet &sn = subnets[static_cast<std::size_t>(i)];
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                chains[static_cast<std::size_t>(b * choices +
                                                sn.choice(b))]
                    .push_back(i);
        }
    }

    // Costs and dependency edges.
    for (int i = 0; i < n; i++) {
        const Subnet &sn = subnets[static_cast<std::size_t>(i)];
        const SubnetPartition &part =
            partitions[static_cast<std::size_t>(i)];
        for (int s = 0; s < numStages; s++) {
            int lo = part.firstBlock(s), hi = part.lastBlock(s);
            double fwdMs = 0.0, bwdMs = 0.0;
            for (int b = lo; b <= hi; b++) {
                const LayerSpec &spec = space.spec(b, sn.choice(b));
                fwdMs += spec.fwdMsAt(batch, refBatch);
                bwdMs += spec.bwdMsAt(batch, refBatch);
            }
            // Empty or parameter-free stages still occupy the stage
            // for one logical microsecond so spans stay visible.
            tasks[static_cast<std::size_t>(fwdId(i, s))].cost =
                std::max<Tick>(ticksFromMs(fwdMs), kTicksPerUs);
            tasks[static_cast<std::size_t>(bwdId(i, s))].cost =
                std::max<Tick>(ticksFromMs(bwdMs), kTicksPerUs);

            // Pipeline structure: forwards flow 0 -> D-1, backwards
            // flow D-1 -> 0, turning around at the last stage.
            if (s > 0)
                addDep(fwdId(i, s - 1), fwdId(i, s), -1);
            if (s < numStages - 1)
                addDep(bwdId(i, s + 1), bwdId(i, s), -1);
            else
                addDep(fwdId(i, s), bwdId(i, s), -1);
        }
        // Injection gate: subnet i enters stage 0 only after subnet
        // i - inflightLimit fully completed (its stage-0 backward).
        if (inflightLimit > 0 && i >= inflightLimit)
            addDep(bwdId(i - inflightLimit, 0), fwdId(i, 0), -1);
    }

    // Gate edges: forward(i, s) reads layer (b, c) only after every
    // lower activator j of that chain committed — and j's commit is
    // its backward on the stage owning block b under j's partition.
    for (int i = 0; i < n; i++) {
        const Subnet &sn = subnets[static_cast<std::size_t>(i)];
        const SubnetPartition &part =
            partitions[static_cast<std::size_t>(i)];
        for (int s = 0; s < numStages; s++) {
            int lo = part.firstBlock(s), hi = part.lastBlock(s);
            // (blocker task, block) edges, deduped per blocker.
            std::vector<std::pair<int, int>> edges;
            for (int b = lo; b <= hi; b++) {
                if (!space.parameterized(b, sn.choice(b)))
                    continue;
                const std::vector<int> &chain = chains
                    [static_cast<std::size_t>(b * choices +
                                              sn.choice(b))];
                for (int j : chain) {
                    if (j >= i)
                        break;
                    int commitStage =
                        partitions[static_cast<std::size_t>(j)]
                            .stageOf(b);
                    edges.emplace_back(bwdId(j, commitStage), b);
                }
            }
            std::sort(edges.begin(), edges.end());
            edges.erase(std::unique(edges.begin(), edges.end(),
                                    [](const auto &a, const auto &b) {
                                        return a.first == b.first;
                                    }),
                        edges.end());
            for (const auto &[blocker, block] : edges)
                addDep(blocker, fwdId(i, s), block);
        }
    }

    // Deterministic list scheduling: one task at a time per stage,
    // backwards first, then the lowest-sequence-ID ready forward —
    // Algorithm 1/2 on a logical clock.
    std::vector<std::set<int>> bwdReady(
        static_cast<std::size_t>(numStages));
    std::vector<std::set<int>> fwdReady(
        static_cast<std::size_t>(numStages));
    auto enqueueReady = [&](int tid) {
        int s = stageOf(tid);
        if (isBackward(tid))
            bwdReady[static_cast<std::size_t>(s)].insert(tid);
        else
            fwdReady[static_cast<std::size_t>(s)].insert(tid);
        TaskState &task = tasks[static_cast<std::size_t>(tid)];
        if (task.gateReady > task.pipeReady && task.gateBlocker >= 0) {
            // The chain held this forward past its pipeline arrival:
            // that interval is the logical gate wait.
            const Subnet &sn =
                subnets[static_cast<std::size_t>(subnetOf(tid))];
            LogicalGateWait wait;
            wait.stage = s;
            wait.layerKey = sn.layer(task.gateBlock).key();
            wait.waiter = sn.id();
            wait.blocker =
                subnets[static_cast<std::size_t>(
                            subnetOf(task.gateBlocker))]
                    .id();
            wait.ticks = task.gateReady - task.pipeReady;
            out.gateWaits.push_back(wait);
            out.totalGateWaitTicks += wait.ticks;
            out.spans.push_back(TraceRecord{
                task.pipeReady, task.gateReady, s, TraceKind::Stall,
                wait.waiter,
                "gate b" + std::to_string(task.gateBlock) + "c" +
                    std::to_string(sn.choice(task.gateBlock)) +
                    " <- SN" + std::to_string(wait.blocker)});
        }
    };
    for (int tid = 0; tid < total; tid++) {
        if (tasks[static_cast<std::size_t>(tid)].unmet == 0)
            enqueueReady(tid);
    }

    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        events;
    events.push(0);
    std::vector<int> running(static_cast<std::size_t>(numStages), -1);
    int completed = 0;

    while (completed < total) {
        NASPIPE_ASSERT(!events.empty(),
                       "logical schedule deadlocked with ",
                       total - completed, " tasks left");
        Tick t = events.top();
        while (!events.empty() && events.top() == t)
            events.pop();

        // Completion pass (all stages, ascending) before scheduling,
        // so a commit at t releases forwards that may start at t.
        for (int s = 0; s < numStages; s++) {
            int tid = running[static_cast<std::size_t>(s)];
            if (tid < 0 ||
                tasks[static_cast<std::size_t>(tid)].end != t)
                continue;
            running[static_cast<std::size_t>(s)] = -1;
            completed++;
            for (const DepEdge &edge :
                 dependents[static_cast<std::size_t>(tid)]) {
                TaskState &dep =
                    tasks[static_cast<std::size_t>(edge.to)];
                if (edge.gateBlock < 0) {
                    dep.pipeReady = std::max(dep.pipeReady, t);
                } else if (t > dep.gateReady) {
                    dep.gateReady = t;
                    dep.gateBlocker = tid;
                    dep.gateBlock = edge.gateBlock;
                }
                if (--dep.unmet == 0)
                    enqueueReady(edge.to);
            }
        }

        // Scheduling pass: each free stage picks at most one task.
        for (int s = 0; s < numStages; s++) {
            if (running[static_cast<std::size_t>(s)] >= 0)
                continue;
            std::set<int> &bwd = bwdReady[static_cast<std::size_t>(s)];
            std::set<int> &fwd = fwdReady[static_cast<std::size_t>(s)];
            int tid;
            if (!bwd.empty()) {
                tid = *bwd.begin();
                bwd.erase(bwd.begin());
            } else if (!fwd.empty()) {
                tid = *fwd.begin();
                fwd.erase(fwd.begin());
            } else {
                continue;
            }
            TaskState &task = tasks[static_cast<std::size_t>(tid)];
            task.start = t;
            task.end = t + task.cost;
            task.scheduled = true;
            running[static_cast<std::size_t>(s)] = tid;
            out.stageBusyTicks[static_cast<std::size_t>(s)] +=
                task.cost;
            out.makespan = std::max(out.makespan, task.end);
            out.spans.push_back(TraceRecord{
                task.start, task.end, s,
                isBackward(tid) ? TraceKind::Backward
                                : TraceKind::Forward,
                subnets[static_cast<std::size_t>(subnetOf(tid))].id(),
                "logical"});
            events.push(task.end);
        }
    }

    std::sort(out.spans.begin(), out.spans.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  if (a.stage != b.stage)
                      return a.stage < b.stage;
                  if (a.kind != b.kind)
                      return static_cast<int>(a.kind) <
                             static_cast<int>(b.kind);
                  return a.subnet < b.subnet;
              });
    std::sort(out.gateWaits.begin(), out.gateWaits.end(),
              [](const LogicalGateWait &a, const LogicalGateWait &b) {
                  if (a.stage != b.stage)
                      return a.stage < b.stage;
                  if (a.layerKey != b.layerKey)
                      return a.layerKey < b.layerKey;
                  return a.waiter < b.waiter;
              });
    return out;
}

} // namespace obs
} // namespace naspipe
