/**
 * @file
 * Logical-mode span source: the CSP schedule replayed on a
 * deterministic logical clock.
 *
 * The threaded executor's wall-clock spans are real but
 * unreproducible — the OS interleaves workers differently every run.
 * Logical mode instead *derives* the timeline from the schedule
 * itself: given the sampled subnets and their partitions (both pure
 * functions of the seed), it list-schedules every forward/backward
 * task under Algorithm 1/2's policy (one task at a time per stage,
 * backward-first, lowest-sequence-ID-first among gate-ready
 * forwards) on a tick clock whose task costs come from the profiled
 * layer database. Every field of the result — span names, sequence
 * IDs, stages, start/end ticks, gate-wait attributions — is a pure
 * function of (seed, schedule), so two identical-seed runs export
 * byte-identical traces, and the simulator and the threaded executor
 * agree on the analysis.
 *
 * The gate-wait attribution answers the profiling question the
 * ROADMAP's auto-partitioner needs: for each deferred forward,
 * *which* layer's causal chain held it back, for how many ticks, and
 * which earlier subnet's commit released it.
 */

#ifndef NASPIPE_OBS_LOGICAL_SCHEDULE_H
#define NASPIPE_OBS_LOGICAL_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "sim/trace.h"
#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {
namespace obs {

/** One attributed gate wait: who waited, on which chain, how long. */
struct LogicalGateWait {
    int stage = -1;              ///< stage whose forward was deferred
    std::uint64_t layerKey = 0;  ///< blocking layer's dense key
    SubnetId waiter = -1;        ///< deferred subnet
    SubnetId blocker = -1;       ///< subnet whose commit released it
    Tick ticks = 0;              ///< wait length on the logical clock
};

/** The deterministic logical timeline of one run. */
struct LogicalSchedule {
    /** Forward/Backward spans plus Stall spans for gate waits,
     *  sorted by (start, stage, kind, subnet). */
    std::vector<TraceRecord> spans;
    Tick makespan = 0;                  ///< end of the last span
    std::vector<Tick> stageBusyTicks;   ///< per-stage busy total
    Tick totalGateWaitTicks = 0;
    /** Sorted by (stage, layerKey, waiter). */
    std::vector<LogicalGateWait> gateWaits;
};

/**
 * Build the logical schedule of a run.
 *
 * @param space the search space (profiled costs, parameterized())
 * @param subnets sampled subnets in sequence order
 * @param partitions per-subnet stage partitions, parallel to
 *        @p subnets
 * @param numStages pipeline depth D
 * @param batch batch size the profiled costs scale to (>= 1)
 * @param inflightLimit max subnets in flight (the injection gate);
 *        <= 0 means unlimited
 */
LogicalSchedule
buildLogicalSchedule(const SearchSpace &space,
                     const std::vector<Subnet> &subnets,
                     const std::vector<SubnetPartition> &partitions,
                     int numStages, int batch, int inflightLimit);

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_LOGICAL_SCHEDULE_H
