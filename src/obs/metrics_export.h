/**
 * @file
 * Builds the unified MetricsRegistry of one run.
 *
 * One function gathers every metric surface the repo grew so far —
 * RunMetrics aggregates, per-stage worker accounting, commit-gate
 * numbers, the logical-schedule analysis, wall-mode stage
 * observations, and the profiled per-layer cost table — into a
 * single registry, tagging each entry Stable or Timing. The CLI's
 * --metrics-out and the bench harness both serialize through here,
 * so there is exactly one naming scheme:
 *
 *   run/...        progress + identity (finished, batch, hash, ...)
 *   quality/...    final loss / score / violations
 *   gate/...       commit-gate totals
 *   stage/<s>/...  per-stage counters and (wall mode) seconds
 *   logical/...    deterministic logical-schedule analysis
 *   time/...       wall-clock aggregates (wall mode only)
 *   cache/...      context-cache accounting (wall mode only)
 *   profile/...    Table 5 reference layer costs
 */

#ifndef NASPIPE_OBS_METRICS_EXPORT_H
#define NASPIPE_OBS_METRICS_EXPORT_H

#include <cstdint>
#include <string>

#include "obs/logical_schedule.h"
#include "obs/metrics_registry.h"
#include "obs/run_observations.h"
#include "runtime/pipeline_runtime.h"

namespace naspipe {
namespace obs {

/** Identity of the run a metrics export describes. */
struct RunMetadata {
    std::string space;     ///< search-space name
    std::string executor;  ///< "sim" | "threads"
    std::uint64_t seed = 0;
    int steps = 0;
    int numStages = 0;
    int batch = 0;
    /** True when wall-clock (Timing) entries should be exported. */
    bool wallMode = false;
    /**
     * True when the backend's timing itself is deterministic (the
     * simulator): its seconds are simulated ticks, so they are
     * Stable and survive the logical-mode filter.
     */
    bool deterministicTiming = false;
};

/**
 * Populate a registry from a finished run.
 *
 * @param result the run's RunResult
 * @param observations wall-mode stage observations, or nullptr
 * @param logical logical-schedule analysis, or nullptr
 * @param meta run identity + export mode
 */
MetricsRegistry buildRunRegistry(const RunResult &result,
                                 const RunObservations *observations,
                                 const LogicalSchedule *logical,
                                 const RunMetadata &meta);

/**
 * Serialize the run's metrics as one JSON document (schema
 * "naspipe-metrics/1") with the run identity as header fields.
 * Logical mode (meta.wallMode == false) exports Stable entries only,
 * making the document byte-identical across identical-seed runs.
 */
std::string metricsJson(const RunResult &result,
                        const RunObservations *observations,
                        const LogicalSchedule *logical,
                        const RunMetadata &meta);

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_METRICS_EXPORT_H
