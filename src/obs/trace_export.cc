#include "obs/trace_export.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace naspipe {
namespace obs {

const char *
traceSchemaName()
{
    return "naspipe-trace/1";
}

std::string
chromeTraceJson(const std::vector<TraceRecord> &records,
                const TraceHeader &header)
{
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";

    // Track metadata first: Perfetto shows these as process/thread
    // labels instead of bare pid/tid integers.
    oss << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"tid\":0,\"args\":{\"name\":\"naspipe pipeline\"}}";
    for (int s = 0; s < header.numStages; s++) {
        oss << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
               "\"tid\":"
            << s << ",\"args\":{\"name\":\"stage " << s << "\"}}";
    }

    for (const TraceRecord &r : records) {
        std::string name = traceKindName(r.kind);
        if (r.subnet >= 0)
            name += " SN" + std::to_string(r.subnet);
        // Ticks are integer nanoseconds; microsecond timestamps with
        // three decimals render them exactly. Zero-length markers get
        // 1 us so they stay visible.
        double tsUs = static_cast<double>(r.start) /
                      static_cast<double>(kTicksPerUs);
        double durUs =
            std::max(1.0, static_cast<double>(r.end - r.start) /
                              static_cast<double>(kTicksPerUs));
        oss << ",{\"name\":\"" << jsonEscape(name)
            << "\",\"ph\":\"X\",\"ts\":" << formatFixed(tsUs, 3)
            << ",\"dur\":" << formatFixed(durUs, 3)
            << ",\"pid\":0,\"tid\":" << r.stage
            << ",\"args\":{\"subnet\":" << r.subnet;
        if (!r.detail.empty())
            oss << ",\"detail\":\"" << jsonEscape(r.detail) << "\"";
        oss << "}}";
    }

    oss << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
        << "\"schema\":\"" << traceSchemaName() << "\""
        << ",\"space\":\"" << jsonEscape(header.space) << "\""
        << ",\"executor\":\"" << jsonEscape(header.executor) << "\""
        << ",\"mode\":\"" << jsonEscape(header.mode) << "\""
        << ",\"seed\":\"" << header.seed << "\""
        << ",\"steps\":\"" << header.steps << "\""
        << ",\"stages\":\"" << header.numStages << "\"}}";
    return oss.str();
}

} // namespace obs
} // namespace naspipe
