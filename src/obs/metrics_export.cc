#include "obs/metrics_export.h"

#include <string>

#include "supernet/profile.h"

namespace naspipe {
namespace obs {

namespace {

std::string
stagePrefix(int stage)
{
    return "stage/" + std::to_string(stage) + "/";
}

} // namespace

MetricsRegistry
buildRunRegistry(const RunResult &result,
                 const RunObservations *observations,
                 const LogicalSchedule *logical,
                 const RunMetadata &meta)
{
    MetricsRegistry reg;
    const RunMetrics &m = result.metrics;
    // Simulated seconds are modeled time — Stable. Real wall-clock
    // seconds vary run to run — Timing.
    const Stability timing = meta.deterministicTiming
                                 ? Stability::Stable
                                 : Stability::Timing;

    // Identity and progress.
    reg.counter("run/finished_subnets",
                static_cast<std::uint64_t>(m.finishedSubnets));
    reg.counter("run/batch", static_cast<std::uint64_t>(m.batch));
    reg.counter("run/seed", meta.seed);
    reg.counter("run/stages",
                static_cast<std::uint64_t>(meta.numStages));
    reg.counter("run/exec_workers",
                static_cast<std::uint64_t>(m.execWorkers));
    reg.text("run/space", meta.space);
    reg.text("run/executor", meta.executor);
    reg.counter("run/checkpoints_written",
                static_cast<std::uint64_t>(m.checkpointsWritten));

    // Training quality: pure functions of (seed, schedule) under CSP.
    reg.gauge("quality/final_loss", m.finalLoss, 6);
    reg.gauge("quality/final_score", m.finalScore, 6);
    reg.counter("quality/supernet_hash", m.supernetHash);
    reg.counter("quality/causal_violations",
                static_cast<std::uint64_t>(m.causalViolations));

    // Commit gate.
    reg.counter("gate/commits", m.gateCommits);

    // Faults and recovery. Fault firing, rollback targets and replay
    // counts are pure functions of (plan, checkpoint cadence) — the
    // fault plan's clock is the completion count — so the structural
    // counters are Stable on either executor. The recovery seconds
    // are modeled (recoverySeconds + deterministic backoff), hence
    // the backend's timing stability; lost compute is real measured
    // busy time on threads, hence Timing.
    reg.counter("fault/injected",
                static_cast<std::uint64_t>(m.faultsInjected));
    reg.counter("fault/recoveries",
                static_cast<std::uint64_t>(m.recoveries));
    reg.counter("fault/replay_subnets",
                static_cast<std::uint64_t>(m.subnetsReplayed));
    reg.counter("fault/retries_exhausted",
                static_cast<std::uint64_t>(m.retriesExhausted));
    reg.gauge("fault/recovery_s", m.recoverySeconds, 6, timing);
    reg.gauge("fault/lost_compute_s", m.lostComputeSeconds, 6,
              Stability::Timing);

    // Dispatch diagnostics. The simulator's stall counters are
    // schedule-determined; the threaded executor's deferral counts
    // depend on real interleaving, so per-stage deferrals are tagged
    // with the backend's timing stability.
    reg.counter("sched/stall_empty_queues", m.stallEmptyQueues,
                timing);
    reg.counter("sched/stall_dependency", m.stallDependency, timing);
    reg.counter("sched/stall_mirror_wait", m.stallMirrorWait, timing);

    // Per-stage structural counters (threads): every stage executes
    // exactly one forward and one backward per subnet, so these are
    // Stable and double as a schedule-shape check.
    for (std::size_t s = 0; s < m.perStageForwards.size(); s++) {
        reg.counter(stagePrefix(static_cast<int>(s)) + "forwards",
                    m.perStageForwards[s]);
    }
    for (std::size_t s = 0; s < m.perStageBackwards.size(); s++) {
        reg.counter(stagePrefix(static_cast<int>(s)) + "backwards",
                    m.perStageBackwards[s]);
    }
    for (std::size_t s = 0; s < m.perStageDeferrals.size(); s++) {
        reg.counter(stagePrefix(static_cast<int>(s)) + "deferrals",
                    m.perStageDeferrals[s], timing);
    }

    // Timing aggregates.
    reg.gauge("time/sim_s", m.simSeconds, 6, timing);
    reg.gauge("time/wall_s", m.wallSeconds, 6, Stability::Timing);
    reg.gauge("time/gate_wait_s", m.gateWaitSeconds, 6,
              Stability::Timing);
    reg.gauge("time/bubble_ratio", m.bubbleRatio, 6, timing);
    reg.gauge("time/samples_per_s", m.samplesPerSec, 3, timing);
    reg.gauge("time/subnets_per_hour", m.subnetsPerHour, 3, timing);
    for (std::size_t s = 0; s < m.perStageBusySec.size(); s++) {
        reg.gauge(stagePrefix(static_cast<int>(s)) + "busy_s",
                  m.perStageBusySec[s], 6, Stability::Timing);
    }
    for (std::size_t s = 0; s < m.perStageGateWaitSec.size(); s++) {
        reg.gauge(stagePrefix(static_cast<int>(s)) + "gate_wait_s",
                  m.perStageGateWaitSec[s], 6, Stability::Timing);
    }
    for (std::size_t s = 0; s < m.perStageIdleSec.size(); s++) {
        reg.gauge(stagePrefix(static_cast<int>(s)) + "idle_s",
                  m.perStageIdleSec[s], 6, Stability::Timing);
    }

    // Context cache (threads wall mode / sim).
    if (m.cacheHitRate.has_value()) {
        reg.gauge("cache/hit_rate", *m.cacheHitRate, 6, timing);
        reg.counter("cache/prefetched_bytes", m.prefetchedBytes,
                    timing);
        reg.counter("cache/sync_fetched_bytes", m.syncFetchedBytes,
                    timing);
        reg.counter("cache/peak_bytes", m.cachePeakBytes, timing);
        reg.counter("cache/budget_bytes", m.cacheBudgetBytes);
    }

    // Wall-mode per-stage observations.
    if (observations) {
        for (std::size_t s = 0; s < observations->stages.size();
             s++) {
            const StageObservation &obs = observations->stages[s];
            const std::string prefix =
                stagePrefix(static_cast<int>(s));
            reg.counter(prefix + "idle_wakeups", obs.idleWakeups,
                        Stability::Timing);
            if (!obs.gateWaitSeconds.empty()) {
                reg.histogram(prefix + "gate_wait_s_hist",
                              obs.gateWaitSeconds, 6,
                              Stability::Timing);
            }
            if (!obs.commitGapSeconds.empty()) {
                reg.histogram(prefix + "commit_gap_s_hist",
                              obs.commitGapSeconds, 6,
                              Stability::Timing);
            }
            for (const auto &[layerKey, wait] : obs.waitsByLayer) {
                const std::string base = prefix + "gate_wait/layer/" +
                                         std::to_string(layerKey);
                reg.counter(base + "/count", wait.count,
                            Stability::Timing);
                reg.gauge(base + "/seconds", wait.seconds, 6,
                          Stability::Timing);
            }
        }
    }

    // Logical-schedule analysis: Stable by construction — this is
    // the section identical-seed byte-identity is asserted on.
    if (logical) {
        reg.counter("logical/makespan_ticks", logical->makespan);
        reg.counter("logical/gate_wait_ticks",
                    logical->totalGateWaitTicks);
        reg.counter("logical/span_count",
                    static_cast<std::uint64_t>(logical->spans.size()));
        reg.counter(
            "logical/gate_wait_count",
            static_cast<std::uint64_t>(logical->gateWaits.size()));
        Tick busyTotal = 0;
        for (std::size_t s = 0; s < logical->stageBusyTicks.size();
             s++) {
            reg.counter(stagePrefix(static_cast<int>(s)) +
                            "logical_busy_ticks",
                        logical->stageBusyTicks[s]);
            busyTotal += logical->stageBusyTicks[s];
        }
        if (logical->makespan > 0 &&
            !logical->stageBusyTicks.empty()) {
            double denom =
                static_cast<double>(logical->makespan) *
                static_cast<double>(logical->stageBusyTicks.size());
            reg.gauge("logical/bubble_ratio",
                      1.0 - static_cast<double>(busyTotal) / denom,
                      6);
        }
        FixedHistogram waits(logicalTickBounds());
        // Attribution rollup per (stage, layer): the partitioning
        // signal — which chain a stage spent its logical waits on.
        std::map<std::pair<int, std::uint64_t>, GateWaitByLayer>
            byStageLayer;
        for (const LogicalGateWait &w : logical->gateWaits) {
            waits.record(static_cast<double>(w.ticks));
            GateWaitByLayer &slot =
                byStageLayer[{w.stage, w.layerKey}];
            slot.count++;
            slot.seconds += ticksToSec(w.ticks);
        }
        if (!waits.empty())
            reg.histogram("logical/gate_wait_ticks_hist", waits, 0,
                          Stability::Stable);
        for (const auto &[key, wait] : byStageLayer) {
            const std::string base =
                stagePrefix(key.first) + "logical_gate_wait/layer/" +
                std::to_string(key.second);
            reg.counter(base + "/count", wait.count);
            reg.gauge(base + "/seconds", wait.seconds, 6);
        }
    }

    // Profiled layer cost table (Table 5): the per-layer inputs a
    // cost-aware auto-partitioner would consume, exported next to
    // the waits they should explain.
    for (const LayerSpec &spec : LayerProfileDb::instance().all()) {
        const std::string base =
            std::string("profile/layer/") + layerKindName(spec.kind);
        reg.gauge(base + "/fwd_ms", spec.fwdMs, 3);
        reg.gauge(base + "/bwd_ms", spec.bwdMs, 3);
        reg.gauge(base + "/swap_ms", spec.swapMs, 3);
        reg.counter(base + "/param_bytes", spec.paramBytes);
    }

    return reg;
}

std::string
metricsJson(const RunResult &result,
            const RunObservations *observations,
            const LogicalSchedule *logical, const RunMetadata &meta)
{
    MetricsRegistry reg =
        buildRunRegistry(result, observations, logical, meta);
    std::vector<std::pair<std::string, std::string>> headers = {
        {"space", meta.space},
        {"executor", meta.executor},
        {"mode", meta.wallMode ? "wall" : "logical"},
        {"seed", std::to_string(meta.seed)},
        {"steps", std::to_string(meta.steps)},
        {"stages", std::to_string(meta.numStages)},
        {"batch", std::to_string(meta.batch)},
    };
    return reg.exportJson(headers, !meta.wallMode);
}

} // namespace obs
} // namespace naspipe
