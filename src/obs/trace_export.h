/**
 * @file
 * Chrome trace-event exporter for span streams.
 *
 * Renders TraceRecord spans as a Chrome/Perfetto trace:
 *
 *   {"traceEvents":[ ...metadata..., ...X events... ],
 *    "displayTimeUnit":"ms",
 *    "otherData":{"schema":"naspipe-trace/1", ...run header...}}
 *
 * Unlike Trace::exportChromeJson (the simulator's quick exporter),
 * this one emits thread-name metadata so Perfetto labels the tracks
 * ("stage 0" .. "stage D-1"), carries the run header (space,
 * executor, mode, seed, steps) for provenance, and formats every
 * number through fixed-digit formatting — the output is a pure
 * function of the record list, so logical-mode traces are
 * byte-identical across identical-seed runs.
 */

#ifndef NASPIPE_OBS_TRACE_EXPORT_H
#define NASPIPE_OBS_TRACE_EXPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace naspipe {
namespace obs {

/** Run provenance embedded in the exported trace. */
struct TraceHeader {
    std::string space;     ///< search-space name (e.g. "NLP.c1")
    std::string executor;  ///< "sim" | "threads"
    std::string mode;      ///< "logical" | "wall"
    std::uint64_t seed = 0;
    int steps = 0;
    int numStages = 0;
};

/** Schema identifier emitted in every exported trace. */
const char *traceSchemaName();

/**
 * Serialize @p records as Chrome trace-event JSON. Records are
 * emitted in the given order; callers wanting byte-stable output
 * pass a canonically sorted list (logical mode does).
 */
std::string chromeTraceJson(const std::vector<TraceRecord> &records,
                            const TraceHeader &header);

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_TRACE_EXPORT_H
