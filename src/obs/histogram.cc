#include "obs/histogram.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace naspipe {
namespace obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : _bounds(std::move(bounds)),
      _counts(_bounds.size() + 1, 0)
{
    NASPIPE_ASSERT(std::is_sorted(_bounds.begin(), _bounds.end()),
                   "histogram bounds must be ascending");
}

void
FixedHistogram::record(double value)
{
    NASPIPE_ASSERT(!_counts.empty(), "histogram has no buckets");
    std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(_bounds.begin(), _bounds.end(), value) -
        _bounds.begin());
    _counts[idx]++;
    _sum += value;
    _max = std::max(_max, value);
}

void
FixedHistogram::merge(const FixedHistogram &other)
{
    if (other._counts.empty())
        return;
    if (_counts.empty()) {
        *this = other;
        return;
    }
    NASPIPE_ASSERT(_bounds == other._bounds,
                   "merging histograms with different bounds");
    for (std::size_t i = 0; i < _counts.size(); i++)
        _counts[i] += other._counts[i];
    _sum += other._sum;
    _max = std::max(_max, other._max);
}

std::uint64_t
FixedHistogram::total() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : _counts)
        n += c;
    return n;
}

std::string
FixedHistogram::toJson(int boundDigits) const
{
    std::ostringstream oss;
    oss << "{\"bounds\":[";
    for (std::size_t i = 0; i < _bounds.size(); i++) {
        if (i)
            oss << ",";
        oss << formatFixed(_bounds[i], boundDigits);
    }
    oss << "],\"counts\":[";
    for (std::size_t i = 0; i < _counts.size(); i++) {
        if (i)
            oss << ",";
        oss << _counts[i];
    }
    oss << "],\"total\":" << total()
        << ",\"sum\":" << formatFixed(_sum, boundDigits)
        << ",\"max\":" << formatFixed(_max, boundDigits) << "}";
    return oss.str();
}

std::vector<double>
latencySecondsBounds()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
}

std::vector<double>
logicalTickBounds()
{
    // Ticks are nanoseconds of modeled time: 1us .. 10s, decades.
    return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

} // namespace obs
} // namespace naspipe
