/**
 * @file
 * Fixed-bucket histograms for the metrics registry.
 *
 * Bucket bounds are fixed at construction and shared by every
 * instance built from the same bound set, so merging two histograms
 * is element-wise count addition — associative, commutative, and
 * (because the registry merges in stage order) deterministic. No
 * dynamic rebucketing, no quantile sketches: anything
 * data-dependent in the *structure* of a metric would make two
 * identical-seed runs disagree on the export layout.
 */

#ifndef NASPIPE_OBS_HISTOGRAM_H
#define NASPIPE_OBS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace naspipe {
namespace obs {

/**
 * Counts of samples falling into fixed half-open buckets
 * [bounds[i-1], bounds[i]); the last bucket is unbounded above.
 */
class FixedHistogram
{
  public:
    FixedHistogram() = default;

    /** @param bounds ascending upper bounds; one overflow bucket is
     *  appended implicitly. */
    explicit FixedHistogram(std::vector<double> bounds);

    /** Record one sample. */
    void record(double value);

    /** Element-wise add @p other's counts (bounds must match). */
    void merge(const FixedHistogram &other);

    const std::vector<double> &bounds() const { return _bounds; }
    const std::vector<std::uint64_t> &counts() const { return _counts; }

    std::uint64_t total() const;
    double sum() const { return _sum; }
    double max() const { return _max; }

    bool empty() const { return total() == 0; }

    /** JSON object: {"bounds":[...],"counts":[...],...}. */
    std::string toJson(int boundDigits = 6) const;

  private:
    std::vector<double> _bounds;
    std::vector<std::uint64_t> _counts;
    double _sum = 0.0;
    double _max = 0.0;
};

/** Canonical bucket bounds (seconds) for wait/latency metrics:
 *  1us, 10us, 100us, 1ms, 10ms, 100ms, 1s. */
std::vector<double> latencySecondsBounds();

/** Canonical bucket bounds (logical ticks) for schedule analysis. */
std::vector<double> logicalTickBounds();

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_HISTOGRAM_H
