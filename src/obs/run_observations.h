/**
 * @file
 * Per-stage wall-mode observations of the threaded executor.
 *
 * Each StageWorker owns one StageObservation and fills it from its
 * own thread — no locking, no sharing. After join() the runtime
 * merges them, stage-ascending, into a RunObservations that the
 * metrics exporter renders. Everything here is wall-clock derived
 * and therefore Timing-stability: it is exported in --obs-wall mode
 * only and never enters the byte-identical logical outputs.
 *
 * The headline measurement is gate-wait *attribution*: when
 * Algorithm 2 defers every queued forward, the worker records which
 * layer's causal chain blocked the lowest-sequence candidate and how
 * long the stage then slept — "stage S waited W on the chain of
 * layer L" — which is exactly the signal a cost-aware partitioner
 * needs to move hot layers off congested stages.
 */

#ifndef NASPIPE_OBS_RUN_OBSERVATIONS_H
#define NASPIPE_OBS_RUN_OBSERVATIONS_H

#include <cstdint>
#include <map>
#include <vector>

#include "obs/histogram.h"

namespace naspipe {
namespace obs {

/** Accumulated gate waits attributed to one layer's chain. */
struct GateWaitByLayer {
    std::uint64_t count = 0;
    double seconds = 0.0;
};

/** What one stage worker observed over its lifetime. */
struct StageObservation {
    StageObservation();

    /** Per-sleep gate-wait lengths (candidates queued, none ready). */
    FixedHistogram gateWaitSeconds;
    /** Gaps between consecutive commits published by this stage. */
    FixedHistogram commitGapSeconds;
    /** Gate waits keyed by the blocking layer's dense key. */
    std::map<std::uint64_t, GateWaitByLayer> waitsByLayer;
    /** Sleeps with truly empty queues (fill/drain bubbles). */
    std::uint64_t idleWakeups = 0;

    /** Record one gate wait of @p seconds blocked on @p layerKey. */
    void recordGateWait(std::uint64_t layerKey, double seconds);
};

/** All stages' observations, index = stage. */
struct RunObservations {
    std::vector<StageObservation> stages;

    bool empty() const { return stages.empty(); }
};

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_RUN_OBSERVATIONS_H
