/**
 * @file
 * Unified metrics registry: one deterministic export surface for
 * everything a run can report.
 *
 * The registry holds named counters, gauges, text values and
 * fixed-bucket histograms. Names are hierarchical slash paths
 * ("stage/0/busy_s") and the export walks them in lexicographic
 * order, so two registries populated with the same values serialize
 * to the same bytes — the property the tests/obs determinism suite
 * asserts.
 *
 * Every entry carries a stability tag:
 *
 *   - Stable  — a pure function of (seed, schedule): structural
 *     counters, final losses/hashes, logical-schedule analysis,
 *     profiled layer costs. Exported in both modes.
 *   - Timing  — derived from wall-clock reads (src/obs/ is the only
 *     sanctioned source): busy/wait seconds, latency histograms.
 *     Exported only in wall mode, so the default logical-mode
 *     metrics JSON is byte-identical across identical-seed runs.
 */

#ifndef NASPIPE_OBS_METRICS_REGISTRY_H
#define NASPIPE_OBS_METRICS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace naspipe {
namespace obs {

/** Whether a metric survives the logical-mode determinism filter. */
enum class Stability {
    Stable,  ///< pure function of (seed, schedule)
    Timing,  ///< wall-clock derived; wall mode only
};

/**
 * Ordered, typed collection of named metrics.
 */
class MetricsRegistry
{
  public:
    /** Set an integer counter. */
    void counter(const std::string &name, std::uint64_t value,
                 Stability stability = Stability::Stable);

    /** Set a signed integer value. */
    void signedCounter(const std::string &name, std::int64_t value,
                       Stability stability = Stability::Stable);

    /** Set a real-valued gauge, formatted with @p digits decimals. */
    void gauge(const std::string &name, double value, int digits = 6,
               Stability stability = Stability::Stable);

    /** Set a text value (JSON-escaped on export). */
    void text(const std::string &name, const std::string &value,
              Stability stability = Stability::Stable);

    /** Set a histogram. */
    void histogram(const std::string &name, FixedHistogram hist,
                   int boundDigits = 6,
                   Stability stability = Stability::Timing);

    /** Number of entries (metrics + histograms). */
    std::size_t size() const
    {
        return _metrics.size() + _histograms.size();
    }

    /**
     * Serialize as one JSON object:
     *
     *   {"schema":"naspipe-metrics/1", <headers...>,
     *    "metrics":{...}, "histograms":{...}}
     *
     * @p headers are emitted first, in the given order, as string
     * values. @p stableOnly drops every Timing entry (logical mode).
     */
    std::string exportJson(
        const std::vector<std::pair<std::string, std::string>> &headers,
        bool stableOnly) const;

    /** Schema identifier emitted in every export. */
    static const char *schemaName() { return "naspipe-metrics/1"; }

  private:
    struct Scalar {
        std::string rendered;  ///< JSON value text, pre-formatted
        Stability stability = Stability::Stable;
    };
    struct HistEntry {
        FixedHistogram hist;
        int boundDigits = 6;
        Stability stability = Stability::Timing;
    };

    std::map<std::string, Scalar> _metrics;
    std::map<std::string, HistEntry> _histograms;
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &text);

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_METRICS_REGISTRY_H
