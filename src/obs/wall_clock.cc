#include "obs/wall_clock.h"

namespace naspipe {
namespace obs {

TimePoint
now()
{
    return std::chrono::steady_clock::now();
}

double
secondsBetween(TimePoint a, TimePoint b)
{
    return std::chrono::duration<double>(b - a).count();
}

double
secondsSince(TimePoint a)
{
    return secondsBetween(a, now());
}

} // namespace obs
} // namespace naspipe
