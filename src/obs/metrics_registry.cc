#include "obs/metrics_registry.h"

#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace naspipe {
namespace obs {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
MetricsRegistry::counter(const std::string &name, std::uint64_t value,
                         Stability stability)
{
    _metrics[name] = Scalar{std::to_string(value), stability};
}

void
MetricsRegistry::signedCounter(const std::string &name,
                               std::int64_t value, Stability stability)
{
    _metrics[name] = Scalar{std::to_string(value), stability};
}

void
MetricsRegistry::gauge(const std::string &name, double value,
                       int digits, Stability stability)
{
    _metrics[name] = Scalar{formatFixed(value, digits), stability};
}

void
MetricsRegistry::text(const std::string &name, const std::string &value,
                      Stability stability)
{
    _metrics[name] =
        Scalar{"\"" + jsonEscape(value) + "\"", stability};
}

void
MetricsRegistry::histogram(const std::string &name, FixedHistogram hist,
                           int boundDigits, Stability stability)
{
    _histograms[name] =
        HistEntry{std::move(hist), boundDigits, stability};
}

std::string
MetricsRegistry::exportJson(
    const std::vector<std::pair<std::string, std::string>> &headers,
    bool stableOnly) const
{
    std::ostringstream oss;
    oss << "{\"schema\":\"" << schemaName() << "\"";
    for (const auto &[key, value] : headers)
        oss << ",\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
            << "\"";

    oss << ",\"metrics\":{";
    bool first = true;
    for (const auto &[name, entry] : _metrics) {
        if (stableOnly && entry.stability != Stability::Stable)
            continue;
        if (!first)
            oss << ",";
        first = false;
        oss << "\"" << jsonEscape(name) << "\":" << entry.rendered;
    }
    oss << "},\"histograms\":{";
    first = true;
    for (const auto &[name, entry] : _histograms) {
        if (stableOnly && entry.stability != Stability::Stable)
            continue;
        if (!first)
            oss << ",";
        first = false;
        oss << "\"" << jsonEscape(name)
            << "\":" << entry.hist.toJson(entry.boundDigits);
    }
    oss << "}}";
    return oss.str();
}

} // namespace obs
} // namespace naspipe
