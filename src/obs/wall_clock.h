/**
 * @file
 * The sanctioned wall-clock sink of the observability layer.
 *
 * Wall-clock time is the canonical nondeterminism source: any value
 * derived from it differs between two otherwise identical runs, so a
 * clock read that leaks into a schedule or commit decision silently
 * breaks NASPipe's reproducibility guarantee. This repo therefore
 * confines every wall-clock read to src/obs/ (this file) and bench/;
 * the `wall-clock` rule of tools/naspipe_lint enforces the
 * confinement. Executors, tools and tests measure time exclusively
 * through these wrappers, which keeps the dependency auditable: wall
 * time may flow *out* into reports and traces, never *in* to
 * decisions.
 */

#ifndef NASPIPE_OBS_WALL_CLOCK_H
#define NASPIPE_OBS_WALL_CLOCK_H

#include <chrono>

namespace naspipe {
namespace obs {

/** Monotonic wall-clock instant (never compared across processes). */
using TimePoint = std::chrono::steady_clock::time_point;

/** Current monotonic instant. */
TimePoint now();

/** Seconds elapsed from @p a to @p b. */
double secondsBetween(TimePoint a, TimePoint b);

/** Seconds elapsed since @p a. */
double secondsSince(TimePoint a);

/**
 * Scoped stopwatch for measurement loops (bench harnesses, span
 * recording). Construction starts it.
 */
class WallTimer
{
  public:
    WallTimer() : _start(now()) {}

    /** Seconds since construction or the last reset(). */
    double seconds() const { return secondsSince(_start); }

    /** Restart the stopwatch. */
    void reset() { _start = now(); }

    /** The start instant (for span endpoints). */
    TimePoint start() const { return _start; }

  private:
    TimePoint _start;
};

} // namespace obs
} // namespace naspipe

#endif // NASPIPE_OBS_WALL_CLOCK_H
