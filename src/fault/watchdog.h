/**
 * @file
 * Watchdog — the supervision layer's failure detector.
 *
 * A Watchdog owns one polling thread that scans a set of worker
 * heartbeats and reports the first incident it sees to a callback:
 *
 *  - **Crash detection** (always on): a heartbeat whose state is
 *    Crashed names its worker as the victim. This is state-based and
 *    deterministic — the worker latched the fault at a task boundary
 *    of the logical schedule; the watchdog merely relays it.
 *  - **Hang detection** (opt-in, Config::wallDeadline): when the sum
 *    of all logical-progress counters stops advancing for longer
 *    than the wall deadline, the run is declared hung. Wall deadlines
 *    are inherently timing-dependent, so they are armed only when
 *    the caller explicitly opted into wall-clock observability.
 *
 * The callback fires at most once per Watchdog lifetime; the runtime
 * recreates the watchdog with the respawned workers after each
 * recovery phase, which doubles as the re-arm.
 */

#ifndef NASPIPE_FAULT_WATCHDOG_H
#define NASPIPE_FAULT_WATCHDOG_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "fault/heartbeat.h"
#include "obs/wall_clock.h"

namespace naspipe {
namespace fault {

class Watchdog
{
  public:
    struct Config {
        /** Arm the wall-clock hang deadline (timing-dependent;
         *  deterministic runs leave it off and rely on crash
         *  states only). */
        bool wallDeadline = false;
        /** Seconds without any logical progress before the run is
         *  declared hung (wallDeadline only). */
        double deadlineSeconds = 30.0;
        /** Heartbeat scan period in milliseconds (>= 1; configured
         *  via RuntimeConfig::watchdogPollMs / the CLIs'
         *  --watchdog-interval-ms). */
        int pollMs = 2;
    };

    /** Incident report: victim worker index and a reason string. */
    using IncidentFn =
        std::function<void(int worker, const std::string &reason)>;

    /**
     * Start supervising @p hearts (borrowed; they must outlive the
     * watchdog). @p onIncident is invoked from the watchdog thread,
     * at most once.
     */
    Watchdog(Config config,
             std::vector<const WorkerHeartbeat *> hearts,
             IncidentFn onIncident);

    /** Stops the polling thread and joins it. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Incidents reported so far (0 or 1). */
    int incidents() const;

  private:
    void loop();
    std::uint64_t totalProgress() const;
    /** Scan for an incident; fills @p worker / @p reason. */
    bool detect(int *worker, std::string *reason);

    const Config _config;
    const std::vector<const WorkerHeartbeat *> _hearts;
    const IncidentFn _onIncident;

    mutable RankedMutex _watchdogMu{LockRank::FaultWatchdog};
    std::condition_variable_any _cv;
    bool _stop = false;
    bool _fired = false;
    int _incidents = 0;

    // Hang-deadline tracking (watchdog thread only).
    std::uint64_t _lastProgress = 0;
    obs::TimePoint _lastProgressAt;

    std::thread _thread;
};

} // namespace fault
} // namespace naspipe

#endif // NASPIPE_FAULT_WATCHDOG_H
