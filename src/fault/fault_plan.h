/**
 * @file
 * Deterministic fault plans — the executor-agnostic half of fault
 * injection.
 *
 * Long pipeline-parallel supernet training jobs are exactly where
 * hardware failures dominate, and a reproducibility guarantee that
 * only holds on failure-free runs is not production-grade. This
 * module makes failure a first-class, *deterministically injectable*
 * event: a fault plan — either spelled out spec by spec or generated
 * from a seed — names what breaks (a GPU, a stage, a stage link),
 * when (after the k-th subnet completion, a logical clock that is
 * identical across clusters AND across executors), and for how long.
 *
 * Both backends consult the same plan at every completion: the
 * simulator transitions its hardware models into the corresponding
 * fault states, the threaded executor latches the fault into the
 * victim StageWorker (a crashed worker abandons its inbox and exits;
 * a stalled worker sleeps through N logical ticks). Fail-stop faults
 * trigger the shared checkpoint/recovery path on either backend, so
 * one seeded plan reproduces the same rollback/replay sequence
 * everywhere.
 */

#ifndef NASPIPE_FAULT_FAULT_PLAN_H
#define NASPIPE_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

namespace naspipe {

/** What breaks. */
enum class FaultKind {
    GpuCrash,     ///< fail-stop: the stage's GPU dies mid-run
    StageStall,   ///< transient: the stage freezes for a duration
    LinkDegrade,  ///< transient: a stage link loses bandwidth
    LinkDrop,     ///< fail-stop: a stage link drops its traffic
};

/** Printable fault-kind name (also the CLI spelling). */
const char *faultKindName(FaultKind kind);

/** Whether @p kind kills the run and requires recovery. */
bool faultIsFailStop(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec {
    FaultKind kind = FaultKind::GpuCrash;
    /**
     * Fires when this many subnets have completed. Subnet completions
     * form a logical clock that is identical across GPU counts,
     * schedules and executors, so a plan replays deterministically
     * anywhere.
     */
    int atStep = 0;
    /** Victim stage (for link faults: the upstream end of the link). */
    int stage = 0;
    double durationMs = 50.0;  ///< stall/degrade duration
    double factor = 4.0;       ///< bandwidth slowdown (LinkDegrade)

    /** "crash@12,stage=3"-style rendering (parse round-trips). */
    std::string describe() const;
};

/**
 * Parse a CLI fault spec: `KIND@STEP[,stage=N][,ms=X][,factor=F]`
 * with KIND one of crash|stall|degrade|drop. Returns false and sets
 * @p error on malformed input; @p out is only written on success.
 */
bool parseFaultSpec(const std::string &text, FaultSpec &out,
                    std::string *error = nullptr);

/**
 * Tracks which faults of a plan have fired. Each spec fires exactly
 * once, even though recovery rewinds the completion counter past its
 * trigger step (the physical GPU was already replaced).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(std::vector<FaultSpec> plan);

    /**
     * Generate a seeded random plan: @p count faults of mixed kinds
     * at distinct steps in [1, maxStep] on stages in [0, numStages).
     * A pure function of its arguments — the "seeded plan" that makes
     * chaos testing reproducible.
     */
    static std::vector<FaultSpec> randomPlan(std::uint64_t seed,
                                             int count, int maxStep,
                                             int numStages);

    /**
     * Faults due at completion count @p completedStep that have not
     * fired yet; marks them fired.
     */
    std::vector<FaultSpec> due(int completedStep);

    const std::vector<FaultSpec> &plan() const { return _plan; }

    /** Number of faults that have fired so far. */
    int firedCount() const;

    /** Whether any fault is still waiting to fire. */
    bool anyPending() const;

  private:
    std::vector<FaultSpec> _plan;
    std::vector<bool> _fired;
};

} // namespace naspipe

#endif // NASPIPE_FAULT_FAULT_PLAN_H
