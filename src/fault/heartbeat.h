/**
 * @file
 * Per-worker heartbeats — the supervision layer's view of a stage
 * worker.
 *
 * A heartbeat carries two facts the watchdog may read from any
 * thread: a *logical-progress counter* (tasks executed — the
 * deterministic signal) and a coarse lifecycle *state*. Crash
 * detection is purely state-based and therefore deterministic: a
 * worker that takes a fail-stop fault marks itself Crashed at a task
 * boundary, and the watchdog reacts to the flag, never to elapsed
 * time. Wall-clock hang deadlines exist too but are opt-in
 * (RuntimeConfig::wallWatchdog, the CLI's --obs-wall), because a
 * timing-based detection can fire at different logical points on
 * different machines.
 */

#ifndef NASPIPE_FAULT_HEARTBEAT_H
#define NASPIPE_FAULT_HEARTBEAT_H

#include <atomic>
#include <cstdint>

namespace naspipe {
namespace fault {

/** Lifecycle of a supervised worker, as its heartbeat reports it. */
enum class WorkerState : int {
    Running = 0,  ///< executing or waiting for work
    Stalled,      ///< sleeping through an injected transient stall
    Crashed,      ///< fail-stop fault taken; inbox abandoned
    Exited,       ///< clean exit (drain or abort)
};

/** Printable state name ("running", "crashed", ...). */
const char *workerStateName(WorkerState state);

/**
 * One worker's supervision record. The owning worker writes, the
 * watchdog (and tests) read; both sides use sequentially-consistent
 * atomics — this is cold-path bookkeeping, not the training hot path.
 */
class WorkerHeartbeat
{
  public:
    /** One task boundary passed (forward or backward executed). */
    void beat() { _progress.fetch_add(1); }

    /** Logical-progress counter: tasks executed so far. */
    std::uint64_t progress() const { return _progress.load(); }

    void setState(WorkerState state)
    {
        _state.store(static_cast<int>(state));
    }

    WorkerState state() const
    {
        return static_cast<WorkerState>(_state.load());
    }

  private:
    std::atomic<std::uint64_t> _progress{0};
    std::atomic<int> _state{
        static_cast<int>(WorkerState::Running)};
};

} // namespace fault
} // namespace naspipe

#endif // NASPIPE_FAULT_HEARTBEAT_H
