#include "fault/watchdog.h"

#include <chrono>

#include "common/logging.h"

namespace naspipe {
namespace fault {

const char *
workerStateName(WorkerState state)
{
    switch (state) {
    case WorkerState::Running:
        return "running";
    case WorkerState::Stalled:
        return "stalled";
    case WorkerState::Crashed:
        return "crashed";
    case WorkerState::Exited:
        return "exited";
    }
    return "?";
}

Watchdog::Watchdog(Config config,
                   std::vector<const WorkerHeartbeat *> hearts,
                   IncidentFn onIncident)
    : _config(config), _hearts(std::move(hearts)),
      _onIncident(std::move(onIncident))
{
    NASPIPE_ASSERT(!_hearts.empty(), "watchdog needs >= 1 heartbeat");
    NASPIPE_ASSERT(_onIncident, "watchdog needs an incident sink");
    NASPIPE_ASSERT(_config.pollMs >= 1,
                   "watchdog poll cadence must be >= 1 ms, got ",
                   _config.pollMs);
    _lastProgress = totalProgress();
    _lastProgressAt = obs::now();
    _thread = std::thread([this] { loop(); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<RankedMutex> lock(_watchdogMu);
        _stop = true;
    }
    _cv.notify_one();
    if (_thread.joinable())
        _thread.join();
}

int
Watchdog::incidents() const
{
    std::lock_guard<RankedMutex> lock(_watchdogMu);
    return _incidents;
}

std::uint64_t
Watchdog::totalProgress() const
{
    std::uint64_t total = 0;
    for (const WorkerHeartbeat *h : _hearts)
        total += h->progress();
    return total;
}

bool
Watchdog::detect(int *worker, std::string *reason)
{
    for (std::size_t i = 0; i < _hearts.size(); i++) {
        if (_hearts[i]->state() == WorkerState::Crashed) {
            *worker = static_cast<int>(i);
            *reason = "stage worker crashed (fail-stop fault)";
            return true;
        }
    }
    if (!_config.wallDeadline)
        return false;
    std::uint64_t progress = totalProgress();
    if (progress != _lastProgress) {
        _lastProgress = progress;
        _lastProgressAt = obs::now();
        return false;
    }
    if (obs::secondsSince(_lastProgressAt) <= _config.deadlineSeconds)
        return false;
    // Declare the first worker that is still nominally alive hung;
    // with every stage quiet there is no better localization than
    // "somebody stopped making logical progress".
    *worker = 0;
    for (std::size_t i = 0; i < _hearts.size(); i++) {
        if (_hearts[i]->state() != WorkerState::Exited) {
            *worker = static_cast<int>(i);
            break;
        }
    }
    *reason = "no logical progress within the wall deadline";
    return true;
}

void
Watchdog::loop()
{
    std::unique_lock<RankedMutex> lock(_watchdogMu);
    while (!_stop) {
        _cv.wait_for(lock,
                     std::chrono::milliseconds(_config.pollMs));
        if (_stop || _fired)
            continue;
        lock.unlock();
        int worker = -1;
        std::string reason;
        bool incident = detect(&worker, &reason);
        lock.lock();
        if (incident && !_fired && !_stop) {
            _fired = true;
            _incidents++;
            lock.unlock();
            _onIncident(worker, reason);
            lock.lock();
        }
    }
}

} // namespace fault
} // namespace naspipe
