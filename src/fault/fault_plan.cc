#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace naspipe {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::GpuCrash:
        return "crash";
    case FaultKind::StageStall:
        return "stall";
    case FaultKind::LinkDegrade:
        return "degrade";
    case FaultKind::LinkDrop:
        return "drop";
    }
    return "?";
}

bool
faultIsFailStop(FaultKind kind)
{
    return kind == FaultKind::GpuCrash || kind == FaultKind::LinkDrop;
}

std::string
FaultSpec::describe() const
{
    std::ostringstream oss;
    oss << faultKindName(kind) << "@" << atStep << ",stage=" << stage;
    if (kind == FaultKind::StageStall || kind == FaultKind::LinkDegrade)
        oss << ",ms=" << formatFixed(durationMs, 1);
    if (kind == FaultKind::LinkDegrade)
        oss << ",factor=" << formatFixed(factor, 1);
    return oss.str();
}

namespace {

bool
kindByName(const std::string &name, FaultKind &out)
{
    for (FaultKind kind :
         {FaultKind::GpuCrash, FaultKind::StageStall,
          FaultKind::LinkDegrade, FaultKind::LinkDrop}) {
        if (name == faultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
parseWholeInt(const std::string &text, long &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtol(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseWholeDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

bool
parseFaultSpec(const std::string &text, FaultSpec &out,
               std::string *error)
{
    FaultSpec spec;
    auto at = text.find('@');
    if (at == std::string::npos)
        return fail(error, "missing '@STEP' in fault spec '" + text +
                               "'");
    if (!kindByName(text.substr(0, at), spec.kind)) {
        return fail(error, "unknown fault kind '" +
                               text.substr(0, at) +
                               "' (crash|stall|degrade|drop)");
    }
    std::vector<std::string> parts =
        splitString(text.substr(at + 1), ',');
    if (parts.empty())
        return fail(error, "missing step in fault spec '" + text + "'");
    long step = 0;
    if (!parseWholeInt(parts[0], step) || step < 0)
        return fail(error, "bad fault step '" + parts[0] + "'");
    spec.atStep = static_cast<int>(step);
    for (std::size_t i = 1; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos) {
            return fail(error, "bad fault option '" + parts[i] +
                                   "' (want key=value)");
        }
        std::string key = parts[i].substr(0, eq);
        std::string value = parts[i].substr(eq + 1);
        long n = 0;
        double d = 0.0;
        if (key == "stage") {
            if (!parseWholeInt(value, n) || n < 0)
                return fail(error, "bad stage '" + value + "'");
            spec.stage = static_cast<int>(n);
        } else if (key == "ms") {
            if (!parseWholeDouble(value, d) || d < 0.0)
                return fail(error, "bad duration '" + value + "'");
            spec.durationMs = d;
        } else if (key == "factor") {
            if (!parseWholeDouble(value, d) || d < 1.0) {
                return fail(error, "bad slowdown factor '" + value +
                                       "' (must be >= 1)");
            }
            spec.factor = d;
        } else {
            return fail(error, "unknown fault option '" + key + "'");
        }
    }
    out = spec;
    return true;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> plan)
    : _plan(std::move(plan)), _fired(_plan.size(), false)
{
}

std::vector<FaultSpec>
FaultInjector::randomPlan(std::uint64_t seed, int count, int maxStep,
                          int numStages)
{
    NASPIPE_ASSERT(maxStep >= 1 && numStages >= 1,
                   "degenerate fault-plan bounds");
    Philox4x32 rng(deriveSeed(seed, "fault-plan"));
    std::vector<FaultSpec> plan;
    std::set<int> steps;
    std::uint64_t counter = 0;
    while (static_cast<int>(plan.size()) < count &&
           static_cast<int>(steps.size()) < maxStep) {
        FaultSpec spec;
        int step = 1 + static_cast<int>(rng.word(counter) %
                                        static_cast<unsigned>(maxStep));
        spec.kind = static_cast<FaultKind>(rng.word(counter + 1) % 4);
        spec.stage = static_cast<int>(
            rng.word(counter + 2) % static_cast<unsigned>(numStages));
        spec.durationMs =
            10.0 + 90.0 * rng.uniformFloat(counter + 3);
        spec.factor = 2.0 + 6.0 * rng.uniformFloat(counter + 3, 1);
        counter += 4;
        if (!steps.insert(step).second)
            continue;  // one fault per step keeps triggers unambiguous
        spec.atStep = step;
        plan.push_back(spec);
    }
    std::sort(plan.begin(), plan.end(),
              [](const FaultSpec &a, const FaultSpec &b) {
                  return a.atStep < b.atStep;
              });
    return plan;
}

std::vector<FaultSpec>
FaultInjector::due(int completedStep)
{
    std::vector<FaultSpec> fired;
    for (std::size_t i = 0; i < _plan.size(); i++) {
        if (!_fired[i] && _plan[i].atStep == completedStep) {
            _fired[i] = true;
            fired.push_back(_plan[i]);
        }
    }
    return fired;
}

int
FaultInjector::firedCount() const
{
    int n = 0;
    for (bool f : _fired)
        n += f ? 1 : 0;
    return n;
}

bool
FaultInjector::anyPending() const
{
    return firedCount() < static_cast<int>(_plan.size());
}

} // namespace naspipe
