/**
 * @file
 * RecoveryPolicy — bounded retries with exponential backoff.
 *
 * Recovery must terminate: a run that keeps crashing into the same
 * wall (a corrupt environment, a fault plan denser than the
 * checkpoint cadence can absorb) has to give up eventually rather
 * than loop forever. The policy counts *consecutive* recovery
 * attempts — any completed subnet after a recovery proves forward
 * progress and resets the counter — and refuses further retries once
 * the bound is hit (the CLI surfaces that as exit code 5).
 *
 * Backoff is *modeled*, not slept: each consecutive attempt charges
 * base * 2^(attempt-1) seconds (capped) into the run's modeled time
 * offsets, exactly like RuntimeConfig::recoverySeconds. That keeps
 * the accounting realistic while tests stay fast and — because the
 * charge is a pure function of the attempt number — deterministic.
 */

#ifndef NASPIPE_FAULT_RECOVERY_POLICY_H
#define NASPIPE_FAULT_RECOVERY_POLICY_H

namespace naspipe {
namespace fault {

class RecoveryPolicy
{
  public:
    struct Config {
        /** Consecutive recoveries (without a completed subnet in
         *  between) before the run gives up. 0 refuses the first
         *  retry outright. */
        int maxRetries = 3;
        /** Backoff charged on the first consecutive attempt. */
        double baseBackoffSeconds = 1.0;
        /** Cap on the exponential backoff. */
        double maxBackoffSeconds = 60.0;
    };

    RecoveryPolicy() = default;

    explicit RecoveryPolicy(Config config) : _config(config) {}

    /** May another recovery be attempted right now? */
    bool allowRetry() const
    {
        return _consecutive < _config.maxRetries;
    }

    /**
     * Charge the next recovery attempt: bumps the consecutive and
     * total counters and returns the modeled backoff seconds
     * (base * 2^(consecutive-so-far), capped).
     */
    double nextBackoffSeconds();

    /** A subnet completed — the run is making progress again. */
    void noteProgress() { _consecutive = 0; }

    /** Consecutive recovery attempts since the last progress. */
    int consecutiveFailures() const { return _consecutive; }

    /** Total recovery attempts charged over the run. */
    int totalRecoveries() const { return _total; }

    const Config &config() const { return _config; }

  private:
    Config _config;
    int _consecutive = 0;
    int _total = 0;
};

} // namespace fault
} // namespace naspipe

#endif // NASPIPE_FAULT_RECOVERY_POLICY_H
