#include "fault/recovery_policy.h"

#include <algorithm>

namespace naspipe {
namespace fault {

double
RecoveryPolicy::nextBackoffSeconds()
{
    double backoff = _config.baseBackoffSeconds;
    for (int i = 0;
         i < _consecutive && backoff < _config.maxBackoffSeconds; i++)
        backoff *= 2.0;
    _consecutive++;
    _total++;
    return std::min(backoff, _config.maxBackoffSeconds);
}

} // namespace fault
} // namespace naspipe
