/**
 * @file
 * Static home placement of supernet layers.
 *
 * NASPipe "by default initializes supernet layers with a partition
 * based on their choice block hierarchy, with each partition
 * initialized in each stage's pinned CPU storage" (§4.2). The home
 * placement maps every choice block to the stage whose host CPU
 * stores its candidate layers; it is also the static operator
 * placement the baseline systems execute under.
 */

#ifndef NASPIPE_PARTITION_PLACEMENT_H
#define NASPIPE_PARTITION_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "supernet/search_space.h"

namespace naspipe {

/**
 * Block-hierarchy home placement: block b's candidates live on stage
 * homeStage(b), with blocks split evenly across stages.
 */
class HomePlacement
{
  public:
    /**
     * @param space the search space being placed
     * @param numStages pipeline depth D
     */
    HomePlacement(const SearchSpace &space, int numStages);

    int numStages() const { return _partition.numStages(); }

    /** Home stage of choice block @p block. */
    int homeStage(int block) const { return _partition.stageOf(block); }

    /** Blocks homed on @p stage as an inclusive range. */
    int firstBlock(int stage) const
    {
        return _partition.firstBlock(stage);
    }
    int lastBlock(int stage) const
    {
        return _partition.lastBlock(stage);
    }

    /** Total candidate parameter bytes homed on @p stage. */
    std::uint64_t stageParamBytes(int stage) const;

    /** The even partition underlying the placement. */
    const SubnetPartition &partition() const { return _partition; }

  private:
    const SearchSpace &_space;
    SubnetPartition _partition;
    std::vector<std::uint64_t> _stageBytes;
};

} // namespace naspipe

#endif // NASPIPE_PARTITION_PLACEMENT_H
