#include "partition/partitioner.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace naspipe {

SubnetPartition::SubnetPartition(std::vector<int> firstBlock,
                                 int numBlocks)
    : _firstBlock(std::move(firstBlock)), _numBlocks(numBlocks)
{
    NASPIPE_ASSERT(!_firstBlock.empty(), "partition needs >= 1 stage");
    NASPIPE_ASSERT(_firstBlock.front() == 0,
                   "stage 0 must start at block 0");
    for (std::size_t s = 1; s < _firstBlock.size(); s++) {
        NASPIPE_ASSERT(_firstBlock[s] >= _firstBlock[s - 1],
                       "stage starts must be non-decreasing");
        NASPIPE_ASSERT(_firstBlock[s] <= numBlocks,
                       "stage start beyond block count");
    }
}

int
SubnetPartition::firstBlock(int stage) const
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    return _firstBlock[static_cast<std::size_t>(stage)];
}

int
SubnetPartition::lastBlock(int stage) const
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    int next = (stage + 1 < numStages())
                   ? _firstBlock[static_cast<std::size_t>(stage) + 1]
                   : _numBlocks;
    return next - 1;
}

int
SubnetPartition::blockCount(int stage) const
{
    return lastBlock(stage) - firstBlock(stage) + 1;
}

int
SubnetPartition::stageOf(int block) const
{
    NASPIPE_ASSERT(block >= 0 && block < _numBlocks,
                   "block ", block, " out of range");
    // Find the last stage whose first block is <= block.
    auto it = std::upper_bound(_firstBlock.begin(), _firstBlock.end(),
                               block);
    return static_cast<int>(it - _firstBlock.begin()) - 1;
}

double
PartitionCost::imbalance() const
{
    if (totalMs <= 0.0 || stageMs.empty())
        return 1.0;
    double mean = totalMs / static_cast<double>(stageMs.size());
    return mean > 0.0 ? maxMs / mean : 1.0;
}

Partitioner::Partitioner(const SearchSpace &space, int batch)
    : _space(space), _batch(batch)
{
    NASPIPE_ASSERT(batch > 0, "batch must be positive");
}

std::vector<double>
Partitioner::blockCosts(const Subnet &subnet) const
{
    std::vector<double> costs(
        static_cast<std::size_t>(subnet.size()));
    for (int b = 0; b < subnet.size(); b++) {
        const LayerSpec &spec = _space.spec(b, subnet.choice(b));
        costs[static_cast<std::size_t>(b)] =
            spec.fwdMsAt(_batch, _space.referenceBatch()) +
            spec.bwdMsAt(_batch, _space.referenceBatch());
    }
    return costs;
}

SubnetPartition
Partitioner::balanced(const Subnet &subnet, int numStages) const
{
    NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
    const int m = subnet.size();
    const int d = numStages;
    std::vector<double> costs = blockCosts(subnet);

    // Prefix sums for O(1) range cost.
    std::vector<double> prefix(static_cast<std::size_t>(m) + 1, 0.0);
    for (int b = 0; b < m; b++) {
        prefix[static_cast<std::size_t>(b) + 1] =
            prefix[static_cast<std::size_t>(b)] +
            costs[static_cast<std::size_t>(b)];
    }
    auto rangeCost = [&](int lo, int hi) {  // blocks [lo, hi)
        return prefix[static_cast<std::size_t>(hi)] -
               prefix[static_cast<std::size_t>(lo)];
    };

    const double inf = std::numeric_limits<double>::infinity();
    // best[s][b]: minimal bottleneck splitting blocks [0, b) into
    // s+1 stages; cut[s][b]: first block of the last stage.
    std::vector<std::vector<double>> best(
        static_cast<std::size_t>(d),
        std::vector<double>(static_cast<std::size_t>(m) + 1, inf));
    std::vector<std::vector<int>> cut(
        static_cast<std::size_t>(d),
        std::vector<int>(static_cast<std::size_t>(m) + 1, 0));

    for (int b = 0; b <= m; b++)
        best[0][static_cast<std::size_t>(b)] = rangeCost(0, b);
    for (int s = 1; s < d; s++) {
        for (int b = 0; b <= m; b++) {
            for (int k = 0; k <= b; k++) {
                double candidate = std::max(
                    best[static_cast<std::size_t>(s) - 1]
                        [static_cast<std::size_t>(k)],
                    rangeCost(k, b));
                // Strict improvement keeps the earliest cut, which
                // makes the DP result unique and deterministic.
                if (candidate <
                    best[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(b)]) {
                    best[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(b)] = candidate;
                    cut[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(b)] = k;
                }
            }
        }
    }

    // Reconstruct stage starts from the cut table.
    std::vector<int> firstBlock(static_cast<std::size_t>(d), 0);
    int b = m;
    for (int s = d - 1; s >= 1; s--) {
        int k = cut[static_cast<std::size_t>(s)]
                   [static_cast<std::size_t>(b)];
        firstBlock[static_cast<std::size_t>(s)] = k;
        b = k;
    }
    return SubnetPartition(std::move(firstBlock), m);
}

SubnetPartition
Partitioner::even(int numBlocks, int numStages)
{
    NASPIPE_ASSERT(numBlocks >= 1 && numStages >= 1,
                   "even partition needs positive sizes");
    std::vector<int> firstBlock(static_cast<std::size_t>(numStages));
    for (int s = 0; s < numStages; s++) {
        firstBlock[static_cast<std::size_t>(s)] = static_cast<int>(
            (static_cast<long long>(numBlocks) * s) / numStages);
    }
    return SubnetPartition(std::move(firstBlock), numBlocks);
}

PartitionCost
Partitioner::cost(const Subnet &subnet,
                  const SubnetPartition &partition) const
{
    std::vector<double> costs = blockCosts(subnet);
    PartitionCost out;
    out.stageMs.resize(
        static_cast<std::size_t>(partition.numStages()), 0.0);
    for (int b = 0; b < subnet.size(); b++) {
        out.stageMs[static_cast<std::size_t>(partition.stageOf(b))] +=
            costs[static_cast<std::size_t>(b)];
    }
    for (double ms : out.stageMs) {
        out.maxMs = std::max(out.maxMs, ms);
        out.totalMs += ms;
    }
    return out;
}

} // namespace naspipe
