#include "partition/placement.h"

#include "common/logging.h"

namespace naspipe {

HomePlacement::HomePlacement(const SearchSpace &space, int numStages)
    : _space(space),
      _partition(Partitioner::even(space.numBlocks(), numStages))
{
    _stageBytes.assign(static_cast<std::size_t>(numStages), 0);
    for (int b = 0; b < space.numBlocks(); b++) {
        std::uint64_t blockBytes = 0;
        for (int c = 0; c < space.choicesPerBlock(); c++)
            blockBytes += space.spec(b, c).paramBytes;
        _stageBytes[static_cast<std::size_t>(homeStage(b))] +=
            blockBytes;
    }
}

std::uint64_t
HomePlacement::stageParamBytes(int stage) const
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages(),
                   "stage ", stage, " out of range");
    return _stageBytes[static_cast<std::size_t>(stage)];
}

} // namespace naspipe
