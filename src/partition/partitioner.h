/**
 * @file
 * Subnet stage partitioning.
 *
 * NASPipe splits each subnet's sequential layer list into D
 * contiguous partitions "with each partition having roughly the same
 * execution time, according to pre-profiled statistics of each layer"
 * (§3.2). This module computes that balanced min-max partition with
 * dynamic programming and also provides the *static even* partition
 * baseline systems use (operators fixed to stages regardless of which
 * subnet runs), whose imbalance is a key source of their slowdown
 * (§5.1, Exec. column of Table 2).
 */

#ifndef NASPIPE_PARTITION_PARTITIONER_H
#define NASPIPE_PARTITION_PARTITIONER_H

#include <vector>

#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {

/**
 * A D-partition of a subnet's m blocks into contiguous stage ranges.
 */
class SubnetPartition
{
  public:
    SubnetPartition() = default;

    /**
     * @param firstBlock for each stage, the first block it owns;
     *        stage s owns [firstBlock[s], firstBlock[s+1]) and the
     *        last stage owns through @p numBlocks - 1.
     * @param numBlocks total number of blocks (m)
     */
    SubnetPartition(std::vector<int> firstBlock, int numBlocks);

    /** Number of stages (D). */
    int numStages() const
    {
        return static_cast<int>(_firstBlock.size());
    }

    int numBlocks() const { return _numBlocks; }

    /** First block owned by @p stage. */
    int firstBlock(int stage) const;

    /** Last block owned by @p stage (inclusive). */
    int lastBlock(int stage) const;

    /** Number of blocks owned by @p stage (may be zero). */
    int blockCount(int stage) const;

    /** Stage that owns @p block. */
    int stageOf(int block) const;

    /** Whether @p stage owns at least one block. */
    bool stageNonEmpty(int stage) const { return blockCount(stage) > 0; }

    bool operator==(const SubnetPartition &) const = default;

  private:
    std::vector<int> _firstBlock;
    int _numBlocks = 0;
};

/** Per-stage cost report of a partition. */
struct PartitionCost {
    std::vector<double> stageMs;  ///< fwd+bwd ms per stage
    double maxMs = 0.0;           ///< bottleneck stage cost
    double totalMs = 0.0;         ///< sum over stages
    /** Imbalance: maxMs / (totalMs / D); 1.0 means perfectly even. */
    double imbalance() const;
};

/**
 * Computes partitions and their costs for subnets of one space.
 */
class Partitioner
{
  public:
    /**
     * @param space the search space supplying layer profiles
     * @param batch batch size the costs are evaluated at
     */
    Partitioner(const SearchSpace &space, int batch);

    /** Per-block fwd+bwd cost of @p subnet at this batch size. */
    std::vector<double> blockCosts(const Subnet &subnet) const;

    /**
     * Balanced min-max contiguous D-partition of @p subnet (the
     * per-subnet partition NASPipe executes under).
     */
    SubnetPartition balanced(const Subnet &subnet, int numStages) const;

    /**
     * Static even partition: blocks split into D equal-count ranges
     * independent of the subnet (what static-placement baselines use).
     */
    static SubnetPartition even(int numBlocks, int numStages);

    /** Evaluate @p partition for @p subnet. */
    PartitionCost cost(const Subnet &subnet,
                       const SubnetPartition &partition) const;

    int batch() const { return _batch; }

  private:
    const SearchSpace &_space;
    int _batch;
};

} // namespace naspipe

#endif // NASPIPE_PARTITION_PARTITIONER_H
