#include "partition/mirror.h"

#include "common/logging.h"

namespace naspipe {

MirrorPlanner::MirrorPlanner(const SearchSpace &space,
                             const HomePlacement &placement)
    : _space(space), _placement(placement)
{
}

std::vector<MirrorEntry>
MirrorPlanner::plan(const Subnet &subnet,
                    const SubnetPartition &partition) const
{
    NASPIPE_ASSERT(partition.numBlocks() == subnet.size(),
                   "partition does not match subnet");
    std::vector<MirrorEntry> entries;
    for (int b = 0; b < subnet.size(); b++) {
        int exec = partition.stageOf(b);
        int home = _placement.homeStage(b);
        if (exec == home)
            continue;
        std::uint64_t bytes =
            _space.spec(b, subnet.choice(b)).paramBytes;
        if (bytes == 0)
            continue;  // skip candidates have no state to mirror
        MirrorEntry entry;
        entry.layer = subnet.layer(b);
        entry.homeStage = home;
        entry.execStage = exec;
        entry.paramBytes = bytes;
        entries.push_back(entry);
    }
    return entries;
}

std::uint64_t
MirrorPlanner::activate(const std::vector<MirrorEntry> &entries)
{
    std::uint64_t newBytes = 0;
    for (const auto &entry : entries) {
        auto key = std::make_pair(entry.layer.key(), entry.execStage);
        if (_mirrors.insert(key).second) {
            _stats.mirrorsCreated++;
            newBytes += entry.paramBytes;
        } else {
            _stats.mirrorsReused++;
        }
    }
    return newBytes;
}

std::uint64_t
MirrorPlanner::recordSyncPush(const std::vector<MirrorEntry> &entries)
{
    std::uint64_t bytes = 0;
    for (const auto &entry : entries) {
        _stats.syncPushes++;
        _stats.syncBytes += entry.paramBytes;
        bytes += entry.paramBytes;
    }
    return bytes;
}

bool
MirrorPlanner::isMirrored(const LayerId &layer, int stage) const
{
    return _mirrors.count(std::make_pair(layer.key(), stage)) > 0;
}

void
MirrorPlanner::reset()
{
    _mirrors.clear();
    _stats = MirrorStats();
}

} // namespace naspipe
