/**
 * @file
 * Layer mirroring planner.
 *
 * Because every subnet runs under its own balanced partition, a layer
 * often executes on a stage other than its home stage. Instead of
 * migrating the operator on demand (which §2.3 rejects as too costly
 * at second-level subnet switching frequency), NASPipe *mirrors* the
 * layer to the executing stage and, after a parameter update, pushes
 * the new parameters to all mirrors (§4.2). This module decides which
 * layers of a subnet are mirrored, tracks the live mirror set, and
 * accounts for the push-synchronization traffic.
 */

#ifndef NASPIPE_PARTITION_MIRROR_H
#define NASPIPE_PARTITION_MIRROR_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "partition/placement.h"
#include "partition/partitioner.h"
#include "supernet/subnet.h"

namespace naspipe {

/** One mirrored layer of a subnet execution. */
struct MirrorEntry {
    LayerId layer;
    int homeStage = 0;   ///< stage whose pinned CPU storage owns it
    int execStage = 0;   ///< stage the current partition executes on
    std::uint64_t paramBytes = 0;
};

/** Aggregate mirroring statistics for a run. */
struct MirrorStats {
    std::uint64_t mirrorsCreated = 0;   ///< add_module() calls
    std::uint64_t mirrorsReused = 0;    ///< layer already mirrored
    std::uint64_t syncPushes = 0;       ///< post-update pushes
    std::uint64_t syncBytes = 0;        ///< bytes pushed
};

/**
 * Plans and tracks layer mirrors across the pipeline.
 */
class MirrorPlanner
{
  public:
    /**
     * @param space the search space
     * @param placement home placement of the supernet
     */
    MirrorPlanner(const SearchSpace &space,
                  const HomePlacement &placement);

    /**
     * Layers of @p subnet that must be mirrored when executing under
     * @p partition (balanced stage differs from home stage).
     */
    std::vector<MirrorEntry> plan(const Subnet &subnet,
                                  const SubnetPartition &partition) const;

    /**
     * Register the mirrors of a subnet execution; returns the bytes
     * of *new* mirror state that must be materialized (reused mirrors
     * are free — the elimination §2.3 credits mirroring for).
     */
    std::uint64_t activate(const std::vector<MirrorEntry> &entries);

    /**
     * Record the post-update push for a subnet's mirrored layers;
     * returns the bytes that must travel between stages.
     */
    std::uint64_t recordSyncPush(const std::vector<MirrorEntry> &entries);

    /** Whether @p layer currently has a mirror on @p stage. */
    bool isMirrored(const LayerId &layer, int stage) const;

    /** Number of live (layer, stage) mirror pairs. */
    std::size_t liveMirrors() const { return _mirrors.size(); }

    const MirrorStats &stats() const { return _stats; }

    /** Drop all live mirrors and reset statistics. */
    void reset();

  private:
    const SearchSpace &_space;
    const HomePlacement &_placement;
    std::set<std::pair<std::uint64_t, int>> _mirrors;
    MirrorStats _stats;
};

} // namespace naspipe

#endif // NASPIPE_PARTITION_MIRROR_H
