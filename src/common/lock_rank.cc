#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace naspipe {

const char *
lockRankName(LockRank rank)
{
    switch (rank) {
    case LockRank::ServeClient:
        return "serve.client";
    case LockRank::ServePoolIncident:
        return "serve.pool_incident";
    case LockRank::ExecIncident:
        return "exec.incident";
    case LockRank::FaultWatchdog:
        return "fault.watchdog";
    case LockRank::ExecQueue:
        return "exec.queue";
    case LockRank::ExecWorkerSignal:
        return "exec.worker_signal";
    case LockRank::ExecGateTable:
        return "exec.gate_table";
    case LockRank::ExecGateWait:
        return "exec.gate_wait";
    case LockRank::TrainContext:
        return "train.context";
    case LockRank::TrainAccessLog:
        return "train.access_log";
    case LockRank::VerifyOracle:
        return "verify.oracle";
    }
    return "unknown";
}

namespace lockdebug {

namespace {

void
defaultHandler(const std::string &message)
{
    std::fprintf(stderr, "naspipe lock witness: %s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
}

std::atomic<ViolationHandler> gHandler{&defaultHandler};

} // namespace

ViolationHandler
setViolationHandler(ViolationHandler handler)
{
    if (handler == nullptr)
        handler = &defaultHandler;
    return gHandler.exchange(handler);
}

#if NASPIPE_LOCK_WITNESS_ENABLED

namespace {

struct HeldLock {
    const void *mutex;
    LockRank rank;
};

// Fixed capacity keeps the hot path allocation-free; eleven ranks
// exist, so a thread can never legally hold more than eleven locks.
constexpr int kMaxHeld = 16;

struct HeldStack {
    HeldLock entries[kMaxHeld];
    int size = 0;
};

thread_local HeldStack tHeld;

std::string
describeViolation(LockRank incoming, const HeldStack &held)
{
    std::ostringstream os;
    os << "rank-order violation: acquiring " << lockRankName(incoming)
       << " (rank " << static_cast<int>(incoming) << ")";
    // The newest offending lock is the diagnosis; the full stack is
    // the context.
    for (int i = held.size - 1; i >= 0; --i) {
        if (static_cast<int>(held.entries[i].rank) >=
            static_cast<int>(incoming)) {
            os << " while holding " << lockRankName(held.entries[i].rank)
               << " (rank " << static_cast<int>(held.entries[i].rank)
               << ")";
            break;
        }
    }
    os << "; held stack outermost-first: [";
    for (int i = 0; i < held.size; ++i) {
        if (i > 0)
            os << ", ";
        os << lockRankName(held.entries[i].rank);
    }
    os << "]";
    return os.str();
}

} // namespace

void
noteAcquire(const void *mutex, LockRank rank)
{
    HeldStack &held = tHeld;
    for (int i = 0; i < held.size; ++i) {
        if (static_cast<int>(held.entries[i].rank) >=
            static_cast<int>(rank)) {
            gHandler.load()(describeViolation(rank, held));
            // A non-aborting (test) handler returns; keep the stack
            // consistent with the acquisition that proceeds anyway.
            break;
        }
    }
    if (held.size < kMaxHeld) {
        held.entries[held.size].mutex = mutex;
        held.entries[held.size].rank = rank;
        ++held.size;
    }
}

void
noteRelease(const void *mutex)
{
    HeldStack &held = tHeld;
    // Locks are almost always released in LIFO order; scan from the
    // top so out-of-order unique_lock releases still unwind cleanly.
    for (int i = held.size - 1; i >= 0; --i) {
        if (held.entries[i].mutex == mutex) {
            for (int j = i; j + 1 < held.size; ++j)
                held.entries[j] = held.entries[j + 1];
            --held.size;
            return;
        }
    }
}

std::vector<LockRank>
heldRanks()
{
    const HeldStack &held = tHeld;
    std::vector<LockRank> ranks;
    ranks.reserve(static_cast<size_t>(held.size));
    for (int i = 0; i < held.size; ++i)
        ranks.push_back(held.entries[i].rank);
    return ranks;
}

#endif // NASPIPE_LOCK_WITNESS_ENABLED

} // namespace lockdebug

} // namespace naspipe
