#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace naspipe {

namespace {

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : _state)
        word = sm.next();
    // An all-zero state would be absorbing; SplitMix64 cannot produce
    // four consecutive zeros, but guard anyway for safety.
    if (_state[0] == 0 && _state[1] == 0 && _state[2] == 0 &&
        _state[3] == 0) {
        _state[0] = 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl64(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl64(_state[3], 45);

    return result;
}

std::uint64_t
Xoshiro256StarStar::nextBelow(std::uint64_t bound)
{
    NASPIPE_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Lemire-style rejection: draw until the value falls inside the
    // largest multiple of bound, guaranteeing a uniform result.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Xoshiro256StarStar::nextInRange(std::int64_t lo, std::int64_t hi)
{
    NASPIPE_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Xoshiro256StarStar::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Xoshiro256StarStar::nextFloat()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

bool
Xoshiro256StarStar::nextBool(double p)
{
    return nextDouble() < p;
}

double
Xoshiro256StarStar::nextGaussian()
{
    if (_haveSpare) {
        _haveSpare = false;
        return _spare;
    }
    // Polar Box-Muller with a fixed draw order: u is always drawn
    // before v so the stream consumption is deterministic.
    for (;;) {
        double u = 2.0 * nextDouble() - 1.0;
        double v = 2.0 * nextDouble() - 1.0;
        double s = u * u + v * v;
        if (s > 0.0 && s < 1.0) {
            double scale = std::sqrt(-2.0 * std::log(s) / s);
            _spare = v * scale;
            _haveSpare = true;
            return u * scale;
        }
    }
}

void
Xoshiro256StarStar::jump()
{
    static const std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL,
    };

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
        for (int b = 0; b < 64; b++) {
            if (word & (1ULL << b)) {
                s0 ^= _state[0];
                s1 ^= _state[1];
                s2 ^= _state[2];
                s3 ^= _state[3];
            }
            next();
        }
    }
    _state = {s0, s1, s2, s3};
}

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

inline void
philoxRound(std::array<std::uint32_t, 4> &ctr, std::uint32_t k0,
            std::uint32_t k1)
{
    std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * ctr[0];
    std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * ctr[2];
    std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    ctr = {hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0};
}

} // namespace

Philox4x32::Block
Philox4x32::block(std::uint64_t counter) const
{
    Block ctr = {
        static_cast<std::uint32_t>(counter),
        static_cast<std::uint32_t>(counter >> 32),
        0u,
        0u,
    };
    std::uint32_t k0 = static_cast<std::uint32_t>(_key);
    std::uint32_t k1 = static_cast<std::uint32_t>(_key >> 32);
    for (int round = 0; round < 10; round++) {
        philoxRound(ctr, k0, k1);
        k0 += kPhiloxW0;
        k1 += kPhiloxW1;
    }
    return ctr;
}

std::uint32_t
Philox4x32::word(std::uint64_t counter) const
{
    return block(counter)[0];
}

float
Philox4x32::uniformFloat(std::uint64_t counter, unsigned lane) const
{
    NASPIPE_ASSERT(lane < 4, "Philox lane out of range");
    return static_cast<float>(block(counter)[lane] >> 8) * 0x1.0p-24f;
}

std::uint64_t
deriveSeed(std::uint64_t parent, std::uint64_t tag)
{
    SplitMix64 sm(parent ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f491ULL));
    // Burn one draw so tag=0 does not collapse to the parent stream.
    sm.next();
    return sm.next();
}

std::uint64_t
deriveSeed(std::uint64_t parent, const char *tag)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char *p = tag; *p; ++p) {
        hash ^= static_cast<unsigned char>(*p);
        hash *= 0x100000001b3ULL;
    }
    return deriveSeed(parent, hash);
}

std::uint64_t
hashBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; i++) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace naspipe
