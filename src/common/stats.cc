#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace naspipe {

void
Summary::add(double sample)
{
    _count++;
    _sum += sample;
    _min = std::min(_min, sample);
    _max = std::max(_max, sample);
}

double
Summary::min() const
{
    return _count ? _min : 0.0;
}

double
Summary::max() const
{
    return _count ? _max : 0.0;
}

void
Summary::merge(const Summary &other)
{
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
Summary::reset()
{
    *this = Summary();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _width((hi - lo) / static_cast<double>(buckets)),
      _counts(buckets, 0)
{
    NASPIPE_ASSERT(hi > lo, "histogram range must be non-empty");
    NASPIPE_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double sample)
{
    _total++;
    if (sample < _lo) {
        _underflow++;
        return;
    }
    auto idx = static_cast<std::size_t>((sample - _lo) / _width);
    if (idx >= _counts.size()) {
        _overflow++;
        return;
    }
    _counts[idx]++;
}

std::uint64_t
Histogram::bucketCount(std::size_t idx) const
{
    NASPIPE_ASSERT(idx < _counts.size(), "bucket index out of range");
    return _counts[idx];
}

double
Histogram::quantile(double q) const
{
    NASPIPE_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (_total == 0)
        return _lo;
    const double target = q * static_cast<double>(_total);
    double seen = static_cast<double>(_underflow);
    if (seen >= target)
        return _lo;
    for (std::size_t i = 0; i < _counts.size(); i++) {
        seen += static_cast<double>(_counts[i]);
        if (seen >= target) {
            // Report the upper edge of the satisfying bucket.
            return _lo + _width * static_cast<double>(i + 1);
        }
    }
    return _lo + _width * static_cast<double>(_counts.size());
}

void
UtilizationTracker::addBusy(double start, double end)
{
    NASPIPE_ASSERT(end >= start, "busy interval must not be negative");
    _busy += end - start;
    _first = std::min(_first, start);
    _last = std::max(_last, end);
    _intervals++;
}

double
UtilizationTracker::firstStart() const
{
    return _intervals ? _first : 0.0;
}

double
UtilizationTracker::lastEnd() const
{
    return _intervals ? _last : 0.0;
}

double
UtilizationTracker::utilization(double windowEnd) const
{
    if (windowEnd <= 0.0)
        return 0.0;
    return std::min(1.0, _busy / windowEnd);
}

double
UtilizationTracker::bubbleRatio() const
{
    if (!_intervals)
        return 0.0;
    const double window = _last - _first;
    if (window <= 0.0)
        return 0.0;
    return std::max(0.0, 1.0 - _busy / window);
}

void
UtilizationTracker::reset()
{
    *this = UtilizationTracker();
}

double
RatioStat::rate() const
{
    const std::uint64_t t = total();
    return t ? static_cast<double>(_hits) / static_cast<double>(t) : 0.0;
}

void
RatioStat::reset()
{
    _hits = 0;
    _misses = 0;
}

} // namespace naspipe
