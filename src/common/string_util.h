/**
 * @file
 * Small string formatting helpers shared by the table/CSV writers and
 * the benchmark harnesses.
 */

#ifndef NASPIPE_COMMON_STRING_UTIL_H
#define NASPIPE_COMMON_STRING_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace naspipe {

/** Format a double with @p digits digits after the decimal point. */
std::string formatFixed(double value, int digits);

/** Format as a percentage ("94.3%") with @p digits fraction digits. */
std::string formatPercent(double fraction, int digits = 1);

/** Format a byte count with a binary-unit suffix ("57.8G", "474M"). */
std::string formatBytes(std::uint64_t bytes);

/** Format a multiplier factor ("7.8x"). */
std::string formatFactor(double factor, int digits = 1);

/** Split @p text on @p sep (no empty-trailing suppression). */
std::vector<std::string> splitString(const std::string &text, char sep);

/** Strip leading/trailing whitespace. */
std::string trimString(const std::string &text);

/** Left-pad @p text with spaces to @p width. */
std::string padLeft(const std::string &text, std::size_t width);

/** Right-pad @p text with spaces to @p width. */
std::string padRight(const std::string &text, std::size_t width);

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Join the items with @p sep between them. */
std::string joinStrings(const std::vector<std::string> &items,
                        const std::string &sep);

} // namespace naspipe

#endif // NASPIPE_COMMON_STRING_UTIL_H
