/**
 * @file
 * Status and error reporting for the naspipe library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in naspipe itself), fatal() is for unrecoverable
 * user errors (bad configuration), warn()/inform() report conditions
 * the user should know about without stopping the run.
 */

#ifndef NASPIPE_COMMON_LOGGING_H
#define NASPIPE_COMMON_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace naspipe {

/** Severity of a log record, ordered from most to least severe. */
enum class LogLevel {
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/** Render a log level as the tag printed in front of a message. */
const char *logLevelName(LogLevel level);

/**
 * Global log verbosity control.
 *
 * Records with a level numerically greater than the threshold are
 * suppressed. Defaults to LogLevel::Inform (debug records hidden).
 */
class LogConfig
{
  public:
    /** Access the process-wide configuration. */
    static LogConfig &instance();

    /** Current verbosity threshold. */
    LogLevel threshold() const { return _threshold; }

    /** Set the verbosity threshold. */
    void threshold(LogLevel level) { _threshold = level; }

    /** Whether records at @p level should be emitted. */
    bool enabled(LogLevel level) const { return level <= _threshold; }

    /**
     * Redirect output into an internal buffer (for tests).
     * @param capture true to buffer, false to write to stderr.
     */
    void capture(bool capture);

    /** Retrieve and clear the captured buffer. */
    std::string takeCaptured();

    /** Emit one formatted record (internal use by the log functions). */
    void emit(LogLevel level, const std::string &msg);

  private:
    LogConfig() = default;

    LogLevel _threshold = LogLevel::Inform;
    bool _capturing = false;
    std::string _buffer;
};

namespace detail {

/** Fold a parameter pack into one string using operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicExit(const std::string &msg);
[[noreturn]] void fatalExit(const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in naspipe itself.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicExit(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    auto &cfg = LogConfig::instance();
    if (cfg.enabled(LogLevel::Warn))
        cfg.emit(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Emit a normal informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    auto &cfg = LogConfig::instance();
    if (cfg.enabled(LogLevel::Inform)) {
        cfg.emit(LogLevel::Inform,
                 detail::concat(std::forward<Args>(args)...));
    }
}

/** Emit a high-volume debugging message (suppressed by default). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    auto &cfg = LogConfig::instance();
    if (cfg.enabled(LogLevel::Debug)) {
        cfg.emit(LogLevel::Debug,
                 detail::concat(std::forward<Args>(args)...));
    }
}

/**
 * Assert a runtime invariant; panics with the stringified condition
 * and an optional explanatory message when violated. Unlike assert()
 * this is always enabled, which a deterministic simulator can afford.
 */
#define NASPIPE_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::naspipe::panic("assertion failed: ", #cond, " ",             \
                             ::naspipe::detail::concat(__VA_ARGS__),       \
                             " [", __FILE__, ":", __LINE__, "]");          \
        }                                                                  \
    } while (0)

} // namespace naspipe

#endif // NASPIPE_COMMON_LOGGING_H
