/**
 * @file
 * Central lock registry: every mutex in the concurrent subsystems
 * (src/exec, src/serve, src/fault, src/train, src/verify, src/obs)
 * declares a named rank from ONE documented partial order, and the
 * wrappers below enforce that order — statically via the
 * concurrency-discipline analyzer (tools/analysis/lock_pass.*, run
 * by the `lint` target) and dynamically via the debug lock-order
 * witness compiled into every Debug/TSan build.
 *
 * The discipline: a thread may only acquire a mutex whose rank is
 * STRICTLY GREATER than every rank it already holds. Rank values
 * ascend from the outermost control plane (client-facing service
 * state) to the innermost leaf locks reachable from commit hooks
 * (the CspOracle). Any acquisition order consistent with the ranks
 * is cycle-free, so a rank violation is a potential deadlock even
 * when the interleaving that would wedge has never been observed.
 *
 * Declaring a mutex:
 *
 *     mutable RankedMutex _queueMu{LockRank::ExecQueue};
 *
 * The analyzer parses exactly this form (wrapper type, member name,
 * LockRank:: rank) to build the whole-repo lock-order graph; member
 * names must be unique per rank across the repo so an acquisition
 * site (`std::lock_guard<RankedMutex> lock(_queueMu)`) resolves to
 * one rank without type information.
 *
 * Condition variables pair with the wrappers via
 * std::condition_variable_any (plain std::condition_variable only
 * accepts std::mutex and is flagged by the `raw-mutex` lint rule).
 * A cv wait unlocks through RankedMutex::unlock(), so the witness's
 * held-lock stack stays exact across the sleep and the reacquire is
 * re-checked on wake.
 *
 * Witness cost model: in Release (NDEBUG, no NASPIPE_LOCK_WITNESS)
 * every wrapper method compiles to the underlying std::mutex /
 * std::shared_mutex call plus one dead int member — BENCH_9.json
 * records that witness-off throughput is unchanged vs BENCH_8.json.
 */

#ifndef NASPIPE_COMMON_LOCK_RANK_H
#define NASPIPE_COMMON_LOCK_RANK_H

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#if !defined(NDEBUG) || defined(NASPIPE_LOCK_WITNESS)
#define NASPIPE_LOCK_WITNESS_ENABLED 1
#else
#define NASPIPE_LOCK_WITNESS_ENABLED 0
#endif

namespace naspipe {

/**
 * The documented partial order, outermost (lowest value) first.
 * Values are spaced so a future subsystem can slot between two
 * existing ranks without renumbering; the concrete integers are
 * meaningful only through their relative order.
 *
 * Rationale for the order: control-plane locks (service client
 * state, incident latches, watchdog) sit above the data plane they
 * coordinate; within the data plane, the pipeline hand-off path
 * (queue → worker signal → commit gate) precedes the training-state
 * locks it may reach while executing a task (numeric contexts →
 * access log), and the determinism-audit oracle is the innermost
 * because commit hooks invoke it from arbitrary lock-free contexts
 * and it must never need to acquire outward.
 */
enum class LockRank : int {
    /// serve::SearchService client-facing state (submit/cancel/
    /// status snapshots) — the outermost lock a caller thread takes.
    ServeClient = 10,
    /// serve::SharedStagePool watchdog-incident latch.
    ServePoolIncident = 20,
    /// ParallelRuntime::Impl watchdog-incident latch.
    ExecIncident = 30,
    /// fault::Watchdog polling-loop control (stop flag, incidents).
    FaultWatchdog = 40,
    /// BoundedTaskQueue buffer (stage inboxes, completion queues).
    ExecQueue = 50,
    /// StageWorker scheduling-loop signal (wakeup counter, stop).
    ExecWorkerSignal = 60,
    /// CommitGate layer table (shared: registration vs resolution).
    ExecGateTable = 70,
    /// CommitGate waitReadable() parking lot.
    ExecGateWait = 80,
    /// NumericExecutor in-flight context map (shared: begin/finish
    /// vs stage-worker lookups).
    TrainContext = 90,
    /// AccessLog record serialization (one lock around the order
    /// counter + history append).
    TrainAccessLog = 100,
    /// verify::CspOracle violation/chain state — innermost: commit
    /// hooks call into it and it never acquires outward.
    VerifyOracle = 110,
};

/** Stable display name of @p rank ("serve.client", "exec.queue"…). */
const char *lockRankName(LockRank rank);

/** Whether the runtime lock-order witness is compiled in. */
constexpr bool
lockWitnessEnabled()
{
    return NASPIPE_LOCK_WITNESS_ENABLED == 1;
}

namespace lockdebug {

/**
 * Witness violation sink. The default handler prints the offending
 * ranks plus this thread's held-lock stack to stderr and aborts —
 * a rank violation is a potential deadlock, never a data-dependent
 * condition, so dying loudly at the first occurrence is the point.
 * Tests install a capturing handler; passing nullptr restores the
 * default. Returns the previous handler.
 */
using ViolationHandler = void (*)(const std::string &message);
ViolationHandler setViolationHandler(ViolationHandler handler);

#if NASPIPE_LOCK_WITNESS_ENABLED
/** Order-check @p rank against this thread's held stack, then push
 *  it. Called by the wrappers on every (try_)lock/lock_shared. */
void noteAcquire(const void *mutex, LockRank rank);
/** Pop @p mutex from this thread's held stack. */
void noteRelease(const void *mutex);
/** This thread's held ranks, acquisition order (test hook). */
std::vector<LockRank> heldRanks();
#else
inline void
noteAcquire(const void *, LockRank)
{
}
inline void
noteRelease(const void *)
{
}
inline std::vector<LockRank>
heldRanks()
{
    return {};
}
#endif

} // namespace lockdebug

/**
 * std::mutex wrapper carrying a declared LockRank. Satisfies
 * Lockable, so std::lock_guard / std::unique_lock /
 * std::condition_variable_any work unchanged.
 */
class RankedMutex
{
  public:
    explicit RankedMutex(LockRank rank) : _rank(rank) {}

    RankedMutex(const RankedMutex &) = delete;
    RankedMutex &operator=(const RankedMutex &) = delete;

    void
    lock()
    {
        // Check before blocking: the witness reports the would-be
        // deadlock instead of entering it.
        lockdebug::noteAcquire(this, _rank);
        _mu.lock();
    }

    bool
    try_lock()
    {
        lockdebug::noteAcquire(this, _rank);
        if (_mu.try_lock())
            return true;
        lockdebug::noteRelease(this);
        return false;
    }

    void
    unlock()
    {
        _mu.unlock();
        lockdebug::noteRelease(this);
    }

    LockRank rank() const { return _rank; }
    const char *name() const { return lockRankName(_rank); }

  private:
    std::mutex _mu;
    const LockRank _rank;
};

/**
 * std::shared_mutex wrapper carrying a declared LockRank. Shared
 * (reader) acquisitions obey the same rank order as exclusive ones:
 * a reader blocked behind a writer participates in wait cycles all
 * the same.
 */
class RankedSharedMutex
{
  public:
    explicit RankedSharedMutex(LockRank rank) : _rank(rank) {}

    RankedSharedMutex(const RankedSharedMutex &) = delete;
    RankedSharedMutex &operator=(const RankedSharedMutex &) = delete;

    void
    lock()
    {
        lockdebug::noteAcquire(this, _rank);
        _mu.lock();
    }

    bool
    try_lock()
    {
        lockdebug::noteAcquire(this, _rank);
        if (_mu.try_lock())
            return true;
        lockdebug::noteRelease(this);
        return false;
    }

    void
    unlock()
    {
        _mu.unlock();
        lockdebug::noteRelease(this);
    }

    void
    lock_shared()
    {
        lockdebug::noteAcquire(this, _rank);
        _mu.lock_shared();
    }

    bool
    try_lock_shared()
    {
        lockdebug::noteAcquire(this, _rank);
        if (_mu.try_lock_shared())
            return true;
        lockdebug::noteRelease(this);
        return false;
    }

    void
    unlock_shared()
    {
        _mu.unlock_shared();
        lockdebug::noteRelease(this);
    }

    LockRank rank() const { return _rank; }
    const char *name() const { return lockRankName(_rank); }

  private:
    std::shared_mutex _mu;
    const LockRank _rank;
};

} // namespace naspipe

#endif // NASPIPE_COMMON_LOCK_RANK_H
