/**
 * @file
 * Minimal CSV writer so benchmark harnesses can dump machine-readable
 * series (e.g., the convergence curves of Figure 4) next to the
 * human-readable tables.
 */

#ifndef NASPIPE_COMMON_CSV_H
#define NASPIPE_COMMON_CSV_H

#include <string>
#include <vector>

namespace naspipe {

/** Accumulates rows and renders RFC-4180-style CSV text. */
class CsvWriter
{
  public:
    /** Create a writer with the given header row. */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(const std::vector<std::string> &cells);

    /** Number of data rows. */
    std::size_t rows() const { return _lines.size(); }

    /** Render the full document including the header. */
    std::string render() const;

    /** Write the document to @p path; returns false on I/O error. */
    bool writeFile(const std::string &path) const;

    /** Quote a cell if it contains separators, quotes or newlines. */
    static std::string escape(const std::string &cell);

  private:
    std::size_t _width;
    std::string _header;
    std::vector<std::string> _lines;
};

} // namespace naspipe

#endif // NASPIPE_COMMON_CSV_H
