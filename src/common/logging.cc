#include "common/logging.h"

#include <cstdio>
#include <stdexcept>

namespace naspipe {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

LogConfig &
LogConfig::instance()
{
    static LogConfig config;
    return config;
}

void
LogConfig::capture(bool capture)
{
    _capturing = capture;
    if (!capture)
        _buffer.clear();
}

std::string
LogConfig::takeCaptured()
{
    std::string out;
    out.swap(_buffer);
    return out;
}

void
LogConfig::emit(LogLevel level, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += logLevelName(level);
    line += ": ";
    line += msg;
    line += '\n';
    if (_capturing) {
        _buffer += line;
    } else {
        std::fputs(line.c_str(), stderr);
    }
}

namespace detail {

/**
 * Exceptions (instead of abort/exit) keep panic/fatal testable; the
 * library treats them as terminal, so nothing catches them in normal
 * operation and the process still dies with the message.
 */
void
panicExit(const std::string &msg)
{
    LogConfig::instance().emit(LogLevel::Panic, msg);
    throw std::logic_error("panic: " + msg);
}

void
fatalExit(const std::string &msg)
{
    LogConfig::instance().emit(LogLevel::Fatal, msg);
    throw std::runtime_error("fatal: " + msg);
}

} // namespace detail

} // namespace naspipe
