#include "common/csv.h"

#include <fstream>

#include "common/logging.h"

namespace naspipe {

namespace {

std::string
joinCells(const std::vector<std::string> &cells)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); i++) {
        if (i)
            line += ',';
        line += CsvWriter::escape(cells[i]);
    }
    return line;
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : _width(headers.size()), _header(joinCells(headers))
{
    NASPIPE_ASSERT(_width > 0, "csv needs at least one column");
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    NASPIPE_ASSERT(cells.size() == _width, "csv row width mismatch");
    _lines.push_back(joinCells(cells));
}

std::string
CsvWriter::render() const
{
    std::string out = _header + '\n';
    for (const std::string &line : _lines)
        out += line + '\n';
    return out;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs)
        return false;
    ofs << render();
    return static_cast<bool>(ofs);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needQuote = false;
    for (char c : cell) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needQuote = true;
            break;
        }
    }
    if (!needQuote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace naspipe
