/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * NASPipe's reproducibility guarantee (paper Definition 1) requires a
 * fully deterministic random source that behaves identically across
 * platforms and standard-library implementations, so nothing here uses
 * std::mt19937 or std::uniform_int_distribution (whose outputs are not
 * pinned down by the standard for all uses). Three generators are
 * provided:
 *
 *  - SplitMix64: seed expander, used to derive independent streams.
 *  - Xoshiro256StarStar: fast general-purpose stream generator.
 *  - Philox4x32: counter-based generator; random access by (key,
 *    counter), mirroring the counter-based RNGs used by CUDA and
 *    deterministic ML frameworks.
 */

#ifndef NASPIPE_COMMON_RNG_H
#define NASPIPE_COMMON_RNG_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace naspipe {

/** SplitMix64 seed expander (Steele, Lea and Flood). */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    /** Produce the next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t _state;
};

/**
 * xoshiro256** by Blackman and Vigna: the workhorse stream generator.
 * All naspipe components derive their streams from a user seed plus a
 * component-specific tag so that adding a consumer never perturbs the
 * draws seen by existing consumers.
 */
class Xoshiro256StarStar
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 1);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) via unbiased rejection. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1) with 53 bits of entropy. */
    double nextDouble();

    /** Uniform float in [0, 1) with 24 bits of entropy. */
    float nextFloat();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Standard-normal draw (deterministic polar Box-Muller with an
     * explicitly specified evaluation order).
     */
    double nextGaussian();

    /** Jump function: advance 2^128 steps to split parallel streams. */
    void jump();

    /** Expose state for checkpoint tests. */
    std::array<std::uint64_t, 4> state() const { return _state; }

  private:
    std::array<std::uint64_t, 4> _state;
    bool _haveSpare = false;
    double _spare = 0.0;
};

/**
 * Philox4x32-10 counter-based generator (Salmon et al., SC'11).
 *
 * Given the same key and counter the output block is identical on any
 * platform, which lets the numeric training engine draw "per (layer,
 * step)" randomness without threading generator state through the
 * scheduler — exactly the property deterministic GPU kernels rely on.
 */
class Philox4x32
{
  public:
    using Block = std::array<std::uint32_t, 4>;

    /** Construct with a 64-bit key. */
    explicit Philox4x32(std::uint64_t key) : _key(key) {}

    /** Generate the 128-bit block for @p counter. */
    Block block(std::uint64_t counter) const;

    /** First 32-bit word of the block for @p counter. */
    std::uint32_t word(std::uint64_t counter) const;

    /** Uniform float in [0,1) derived from (counter, lane). */
    float uniformFloat(std::uint64_t counter, unsigned lane = 0) const;

  private:
    std::uint64_t _key;
};

/**
 * Derive a child seed from a parent seed and a stream tag. Used to
 * give every component (sampler, data loader, init, jitter model) an
 * independent deterministic stream, mirroring how NASPipe fixes the
 * seeds of PyTorch, Python, and the DataLoader separately (§4.1).
 */
std::uint64_t deriveSeed(std::uint64_t parent, std::uint64_t tag);

/** Derive a seed from a string tag (FNV-1a hash of the tag). */
std::uint64_t deriveSeed(std::uint64_t parent, const char *tag);

/**
 * FNV-1a hash of an arbitrary byte range. Used as the payload
 * checksum in checkpoint file formats: cheap, dependency-free, and
 * identical on every platform (detection of corruption, not a MAC).
 */
std::uint64_t hashBytes(const void *data, std::size_t size,
                        std::uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace naspipe

#endif // NASPIPE_COMMON_RNG_H
