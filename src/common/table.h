/**
 * @file
 * Aligned text-table writer used by the benchmark harnesses to print
 * the paper's tables and figure series in a readable form.
 */

#ifndef NASPIPE_COMMON_TABLE_H
#define NASPIPE_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace naspipe {

/**
 * A simple column-aligned table. Columns are sized to their widest
 * cell; numeric-looking cells are right-aligned and text cells are
 * left-aligned.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Number of data rows so far. */
    std::size_t rows() const { return _rows.size(); }

    /** Render the table to a string. */
    std::string render() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

  private:
    struct Row {
        std::vector<std::string> cells;
        bool separatorBefore = false;
    };

    static bool looksNumeric(const std::string &cell);

    std::vector<std::string> _headers;
    std::vector<Row> _rows;
    bool _pendingSeparator = false;
};

} // namespace naspipe

#endif // NASPIPE_COMMON_TABLE_H
