/**
 * @file
 * Statistics primitives used across the simulator and the runtime.
 *
 * The evaluation section of the paper reports utilizations, bubble
 * ratios, hit rates and averaged execution times; these small classes
 * accumulate them in a deterministic, order-independent-where-possible
 * way.
 */

#ifndef NASPIPE_COMMON_STATS_H
#define NASPIPE_COMMON_STATS_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace naspipe {

/** Simple named monotonic counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    /** Add @p delta (default 1) to the counter. */
    void inc(std::uint64_t delta = 1) { _value += delta; }

    /** Current value. */
    std::uint64_t value() const { return _value; }

    /** Reset to zero. */
    void reset() { _value = 0; }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/** Running scalar summary: count/sum/min/max/mean. */
class Summary
{
  public:
    /** Record one sample. */
    void add(double sample);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const;
    double max() const;

    /** Merge another summary into this one. */
    void merge(const Summary &other);

    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-width histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bucket
     * @param hi upper edge of the last bucket
     * @param buckets number of equal-width buckets
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double sample);

    std::uint64_t bucketCount(std::size_t idx) const;
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::size_t buckets() const { return _counts.size(); }
    std::uint64_t total() const { return _total; }

    /** Sample value below which @p q of the mass lies (approximate). */
    double quantile(double q) const;

  private:
    double _lo;
    double _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/**
 * Busy/idle interval tracker for a resource (GPU ALU, copy engine).
 *
 * Intervals are accumulated as (start, end) pairs in simulated time;
 * utilization() is busy time over a window, and bubbleRatio() is the
 * paper's bubble metric: idle fraction of the active window between
 * the first task start and the last task end.
 */
class UtilizationTracker
{
  public:
    /** Record one busy interval [start, end). */
    void addBusy(double start, double end);

    /** Total busy time accumulated. */
    double busyTime() const { return _busy; }

    /** First recorded busy start (0 if none). */
    double firstStart() const;

    /** Last recorded busy end (0 if none). */
    double lastEnd() const;

    /** Busy fraction of [0, @p windowEnd]. */
    double utilization(double windowEnd) const;

    /** Idle fraction of [firstStart, lastEnd]. */
    double bubbleRatio() const;

    /** Number of recorded intervals. */
    std::uint64_t intervals() const { return _intervals; }

    void reset();

  private:
    double _busy = 0.0;
    double _first = std::numeric_limits<double>::infinity();
    double _last = 0.0;
    std::uint64_t _intervals = 0;
};

/** Hit/miss ratio accumulator (cache-hit rate of Table 2). */
class RatioStat
{
  public:
    void hit(std::uint64_t n = 1) { _hits += n; }
    void miss(std::uint64_t n = 1) { _misses += n; }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t total() const { return _hits + _misses; }

    /** Hits over total; 0 when empty. */
    double rate() const;

    void reset();

  private:
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace naspipe

#endif // NASPIPE_COMMON_STATS_H
