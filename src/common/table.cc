#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace naspipe {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    NASPIPE_ASSERT(!_headers.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    NASPIPE_ASSERT(cells.size() == _headers.size(),
                   "row width ", cells.size(), " != header width ",
                   _headers.size());
    Row row;
    row.cells = std::move(cells);
    row.separatorBefore = _pendingSeparator;
    _pendingSeparator = false;
    _rows.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    _pendingSeparator = true;
}

bool
TextTable::looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    bool digit = false;
    for (char c : cell) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c != '.' && c != '-' && c != '+' && c != '%' &&
                   c != 'x' && c != 'e' && c != 'E') {
            return false;
        }
    }
    return digit;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); c++)
        widths[c] = _headers[c].size();
    for (const Row &row : _rows) {
        for (std::size_t c = 0; c < row.cells.size(); c++)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto renderLine = [&](const std::vector<std::string> &cells,
                          bool alignValues) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); c++) {
            if (c)
                line += "  ";
            bool right = alignValues && looksNumeric(cells[c]);
            line += right ? padLeft(cells[c], widths[c])
                          : padRight(cells[c], widths[c]);
        }
        // Trim trailing spaces that padRight may leave on the line.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line;
    };

    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); c++)
        total += widths[c] + (c ? 2 : 0);

    std::ostringstream oss;
    oss << renderLine(_headers, false) << '\n';
    oss << std::string(total, '-') << '\n';
    for (const Row &row : _rows) {
        if (row.separatorBefore)
            oss << std::string(total, '-') << '\n';
        oss << renderLine(row.cells, true) << '\n';
    }
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace naspipe
