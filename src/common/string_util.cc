#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace naspipe {

std::string
formatFixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatPercent(double fraction, int digits)
{
    return formatFixed(fraction * 100.0, digits) + "%";
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *kUnits[] = {"B", "K", "M", "G", "T"};
    double value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
        value /= 1024.0;
        unit++;
    }
    // Whole numbers print without a fraction ("474M"), otherwise one
    // decimal ("57.8G"), matching the paper's table style.
    if (value == static_cast<double>(static_cast<std::uint64_t>(value)))
        return formatFixed(value, 0) + kUnits[unit];
    return formatFixed(value, 1) + kUnits[unit];
}

std::string
formatFactor(double factor, int digits)
{
    return formatFixed(factor, digits) + "x";
}

std::vector<std::string>
splitString(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    for (;;) {
        std::size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            out.push_back(text.substr(begin));
            return out;
        }
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
}

std::string
trimString(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        begin++;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        end--;
    }
    return text.substr(begin, end - begin);
}

std::string
padLeft(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

std::string
padRight(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
joinStrings(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); i++) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace naspipe
