/**
 * @file
 * Convergence tracking and search-quality evaluation.
 *
 * Figure 4 plots score (BLEU for NLP, top-5 accuracy for CV) against
 * wall-clock time; Table 3 reports the final supernet loss and the
 * "search accuracy" — the converged score of the best subnet found in
 * the trained supernet. This module turns the numeric executor's
 * loss trajectory into those series and performs the final search
 * over candidate subnets.
 */

#ifndef NASPIPE_TRAIN_CONVERGENCE_H
#define NASPIPE_TRAIN_CONVERGENCE_H

#include <cstdint>
#include <vector>

#include "train/numeric_executor.h"

namespace naspipe {

/** One point on a convergence curve. */
struct ConvergencePoint {
    double timeSec = 0.0;
    double loss = 0.0;
    double score = 0.0;
};

/**
 * Accumulates (time, loss) samples and renders smoothed score
 * curves.
 */
class ConvergenceTracker
{
  public:
    /**
     * @param scoreScale asymptotic score scale (e.g. ~24 "BLEU" for
     *        NLP spaces, ~0.9 "top-5" for CV spaces)
     * @param smoothWindow trailing window for loss smoothing
     */
    explicit ConvergenceTracker(double scoreScale,
                                std::size_t smoothWindow = 16);

    /** Record the loss of a subnet finishing at @p timeSec. */
    void addSample(double timeSec, double loss);

    /** Number of samples so far. */
    std::size_t samples() const { return _raw.size(); }

    /** Smoothed curve, downsampled to at most @p maxPoints. */
    std::vector<ConvergencePoint> curve(std::size_t maxPoints) const;

    /** Smoothed loss over the trailing window (supernet loss). */
    double finalLoss() const;

    /** Score corresponding to finalLoss(). */
    double finalScore() const;

    double scoreScale() const { return _scoreScale; }

    void clear();

  private:
    double _scoreScale;
    std::size_t _smoothWindow;
    std::vector<ConvergencePoint> _raw;
};

/**
 * Family default for the score scale when a run does not set one:
 * BLEU-like for NLP spaces, top-5-percent-like for CV spaces. Both
 * runtimes (simulated and threaded) share this so a run is scored
 * identically regardless of executor.
 */
double defaultScoreScale(SpaceFamily family);

/** Result of the post-training search over candidates. */
struct SearchResult {
    Subnet best;
    double bestEvalLoss = 0.0;
    double accuracy = 0.0;  ///< score of the best subnet
    std::vector<double> allEvalLosses;  ///< per candidate, same order
};

/**
 * Evaluate @p candidates against the trained store and return the
 * best (lowest held-out loss); ties break on the lower sequence ID so
 * the search itself is deterministic.
 */
SearchResult searchBestSubnet(NumericExecutor &executor,
                              const std::vector<Subnet> &candidates,
                              double scoreScale,
                              std::uint64_t evalSeed = 4242);

} // namespace naspipe

#endif // NASPIPE_TRAIN_CONVERGENCE_H
