/**
 * @file
 * Shared parameter store: the supernet's weights.
 *
 * One LayerParams per candidate layer, lazily initialized from a pure
 * function of (seed, block, choice), with per-layer version counters
 * and the global access log. All systems — CSP, BSP, ASP — train
 * against the same store; what differs is *when* each system reads
 * and writes, which is precisely what reproducibility is about.
 */

#ifndef NASPIPE_TRAIN_PARAM_STORE_H
#define NASPIPE_TRAIN_PARAM_STORE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "supernet/search_space.h"
#include "tensor/kernels/precision.h"
#include "tensor/layer_math.h"
#include "train/access_log.h"

namespace naspipe {

/**
 * The supernet's shared weights plus access bookkeeping.
 */
class ParameterStore
{
  public:
    /**
     * @param space the search space (defines the layer universe)
     * @param seed initialization seed (the "fixed random seeds" of
     *        §4.1; two stores with the same seed start bitwise equal)
     * @param precision storage precision: under Fp16Rne every
     *        materialized initial value is rounded through binary16,
     *        so fp16 runs start from bitwise-specified fp16 weights
     */
    ParameterStore(const SearchSpace &space, std::uint64_t seed,
                   kernels::PrecisionMode precision =
                       kernels::PrecisionMode::Fp32);

    const SearchSpace &space() const { return _space; }
    std::uint64_t seed() const { return _seed; }
    kernels::PrecisionMode precision() const { return _precision; }

    /**
     * Read access for a forward pass: returns the layer's current
     * parameters and logs a READ by @p reader (@p stage is carried
     * into the log record for violation localization; -1 = unknown).
     */
    const LayerParams &read(const LayerId &layer, SubnetId reader,
                            int stage = -1);

    /**
     * Write access for a backward pass: mutable parameters, a WRITE
     * log record by @p writer, and a version bump.
     */
    LayerParams &write(const LayerId &layer, SubnetId writer,
                       int stage = -1);

    /** Peek without logging (evaluation, tests). */
    const LayerParams &peek(const LayerId &layer);

    /**
     * Materialize every layer of the space (and pre-fill its version
     * counter) up front. The threaded executor calls this before
     * starting workers so the hot path never mutates the store's map
     * structure: read()/write() only find existing nodes, and all
     * cross-thread ordering is the CommitGate's job.
     */
    void materializeAll();

    /** Number of WRITEs applied to @p layer so far. */
    std::uint64_t version(const LayerId &layer) const;

    /** The global access log (Table 4 / sequential-equivalence). */
    AccessLog &accessLog() { return _log; }
    const AccessLog &accessLog() const { return _log; }

    /**
     * Deterministic fingerprint of the *entire* supernet's weights
     * (untouched layers included at their initial values): the
     * "training result (parameter weights of all layers)" Definition
     * 1 compares. Forces initialization of every layer.
     */
    std::uint64_t supernetHash();

    /** Fingerprint over only the layers touched so far (cheap). */
    std::uint64_t touchedHash() const;

    /** Number of materialized layers. */
    std::size_t materializedLayers() const { return _params.size(); }

    /** @name Checkpointing
     * Persist the trained supernet for post-training analysis (the
     * GreedyNAS-style trial inspection of §2.1), transfer to another
     * process, or mid-run fault recovery. Format v2: a fixed header
     * (magic "NASP", format version, space shape, init seed, layer
     * count, payload length, FNV-1a payload checksum) followed by a
     * length-delimited payload of per-layer key + version counter +
     * raw fp32 bytes; load restores them bitwise (untouched layers
     * re-materialize from the seed, so a loaded store is
     * indistinguishable from the original). The payload is length-
     * delimited so a store checkpoint can be embedded inside a larger
     * run-checkpoint stream.
     * @{ */
    /** Serialize to a stream; returns false on I/O failure. */
    bool save(std::ostream &out) const;

    /** Serialize to a file. */
    bool saveFile(const std::string &path) const;

    /**
     * Restore from a stream produced by save(). Never aborts the
     * process: a truncated stream, a corrupted byte (checksum
     * mismatch), an unknown format version, or a space-shape/seed
     * mismatch all log the reason and return false. The store is only
     * mutated after the checksum verifies.
     * @return true iff the store now matches the checkpoint bitwise.
     */
    bool load(std::istream &in);

    /** Restore from a file. */
    bool loadFile(const std::string &path);
    /** @} */

  private:
    LayerParams &materialize(const LayerId &layer);

    const SearchSpace &_space;
    std::uint64_t _seed;
    kernels::PrecisionMode _precision;
    std::map<std::uint64_t, LayerParams> _params;
    std::map<std::uint64_t, std::uint64_t> _versions;
    AccessLog _log;
};

} // namespace naspipe

#endif // NASPIPE_TRAIN_PARAM_STORE_H
