#include "train/param_store.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace naspipe {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4e415350;  // "NASP"
constexpr std::uint32_t kCheckpointVersion = 2;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

void
writeTensor(std::ostream &out, const Tensor &t)
{
    out.write(reinterpret_cast<const char *>(t.data().data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

} // namespace

ParameterStore::ParameterStore(const SearchSpace &space,
                               std::uint64_t seed,
                               kernels::PrecisionMode precision)
    : _space(space), _seed(seed), _precision(precision)
{
}

LayerParams &
ParameterStore::materialize(const LayerId &layer)
{
    NASPIPE_ASSERT(static_cast<int>(layer.block) < _space.numBlocks() &&
                       static_cast<int>(layer.choice) <
                           _space.choicesPerBlock(),
                   "layer outside the space");
    auto it = _params.find(layer.key());
    if (it == _params.end()) {
        LayerParams fresh;
        initLayerParams(fresh, _seed, layer.block, layer.choice);
        // Storage rounding: fp16 runs start from fp16 weights.
        kernels::quantizeInPlace(_precision,
                                 fresh.weight.data().data(),
                                 fresh.weight.size());
        kernels::quantizeInPlace(_precision,
                                 fresh.bias.data().data(),
                                 fresh.bias.size());
        it = _params.emplace(layer.key(), std::move(fresh)).first;
    }
    return it->second;
}

const LayerParams &
ParameterStore::read(const LayerId &layer, SubnetId reader, int stage)
{
    _log.record(layer, reader, AccessKind::Read, stage);
    return materialize(layer);
}

LayerParams &
ParameterStore::write(const LayerId &layer, SubnetId writer, int stage)
{
    _log.record(layer, writer, AccessKind::Write, stage);
    _versions[layer.key()]++;
    return materialize(layer);
}

const LayerParams &
ParameterStore::peek(const LayerId &layer)
{
    return materialize(layer);
}

void
ParameterStore::materializeAll()
{
    for (int b = 0; b < _space.numBlocks(); b++) {
        for (int c = 0; c < _space.choicesPerBlock(); c++) {
            LayerId layer{static_cast<std::uint32_t>(b),
                          static_cast<std::uint32_t>(c)};
            materialize(layer);
            _versions.emplace(layer.key(), 0);
        }
    }
}

std::uint64_t
ParameterStore::version(const LayerId &layer) const
{
    auto it = _versions.find(layer.key());
    return it == _versions.end() ? 0 : it->second;
}

std::uint64_t
ParameterStore::supernetHash()
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (int b = 0; b < _space.numBlocks(); b++) {
        for (int c = 0; c < _space.choicesPerBlock(); c++) {
            LayerId layer{static_cast<std::uint32_t>(b),
                          static_cast<std::uint32_t>(c)};
            std::uint64_t h = materialize(layer).contentHash();
            hash ^= h + 0x9e3779b97f4a7c15ULL + (hash << 6) +
                    (hash >> 2);
        }
    }
    return hash;
}

bool
ParameterStore::save(std::ostream &out) const
{
    std::ostringstream payload(std::ios::binary);
    for (const auto &[key, params] : _params) {
        writePod(payload, key);
        auto vit = _versions.find(key);
        writePod(payload, vit == _versions.end()
                              ? std::uint64_t{0}
                              : vit->second);
        writeTensor(payload, params.weight);
        writeTensor(payload, params.bias);
    }
    const std::string bytes = payload.str();

    writePod(out, kCheckpointMagic);
    writePod(out, kCheckpointVersion);
    writePod(out, static_cast<std::uint32_t>(_space.numBlocks()));
    writePod(out, static_cast<std::uint32_t>(
                      _space.choicesPerBlock()));
    writePod(out, _seed);
    writePod(out, static_cast<std::uint64_t>(_params.size()));
    writePod(out, static_cast<std::uint64_t>(bytes.size()));
    writePod(out, hashBytes(bytes.data(), bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

bool
ParameterStore::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    return out && save(out);
}

bool
ParameterStore::load(std::istream &in)
{
    std::uint32_t magic = 0, version = 0, blocks = 0, choices = 0;
    std::uint64_t seed = 0, count = 0, payloadBytes = 0, checksum = 0;
    if (!readPod(in, magic) || !readPod(in, version) ||
        !readPod(in, blocks) || !readPod(in, choices) ||
        !readPod(in, seed) || !readPod(in, count) ||
        !readPod(in, payloadBytes) || !readPod(in, checksum)) {
        warn("parameter checkpoint: truncated header");
        return false;
    }
    if (magic != kCheckpointMagic) {
        warn("parameter checkpoint: bad magic ", magic,
             " (not a NASP checkpoint)");
        return false;
    }
    if (version != kCheckpointVersion) {
        warn("parameter checkpoint: unsupported format version ",
             version, " (this build reads version ",
             kCheckpointVersion, ")");
        return false;
    }
    if (static_cast<int>(blocks) != _space.numBlocks() ||
        static_cast<int>(choices) != _space.choicesPerBlock() ||
        seed != _seed) {
        warn("parameter checkpoint does not match this store: space ",
             blocks, "x", choices, " seed ", seed, " vs ",
             _space.numBlocks(), "x", _space.choicesPerBlock(),
             " seed ", _seed);
        return false;
    }
    if (count > static_cast<std::uint64_t>(blocks) * choices) {
        warn("parameter checkpoint: layer count ", count,
             " exceeds the ", blocks, "x", choices, " space");
        return false;
    }

    // Pull exactly payloadBytes off the stream in chunks, so a
    // corrupted length field fails at end-of-stream instead of
    // attempting one huge allocation up front.
    std::string bytes;
    {
        std::uint64_t remaining = payloadBytes;
        char buf[65536];
        while (remaining > 0) {
            auto want = static_cast<std::streamsize>(
                remaining < sizeof(buf) ? remaining : sizeof(buf));
            in.read(buf, want);
            std::streamsize got = in.gcount();
            if (got <= 0) {
                warn("parameter checkpoint: payload truncated (",
                     bytes.size(), " of ", payloadBytes, " bytes)");
                return false;
            }
            bytes.append(buf, static_cast<std::size_t>(got));
            remaining -= static_cast<std::uint64_t>(got);
        }
    }
    if (hashBytes(bytes.data(), bytes.size()) != checksum) {
        warn("parameter checkpoint: payload checksum mismatch");
        return false;
    }

    // Checksum verified: the payload is byte-identical to what a
    // same-shape store saved, so parsing below mutates this store
    // only with data that will parse to completion.
    std::size_t off = 0;
    auto take = [&bytes, &off](void *dst, std::size_t n) {
        if (bytes.size() - off < n)
            return false;
        std::memcpy(dst, bytes.data() + off, n);
        off += n;
        return true;
    };
    for (std::uint64_t i = 0; i < count; i++) {
        std::uint64_t key = 0, layerVersion = 0;
        if (!take(&key, sizeof(key)) ||
            !take(&layerVersion, sizeof(layerVersion))) {
            warn("parameter checkpoint: payload ends inside layer ",
                 i);
            return false;
        }
        LayerId layer{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xffffffffULL)};
        if (static_cast<int>(layer.block) >= _space.numBlocks() ||
            static_cast<int>(layer.choice) >=
                _space.choicesPerBlock()) {
            warn("parameter checkpoint: layer (", layer.block, ", ",
                 layer.choice, ") outside the space");
            return false;
        }
        LayerParams &params = materialize(layer);
        if (!take(params.weight.data().data(),
                  params.weight.size() * sizeof(float)) ||
            !take(params.bias.data().data(),
                  params.bias.size() * sizeof(float))) {
            warn("parameter checkpoint: payload ends inside layer (",
                 layer.block, ", ", layer.choice, ")");
            return false;
        }
        if (layerVersion != 0)
            _versions[key] = layerVersion;
        else
            _versions.erase(key);
    }
    if (off != bytes.size()) {
        warn("parameter checkpoint: ", bytes.size() - off,
             " trailing payload bytes");
        return false;
    }
    return true;
}

bool
ParameterStore::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("cannot open parameter checkpoint file ", path);
        return false;
    }
    return load(in);
}

std::uint64_t
ParameterStore::touchedHash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    // std::map iterates in key order: deterministic.
    for (const auto &[key, params] : _params) {
        std::uint64_t h = params.contentHash() ^ key;
        hash ^= h + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    }
    return hash;
}

} // namespace naspipe
