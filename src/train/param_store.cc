#include "train/param_store.h"

#include <fstream>

#include "common/logging.h"

namespace naspipe {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4e415350;  // "NASP"
constexpr std::uint32_t kCheckpointVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

void
writeTensor(std::ostream &out, const Tensor &t)
{
    out.write(reinterpret_cast<const char *>(t.data().data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool
readTensor(std::istream &in, Tensor &t)
{
    in.read(reinterpret_cast<char *>(t.data().data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    return static_cast<bool>(in);
}

} // namespace

ParameterStore::ParameterStore(const SearchSpace &space,
                               std::uint64_t seed)
    : _space(space), _seed(seed)
{
}

LayerParams &
ParameterStore::materialize(const LayerId &layer)
{
    NASPIPE_ASSERT(static_cast<int>(layer.block) < _space.numBlocks() &&
                       static_cast<int>(layer.choice) <
                           _space.choicesPerBlock(),
                   "layer outside the space");
    auto it = _params.find(layer.key());
    if (it == _params.end()) {
        LayerParams fresh;
        initLayerParams(fresh, _seed, layer.block, layer.choice);
        it = _params.emplace(layer.key(), std::move(fresh)).first;
    }
    return it->second;
}

const LayerParams &
ParameterStore::read(const LayerId &layer, SubnetId reader)
{
    _log.record(layer, reader, AccessKind::Read);
    return materialize(layer);
}

LayerParams &
ParameterStore::write(const LayerId &layer, SubnetId writer)
{
    _log.record(layer, writer, AccessKind::Write);
    _versions[layer.key()]++;
    return materialize(layer);
}

const LayerParams &
ParameterStore::peek(const LayerId &layer)
{
    return materialize(layer);
}

std::uint64_t
ParameterStore::version(const LayerId &layer) const
{
    auto it = _versions.find(layer.key());
    return it == _versions.end() ? 0 : it->second;
}

std::uint64_t
ParameterStore::supernetHash()
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (int b = 0; b < _space.numBlocks(); b++) {
        for (int c = 0; c < _space.choicesPerBlock(); c++) {
            LayerId layer{static_cast<std::uint32_t>(b),
                          static_cast<std::uint32_t>(c)};
            std::uint64_t h = materialize(layer).contentHash();
            hash ^= h + 0x9e3779b97f4a7c15ULL + (hash << 6) +
                    (hash >> 2);
        }
    }
    return hash;
}

bool
ParameterStore::save(std::ostream &out) const
{
    writePod(out, kCheckpointMagic);
    writePod(out, kCheckpointVersion);
    writePod(out, static_cast<std::uint32_t>(_space.numBlocks()));
    writePod(out, static_cast<std::uint32_t>(
                      _space.choicesPerBlock()));
    writePod(out, _seed);
    writePod(out, static_cast<std::uint64_t>(_params.size()));
    for (const auto &[key, params] : _params) {
        writePod(out, key);
        writeTensor(out, params.weight);
        writeTensor(out, params.bias);
    }
    return static_cast<bool>(out);
}

bool
ParameterStore::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    return out && save(out);
}

bool
ParameterStore::load(std::istream &in)
{
    std::uint32_t magic = 0, version = 0, blocks = 0, choices = 0;
    std::uint64_t seed = 0, count = 0;
    if (!readPod(in, magic) || !readPod(in, version) ||
        !readPod(in, blocks) || !readPod(in, choices) ||
        !readPod(in, seed) || !readPod(in, count)) {
        return false;
    }
    if (magic != kCheckpointMagic)
        return false;
    if (version != kCheckpointVersion)
        return false;
    if (static_cast<int>(blocks) != _space.numBlocks() ||
        static_cast<int>(choices) != _space.choicesPerBlock() ||
        seed != _seed) {
        fatal("checkpoint does not match this store: space ", blocks,
              "x", choices, " seed ", seed, " vs ",
              _space.numBlocks(), "x", _space.choicesPerBlock(),
              " seed ", _seed);
    }
    for (std::uint64_t i = 0; i < count; i++) {
        std::uint64_t key = 0;
        if (!readPod(in, key))
            return false;
        LayerId layer{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xffffffffULL)};
        LayerParams &params = materialize(layer);
        if (!readTensor(in, params.weight) ||
            !readTensor(in, params.bias)) {
            return false;
        }
    }
    return true;
}

bool
ParameterStore::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in && load(in);
}

std::uint64_t
ParameterStore::touchedHash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    // std::map iterates in key order: deterministic.
    for (const auto &[key, params] : _params) {
        std::uint64_t h = params.contentHash() ^ key;
        hash ^= h + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    }
    return hash;
}

} // namespace naspipe
