#include "train/convergence.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/loss.h"

namespace naspipe {

ConvergenceTracker::ConvergenceTracker(double scoreScale,
                                       std::size_t smoothWindow)
    : _scoreScale(scoreScale), _smoothWindow(smoothWindow)
{
    NASPIPE_ASSERT(scoreScale > 0.0, "score scale must be positive");
    NASPIPE_ASSERT(smoothWindow >= 1, "smoothing window must be >= 1");
}

void
ConvergenceTracker::addSample(double timeSec, double loss)
{
    NASPIPE_ASSERT(timeSec >= 0.0 && loss >= 0.0,
                   "invalid convergence sample");
    ConvergencePoint p;
    p.timeSec = timeSec;
    p.loss = loss;
    p.score = lossToScore(loss, _scoreScale);
    _raw.push_back(p);
}

std::vector<ConvergencePoint>
ConvergenceTracker::curve(std::size_t maxPoints) const
{
    NASPIPE_ASSERT(maxPoints >= 1, "need >= 1 curve point");
    std::vector<ConvergencePoint> out;
    if (_raw.empty())
        return out;

    // Trailing-window smoothing of the loss, then score transform.
    std::vector<double> smooth(_raw.size());
    double windowSum = 0.0;
    for (std::size_t i = 0; i < _raw.size(); i++) {
        windowSum += _raw[i].loss;
        if (i >= _smoothWindow)
            windowSum -= _raw[i - _smoothWindow].loss;
        std::size_t n = std::min(i + 1, _smoothWindow);
        smooth[i] = windowSum / static_cast<double>(n);
    }

    std::size_t stride =
        std::max<std::size_t>(1, _raw.size() / maxPoints);
    for (std::size_t i = 0; i < _raw.size(); i += stride) {
        ConvergencePoint p;
        p.timeSec = _raw[i].timeSec;
        p.loss = smooth[i];
        p.score = lossToScore(smooth[i], _scoreScale);
        out.push_back(p);
    }
    // Always include the final point.
    if ((out.empty() ||
         out.back().timeSec != _raw.back().timeSec)) {
        ConvergencePoint p;
        p.timeSec = _raw.back().timeSec;
        p.loss = smooth.back();
        p.score = lossToScore(smooth.back(), _scoreScale);
        out.push_back(p);
    }
    return out;
}

double
ConvergenceTracker::finalLoss() const
{
    if (_raw.empty())
        return 0.0;
    std::size_t n = std::min(_smoothWindow, _raw.size());
    double total = 0.0;
    for (std::size_t i = _raw.size() - n; i < _raw.size(); i++)
        total += _raw[i].loss;
    return total / static_cast<double>(n);
}

double
ConvergenceTracker::finalScore() const
{
    return lossToScore(finalLoss(), _scoreScale);
}

void
ConvergenceTracker::clear()
{
    _raw.clear();
}

double
defaultScoreScale(SpaceFamily family)
{
    // BLEU-like scale for NLP, top-5-percent-like scale for CV.
    return family == SpaceFamily::Nlp ? 24.0 : 90.0;
}

SearchResult
searchBestSubnet(NumericExecutor &executor,
                 const std::vector<Subnet> &candidates,
                 double scoreScale, std::uint64_t evalSeed)
{
    NASPIPE_ASSERT(!candidates.empty(),
                   "search needs at least one candidate");
    SearchResult out;
    out.allEvalLosses.reserve(candidates.size());
    bool haveBest = false;
    for (const Subnet &candidate : candidates) {
        float loss = executor.evaluate(candidate, evalSeed);
        out.allEvalLosses.push_back(loss);
        bool better =
            !haveBest || loss < out.bestEvalLoss ||
            (loss == out.bestEvalLoss &&
             candidate.id() < out.best.id());
        if (better) {
            out.best = candidate;
            out.bestEvalLoss = loss;
            haveBest = true;
        }
    }
    out.accuracy = lossToScore(out.bestEvalLoss, scoreScale);
    return out;
}

} // namespace naspipe
