/**
 * @file
 * Per-layer parameter access log.
 *
 * Records every READ (forward pass) and WRITE (backward pass /
 * optimizer step) of each candidate layer's parameters in global
 * order. Table 4 of the paper is a rendering of exactly this log for
 * one layer ("2F-2B-5F-5B-7F-7B"), and the CSP correctness tests
 * verify sequential equivalence on it: for every layer, the log must
 * equal the one produced by training the subnets one at a time in
 * sequence order.
 */

#ifndef NASPIPE_TRAIN_ACCESS_LOG_H
#define NASPIPE_TRAIN_ACCESS_LOG_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "supernet/layer.h"
#include "supernet/subnet.h"

namespace naspipe {

/** Kind of parameter access. */
enum class AccessKind {
    Read,   ///< forward pass
    Write,  ///< backward pass with optimizer step
};

/** One access record. */
struct AccessRecord {
    std::uint64_t order = 0;  ///< global monotonic sequence
    SubnetId subnet = -1;
    AccessKind kind = AccessKind::Read;
    /**
     * Pipeline stage that issued the access, or -1 when the caller
     * has no stage notion (sequential reference runs, deferred bulk
     * flushes). Diagnostic only — the CspOracle uses it to localize
     * violation reports — and deliberately *not* serialized, so the
     * run-checkpoint payload format is unchanged.
     */
    int stage = -1;
};

/**
 * Access log over all layers.
 */
class AccessLog
{
  public:
    /** Enable/disable recording (on by default). */
    void enabled(bool on) { _enabled = on; }
    bool enabled() const { return _enabled; }

    /** Record an access to @p layer by @p subnet on @p stage. */
    void record(const LayerId &layer, SubnetId subnet, AccessKind kind,
                int stage = -1);

    /** Accesses of one layer in global order. */
    const std::vector<AccessRecord> &layerHistory(
        const LayerId &layer) const;

    /**
     * Table 4 rendering for one layer: "2F-2B-5F-5B-7F-7B" (nF =
     * read by subnet n's forward, nB = written by its backward).
     */
    std::string renderOrder(const LayerId &layer) const;

    /**
     * Whether @p layer's history is *sequentially equivalent*: its
     * accesses appear as R,W pairs in strictly ascending subnet
     * order (what training one subnet at a time would produce).
     */
    bool sequentiallyEquivalent(const LayerId &layer) const;

    /** All layers with at least one access. */
    std::vector<LayerId> touchedLayers() const;

    /** True if every touched layer is sequentially equivalent. */
    bool allSequentiallyEquivalent() const;

    /** Total records over all layers. */
    std::uint64_t totalRecords() const { return _nextOrder; }

    /**
     * Serialize the full log (sequence counter plus every per-layer
     * history) into @p out. Part of the run-checkpoint payload so a
     * recovered run reproduces the uninterrupted run's Table 4
     * renderings exactly.
     */
    void saveTo(std::ostream &out) const;

    /**
     * Replace this log's contents with a stream written by saveTo().
     * Returns false (leaving the log cleared) on truncated or
     * malformed input; never aborts the process.
     */
    bool loadFrom(std::istream &in);

    void clear();

  private:
    bool _enabled = true;
    /// record() may be called from concurrent stage workers (the
    /// threaded executor); everything else is single-threaded —
    /// queries and (de)serialization happen before the run or after
    /// the workers are joined.
    RankedMutex _recordMu{LockRank::TrainAccessLog};
    std::uint64_t _nextOrder = 0;
    std::map<std::uint64_t, std::vector<AccessRecord>> _history;
};

} // namespace naspipe

#endif // NASPIPE_TRAIN_ACCESS_LOG_H
