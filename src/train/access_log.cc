#include "train/access_log.h"

#include <sstream>

#include "common/logging.h"

namespace naspipe {

void
AccessLog::record(const LayerId &layer, SubnetId subnet,
                  AccessKind kind)
{
    if (!_enabled)
        return;
    _history[layer.key()].push_back(
        AccessRecord{_nextOrder++, subnet, kind});
}

const std::vector<AccessRecord> &
AccessLog::layerHistory(const LayerId &layer) const
{
    static const std::vector<AccessRecord> kEmpty;
    auto it = _history.find(layer.key());
    return it == _history.end() ? kEmpty : it->second;
}

std::string
AccessLog::renderOrder(const LayerId &layer) const
{
    std::ostringstream oss;
    const auto &history = layerHistory(layer);
    for (std::size_t i = 0; i < history.size(); i++) {
        if (i)
            oss << "-";
        oss << history[i].subnet
            << (history[i].kind == AccessKind::Read ? "F" : "B");
    }
    return oss.str();
}

bool
AccessLog::sequentiallyEquivalent(const LayerId &layer) const
{
    const auto &history = layerHistory(layer);
    // Expect: R(x1) W(x1) R(x2) W(x2) ... with x1 < x2 < ...
    SubnetId last = -1;
    std::size_t i = 0;
    while (i < history.size()) {
        if (history[i].kind != AccessKind::Read)
            return false;
        SubnetId id = history[i].subnet;
        if (id <= last)
            return false;
        if (i + 1 >= history.size() ||
            history[i + 1].kind != AccessKind::Write ||
            history[i + 1].subnet != id) {
            return false;
        }
        last = id;
        i += 2;
    }
    return true;
}

std::vector<LayerId>
AccessLog::touchedLayers() const
{
    std::vector<LayerId> out;
    out.reserve(_history.size());
    for (const auto &[key, records] : _history) {
        (void)records;
        out.push_back(
            LayerId{static_cast<std::uint32_t>(key >> 32),
                    static_cast<std::uint32_t>(key & 0xffffffffULL)});
    }
    return out;
}

bool
AccessLog::allSequentiallyEquivalent() const
{
    for (const auto &[key, records] : _history) {
        (void)records;
        LayerId layer{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xffffffffULL)};
        if (!sequentiallyEquivalent(layer))
            return false;
    }
    return true;
}

void
AccessLog::clear()
{
    _history.clear();
    _nextOrder = 0;
}

} // namespace naspipe
