#include "train/access_log.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace naspipe {

namespace {

void
writeU64(std::ostream &out, std::uint64_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

bool
readU64(std::istream &in, std::uint64_t &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return in.gcount() == sizeof(value);
}

} // namespace

void
AccessLog::record(const LayerId &layer, SubnetId subnet,
                  AccessKind kind, int stage)
{
    if (!_enabled)
        return;
    std::lock_guard<RankedMutex> lock(_recordMu);
    _history[layer.key()].push_back(
        AccessRecord{_nextOrder++, subnet, kind, stage});
}

const std::vector<AccessRecord> &
AccessLog::layerHistory(const LayerId &layer) const
{
    static const std::vector<AccessRecord> kEmpty;
    auto it = _history.find(layer.key());
    return it == _history.end() ? kEmpty : it->second;
}

std::string
AccessLog::renderOrder(const LayerId &layer) const
{
    std::ostringstream oss;
    const auto &history = layerHistory(layer);
    for (std::size_t i = 0; i < history.size(); i++) {
        if (i)
            oss << "-";
        oss << history[i].subnet
            << (history[i].kind == AccessKind::Read ? "F" : "B");
    }
    return oss.str();
}

bool
AccessLog::sequentiallyEquivalent(const LayerId &layer) const
{
    const auto &history = layerHistory(layer);
    // Expect: R(x1) W(x1) R(x2) W(x2) ... with x1 < x2 < ...
    SubnetId last = -1;
    std::size_t i = 0;
    while (i < history.size()) {
        if (history[i].kind != AccessKind::Read)
            return false;
        SubnetId id = history[i].subnet;
        if (id <= last)
            return false;
        if (i + 1 >= history.size() ||
            history[i + 1].kind != AccessKind::Write ||
            history[i + 1].subnet != id) {
            return false;
        }
        last = id;
        i += 2;
    }
    return true;
}

std::vector<LayerId>
AccessLog::touchedLayers() const
{
    std::vector<LayerId> out;
    out.reserve(_history.size());
    for (const auto &[key, records] : _history) {
        (void)records;
        out.push_back(
            LayerId{static_cast<std::uint32_t>(key >> 32),
                    static_cast<std::uint32_t>(key & 0xffffffffULL)});
    }
    return out;
}

bool
AccessLog::allSequentiallyEquivalent() const
{
    for (const auto &[key, records] : _history) {
        (void)records;
        LayerId layer{static_cast<std::uint32_t>(key >> 32),
                      static_cast<std::uint32_t>(key & 0xffffffffULL)};
        if (!sequentiallyEquivalent(layer))
            return false;
    }
    return true;
}

void
AccessLog::saveTo(std::ostream &out) const
{
    writeU64(out, _nextOrder);
    writeU64(out, _history.size());
    for (const auto &[key, records] : _history) {
        writeU64(out, key);
        writeU64(out, records.size());
        for (const auto &rec : records) {
            writeU64(out, rec.order);
            writeU64(out, static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(rec.subnet)));
            writeU64(out, rec.kind == AccessKind::Write ? 1 : 0);
        }
    }
}

bool
AccessLog::loadFrom(std::istream &in)
{
    clear();
    std::uint64_t nextOrder = 0;
    std::uint64_t numLayers = 0;
    if (!readU64(in, nextOrder) || !readU64(in, numLayers))
        return false;
    std::map<std::uint64_t, std::vector<AccessRecord>> history;
    std::uint64_t total = 0;
    for (std::uint64_t l = 0; l < numLayers; l++) {
        std::uint64_t key = 0;
        std::uint64_t count = 0;
        if (!readU64(in, key) || !readU64(in, count))
            return false;
        // Every record carries a distinct order < nextOrder, so a
        // count exceeding it can only come from a corrupted stream.
        if (count > nextOrder || total + count > nextOrder)
            return false;
        std::vector<AccessRecord> records;
        records.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t r = 0; r < count; r++) {
            std::uint64_t order = 0, subnet = 0, kind = 0;
            if (!readU64(in, order) || !readU64(in, subnet) ||
                !readU64(in, kind)) {
                return false;
            }
            if (order >= nextOrder || kind > 1)
                return false;
            records.push_back(AccessRecord{
                order,
                static_cast<SubnetId>(
                    static_cast<std::int64_t>(subnet)),
                kind ? AccessKind::Write : AccessKind::Read});
        }
        total += count;
        history.emplace(key, std::move(records));
    }
    _history = std::move(history);
    _nextOrder = nextOrder;
    return true;
}

void
AccessLog::clear()
{
    _history.clear();
    _nextOrder = 0;
}

} // namespace naspipe
