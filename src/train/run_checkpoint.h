/**
 * @file
 * Mid-run training checkpoint for fault recovery.
 *
 * A RunCheckpoint captures everything the pipeline runtime needs to
 * resume a partially trained supernet deterministically: the store's
 * weights (ParameterStore v2 stream), the access log, the per-subnet
 * losses and completion times observed so far, and the scheduler
 * frontier (the completed-subnet count). Checkpoints are only taken
 * at pipeline-drain barriers, where no subnet is in flight, so under
 * CSP the entire state is a pure function of (config, completed
 * count) — which is what makes a recovered run bitwise-identical to
 * an uninterrupted one.
 *
 * The file format mirrors the parameter store's: magic "NPRC",
 * format version, payload length, FNV-1a payload checksum, payload.
 * Loading never aborts the process — truncation, bit corruption, and
 * version/shape mismatches all log a reason and return false.
 * saveFileAtomic() writes via a temp file plus rename so a crash
 * mid-write never leaves a half-written checkpoint at the target
 * path.
 */

#ifndef NASPIPE_TRAIN_RUN_CHECKPOINT_H
#define NASPIPE_TRAIN_RUN_CHECKPOINT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace naspipe {

/** Full mid-run training state at a pipeline-drain barrier. */
struct RunCheckpoint {
    /** @name Compatibility identity
     * A checkpoint resumes only a run with the same seed, space
     * shape, and total subnet count (Definition 1's "same inputs").
     * @{ */
    std::uint64_t seed = 0;
    std::uint32_t spaceBlocks = 0;
    std::uint32_t spaceChoices = 0;
    std::uint64_t totalSubnets = 0;
    /** @} */

    /** Scheduler frontier: subnets 0..completed-1 are done. */
    std::uint64_t completed = 0;

    /** Simulated wall-clock seconds at the drain barrier. */
    double simSeconds = 0.0;

    /** Total GPU-busy seconds accumulated at the barrier. */
    double busySeconds = 0.0;

    /** How many checkpoints the producing run had written. */
    std::uint64_t checkpointsWritten = 0;

    /** Per-subnet final losses, indexed by subnet ID (size == completed). */
    std::vector<double> losses;

    /** Per-subnet completion times in seconds, indexed by subnet ID. */
    std::vector<double> completionSec;

    /** ParameterStore::save() stream of the drained store. */
    std::string storeBytes;

    /** AccessLog::saveTo() stream of the store's access log. */
    std::string accessLogBytes;

    /** Serialize to a stream; returns false on I/O failure. */
    bool save(std::ostream &out) const;

    /**
     * Restore from a stream written by save(). Logs the reason and
     * returns false on truncated, corrupted, or mismatched-version
     * input; this object is unchanged unless it returns true.
     */
    bool load(std::istream &in);

    /**
     * Write to @p path atomically: serialize to "<path>.tmp", then
     * rename over @p path. Returns false (and logs) on any failure.
     */
    bool saveFileAtomic(const std::string &path) const;

    /** Read from a file; false (with a logged reason) on failure. */
    bool loadFile(const std::string &path);
};

} // namespace naspipe

#endif // NASPIPE_TRAIN_RUN_CHECKPOINT_H
