/**
 * @file
 * Numeric subnet executor.
 *
 * Executes subnets' forward/backward passes *numerically* against the
 * shared ParameterStore, in whatever interleaving the simulated
 * pipeline produces. The three update semantics map to the three
 * synchronization disciplines of the paper:
 *
 *  - Immediate: the backward pass applies the optimizer step right
 *    away (NASPipe's CSP, and also plain sequential training).
 *  - WeightStash: gradients are computed against the parameter
 *    version snapshotted at forward time, then applied to the
 *    current parameters (PipeDream's ASP).
 *  - Deferred: gradients are computed at backward time but the
 *    parameter WRITE happens only at the bulk flush
 *    (GPipe/VPipe/Retiarii BSP).
 *
 * Each training batch is represented by a deterministic digest vector
 * derived from (dataSeed, subnet ID) — the moral equivalent of a
 * seeded DataLoader (§4.1); batch size affects simulated *time*, not
 * the numeric trajectory, which keeps cross-GPU-count comparisons
 * meaningful.
 *
 * All per-subnet numeric state — activations, gradient cursors,
 * weight stashes, deferred gradients — lives in a per-subnet bump
 * Arena and is addressed through TensorViews, so the steady-state
 * forward/backward path performs no heap allocation and no vector
 * copies. Under Config::precision == Fp16Rne every stored value is
 * rounded through binary16 (see tensor/kernels/precision.h); the
 * arithmetic itself stays binary32.
 */

#ifndef NASPIPE_TRAIN_NUMERIC_EXECUTOR_H
#define NASPIPE_TRAIN_NUMERIC_EXECUTOR_H

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <vector>

#include "common/lock_rank.h"
#include "memory/arena.h"
#include "tensor/kernels/precision.h"
#include "tensor/sgd.h"
#include "train/param_store.h"

namespace naspipe {

/** When parameter WRITEs take effect. */
enum class UpdateSemantics {
    Immediate,
    WeightStash,
    Deferred,
};

/** Printable name. */
const char *updateSemanticsName(UpdateSemantics semantics);

/**
 * Numeric executor over one parameter store.
 */
class NumericExecutor
{
  public:
    /** Executor configuration. */
    struct Config {
        std::uint64_t dataSeed = 99;  ///< seeded "DataLoader"
        SgdConfig sgd;
        bool trackLoss = true;        ///< keep the loss history
        /**
         * Batch size the digests stand for. Mini-batch gradients are
         * noisy estimates whose standard error shrinks as
         * 1/sqrt(batch); the executor models that with a
         * deterministic counter-based perturbation of magnitude
         * gradNoise / sqrt(batch) per update, so systems that only
         * fit small batches (GPipe, PipeDream) genuinely converge to
         * worse plateaus per step — the effect behind Figure 4 and
         * Table 2's Score column. The perturbation is a pure
         * function of (dataSeed, writer, layer, element): identical
         * across GPU counts, so CSP reproducibility is untouched.
         */
        int batch = 1;
        double gradNoise = 0.05;  ///< 0 disables the noise model
        /**
         * Apply the linear learning-rate scaling rule: the effective
         * learning rate is sgd.learningRate * batch / the family's
         * reference batch, so a step over a bigger batch makes
         * proportionally more progress — the reason Figure 4's
         * big-batch systems converge faster per wall-clock second.
         */
        bool scaleLrWithBatch = true;
        /** Storage precision of the whole numeric trajectory. */
        kernels::PrecisionMode precision =
            kernels::PrecisionMode::Fp32;
    };

    NumericExecutor(ParameterStore &store, const Config &config);

    /** Allocate the in-flight context of @p subnet (input, target). */
    void beginSubnet(const Subnet &subnet);

    /**
     * Forward pass over blocks [lo, hi] (must continue contiguously
     * from the last forward call of this subnet). @p stage tags the
     * access-log records with the issuing pipeline stage (-1 when the
     * caller has none, e.g. sequential reference runs).
     */
    void forwardStage(const Subnet &subnet, int lo, int hi,
                      UpdateSemantics semantics, int stage = -1);

    /**
     * Compute the loss after the last forward stage and seed the
     * backward gradient. Returns the loss.
     */
    float computeLoss(const Subnet &subnet);

    /**
     * Backward pass over blocks [lo, hi] (must continue contiguously
     * downward from the last backward call).
     */
    void backwardStage(const Subnet &subnet, int lo, int hi,
                       UpdateSemantics semantics, int stage = -1);

    /** Release @p subnet's context; returns its training loss. */
    float finishSubnet(const Subnet &subnet);

    /**
     * BSP flush: apply the deferred gradients of @p subnets in
     * ascending sequence-ID order ("performs parameter updates in
     * bulk").
     */
    void applyDeferredUpdates(std::vector<SubnetId> subnets);

    /**
     * Reference semantics: run @p subnet start-to-finish sequentially
     * with immediate updates. CSP executions must be bitwise
     * equivalent to a pure sequence of these calls.
     */
    float trainSequential(const Subnet &subnet);

    /**
     * Evaluation-only loss of @p subnet on @p evalBatches held-out
     * digests (no logging, no updates). Used for subnet scoring.
     */
    float evaluate(const Subnet &subnet, std::uint64_t evalSeed,
                   int evalBatches = 4);

    /** Losses of finished subnets in completion order. */
    const std::vector<float> &lossHistory() const
    {
        return _lossHistory;
    }

    /** Mean of the last @p window losses (the "supernet loss"). */
    double recentMeanLoss(std::size_t window) const;

    /** Number of subnets currently in flight. */
    std::size_t inflight() const
    {
        std::shared_lock<RankedSharedMutex> lock(_ctxMu);
        return _contexts.size();
    }

    /** Whether @p id currently has an in-flight context. */
    bool inflightSubnet(SubnetId id) const
    {
        std::shared_lock<RankedSharedMutex> lock(_ctxMu);
        return _contexts.count(id) != 0;
    }

    ParameterStore &store() { return _store; }

    /** The storage precision this executor runs under. */
    kernels::PrecisionMode precision() const
    {
        return _config.precision;
    }

  private:
    /**
     * Per-in-flight-subnet training state. Every view points into
     * the context's own arena; the whole context (arena included)
     * dies at finishSubnet, so no view outlives its storage.
     */
    struct SubnetContext {
        Subnet subnet;
        Arena arena;
        std::vector<TensorView> act; ///< act[b] = input to block b
        TensorView gradCursor;   ///< dL/d act at the backward front
        TensorView gradScratch;  ///< backward ping-pong buffer
        TensorView target;
        LayerGradsView blockGrads{TensorView(), TensorView()};
        int fwdProgress = 0;     ///< next block to forward
        int bwdProgress = -1;    ///< next block to backward
        bool lossComputed = false;
        float loss = 0.0f;
        std::map<int, LayerParamsView> stashed; ///< WeightStash
        std::map<int, LayerGradsView> deferred; ///< Deferred
    };

    SubnetContext &context(SubnetId id);
    void fillDigest(TensorView out, SubnetId id, const char *tag,
                    std::uint64_t salt) const;
    void applyUpdate(const Subnet &subnet, int block,
                     ConstTensorView gradWeight,
                     ConstTensorView gradBias, int stage);
    /** Storage rounding under the configured precision (no-op fp32). */
    void quantizeStored(TensorView v) const
    {
        kernels::quantizeInPlace(_config.precision, v.data(),
                                 v.size());
    }

    ParameterStore &_store;
    Config _config;
    SgdOptimizer _optimizer;
    /// Guards the _contexts *map structure* (begin/finish insert and
    /// erase; stage workers look contexts up concurrently). A context
    /// body needs no lock: the pipeline token moves a subnet between
    /// stages one at a time, and the inbox hand-off orders the
    /// accesses.
    mutable RankedSharedMutex _ctxMu{LockRank::TrainContext};
    std::map<SubnetId, SubnetContext> _contexts;
    std::vector<float> _lossHistory;
};

} // namespace naspipe

#endif // NASPIPE_TRAIN_NUMERIC_EXECUTOR_H
