#include "train/run_checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace naspipe {

namespace {

constexpr std::uint32_t kRunCheckpointMagic = 0x4e505243;  // "NPRC"
constexpr std::uint32_t kRunCheckpointVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

void
writeBlob(std::ostream &out, const std::string &bytes)
{
    writePod(out, static_cast<std::uint64_t>(bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void
writeDoubles(std::ostream &out, const std::vector<double> &values)
{
    writePod(out, static_cast<std::uint64_t>(values.size()));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(values.size() *
                                           sizeof(double)));
}

/** Bounds-checked cursor over an in-memory payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &bytes) : _bytes(bytes) {}

    template <typename T>
    bool
    pod(T &value)
    {
        return raw(&value, sizeof(T));
    }

    bool
    blob(std::string &out)
    {
        std::uint64_t size = 0;
        if (!pod(size) || remaining() < size)
            return false;
        out.assign(_bytes.data() + _off,
                   static_cast<std::size_t>(size));
        _off += static_cast<std::size_t>(size);
        return true;
    }

    bool
    doubles(std::vector<double> &out)
    {
        std::uint64_t count = 0;
        if (!pod(count) || remaining() / sizeof(double) < count)
            return false;
        out.resize(static_cast<std::size_t>(count));
        return raw(out.data(), out.size() * sizeof(double));
    }

    bool exhausted() const { return _off == _bytes.size(); }

  private:
    std::uint64_t remaining() const { return _bytes.size() - _off; }

    bool
    raw(void *dst, std::size_t n)
    {
        if (_bytes.size() - _off < n)
            return false;
        std::memcpy(dst, _bytes.data() + _off, n);
        _off += n;
        return true;
    }

    const std::string &_bytes;
    std::size_t _off = 0;
};

} // namespace

bool
RunCheckpoint::save(std::ostream &out) const
{
    std::ostringstream payload(std::ios::binary);
    writePod(payload, seed);
    writePod(payload, spaceBlocks);
    writePod(payload, spaceChoices);
    writePod(payload, totalSubnets);
    writePod(payload, completed);
    writePod(payload, simSeconds);
    writePod(payload, busySeconds);
    writePod(payload, checkpointsWritten);
    writeDoubles(payload, losses);
    writeDoubles(payload, completionSec);
    writeBlob(payload, storeBytes);
    writeBlob(payload, accessLogBytes);
    const std::string bytes = payload.str();

    writePod(out, kRunCheckpointMagic);
    writePod(out, kRunCheckpointVersion);
    writePod(out, static_cast<std::uint64_t>(bytes.size()));
    writePod(out, hashBytes(bytes.data(), bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

bool
RunCheckpoint::load(std::istream &in)
{
    std::uint32_t magic = 0, version = 0;
    std::uint64_t payloadBytes = 0, checksum = 0;
    {
        char header[sizeof(magic) + sizeof(version) +
                    sizeof(payloadBytes) + sizeof(checksum)];
        in.read(header, sizeof(header));
        if (in.gcount() != static_cast<std::streamsize>(
                               sizeof(header))) {
            warn("run checkpoint: truncated header");
            return false;
        }
        std::size_t off = 0;
        auto field = [&](auto &value) {
            std::memcpy(&value, header + off, sizeof(value));
            off += sizeof(value);
        };
        field(magic);
        field(version);
        field(payloadBytes);
        field(checksum);
    }
    if (magic != kRunCheckpointMagic) {
        warn("run checkpoint: bad magic ", magic,
             " (not an NPRC checkpoint)");
        return false;
    }
    if (version != kRunCheckpointVersion) {
        warn("run checkpoint: unsupported format version ", version,
             " (this build reads version ", kRunCheckpointVersion,
             ")");
        return false;
    }

    // Chunked read so a corrupted length field fails at end-of-stream
    // instead of attempting one huge allocation.
    std::string bytes;
    {
        std::uint64_t remaining = payloadBytes;
        char buf[65536];
        while (remaining > 0) {
            auto want = static_cast<std::streamsize>(
                remaining < sizeof(buf) ? remaining : sizeof(buf));
            in.read(buf, want);
            std::streamsize got = in.gcount();
            if (got <= 0) {
                warn("run checkpoint: payload truncated (",
                     bytes.size(), " of ", payloadBytes, " bytes)");
                return false;
            }
            bytes.append(buf, static_cast<std::size_t>(got));
            remaining -= static_cast<std::uint64_t>(got);
        }
    }
    if (hashBytes(bytes.data(), bytes.size()) != checksum) {
        warn("run checkpoint: payload checksum mismatch");
        return false;
    }

    RunCheckpoint parsed;
    Cursor cur(bytes);
    if (!cur.pod(parsed.seed) || !cur.pod(parsed.spaceBlocks) ||
        !cur.pod(parsed.spaceChoices) ||
        !cur.pod(parsed.totalSubnets) || !cur.pod(parsed.completed) ||
        !cur.pod(parsed.simSeconds) || !cur.pod(parsed.busySeconds) ||
        !cur.pod(parsed.checkpointsWritten) ||
        !cur.doubles(parsed.losses) ||
        !cur.doubles(parsed.completionSec) ||
        !cur.blob(parsed.storeBytes) ||
        !cur.blob(parsed.accessLogBytes) || !cur.exhausted()) {
        warn("run checkpoint: malformed payload");
        return false;
    }
    if (parsed.completed > parsed.totalSubnets ||
        parsed.losses.size() != parsed.completed ||
        parsed.completionSec.size() != parsed.completed) {
        warn("run checkpoint: inconsistent frontier (completed ",
             parsed.completed, ", losses ", parsed.losses.size(),
             ", completions ", parsed.completionSec.size(),
             ", total ", parsed.totalSubnets, ")");
        return false;
    }
    *this = std::move(parsed);
    return true;
}

bool
RunCheckpoint::saveFileAtomic(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !save(out)) {
            warn("cannot write run checkpoint to ", tmp);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename ", tmp, " to ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
RunCheckpoint::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("cannot open run checkpoint file ", path);
        return false;
    }
    return load(in);
}

} // namespace naspipe
