#include "train/numeric_executor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/loss.h"

namespace naspipe {

const char *
updateSemanticsName(UpdateSemantics semantics)
{
    switch (semantics) {
      case UpdateSemantics::Immediate:
        return "immediate";
      case UpdateSemantics::WeightStash:
        return "weight-stash";
      case UpdateSemantics::Deferred:
        return "deferred";
    }
    return "?";
}

namespace {

/** The effective optimizer settings after batch-linear LR scaling. */
SgdConfig
effectiveSgd(const NumericExecutor::Config &config,
             const SearchSpace &space)
{
    SgdConfig sgd = config.sgd;
    if (config.scaleLrWithBatch) {
        sgd.learningRate *= static_cast<float>(
            static_cast<double>(config.batch) /
            space.referenceBatch());
    }
    return sgd;
}

} // namespace

NumericExecutor::NumericExecutor(ParameterStore &store,
                                 const Config &config)
    : _store(store), _config(config),
      _optimizer(effectiveSgd(config, store.space()))
{
    NASPIPE_ASSERT(config.batch >= 1, "batch must be >= 1");
    NASPIPE_ASSERT(config.gradNoise >= 0.0,
                   "gradient noise must be non-negative");
}

Tensor
NumericExecutor::makeDigest(SubnetId id, const char *tag,
                            std::uint64_t salt) const
{
    Philox4x32 philox(deriveSeed(_config.dataSeed, tag));
    Tensor out(kLayerDim);
    std::uint64_t base =
        static_cast<std::uint64_t>(id) * kLayerDim + salt * (1ULL << 40);
    for (std::size_t i = 0; i < kLayerDim; i++)
        out[i] = 2.0f * philox.uniformFloat(base + i) - 1.0f;
    return out;
}

namespace {

/**
 * The fixed "teacher": targets are a deterministic elementwise map
 * of the input, shared across every training step. All subnets
 * therefore learn toward the same underlying function and shared
 * layers accumulate consistent signal — the supernet genuinely
 * converges instead of chasing per-step random targets.
 */
Tensor
teacherTarget(const Tensor &input, std::uint64_t dataSeed)
{
    Philox4x32 philox(deriveSeed(dataSeed, "teacher"));
    Tensor out(kLayerDim);
    for (std::size_t i = 0; i < kLayerDim; i++) {
        float a = 0.5f + philox.uniformFloat(i, 0);         // (0.5,1.5)
        float b = philox.uniformFloat(i, 1) - 0.5f;         // (-.5,.5)
        out[i] = std::tanh(a * input[i] + b);
    }
    return out;
}

} // namespace

void
NumericExecutor::beginSubnet(const Subnet &subnet)
{
    NASPIPE_ASSERT(!inflightSubnet(subnet.id()), "SN", subnet.id(),
                   " already in flight");
    SubnetContext ctx;
    ctx.subnet = subnet;
    ctx.act.resize(static_cast<std::size_t>(subnet.size()) + 1);
    ctx.act[0] = makeDigest(subnet.id(), "input", 0);
    ctx.target = teacherTarget(ctx.act[0], _config.dataSeed);
    ctx.bwdProgress = subnet.size() - 1;
    std::unique_lock<RankedSharedMutex> lock(_ctxMu);
    _contexts.emplace(subnet.id(), std::move(ctx));
}

NumericExecutor::SubnetContext &
NumericExecutor::context(SubnetId id)
{
    std::shared_lock<RankedSharedMutex> lock(_ctxMu);
    auto it = _contexts.find(id);
    NASPIPE_ASSERT(it != _contexts.end(), "SN", id, " not in flight");
    return it->second;
}

void
NumericExecutor::forwardStage(const Subnet &subnet, int lo, int hi,
                              UpdateSemantics semantics, int stage)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(lo == ctx.fwdProgress,
                   "forward must be contiguous: expected block ",
                   ctx.fwdProgress, " got ", lo);
    NASPIPE_ASSERT(hi < subnet.size(), "block range out of bounds");
    for (int b = lo; b <= hi; b++) {
        // Skip candidates are identity passthroughs: no parameters,
        // no READ, activation flows through unchanged.
        if (!_store.space().parameterized(b, subnet.choice(b))) {
            ctx.act[static_cast<std::size_t>(b) + 1] =
                ctx.act[static_cast<std::size_t>(b)];
            continue;
        }
        LayerId layer = subnet.layer(b);
        const LayerParams &params =
            _store.read(layer, subnet.id(), stage);
        if (semantics == UpdateSemantics::WeightStash)
            ctx.stashed.emplace(b, params);  // snapshot the version
        layerForward(params, ctx.act[static_cast<std::size_t>(b)],
                     ctx.act[static_cast<std::size_t>(b) + 1]);
    }
    ctx.fwdProgress = hi + 1;
}

float
NumericExecutor::computeLoss(const Subnet &subnet)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(ctx.fwdProgress == subnet.size(),
                   "loss before forward completed");
    NASPIPE_ASSERT(!ctx.lossComputed, "loss computed twice");
    const Tensor &out =
        ctx.act[static_cast<std::size_t>(subnet.size())];
    ctx.loss = mseLoss(out, ctx.target);
    mseLossGrad(out, ctx.target, ctx.gradCursor);
    ctx.lossComputed = true;
    return ctx.loss;
}

void
NumericExecutor::applyUpdate(const Subnet &subnet, int block,
                             const LayerGrads &grads, int stage)
{
    LayerParams &params =
        _store.write(subnet.layer(block), subnet.id(), stage);
    if (_config.gradNoise > 0.0) {
        // Mini-batch gradient noise: standard error ~ 1/sqrt(batch).
        float scale = static_cast<float>(
            _config.gradNoise /
            std::sqrt(static_cast<double>(_config.batch)));
        Philox4x32 philox(deriveSeed(_config.dataSeed, "grad-noise"));
        std::uint64_t base =
            (static_cast<std::uint64_t>(subnet.id()) << 24) ^
            (static_cast<std::uint64_t>(block) << 12);
        LayerGrads noisy = grads;
        for (std::size_t i = 0; i < kLayerDim; i++) {
            noisy.weight[i] +=
                scale *
                (2.0f * philox.uniformFloat(base + i, 0) - 1.0f);
            noisy.bias[i] +=
                scale *
                (2.0f * philox.uniformFloat(base + i, 1) - 1.0f);
        }
        _optimizer.step(params, noisy);
        return;
    }
    _optimizer.step(params, grads);
}

void
NumericExecutor::backwardStage(const Subnet &subnet, int lo, int hi,
                               UpdateSemantics semantics, int stage)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(ctx.lossComputed, "backward before loss");
    NASPIPE_ASSERT(hi == ctx.bwdProgress,
                   "backward must be contiguous: expected block ",
                   ctx.bwdProgress, " got ", hi);
    NASPIPE_ASSERT(lo >= 0, "block range out of bounds");

    for (int b = hi; b >= lo; b--) {
        // Identity passthrough: the gradient flows through unchanged
        // and there is nothing to update.
        if (!_store.space().parameterized(b, subnet.choice(b)))
            continue;
        LayerId layer = subnet.layer(b);
        LayerGrads grads;
        Tensor gradInput;

        const LayerParams *gradSource;
        if (semantics == UpdateSemantics::WeightStash) {
            auto it = ctx.stashed.find(b);
            NASPIPE_ASSERT(it != ctx.stashed.end(),
                           "missing stashed weights for block ", b);
            gradSource = &it->second;
        } else {
            // Recompute semantics: gradients use the parameters
            // current at backward time (PyTorch checkpoint).
            gradSource = &_store.peek(layer);
        }

        layerBackward(*gradSource,
                      ctx.act[static_cast<std::size_t>(b)],
                      ctx.gradCursor, gradInput, grads);
        ctx.gradCursor = std::move(gradInput);

        if (semantics == UpdateSemantics::Deferred) {
            ctx.deferred.emplace(b, std::move(grads));
        } else {
            applyUpdate(subnet, b, grads, stage);
        }
    }
    ctx.bwdProgress = lo - 1;
}

float
NumericExecutor::finishSubnet(const Subnet &subnet)
{
    std::unique_lock<RankedSharedMutex> lock(_ctxMu);
    auto it = _contexts.find(subnet.id());
    NASPIPE_ASSERT(it != _contexts.end(), "SN", subnet.id(),
                   " not in flight");
    SubnetContext &ctx = it->second;
    NASPIPE_ASSERT(ctx.bwdProgress < 0,
                   "finish before backward completed");
    NASPIPE_ASSERT(ctx.deferred.empty(),
                   "finish with unapplied deferred gradients");
    float loss = ctx.loss;
    if (_config.trackLoss)
        _lossHistory.push_back(loss);
    _contexts.erase(it);
    return loss;
}

void
NumericExecutor::applyDeferredUpdates(std::vector<SubnetId> subnets)
{
    std::sort(subnets.begin(), subnets.end());
    for (SubnetId id : subnets) {
        SubnetContext &ctx = context(id);
        // std::map iterates blocks in ascending order: a fixed,
        // documented bulk-update order.
        for (const auto &[block, grads] : ctx.deferred)
            applyUpdate(ctx.subnet, block, grads, -1);
        ctx.deferred.clear();
    }
}

float
NumericExecutor::trainSequential(const Subnet &subnet)
{
    beginSubnet(subnet);
    forwardStage(subnet, 0, subnet.size() - 1,
                 UpdateSemantics::Immediate);
    computeLoss(subnet);
    backwardStage(subnet, 0, subnet.size() - 1,
                  UpdateSemantics::Immediate);
    return finishSubnet(subnet);
}

float
NumericExecutor::evaluate(const Subnet &subnet, std::uint64_t evalSeed,
                          int evalBatches)
{
    NASPIPE_ASSERT(evalBatches > 0, "need >= 1 eval batch");
    Philox4x32 philox(deriveSeed(evalSeed, "eval"));
    float total = 0.0f;
    for (int e = 0; e < evalBatches; e++) {
        Tensor act(kLayerDim);
        std::uint64_t base = static_cast<std::uint64_t>(e) * 2 *
                             kLayerDim;
        for (std::size_t i = 0; i < kLayerDim; i++)
            act[i] = 2.0f * philox.uniformFloat(base + i) - 1.0f;
        // Held-out inputs, same teacher: a real generalization probe.
        Tensor target = teacherTarget(act, _config.dataSeed);
        Tensor next;
        for (int b = 0; b < subnet.size(); b++) {
            if (!_store.space().parameterized(b, subnet.choice(b)))
                continue;  // identity passthrough
            layerForward(_store.peek(subnet.layer(b)), act, next);
            act = next;
        }
        total += mseLoss(act, target);
    }
    return total / static_cast<float>(evalBatches);
}

double
NumericExecutor::recentMeanLoss(std::size_t window) const
{
    if (_lossHistory.empty())
        return 0.0;
    std::size_t n = std::min(window, _lossHistory.size());
    double total = 0.0;
    for (std::size_t i = _lossHistory.size() - n;
         i < _lossHistory.size(); i++) {
        total += _lossHistory[i];
    }
    return total / static_cast<double>(n);
}

} // namespace naspipe
