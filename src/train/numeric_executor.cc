#include "train/numeric_executor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/kernels/reduce.h"
#include "tensor/loss.h"

namespace naspipe {

const char *
updateSemanticsName(UpdateSemantics semantics)
{
    switch (semantics) {
      case UpdateSemantics::Immediate:
        return "immediate";
      case UpdateSemantics::WeightStash:
        return "weight-stash";
      case UpdateSemantics::Deferred:
        return "deferred";
    }
    return "?";
}

namespace {

/** The effective optimizer settings after batch-linear LR scaling. */
SgdConfig
effectiveSgd(const NumericExecutor::Config &config,
             const SearchSpace &space)
{
    SgdConfig sgd = config.sgd;
    if (config.scaleLrWithBatch) {
        sgd.learningRate *= static_cast<float>(
            static_cast<double>(config.batch) /
            space.referenceBatch());
    }
    return sgd;
}

} // namespace

NumericExecutor::NumericExecutor(ParameterStore &store,
                                 const Config &config)
    : _store(store), _config(config),
      _optimizer(effectiveSgd(config, store.space()))
{
    NASPIPE_ASSERT(config.batch >= 1, "batch must be >= 1");
    NASPIPE_ASSERT(config.gradNoise >= 0.0,
                   "gradient noise must be non-negative");
    NASPIPE_ASSERT(config.precision == store.precision(),
                   "executor/store precision mismatch");
}

void
NumericExecutor::fillDigest(TensorView out, SubnetId id,
                            const char *tag, std::uint64_t salt) const
{
    Philox4x32 philox(deriveSeed(_config.dataSeed, tag));
    std::uint64_t base =
        static_cast<std::uint64_t>(id) * kLayerDim + salt * (1ULL << 40);
    for (std::size_t i = 0; i < kLayerDim; i++)
        out[i] = 2.0f * philox.uniformFloat(base + i) - 1.0f;
}

namespace {

/**
 * The fixed "teacher": targets are a deterministic elementwise map
 * of the input, shared across every training step. All subnets
 * therefore learn toward the same underlying function and shared
 * layers accumulate consistent signal — the supernet genuinely
 * converges instead of chasing per-step random targets.
 */
void
fillTeacherTarget(TensorView out, ConstTensorView input,
                  std::uint64_t dataSeed)
{
    Philox4x32 philox(deriveSeed(dataSeed, "teacher"));
    for (std::size_t i = 0; i < kLayerDim; i++) {
        float a = 0.5f + philox.uniformFloat(i, 0);         // (0.5,1.5)
        float b = philox.uniformFloat(i, 1) - 0.5f;         // (-.5,.5)
        out[i] = std::tanh(a * input[i] + b);
    }
}

} // namespace

void
NumericExecutor::beginSubnet(const Subnet &subnet)
{
    NASPIPE_ASSERT(!inflightSubnet(subnet.id()), "SN", subnet.id(),
                   " already in flight");
    SubnetContext ctx;
    ctx.subnet = subnet;
    // One arena backs the subnet's whole numeric state; the act
    // vector holds views, so the per-activation std::vector
    // allocations of the old hot path are gone.
    std::size_t blocks = static_cast<std::size_t>(subnet.size());
    ctx.act.reserve(blocks + 1);
    for (std::size_t b = 0; b <= blocks; b++)
        ctx.act.push_back(ctx.arena.allocVector(kLayerDim));
    ctx.target = ctx.arena.allocVector(kLayerDim);
    ctx.gradCursor = ctx.arena.allocVector(kLayerDim);
    ctx.gradScratch = ctx.arena.allocVector(kLayerDim);
    ctx.blockGrads = LayerGradsView(ctx.arena.allocVector(kLayerDim),
                                    ctx.arena.allocVector(kLayerDim));
    fillDigest(ctx.act[0], subnet.id(), "input", 0);
    quantizeStored(ctx.act[0]);
    fillTeacherTarget(ctx.target, ctx.act[0], _config.dataSeed);
    quantizeStored(ctx.target);
    ctx.bwdProgress = subnet.size() - 1;
    std::unique_lock<RankedSharedMutex> lock(_ctxMu);
    _contexts.emplace(subnet.id(), std::move(ctx));
}

NumericExecutor::SubnetContext &
NumericExecutor::context(SubnetId id)
{
    std::shared_lock<RankedSharedMutex> lock(_ctxMu);
    auto it = _contexts.find(id);
    NASPIPE_ASSERT(it != _contexts.end(), "SN", id, " not in flight");
    return it->second;
}

void
NumericExecutor::forwardStage(const Subnet &subnet, int lo, int hi,
                              UpdateSemantics semantics, int stage)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(lo == ctx.fwdProgress,
                   "forward must be contiguous: expected block ",
                   ctx.fwdProgress, " got ", lo);
    NASPIPE_ASSERT(hi < subnet.size(), "block range out of bounds");
    for (int b = lo; b <= hi; b++) {
        std::size_t bi = static_cast<std::size_t>(b);
        // Skip candidates are identity passthroughs: no parameters,
        // no READ, activation flows through unchanged.
        if (!_store.space().parameterized(b, subnet.choice(b))) {
            ctx.act[bi + 1].copyFrom(ctx.act[bi]);
            continue;
        }
        LayerId layer = subnet.layer(b);
        const LayerParams &params =
            _store.read(layer, subnet.id(), stage);
        if (semantics == UpdateSemantics::WeightStash &&
            ctx.stashed.find(b) == ctx.stashed.end()) {
            // Snapshot the version into the subnet's arena.
            TensorView w = ctx.arena.allocVector(kLayerDim);
            TensorView bia = ctx.arena.allocVector(kLayerDim);
            w.copyFrom(params.weight);
            bia.copyFrom(params.bias);
            ctx.stashed.emplace(b, LayerParamsView(w, bia));
        }
        layerForward(params, ctx.act[bi], ctx.act[bi + 1]);
        quantizeStored(ctx.act[bi + 1]);
    }
    ctx.fwdProgress = hi + 1;
}

float
NumericExecutor::computeLoss(const Subnet &subnet)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(ctx.fwdProgress == subnet.size(),
                   "loss before forward completed");
    NASPIPE_ASSERT(!ctx.lossComputed, "loss computed twice");
    ConstTensorView out =
        ctx.act[static_cast<std::size_t>(subnet.size())];
    ctx.loss = kernels::quantize(_config.precision,
                                 mseLoss(out, ctx.target));
    mseLossGrad(out, ctx.target, ctx.gradCursor);
    quantizeStored(ctx.gradCursor);
    ctx.lossComputed = true;
    return ctx.loss;
}

void
NumericExecutor::applyUpdate(const Subnet &subnet, int block,
                             ConstTensorView gradWeight,
                             ConstTensorView gradBias, int stage)
{
    LayerParams &params =
        _store.write(subnet.layer(block), subnet.id(), stage);
    if (_config.gradNoise > 0.0) {
        // Mini-batch gradient noise: standard error ~ 1/sqrt(batch).
        // The noisy gradients live on the stack — applyUpdate runs
        // concurrently on different layers from different stage
        // workers, and must not allocate.
        float scale = static_cast<float>(
            _config.gradNoise /
            std::sqrt(static_cast<double>(_config.batch)));
        Philox4x32 philox(deriveSeed(_config.dataSeed, "grad-noise"));
        std::uint64_t base =
            (static_cast<std::uint64_t>(subnet.id()) << 24) ^
            (static_cast<std::uint64_t>(block) << 12);
        float noisyW[kLayerDim];
        float noisyB[kLayerDim];
        for (std::size_t i = 0; i < kLayerDim; i++) {
            noisyW[i] =
                gradWeight[i] +
                scale *
                    (2.0f * philox.uniformFloat(base + i, 0) - 1.0f);
            noisyB[i] =
                gradBias[i] +
                scale *
                    (2.0f * philox.uniformFloat(base + i, 1) - 1.0f);
        }
        _optimizer.stepView(params.weight, params.bias,
                            ConstTensorView(noisyW, kLayerDim),
                            ConstTensorView(noisyB, kLayerDim));
    } else {
        _optimizer.stepView(params.weight, params.bias, gradWeight,
                            gradBias);
    }
    if (_config.precision != kernels::PrecisionMode::Fp32) {
        quantizeStored(params.weight);
        quantizeStored(params.bias);
    }
}

void
NumericExecutor::backwardStage(const Subnet &subnet, int lo, int hi,
                               UpdateSemantics semantics, int stage)
{
    SubnetContext &ctx = context(subnet.id());
    NASPIPE_ASSERT(ctx.lossComputed, "backward before loss");
    NASPIPE_ASSERT(hi == ctx.bwdProgress,
                   "backward must be contiguous: expected block ",
                   ctx.bwdProgress, " got ", hi);
    NASPIPE_ASSERT(lo >= 0, "block range out of bounds");

    for (int b = hi; b >= lo; b--) {
        // Identity passthrough: the gradient flows through unchanged
        // and there is nothing to update.
        if (!_store.space().parameterized(b, subnet.choice(b)))
            continue;
        LayerId layer = subnet.layer(b);

        LayerGradsView grads = ctx.blockGrads;
        if (semantics == UpdateSemantics::Deferred) {
            auto inserted = ctx.deferred.emplace(
                b,
                LayerGradsView(ctx.arena.allocVector(kLayerDim),
                               ctx.arena.allocVector(kLayerDim)));
            grads = inserted.first->second;
        }
        grads.clear();

        LayerParamsView gradSource{ConstTensorView(),
                                   ConstTensorView()};
        if (semantics == UpdateSemantics::WeightStash) {
            auto it = ctx.stashed.find(b);
            NASPIPE_ASSERT(it != ctx.stashed.end(),
                           "missing stashed weights for block ", b);
            gradSource = it->second;
        } else {
            // Recompute semantics: gradients use the parameters
            // current at backward time (PyTorch checkpoint).
            gradSource = LayerParamsView(_store.peek(layer));
        }

        layerBackward(gradSource,
                      ctx.act[static_cast<std::size_t>(b)],
                      ctx.gradCursor, ctx.gradScratch, grads);
        quantizeStored(ctx.gradScratch);
        if (_config.precision != kernels::PrecisionMode::Fp32) {
            quantizeStored(grads.weight);
            quantizeStored(grads.bias);
        }
        std::swap(ctx.gradCursor, ctx.gradScratch);

        if (semantics != UpdateSemantics::Deferred)
            applyUpdate(subnet, b, grads.weight, grads.bias, stage);
    }
    ctx.bwdProgress = lo - 1;
}

float
NumericExecutor::finishSubnet(const Subnet &subnet)
{
    std::unique_lock<RankedSharedMutex> lock(_ctxMu);
    auto it = _contexts.find(subnet.id());
    NASPIPE_ASSERT(it != _contexts.end(), "SN", subnet.id(),
                   " not in flight");
    SubnetContext &ctx = it->second;
    NASPIPE_ASSERT(ctx.bwdProgress < 0,
                   "finish before backward completed");
    NASPIPE_ASSERT(ctx.deferred.empty(),
                   "finish with unapplied deferred gradients");
    float loss = ctx.loss;
    if (_config.trackLoss)
        _lossHistory.push_back(loss);
    _contexts.erase(it);
    return loss;
}

void
NumericExecutor::applyDeferredUpdates(std::vector<SubnetId> subnets)
{
    std::sort(subnets.begin(), subnets.end());
    for (SubnetId id : subnets) {
        SubnetContext &ctx = context(id);
        // std::map iterates blocks in ascending order: a fixed,
        // documented bulk-update order.
        for (const auto &[block, grads] : ctx.deferred)
            applyUpdate(ctx.subnet, block, grads.weight, grads.bias,
                        -1);
        ctx.deferred.clear();
    }
}

float
NumericExecutor::trainSequential(const Subnet &subnet)
{
    beginSubnet(subnet);
    forwardStage(subnet, 0, subnet.size() - 1,
                 UpdateSemantics::Immediate);
    computeLoss(subnet);
    backwardStage(subnet, 0, subnet.size() - 1,
                  UpdateSemantics::Immediate);
    return finishSubnet(subnet);
}

float
NumericExecutor::evaluate(const Subnet &subnet, std::uint64_t evalSeed,
                          int evalBatches)
{
    NASPIPE_ASSERT(evalBatches > 0, "need >= 1 eval batch");
    Philox4x32 philox(deriveSeed(evalSeed, "eval"));
    std::vector<float> losses(static_cast<std::size_t>(evalBatches));
    Tensor act(kLayerDim);
    Tensor next(kLayerDim);
    Tensor target(kLayerDim);
    for (int e = 0; e < evalBatches; e++) {
        std::uint64_t base = static_cast<std::uint64_t>(e) * 2 *
                             kLayerDim;
        for (std::size_t i = 0; i < kLayerDim; i++)
            act[i] = 2.0f * philox.uniformFloat(base + i) - 1.0f;
        quantizeStored(act);
        // Held-out inputs, same teacher: a real generalization probe.
        fillTeacherTarget(target, act, _config.dataSeed);
        quantizeStored(target);
        for (int b = 0; b < subnet.size(); b++) {
            if (!_store.space().parameterized(b, subnet.choice(b)))
                continue;  // identity passthrough
            layerForward(_store.peek(subnet.layer(b)), act, next);
            quantizeStored(next);
            std::swap(act.data(), next.data());
        }
        losses[static_cast<std::size_t>(e)] = kernels::quantize(
            _config.precision, mseLoss(act, target));
    }
    // Batch losses combine in the same fixed tree as every other
    // reduction; no raw float accumulation outside the kernel layer.
    return kernels::treeSum(losses.data(), losses.size()) /
           static_cast<float>(evalBatches);
}

double
NumericExecutor::recentMeanLoss(std::size_t window) const
{
    if (_lossHistory.empty())
        return 0.0;
    std::size_t n = std::min(window, _lossHistory.size());
    double total = 0.0;
    for (std::size_t i = _lossHistory.size() - n;
         i < _lossHistory.size(); i++) {
        total += _lossHistory[i];
    }
    return total / static_cast<double>(n);
}

} // namespace naspipe
