/**
 * @file
 * Numeric forward/backward surrogate of one candidate layer.
 *
 * Every candidate layer is trained with a fixed-width parameter
 * vector and an elementwise-mixing nonlinearity. The surrogate is
 * deliberately small — what the reproducibility experiments need is
 * real floating-point state whose final bits depend on the order of
 * parameter reads and writes, not a competitive model — but it is a
 * genuine differentiable layer. Like the transformer and conv blocks
 * of the real search spaces, it is *residual* — an identity path
 * plus a learned correction — so signal and gradients survive
 * arbitrary stacking depth and the supernet actually converges.
 * Forward computes
 *
 *     z_i = w_i * a_i + kMix * w_{(i+1) mod dim} + b_i,
 *     out_i = a_i + kResidual * tanh(z_i),
 *
 * (the w_{i+1} term couples parameters so updates are not separable),
 * and backward computes exact gradients of that function.
 *
 * The passes take non-owning views (LayerParamsView / LayerGradsView)
 * so the training engine can run them over arena-backed storage with
 * zero allocation; owning LayerParams/LayerGrads convert implicitly.
 * Output views must be pre-sized to kLayerDim.
 */

#ifndef NASPIPE_TENSOR_LAYER_MATH_H
#define NASPIPE_TENSOR_LAYER_MATH_H

#include "tensor/tensor.h"
#include "tensor/tensor_view.h"

namespace naspipe {

/** Width of every surrogate layer's activation/parameter vectors. */
constexpr std::size_t kLayerDim = 64;

/** Cross-parameter mixing coefficient. */
constexpr float kMixCoeff = 0.1f;

/** Residual-branch scale. */
constexpr float kResidual = 0.3f;

/** Parameters of one surrogate layer: weights and bias. */
struct LayerParams {
    Tensor weight;  ///< length kLayerDim
    Tensor bias;    ///< length kLayerDim

    LayerParams();

    /** Total number of scalars. */
    std::size_t scalarCount() const
    {
        return weight.size() + bias.size();
    }

    bool bitwiseEqual(const LayerParams &other) const;
    std::uint64_t contentHash() const;
};

/** Gradients matching LayerParams. */
struct LayerGrads {
    Tensor weight;
    Tensor bias;

    LayerGrads();

    void clear();
    void accumulate(const LayerGrads &other);
};

/** Non-owning read view of one layer's parameters. */
struct LayerParamsView {
    ConstTensorView weight;
    ConstTensorView bias;

    LayerParamsView(ConstTensorView w, ConstTensorView b)
        : weight(w), bias(b)
    {
    }

    LayerParamsView(const LayerParams &p)
        : weight(p.weight), bias(p.bias)
    {
    }
};

/** Non-owning accumulation view of one layer's gradients. */
struct LayerGradsView {
    TensorView weight;
    TensorView bias;

    LayerGradsView(TensorView w, TensorView b) : weight(w), bias(b) {}

    LayerGradsView(LayerGrads &g) : weight(g.weight), bias(g.bias) {}

    void clear() const
    {
        weight.fill(0.0f);
        bias.fill(0.0f);
    }
};

/**
 * Deterministically initialize @p params from (seed, block, choice) —
 * every rebuild anywhere yields identical initial weights, the
 * equivalent of fixing the framework init seed (§4.1).
 */
void initLayerParams(LayerParams &params, std::uint64_t seed,
                     std::uint32_t block, std::uint32_t choice);

/**
 * Forward pass of the surrogate layer.
 * @param params layer parameters (READ access)
 * @param input activation from the previous layer
 * @param output activation to the next layer (pre-sized kLayerDim)
 */
void layerForward(LayerParamsView params, ConstTensorView input,
                  TensorView output);

/**
 * Backward pass: exact gradients of layerForward.
 * @param params parameters used for the recomputation
 * @param input the forward input activation
 * @param gradOutput dL/d output
 * @param gradInput dL/d input (pre-sized kLayerDim; must not alias
 *        gradOutput)
 * @param grads dL/d params (accumulated into, must be zeroed by the
 *        caller if fresh gradients are wanted)
 */
void layerBackward(LayerParamsView params, ConstTensorView input,
                   ConstTensorView gradOutput, TensorView gradInput,
                   LayerGradsView grads);

} // namespace naspipe

#endif // NASPIPE_TENSOR_LAYER_MATH_H
