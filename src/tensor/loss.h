/**
 * @file
 * Loss functions for the surrogate training objective.
 */

#ifndef NASPIPE_TENSOR_LOSS_H
#define NASPIPE_TENSOR_LOSS_H

#include "tensor/tensor.h"

namespace naspipe {

/**
 * Mean-squared-error loss against a target vector.
 *
 * loss = (1/n) * sum_i (pred_i - target_i)^2, summed left-to-right.
 */
float mseLoss(const Tensor &pred, const Tensor &target);

/** Gradient of mseLoss w.r.t. pred: 2 (pred - target) / n. */
void mseLossGrad(const Tensor &pred, const Tensor &target,
                 Tensor &gradPred);

/**
 * Smooth saturating score in (0, scale): score = scale / (1 + loss).
 * Used to turn supernet losses into BLEU-like / accuracy-like
 * numbers for the search-quality reports.
 */
double lossToScore(double loss, double scale);

} // namespace naspipe

#endif // NASPIPE_TENSOR_LOSS_H
