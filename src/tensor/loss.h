/**
 * @file
 * Loss functions for the surrogate training objective.
 */

#ifndef NASPIPE_TENSOR_LOSS_H
#define NASPIPE_TENSOR_LOSS_H

#include "tensor/tensor_view.h"

namespace naspipe {

/**
 * Mean-squared-error loss against a target vector.
 *
 * loss = (1/n) * sum_i (pred_i - target_i)^2, with the sum taken in
 * the fixed pairwise-tree order of tensor/kernels/reduce.h.
 */
float mseLoss(ConstTensorView pred, ConstTensorView target);

/**
 * Gradient of mseLoss w.r.t. pred: 2 (pred - target) / n.
 * @p gradPred must be pre-sized to pred's length.
 */
void mseLossGrad(ConstTensorView pred, ConstTensorView target,
                 TensorView gradPred);

/**
 * Smooth saturating score in (0, scale): score = scale / (1 + loss).
 * Used to turn supernet losses into BLEU-like / accuracy-like
 * numbers for the search-quality reports.
 */
double lossToScore(double loss, double scale);

} // namespace naspipe

#endif // NASPIPE_TENSOR_LOSS_H
