#include "tensor/loss.h"

#include "common/logging.h"

namespace naspipe {

float
mseLoss(const Tensor &pred, const Tensor &target)
{
    NASPIPE_ASSERT(pred.size() == target.size() && !pred.empty(),
                   "loss shape mismatch");
    float total = 0.0f;
    for (std::size_t i = 0; i < pred.size(); i++) {
        float diff = pred[i] - target[i];
        total += diff * diff;
    }
    return total / static_cast<float>(pred.size());
}

void
mseLossGrad(const Tensor &pred, const Tensor &target, Tensor &gradPred)
{
    NASPIPE_ASSERT(pred.size() == target.size(),
                   "loss shape mismatch");
    if (gradPred.size() != pred.size())
        gradPred = Tensor(pred.size());
    float scale = 2.0f / static_cast<float>(pred.size());
    for (std::size_t i = 0; i < pred.size(); i++)
        gradPred[i] = scale * (pred[i] - target[i]);
}

double
lossToScore(double loss, double scale)
{
    NASPIPE_ASSERT(loss >= 0.0, "loss must be non-negative");
    return scale / (1.0 + loss);
}

} // namespace naspipe
