#include "tensor/loss.h"

#include "common/logging.h"
#include "tensor/kernels/reduce.h"

namespace naspipe {

float
mseLoss(ConstTensorView pred, ConstTensorView target)
{
    NASPIPE_ASSERT(pred.size() == target.size() && !pred.empty(),
                   "loss shape mismatch");
    return kernels::treeSquareDiffSum(pred.data(), target.data(),
                                      pred.size()) /
           static_cast<float>(pred.size());
}

void
mseLossGrad(ConstTensorView pred, ConstTensorView target,
            TensorView gradPred)
{
    NASPIPE_ASSERT(pred.size() == target.size() &&
                       gradPred.size() == pred.size(),
                   "loss shape mismatch");
    float scale = 2.0f / static_cast<float>(pred.size());
    for (std::size_t i = 0; i < pred.size(); i++)
        gradPred[i] = scale * (pred[i] - target[i]);
}

double
lossToScore(double loss, double scale)
{
    NASPIPE_ASSERT(loss >= 0.0, "loss must be non-negative");
    return scale / (1.0 + loss);
}

} // namespace naspipe
