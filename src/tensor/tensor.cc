#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace naspipe {

Tensor::Tensor(std::size_t size)
    : _data(size, 0.0f), _rows(size), _cols(1)
{
}

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : _data(rows * cols, 0.0f), _rows(rows), _cols(cols)
{
}

Tensor::Tensor(std::vector<float> values)
    : _data(std::move(values)), _rows(_data.size()), _cols(1)
{
}

float
Tensor::operator[](std::size_t i) const
{
    NASPIPE_ASSERT(i < _data.size(), "tensor index out of range");
    return _data[i];
}

float &
Tensor::operator[](std::size_t i)
{
    NASPIPE_ASSERT(i < _data.size(), "tensor index out of range");
    return _data[i];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    NASPIPE_ASSERT(r < _rows && c < _cols,
                   "tensor 2-D index out of range");
    return _data[r * _cols + c];
}

float &
Tensor::at(std::size_t r, std::size_t c)
{
    NASPIPE_ASSERT(r < _rows && c < _cols,
                   "tensor 2-D index out of range");
    return _data[r * _cols + c];
}

void
Tensor::fill(float value)
{
    for (auto &v : _data)
        v = value;
}

bool
Tensor::bitwiseEqual(const Tensor &other) const
{
    if (_data.size() != other._data.size())
        return false;
    if (_data.empty())
        return true;
    return std::memcmp(_data.data(), other._data.data(),
                       _data.size() * sizeof(float)) == 0;
}

std::uint64_t
Tensor::contentHash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(_data.data());
    for (std::size_t i = 0; i < _data.size() * sizeof(float); i++) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
Tensor::toString(std::size_t maxElems) const
{
    std::ostringstream oss;
    oss << "Tensor[" << _data.size() << "]{";
    for (std::size_t i = 0; i < _data.size() && i < maxElems; i++) {
        if (i)
            oss << ", ";
        oss << _data[i];
    }
    if (_data.size() > maxElems)
        oss << ", ...";
    oss << "}";
    return oss.str();
}

} // namespace naspipe
