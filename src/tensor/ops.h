/**
 * @file
 * Deterministic tensor operations.
 *
 * All reductions run sequentially left-to-right; nothing here may be
 * reordered by data size or thread count, because floating-point
 * addition is not associative and Definition 1 demands bitwise
 * reproducibility.
 */

#ifndef NASPIPE_TENSOR_OPS_H
#define NASPIPE_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace naspipe {
namespace ops {

/** out[i] = a[i] + b[i]; sizes must match. */
void add(const Tensor &a, const Tensor &b, Tensor &out);

/** out[i] = a[i] - b[i]; sizes must match. */
void sub(const Tensor &a, const Tensor &b, Tensor &out);

/** out[i] = a[i] * b[i]; sizes must match. */
void mul(const Tensor &a, const Tensor &b, Tensor &out);

/** a[i] += alpha * b[i] (saxpy). */
void axpy(float alpha, const Tensor &b, Tensor &a);

/** a[i] *= alpha. */
void scale(Tensor &a, float alpha);

/** a[i] = tanhf(a[i]). */
void tanhInPlace(Tensor &a);

/** Sequential left-to-right sum. */
float sum(const Tensor &a);

/** Sequential dot product. */
float dot(const Tensor &a, const Tensor &b);

/** Sequential mean of squared elements. */
float meanSquare(const Tensor &a);

/** Largest absolute element (0 for empty). */
float maxAbs(const Tensor &a);

/** Clamp every element into [-limit, limit]. */
void clamp(Tensor &a, float limit);

/** out = m (rows x cols) * v (cols); rank-2 matvec, row-major. */
void matvec(const Tensor &m, const Tensor &v, Tensor &out);

/** out = m^T * v, with m rows x cols and v of length rows. */
void matvecTransposed(const Tensor &m, const Tensor &v, Tensor &out);

/** Rank-1 outer-product accumulate: m += alpha * u v^T. */
void outerAccumulate(Tensor &m, float alpha, const Tensor &u,
                     const Tensor &v);

} // namespace ops
} // namespace naspipe

#endif // NASPIPE_TENSOR_OPS_H
