/**
 * @file
 * Deterministic tensor operations over non-owning views.
 *
 * Nothing here may reorder by data size, thread count, alignment or
 * chunking, because floating-point addition is not associative and
 * Definition 1 demands bitwise reproducibility. The evaluation-order
 * contract:
 *
 *  - Elementwise ops iterate in index order.
 *  - Every reduction (sum, dot, meanSquare, the matvec inner
 *    products) uses the fixed-shape pairwise tree of
 *    tensor/kernels/reduce.h — the combination tree is a pure
 *    function of the element count, so the result is one specific
 *    bit pattern per input, merely a *different* one from the old
 *    sequential left-to-right spec (and vectorizable, which that
 *    spec was not).
 *  - Per PrecisionMode (tensor/kernels/precision.h): Fp32 stores
 *    binary32 results exactly as computed; Fp16Rne additionally
 *    rounds every stored value and reduction result through binary16
 *    with round-to-nearest-even. Both modes are bitwise-specified;
 *    callers (the training engine) apply the storage rounding.
 *
 * All APIs take views: Tensors convert implicitly and no op ever
 * allocates or resizes — output views must be pre-sized.
 */

#ifndef NASPIPE_TENSOR_OPS_H
#define NASPIPE_TENSOR_OPS_H

#include "tensor/tensor_view.h"

namespace naspipe {
namespace ops {

/** out[i] = a[i] + b[i]; sizes must match. */
void add(ConstTensorView a, ConstTensorView b, TensorView out);

/** out[i] = a[i] - b[i]; sizes must match. */
void sub(ConstTensorView a, ConstTensorView b, TensorView out);

/** out[i] = a[i] * b[i]; sizes must match. */
void mul(ConstTensorView a, ConstTensorView b, TensorView out);

/** a[i] += alpha * b[i] (saxpy). */
void axpy(float alpha, ConstTensorView b, TensorView a);

/** a[i] *= alpha. */
void scale(TensorView a, float alpha);

/** a[i] = tanhf(a[i]). */
void tanhInPlace(TensorView a);

/** Pairwise-tree sum (kernels::treeSum). */
float sum(ConstTensorView a);

/** Pairwise-tree dot product (kernels::treeDot). */
float dot(ConstTensorView a, ConstTensorView b);

/** Pairwise-tree mean of squared elements. */
float meanSquare(ConstTensorView a);

/** Largest absolute element (0 for empty); order-independent. */
float maxAbs(ConstTensorView a);

/** Clamp every element into [-limit, limit]. */
void clamp(TensorView a, float limit);

/**
 * out = m (rows x cols) * v (cols); rank-2 matvec, row-major. Each
 * row's inner product is a pairwise-tree dot.
 */
void matvec(ConstTensorView m, ConstTensorView v, TensorView out);

/**
 * out = m^T * v, with m rows x cols and v of length rows. Each
 * column's inner product follows the same tree as a contiguous dot
 * of that column.
 */
void matvecTransposed(ConstTensorView m, ConstTensorView v,
                      TensorView out);

/** Rank-1 outer-product accumulate: m += alpha * u v^T. */
void outerAccumulate(TensorView m, float alpha, ConstTensorView u,
                     ConstTensorView v);

} // namespace ops
} // namespace naspipe

#endif // NASPIPE_TENSOR_OPS_H
