/**
 * @file
 * Non-owning tensor views: the zero-copy currency of the numeric hot
 * path.
 *
 * A view is a (pointer, rows, cols) triple over float storage owned
 * elsewhere — a Tensor, an Arena slab, or a stack buffer. The kernel
 * layer, ops::*, layer_math and the optimizer all take views, so the
 * forward/backward path moves activations and gradients without
 * allocating or copying vectors; a Tensor converts implicitly.
 *
 * Lifetime is the caller's problem by design, with one hard rule for
 * the training engine (DESIGN.md §12): a view into a subnet's Arena
 * dies with that subnet's context, and a view of ParameterStore
 * weights must not be held across a CommitGate commit — after the
 * commit the next writer may be mutating those bytes on another
 * thread.
 */

#ifndef NASPIPE_TENSOR_TENSOR_VIEW_H
#define NASPIPE_TENSOR_TENSOR_VIEW_H

#include <cstddef>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace naspipe {

/** Read-only view of rank-1/rank-2 row-major float storage. */
class ConstTensorView
{
  public:
    ConstTensorView() = default;

    /** Rank-1 view of @p size floats at @p data. */
    ConstTensorView(const float *data, std::size_t size)
        : _data(data), _rows(size), _cols(size ? 1 : 0)
    {
    }

    /** Rank-2 row-major view. */
    ConstTensorView(const float *data, std::size_t rows,
                    std::size_t cols)
        : _data(data), _rows(rows), _cols(cols)
    {
    }

    /** Whole-tensor view (implicit: Tensors flow into view APIs). */
    ConstTensorView(const Tensor &t)
        : _data(t.data().data()), _rows(t.rows()), _cols(t.cols())
    {
    }

    std::size_t size() const { return _rows * _cols; }
    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    bool empty() const { return size() == 0; }

    float operator[](std::size_t i) const
    {
        NASPIPE_ASSERT(i < size(), "view index out of range");
        return _data[i];
    }

    float at(std::size_t r, std::size_t c) const
    {
        NASPIPE_ASSERT(r < _rows && c < _cols,
                       "view 2-D index out of range");
        return _data[r * _cols + c];
    }

    const float *data() const { return _data; }

  private:
    const float *_data = nullptr;
    std::size_t _rows = 0;
    std::size_t _cols = 0;
};

/** Mutable view; converts to ConstTensorView. */
class TensorView
{
  public:
    TensorView() = default;

    TensorView(float *data, std::size_t size)
        : _data(data), _rows(size), _cols(size ? 1 : 0)
    {
    }

    TensorView(float *data, std::size_t rows, std::size_t cols)
        : _data(data), _rows(rows), _cols(cols)
    {
    }

    TensorView(Tensor &t)
        : _data(t.data().data()), _rows(t.rows()), _cols(t.cols())
    {
    }

    operator ConstTensorView() const
    {
        return ConstTensorView(_data, _rows, _cols);
    }

    std::size_t size() const { return _rows * _cols; }
    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    bool empty() const { return size() == 0; }

    float &operator[](std::size_t i) const
    {
        NASPIPE_ASSERT(i < size(), "view index out of range");
        return _data[i];
    }

    float &at(std::size_t r, std::size_t c) const
    {
        NASPIPE_ASSERT(r < _rows && c < _cols,
                       "view 2-D index out of range");
        return _data[r * _cols + c];
    }

    float *data() const { return _data; }

    void fill(float value) const
    {
        for (std::size_t i = 0; i < size(); i++)
            _data[i] = value;
    }

    /** Elementwise copy from @p src (sizes must match). */
    void copyFrom(ConstTensorView src) const
    {
        NASPIPE_ASSERT(size() == src.size(),
                       "view copy size mismatch");
        for (std::size_t i = 0; i < size(); i++)
            _data[i] = src.data()[i];
    }

  private:
    float *_data = nullptr;
    std::size_t _rows = 0;
    std::size_t _cols = 0;
};

} // namespace naspipe

#endif // NASPIPE_TENSOR_TENSOR_VIEW_H
