#include "tensor/kernels/precision.h"

#include <cstring>

namespace naspipe {
namespace kernels {

const char *
precisionModeName(PrecisionMode mode)
{
    switch (mode) {
      case PrecisionMode::Fp32:
        return "fp32";
      case PrecisionMode::Fp16Rne:
        return "fp16_rne";
    }
    return "?";
}

bool
parsePrecisionMode(const std::string &text, PrecisionMode &out)
{
    if (text == "fp32") {
        out = PrecisionMode::Fp32;
        return true;
    }
    if (text == "fp16" || text == "fp16_rne") {
        out = PrecisionMode::Fp16Rne;
        return true;
    }
    return false;
}

std::uint16_t
fp32ToHalfBits(float value)
{
    std::uint32_t x;
    std::memcpy(&x, &value, sizeof(x));
    std::uint32_t sign = (x >> 16) & 0x8000u;
    std::int32_t exp =
        static_cast<std::int32_t>((x >> 23) & 0xffu) - 127;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 128) {
        // Infinity keeps a zero mantissa; NaN is quieted with the top
        // payload bits preserved (never collapses to infinity).
        if (mant == 0)
            return static_cast<std::uint16_t>(sign | 0x7c00u);
        return static_cast<std::uint16_t>(sign | 0x7e00u |
                                          (mant >> 13));
    }
    if (exp >= 16) // magnitude >= 65536: past the largest half
        return static_cast<std::uint16_t>(sign | 0x7c00u);

    if (exp >= -14) {
        // Normal half range. Round the low 13 mantissa bits to
        // nearest-even; a carry may overflow into the exponent and,
        // at exp == 15, on into the infinity encoding — both are the
        // correct IEEE results.
        std::uint32_t half =
            (static_cast<std::uint32_t>(exp + 15) << 10) |
            (mant >> 13);
        std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (half & 1u)))
            half++;
        return static_cast<std::uint16_t>(sign | half);
    }

    // Subnormal half range (and fp32 subnormals, which are far below
    // it). The result is k * 2^-24 with k the 24-bit significand
    // (implicit bit included) shifted right and rounded to
    // nearest-even; a carry to k == 1024 lands exactly on the
    // smallest normal encoding.
    if (exp < -25 || exp == -127)
        return static_cast<std::uint16_t>(sign); // rounds to +-0
    std::uint32_t m = mant | 0x800000u;
    int shift = -(exp + 1); // in [14, 24]
    std::uint32_t k = m >> shift;
    std::uint32_t rem = m & ((1u << shift) - 1u);
    std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (k & 1u)))
        k++;
    return static_cast<std::uint16_t>(sign | k);
}

float
halfBitsToFp32(std::uint16_t bits)
{
    std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u)
                         << 16;
    std::uint32_t exp = (bits >> 10) & 0x1fu;
    std::uint32_t mant = bits & 0x3ffu;
    std::uint32_t x;
    if (exp == 31) {
        x = sign | 0x7f800000u | (mant << 13);
    } else if (exp == 0) {
        if (mant == 0) {
            x = sign;
        } else {
            // Subnormal: mant * 2^-24, exact in binary32 (the divisor
            // is a power of two).
            float v = static_cast<float>(mant) / 16777216.0f;
            return (bits & 0x8000u) ? -v : v;
        }
    } else {
        x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float out;
    std::memcpy(&out, &x, sizeof(out));
    return out;
}

void
quantizeInPlace(PrecisionMode mode, float *a, std::size_t n)
{
    if (mode == PrecisionMode::Fp32)
        return;
    for (std::size_t i = 0; i < n; i++)
        a[i] = roundToHalf(a[i]);
}

} // namespace kernels
} // namespace naspipe
