/**
 * @file
 * Fixed-shape pairwise-tree reduction kernels.
 *
 * Every floating-point reduction in the library funnels through this
 * file. The combination tree is a *pure function of the element
 * count* — never of thread count, SIMD width, alignment or chunking —
 * so results are bitwise-reproducible (Definition 1) while the leaves
 * stay wide enough for compilers to vectorize.
 *
 * Tree shape, normatively: a range of length n is decomposed into its
 * binary expansion n = 2^a + 2^b + ... (a > b > ...), taken over
 * consecutive segments left to right. Each power-of-two segment is
 * reduced by a balanced pairwise tree (recursively split in half down
 * to single elements). The segment partials P_2^a, P_2^b, ... combine
 * right to left:
 *
 *     result = P_2^a + (P_2^b + (P_2^c + ...))
 *
 * which is exactly the shape produced by recursively splitting the
 * range at the largest power of two strictly below n. The empty range
 * reduces to +0.0f.
 *
 * Derived reductions fix the leaf values first, then apply the same
 * tree: dot(a, b) is the tree over a[i]*b[i]; squareDiffSum(a, b) is
 * the tree over (a[i]-b[i])^2. Each leaf product/square is rounded to
 * fp32 before entering the tree (no fused multiply-add may cross a
 * tree edge).
 *
 * Under PrecisionMode::Fp16Rne the *inputs* a caller hands in are
 * already fp16-rounded storage values and the caller rounds the
 * scalar result; the tree itself always accumulates in fp32. See
 * kernels/precision.h and DESIGN.md §12.
 */

#ifndef NASPIPE_TENSOR_KERNELS_REDUCE_H
#define NASPIPE_TENSOR_KERNELS_REDUCE_H

#include <cstddef>

namespace naspipe {
namespace kernels {

/**
 * Leaf block width: power-of-two segments up to this many elements
 * are reduced in one contiguous scratch buffer (vectorizable ladder);
 * larger segments recurse in halves first. A tuning constant only —
 * the tree shape, and therefore every result bit, is independent of
 * it.
 */
constexpr std::size_t kReduceBlock = 256;

/** Pairwise-tree sum of a[0..n). Empty range sums to +0.0f. */
float treeSum(const float *a, std::size_t n);

/** Pairwise-tree reduction of the elementwise products a[i]*b[i]. */
float treeDot(const float *a, const float *b, std::size_t n);

/** Pairwise-tree reduction of the squared differences (a[i]-b[i])^2. */
float treeSquareDiffSum(const float *a, const float *b, std::size_t n);

/** treeDot(a, a, n) / n — the mean of squared elements (n > 0). */
float treeMeanSquare(const float *a, std::size_t n);

} // namespace kernels
} // namespace naspipe

#endif // NASPIPE_TENSOR_KERNELS_REDUCE_H
