#include "tensor/kernels/reduce.h"

#include "common/logging.h"

namespace naspipe {
namespace kernels {

namespace {

/**
 * Balanced pairwise tree over buf[0..m), m a power of two up to
 * kReduceBlock, computed bottom-up in place: each level halves the
 * live prefix by adding adjacent pairs. The inner loops are
 * branch-free over contiguous memory, which is what lets the
 * compiler vectorize the leaves.
 */
float
ladderSum(float *buf, std::size_t m)
{
    for (std::size_t width = m / 2; width >= 1; width /= 2) {
        for (std::size_t i = 0; i < width; i++)
            buf[i] = buf[2 * i] + buf[2 * i + 1];
        if (width == 1)
            break;
    }
    return buf[0];
}

/**
 * Pairwise tree over the power-of-two segment [off, off+m). @p fill
 * materializes the leaf values (plain loads, products, squared
 * differences) into a scratch block; segments wider than kReduceBlock
 * split in half first, which is the same tree the ladder builds.
 */
template <typename Fill>
float
pow2Tree(std::size_t off, std::size_t m, const Fill &fill)
{
    if (m <= kReduceBlock) {
        float buf[kReduceBlock];
        fill(buf, off, m);
        return ladderSum(buf, m);
    }
    std::size_t half = m / 2;
    float lo = pow2Tree(off, half, fill);
    float hi = pow2Tree(off + half, half, fill);
    return lo + hi;
}

/**
 * The full fixed-shape reduction: binary-expansion segments left to
 * right, partials folded right to left (see reduce.h for the
 * normative spec).
 */
template <typename Fill>
float
treeReduce(std::size_t n, const Fill &fill)
{
    if (n == 0)
        return 0.0f;
    float parts[64];
    int count = 0;
    std::size_t off = 0;
    for (int bit = 63; bit >= 0; bit--) {
        std::size_t m = 1ULL << bit;
        if (n & m) {
            parts[count++] = pow2Tree(off, m, fill);
            off += m;
        }
    }
    float acc = parts[count - 1];
    for (int i = count - 2; i >= 0; i--)
        acc = parts[i] + acc;
    return acc;
}

} // namespace

float
treeSum(const float *a, std::size_t n)
{
    return treeReduce(
        n, [a](float *dst, std::size_t off, std::size_t m) {
            for (std::size_t i = 0; i < m; i++)
                dst[i] = a[off + i];
        });
}

float
treeDot(const float *a, const float *b, std::size_t n)
{
    return treeReduce(
        n, [a, b](float *dst, std::size_t off, std::size_t m) {
            for (std::size_t i = 0; i < m; i++)
                dst[i] = a[off + i] * b[off + i];
        });
}

float
treeSquareDiffSum(const float *a, const float *b, std::size_t n)
{
    return treeReduce(
        n, [a, b](float *dst, std::size_t off, std::size_t m) {
            for (std::size_t i = 0; i < m; i++) {
                float diff = a[off + i] - b[off + i];
                dst[i] = diff * diff;
            }
        });
}

float
treeMeanSquare(const float *a, std::size_t n)
{
    NASPIPE_ASSERT(n > 0, "treeMeanSquare of empty range");
    return treeDot(a, a, n) / static_cast<float>(n);
}

} // namespace kernels
} // namespace naspipe
