/**
 * @file
 * Precision modes and the explicit fp16 rounding kernels.
 *
 * The library computes in IEEE-754 binary32 throughout; PrecisionMode
 * selects how values are *stored* between operations:
 *
 *  - Fp32: storage is binary32, conversions are the identity. The
 *    historical behavior, bit for bit.
 *  - Fp16Rne: every value written to a storage tensor — initial
 *    parameters, parameters after each optimizer step, activations
 *    after each layer, loss gradients, and scalar reduction results —
 *    is converted binary32 → binary16 → binary32 with
 *    round-to-nearest-even before it lands. Arithmetic inside a
 *    kernel (including reduction trees) stays binary32, the
 *    tensor-core discipline: half storage, single-precision
 *    accumulate.
 *
 * The conversions are explicit integer bit manipulation — no
 * dependence on compiler half-float extensions or hardware F16C — so
 * results are bitwise-specified per mode on every platform
 * (Definition 1 extended to reduced precision). Subnormals, signed
 * zero, infinities and NaN all follow IEEE-754: values of magnitude
 * in (0, 2^-24) round to the nearest representable half subnormal or
 * to zero; magnitudes >= 65520 round to infinity; NaN stays NaN
 * (quieted, payload truncated).
 */

#ifndef NASPIPE_TENSOR_KERNELS_PRECISION_H
#define NASPIPE_TENSOR_KERNELS_PRECISION_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace naspipe {
namespace kernels {

/** Storage precision of the numeric trajectory. */
enum class PrecisionMode {
    Fp32,
    Fp16Rne,
};

/** Printable name ("fp32" / "fp16_rne"). */
const char *precisionModeName(PrecisionMode mode);

/**
 * Parse "fp32" / "fp16" / "fp16_rne" (case-sensitive). Returns false
 * on anything else, leaving @p out untouched.
 */
bool parsePrecisionMode(const std::string &text, PrecisionMode &out);

/** binary32 → binary16 bit pattern, round-to-nearest-even. */
std::uint16_t fp32ToHalfBits(float value);

/** binary16 bit pattern → the exactly-representable binary32. */
float halfBitsToFp32(std::uint16_t bits);

/** Round-trip through binary16: the fp16 storage rounding. */
inline float
roundToHalf(float value)
{
    return halfBitsToFp32(fp32ToHalfBits(value));
}

/** Scalar storage rounding under @p mode (identity for Fp32). */
inline float
quantize(PrecisionMode mode, float value)
{
    return mode == PrecisionMode::Fp32 ? value : roundToHalf(value);
}

/** Elementwise storage rounding of a[0..n) under @p mode. */
void quantizeInPlace(PrecisionMode mode, float *a, std::size_t n);

} // namespace kernels
} // namespace naspipe

#endif // NASPIPE_TENSOR_KERNELS_PRECISION_H
