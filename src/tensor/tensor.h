/**
 * @file
 * Minimal deterministic fp32 tensor.
 *
 * The reproducibility experiments (Tables 3 and 4, appendix
 * experiment 1) compare trained parameters *bitwise*, so every
 * numeric operation in this library is specified down to evaluation
 * order: reductions go through the fixed-shape pairwise trees in
 * tensor/kernels/reduce.h (never an ad-hoc sequential loop — the
 * float-reduce-outside-kernels lint enforces this), elementwise ops
 * iterate in index order, and nothing ever depends on the platform's
 * math library beyond IEEE-754 basic operations and tanhf/expf
 * (which are deterministic for a fixed libm, mirroring the paper's
 * reliance on deterministic CUDA kernels). Storage precision is a
 * run-level mode (tensor/kernels/precision.h): fp32, or fp16_rne
 * half-rounded storage with fp32 compute.
 *
 * Tensor owns its buffer; the non-owning view over arena-backed
 * parameter memory is TensorView (tensor/tensor_view.h).
 */

#ifndef NASPIPE_TENSOR_TENSOR_H
#define NASPIPE_TENSOR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace naspipe {

/**
 * Dense fp32 tensor of rank 1 or 2 (row-major).
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Rank-1 tensor of @p size zeros. */
    explicit Tensor(std::size_t size);

    /** Rank-2 tensor of @p rows x @p cols zeros. */
    Tensor(std::size_t rows, std::size_t cols);

    /** Rank-1 tensor wrapping @p values. */
    explicit Tensor(std::vector<float> values);

    std::size_t size() const { return _data.size(); }
    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    bool empty() const { return _data.empty(); }

    /** Rank-1 element access. */
    float operator[](std::size_t i) const;
    float &operator[](std::size_t i);

    /** Rank-2 element access. */
    float at(std::size_t r, std::size_t c) const;
    float &at(std::size_t r, std::size_t c);

    const std::vector<float> &data() const { return _data; }
    std::vector<float> &data() { return _data; }

    /** Set every element to @p value. */
    void fill(float value);

    /** Bitwise equality (what Definition 1 requires). */
    bool bitwiseEqual(const Tensor &other) const;

    /** FNV-1a hash over the raw bytes; stable fingerprint. */
    std::uint64_t contentHash() const;

    /** Short debug string ("Tensor[4]{0.1, ...}"). */
    std::string toString(std::size_t maxElems = 8) const;

  private:
    std::vector<float> _data;
    std::size_t _rows = 0;
    std::size_t _cols = 0;
};

} // namespace naspipe

#endif // NASPIPE_TENSOR_TENSOR_H
