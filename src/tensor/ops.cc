#include "tensor/ops.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "tensor/kernels/reduce.h"

namespace naspipe {
namespace ops {

namespace {

void
checkSameSize(ConstTensorView a, ConstTensorView b)
{
    NASPIPE_ASSERT(a.size() == b.size(), "tensor size mismatch: ",
                   a.size(), " vs ", b.size());
}

} // namespace

void
add(ConstTensorView a, ConstTensorView b, TensorView out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] + b[i];
}

void
sub(ConstTensorView a, ConstTensorView b, TensorView out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] - b[i];
}

void
mul(ConstTensorView a, ConstTensorView b, TensorView out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] * b[i];
}

void
axpy(float alpha, ConstTensorView b, TensorView a)
{
    checkSameSize(a, b);
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] += alpha * b[i];
}

void
scale(TensorView a, float alpha)
{
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] *= alpha;
}

void
tanhInPlace(TensorView a)
{
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] = std::tanh(a[i]);
}

float
sum(ConstTensorView a)
{
    return kernels::treeSum(a.data(), a.size());
}

float
dot(ConstTensorView a, ConstTensorView b)
{
    checkSameSize(a, b);
    return kernels::treeDot(a.data(), b.data(), a.size());
}

float
meanSquare(ConstTensorView a)
{
    NASPIPE_ASSERT(!a.empty(), "meanSquare of empty tensor");
    return kernels::treeMeanSquare(a.data(), a.size());
}

float
maxAbs(ConstTensorView a)
{
    float best = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++) {
        float v = std::fabs(a[i]);
        if (v > best)
            best = v;
    }
    return best;
}

void
clamp(TensorView a, float limit)
{
    NASPIPE_ASSERT(limit >= 0.0f, "clamp limit must be non-negative");
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] > limit)
            a[i] = limit;
        else if (a[i] < -limit)
            a[i] = -limit;
    }
}

void
matvec(ConstTensorView m, ConstTensorView v, TensorView out)
{
    NASPIPE_ASSERT(m.cols() == v.size(), "matvec shape mismatch");
    NASPIPE_ASSERT(out.size() == m.rows(), "matvec output mismatch");
    for (std::size_t r = 0; r < m.rows(); r++)
        out[r] = kernels::treeDot(m.data() + r * m.cols(), v.data(),
                                  m.cols());
}

void
matvecTransposed(ConstTensorView m, ConstTensorView v, TensorView out)
{
    NASPIPE_ASSERT(m.rows() == v.size(),
                   "matvecTransposed shape mismatch");
    NASPIPE_ASSERT(out.size() == m.cols(),
                   "matvecTransposed output mismatch");
    // Gather each (strided) column so its inner product runs the
    // exact same tree as a contiguous dot of that column.
    std::vector<float> column(m.rows());
    for (std::size_t c = 0; c < m.cols(); c++) {
        for (std::size_t r = 0; r < m.rows(); r++)
            column[r] = m.at(r, c);
        out[c] = kernels::treeDot(column.data(), v.data(), m.rows());
    }
}

void
outerAccumulate(TensorView m, float alpha, ConstTensorView u,
                ConstTensorView v)
{
    NASPIPE_ASSERT(m.rows() == u.size() && m.cols() == v.size(),
                   "outerAccumulate shape mismatch");
    for (std::size_t r = 0; r < m.rows(); r++) {
        for (std::size_t c = 0; c < m.cols(); c++)
            m.at(r, c) += alpha * u[r] * v[c];
    }
}

} // namespace ops
} // namespace naspipe
