#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"

namespace naspipe {
namespace ops {

namespace {

void
checkSameSize(const Tensor &a, const Tensor &b)
{
    NASPIPE_ASSERT(a.size() == b.size(), "tensor size mismatch: ",
                   a.size(), " vs ", b.size());
}

} // namespace

void
add(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] + b[i];
}

void
sub(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] - b[i];
}

void
mul(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkSameSize(a, b);
    checkSameSize(a, out);
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] * b[i];
}

void
axpy(float alpha, const Tensor &b, Tensor &a)
{
    checkSameSize(a, b);
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] += alpha * b[i];
}

void
scale(Tensor &a, float alpha)
{
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] *= alpha;
}

void
tanhInPlace(Tensor &a)
{
    for (std::size_t i = 0; i < a.size(); i++)
        a[i] = std::tanh(a[i]);
}

float
sum(const Tensor &a)
{
    float total = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        total += a[i];
    return total;
}

float
dot(const Tensor &a, const Tensor &b)
{
    checkSameSize(a, b);
    float total = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        total += a[i] * b[i];
    return total;
}

float
meanSquare(const Tensor &a)
{
    NASPIPE_ASSERT(!a.empty(), "meanSquare of empty tensor");
    float total = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        total += a[i] * a[i];
    return total / static_cast<float>(a.size());
}

float
maxAbs(const Tensor &a)
{
    float best = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++) {
        float v = std::fabs(a[i]);
        if (v > best)
            best = v;
    }
    return best;
}

void
clamp(Tensor &a, float limit)
{
    NASPIPE_ASSERT(limit >= 0.0f, "clamp limit must be non-negative");
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] > limit)
            a[i] = limit;
        else if (a[i] < -limit)
            a[i] = -limit;
    }
}

void
matvec(const Tensor &m, const Tensor &v, Tensor &out)
{
    NASPIPE_ASSERT(m.cols() == v.size(), "matvec shape mismatch");
    NASPIPE_ASSERT(out.size() == m.rows(), "matvec output mismatch");
    for (std::size_t r = 0; r < m.rows(); r++) {
        float total = 0.0f;
        for (std::size_t c = 0; c < m.cols(); c++)
            total += m.at(r, c) * v[c];
        out[r] = total;
    }
}

void
matvecTransposed(const Tensor &m, const Tensor &v, Tensor &out)
{
    NASPIPE_ASSERT(m.rows() == v.size(),
                   "matvecTransposed shape mismatch");
    NASPIPE_ASSERT(out.size() == m.cols(),
                   "matvecTransposed output mismatch");
    for (std::size_t c = 0; c < m.cols(); c++) {
        float total = 0.0f;
        for (std::size_t r = 0; r < m.rows(); r++)
            total += m.at(r, c) * v[r];
        out[c] = total;
    }
}

void
outerAccumulate(Tensor &m, float alpha, const Tensor &u,
                const Tensor &v)
{
    NASPIPE_ASSERT(m.rows() == u.size() && m.cols() == v.size(),
                   "outerAccumulate shape mismatch");
    for (std::size_t r = 0; r < m.rows(); r++) {
        for (std::size_t c = 0; c < m.cols(); c++)
            m.at(r, c) += alpha * u[r] * v[c];
    }
}

} // namespace ops
} // namespace naspipe
