#include "tensor/sgd.h"

#include "common/logging.h"

namespace naspipe {

SgdOptimizer::SgdOptimizer(const SgdConfig &config) : _config(config)
{
    NASPIPE_ASSERT(config.learningRate > 0.0f,
                   "learning rate must be positive");
    NASPIPE_ASSERT(config.momentum >= 0.0f && config.momentum < 1.0f,
                   "momentum must be in [0, 1)");
}

void
SgdOptimizer::applyOne(TensorView param, ConstTensorView grad,
                       TensorView *velocity) const
{
    NASPIPE_ASSERT(param.size() == grad.size(),
                   "optimizer shape mismatch");
    for (std::size_t i = 0; i < param.size(); i++) {
        float g = grad[i];
        if (_config.clipNorm > 0.0f) {
            if (g > _config.clipNorm)
                g = _config.clipNorm;
            else if (g < -_config.clipNorm)
                g = -_config.clipNorm;
        }
        if (velocity) {
            float v = _config.momentum * (*velocity)[i] + g;
            (*velocity)[i] = v;
            g = v;
        }
        param[i] -= _config.learningRate * g;
    }
}

void
SgdOptimizer::step(LayerParams &params, const LayerGrads &grads,
                   LayerGrads &velocity) const
{
    if (_config.momentum > 0.0f) {
        TensorView vw(velocity.weight);
        TensorView vb(velocity.bias);
        applyOne(params.weight, grads.weight, &vw);
        applyOne(params.bias, grads.bias, &vb);
    } else {
        applyOne(params.weight, grads.weight, nullptr);
        applyOne(params.bias, grads.bias, nullptr);
    }
}

void
SgdOptimizer::step(LayerParams &params, const LayerGrads &grads) const
{
    NASPIPE_ASSERT(_config.momentum == 0.0f,
                   "momentum requires a velocity buffer");
    applyOne(params.weight, grads.weight, nullptr);
    applyOne(params.bias, grads.bias, nullptr);
}

void
SgdOptimizer::stepView(TensorView weight, TensorView bias,
                       ConstTensorView gradWeight,
                       ConstTensorView gradBias) const
{
    NASPIPE_ASSERT(_config.momentum == 0.0f,
                   "momentum requires a velocity buffer");
    applyOne(weight, gradWeight, nullptr);
    applyOne(bias, gradBias, nullptr);
}

} // namespace naspipe
