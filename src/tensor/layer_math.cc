#include "tensor/layer_math.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace naspipe {

LayerParams::LayerParams()
    : weight(kLayerDim), bias(kLayerDim)
{
}

bool
LayerParams::bitwiseEqual(const LayerParams &other) const
{
    return weight.bitwiseEqual(other.weight) &&
           bias.bitwiseEqual(other.bias);
}

std::uint64_t
LayerParams::contentHash() const
{
    // Combine the two hashes order-dependently.
    std::uint64_t h = weight.contentHash();
    h ^= bias.contentHash() + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
}

LayerGrads::LayerGrads()
    : weight(kLayerDim), bias(kLayerDim)
{
}

void
LayerGrads::clear()
{
    weight.fill(0.0f);
    bias.fill(0.0f);
}

void
LayerGrads::accumulate(const LayerGrads &other)
{
    for (std::size_t i = 0; i < kLayerDim; i++) {
        weight[i] += other.weight[i];
        bias[i] += other.bias[i];
    }
}

void
initLayerParams(LayerParams &params, std::uint64_t seed,
                std::uint32_t block, std::uint32_t choice)
{
    Philox4x32 philox(deriveSeed(seed, "layer-init"));
    std::uint64_t base =
        (static_cast<std::uint64_t>(block) << 40) |
        (static_cast<std::uint64_t>(choice) << 20);
    for (std::size_t i = 0; i < kLayerDim; i++) {
        // Small symmetric init in (-0.5, 0.5).
        params.weight[i] =
            philox.uniformFloat(base + i, 0) - 0.5f;
        params.bias[i] =
            0.1f * (philox.uniformFloat(base + i, 1) - 0.5f);
    }
}

void
layerForward(LayerParamsView params, ConstTensorView input,
             TensorView output)
{
    NASPIPE_ASSERT(input.size() == kLayerDim &&
                       output.size() == kLayerDim,
                   "layer forward shape mismatch");
    for (std::size_t i = 0; i < kLayerDim; i++) {
        std::size_t j = (i + 1) % kLayerDim;
        float z = params.weight[i] * input[i] +
                  kMixCoeff * params.weight[j] + params.bias[i];
        output[i] = input[i] + kResidual * std::tanh(z);
    }
}

void
layerBackward(LayerParamsView params, ConstTensorView input,
              ConstTensorView gradOutput, TensorView gradInput,
              LayerGradsView grads)
{
    NASPIPE_ASSERT(input.size() == kLayerDim &&
                       gradOutput.size() == kLayerDim &&
                       gradInput.size() == kLayerDim,
                   "layer backward shape mismatch");

    // Recompute z (activation recomputation semantics): the backward
    // uses the parameter values *current at backward time*, exactly
    // like PyTorch's checkpoint utility the paper uses. dz lives on
    // the stack — the backward path allocates nothing.
    float dz[kLayerDim];
    for (std::size_t i = 0; i < kLayerDim; i++) {
        std::size_t j = (i + 1) % kLayerDim;
        float z = params.weight[i] * input[i] +
                  kMixCoeff * params.weight[j] + params.bias[i];
        float t = std::tanh(z);
        dz[i] = gradOutput[i] * kResidual * (1.0f - t * t);
    }

    for (std::size_t i = 0; i < kLayerDim; i++) {
        std::size_t prev = (i + kLayerDim - 1) % kLayerDim;
        // w_i appears in z_i (times input_i) and in z_{i-1} (times
        // kMixCoeff).
        grads.weight[i] += dz[i] * input[i] + kMixCoeff * dz[prev];
        grads.bias[i] += dz[i];
        // The identity path contributes gradOutput directly.
        gradInput[i] = gradOutput[i] + dz[i] * params.weight[i];
    }
}

} // namespace naspipe
