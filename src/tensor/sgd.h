/**
 * @file
 * Deterministic SGD optimizer.
 *
 * Updates are applied in index order with optional momentum and
 * gradient clipping. Update time is part of the causal-dependency
 * semantics: a layer's WRITE happens when its optimizer step runs.
 */

#ifndef NASPIPE_TENSOR_SGD_H
#define NASPIPE_TENSOR_SGD_H

#include "tensor/layer_math.h"
#include "tensor/tensor.h"
#include "tensor/tensor_view.h"

namespace naspipe {

/** SGD hyperparameters. */
struct SgdConfig {
    float learningRate = 0.05f;
    float momentum = 0.0f;     ///< 0 disables the velocity buffer
    float clipNorm = 0.0f;     ///< 0 disables elementwise clipping
};

/**
 * Plain SGD over one layer's parameters.
 */
class SgdOptimizer
{
  public:
    explicit SgdOptimizer(const SgdConfig &config = SgdConfig());

    /**
     * Apply one step: params -= lr * grads (with momentum/clip if
     * configured). Velocity buffers are lazily allocated per call
     * site via @p velocity (pass the same object across steps).
     */
    void step(LayerParams &params, const LayerGrads &grads,
              LayerGrads &velocity) const;

    /** Momentum-free convenience overload. */
    void step(LayerParams &params, const LayerGrads &grads) const;

    /**
     * Momentum-free step over raw views — the zero-copy hot path the
     * training engine drives with arena- or stack-backed gradients.
     */
    void stepView(TensorView weight, TensorView bias,
                  ConstTensorView gradWeight,
                  ConstTensorView gradBias) const;

    const SgdConfig &config() const { return _config; }

  private:
    void applyOne(TensorView param, ConstTensorView grad,
                  TensorView *velocity) const;

    SgdConfig _config;
};

} // namespace naspipe

#endif // NASPIPE_TENSOR_SGD_H
