#include "memory/gpu_memory.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

bool
GpuMemoryManager::tracked(const LayerId &layer) const
{
    return _layers.count(layer.key()) > 0;
}

bool
GpuMemoryManager::usable(const LayerId &layer, Tick now) const
{
    auto it = _layers.find(layer.key());
    return it != _layers.end() && it->second.availableAt <= now;
}

Tick
GpuMemoryManager::admit(const LayerId &layer, std::uint64_t bytes,
                        Tick availableAt)
{
    auto [it, inserted] = _layers.try_emplace(
        layer.key(), ResidentLayer{bytes, availableAt, availableAt});
    if (!inserted)
        return it->second.availableAt;
    _residentBytes += bytes;
    _peakBytes = std::max(_peakBytes, _residentBytes);
    return availableAt;
}

Tick
GpuMemoryManager::availableAt(const LayerId &layer) const
{
    auto it = _layers.find(layer.key());
    NASPIPE_ASSERT(it != _layers.end(), "layer not tracked");
    return it->second.availableAt;
}

void
GpuMemoryManager::touch(const LayerId &layer, Tick now)
{
    auto it = _layers.find(layer.key());
    if (it != _layers.end())
        it->second.lastUse = std::max(it->second.lastUse, now);
}

std::uint64_t
GpuMemoryManager::evict(const LayerId &layer)
{
    auto it = _layers.find(layer.key());
    if (it == _layers.end())
        return 0;
    std::uint64_t bytes = it->second.bytes;
    _residentBytes -= bytes;
    _layers.erase(it);
    return bytes;
}

bool
GpuMemoryManager::lruVictim(LayerId &victim, Tick before) const
{
    // Only layers last used strictly before @p before are evictable;
    // a layer touched at the current instant (or whose copy is still
    // in flight, lastUse in the future) is in use.
    bool found = false;
    Tick best = 0;
    for (const auto &[key, layer] : _layers) {
        if (layer.lastUse >= before)
            continue;
        if (!found || layer.lastUse < best) {
            best = layer.lastUse;
            victim.block = static_cast<std::uint32_t>(key >> 32);
            victim.choice =
                static_cast<std::uint32_t>(key & 0xffffffffULL);
            found = true;
        }
    }
    return found;
}

void
GpuMemoryManager::reset()
{
    _layers.clear();
    _residentBytes = 0;
    _peakBytes = 0;
    _hits.reset();
}

} // namespace naspipe
