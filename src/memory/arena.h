/**
 * @file
 * Bump-pointer float arena for per-subnet numeric state.
 *
 * Every in-flight subnet owns one Arena holding its activations,
 * gradient cursors, weight stashes and deferred gradients. Allocation
 * is a pointer bump into chunked slabs, so the steady-state
 * forward/backward path performs zero heap allocations — the
 * per-activation std::vector churn this replaces was the dominant
 * non-numeric cost of the hot path.
 *
 * Chunks are heap slabs with stable addresses: growing the arena
 * never moves prior allocations, and moving the Arena itself moves
 * chunk ownership without invalidating outstanding TensorViews.
 * reset() rewinds the cursors but keeps the slabs, so a reused arena
 * reaches its high-water mark once and never allocates again.
 *
 * Fresh allocations are zero-filled — bump allocation must not make
 * numeric state depend on what previously occupied the bytes
 * (Definition 1 extends to allocator behavior).
 */

#ifndef NASPIPE_MEMORY_ARENA_H
#define NASPIPE_MEMORY_ARENA_H

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor_view.h"

namespace naspipe {

/** Chunked bump allocator of float storage. */
class Arena
{
  public:
    /** @param chunkFloats slab granularity (floats per chunk). */
    explicit Arena(std::size_t chunkFloats = 16384);

    Arena(Arena &&) = default;
    Arena &operator=(Arena &&) = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p n zero-filled floats (n == 0 yields a non-null
     * distinct-from-everything sentinel of size 0). Requests larger
     * than the chunk granularity get a dedicated slab.
     */
    float *allocFloats(std::size_t n);

    /** Rank-1 view over a fresh zero-filled allocation. */
    TensorView allocVector(std::size_t n)
    {
        return TensorView(allocFloats(n), n);
    }

    /**
     * Rewind every cursor, keeping the slabs. All outstanding views
     * into this arena become dangling-by-contract.
     */
    void reset();

    /** Floats handed out since construction/reset(). */
    std::size_t allocatedFloats() const { return _allocated; }

    /** Floats of slab capacity currently reserved. */
    std::size_t reservedFloats() const { return _reserved; }

    /** Number of slabs. */
    std::size_t chunkCount() const { return _chunks.size(); }

  private:
    struct Chunk {
        std::unique_ptr<float[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    Chunk &chunkWithRoom(std::size_t n);

    std::vector<Chunk> _chunks;
    std::size_t _chunkFloats;
    std::size_t _allocated = 0;
    std::size_t _reserved = 0;
};

} // namespace naspipe

#endif // NASPIPE_MEMORY_ARENA_H
