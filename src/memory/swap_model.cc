#include "memory/swap_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "schedule/asp_scheduler.h"

namespace naspipe {

SwapModel::SwapModel(double bytesPerSec, Tick latency)
    : _bytesPerSec(bytesPerSec), _latency(latency)
{
    NASPIPE_ASSERT(bytesPerSec > 0.0, "swap bandwidth must be positive");
}

Tick
SwapModel::swapTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    double sec = static_cast<double>(bytes) / _bytesPerSec;
    return _latency + ticksFromSec(sec);
}

double
SwapModel::swapMs(std::uint64_t bytes) const
{
    return ticksToMs(swapTime(bytes));
}

ActivationModel
defaultActivationModel(SpaceFamily family)
{
    // Calibration constants. bytesPerSample is the whole-pipeline
    // activation + workspace footprint of one sample; at depth D
    // each GPU carries bytesPerSample/D per live weight version.
    // Values are tuned so the derived batch sizes land in Table 2's
    // ballpark on the default 8-GPU testbed (GPipe NLP.c1 ~32,
    // PipeDream ~16, NASPipe/VPipe >150 before the cap).
    ActivationModel m;
    if (family == SpaceFamily::Nlp) {
        m.bytesPerSample = 208ULL << 20;  // 208 MB across pipeline
        m.maxBatch = 192;
        m.overheadBatch = 114;
        m.computeScale = 2.8;
        m.boundaryBytesPerSample = 32ULL << 10;  // 32 KB boundary
    } else {
        m.bytesPerSample = 704ULL << 20;  // 704 MB across pipeline
        m.maxBatch = 64;
        m.overheadBatch = 32;
        m.computeScale = 5.5;
        m.boundaryBytesPerSample = 96ULL << 10;  // 96 KB boundary
    }
    return m;
}

CapacityPlanner::CapacityPlanner(const SearchSpace &space,
                                 const GpuConfig &gpu,
                                 const ActivationModel &activation)
    : _supernetBytes(space.totalParamBytes()),
      _subnetBytes(space.meanSubnetParamBytes()), _gpu(gpu),
      _activation(activation)
{
    NASPIPE_ASSERT(activation.bytesPerSample > 0,
                   "activation model not initialized");
}

CapacityPlanner::CapacityPlanner(const SearchSpace &space,
                                 const GpuConfig &gpu)
    : CapacityPlanner(space, gpu,
                      defaultActivationModel(space.family()))
{
}

double
CapacityPlanner::residentParams(const SystemModel &system,
                                int numStages) const
{
    const double d = static_cast<double>(numStages);
    switch (system.memory) {
      case MemoryMode::AllResident: {
        double resident = static_cast<double>(_supernetBytes) / d;
        if (system.weightStash) {
            // Stashed weight versions of in-flight subnets (stage
            // share of a subnet times the mean version count).
            resident += static_cast<double>(_subnetBytes) / d *
                        WeightStash::meanStashFactor(numStages);
        }
        return resident;
      }
      case MemoryMode::SwapOnDemand:
        return static_cast<double>(_subnetBytes) / d;
      case MemoryMode::PredictivePrefetch:
        // Previous (evicting) + current + next (prefetching): the
        // ~3x-of-one-subnet cache of §3.3.
        return 3.0 * static_cast<double>(_subnetBytes) / d;
    }
    return 0.0;
}

double
CapacityPlanner::perSampleBytes(const SystemModel &system,
                                int numStages) const
{
    const double d = static_cast<double>(numStages);
    // Each live weight version holds its share of the pipeline-wide
    // activation footprint; BSP keeps a bulk (B ~= D) of versions in
    // flight, ASP keeps (D - s) at stage s ((D+1)/2 on average), CSP
    // keeps about D.
    double liveVersions;
    if (system.weightStash)
        liveVersions = (d + 1.0) / 2.0;
    else
        liveVersions = static_cast<double>(
            system.bulkFlush ? system.effectiveBulk(numStages)
                             : numStages);
    double perSample =
        static_cast<double>(_activation.bytesPerSample) / d *
        liveVersions;
    if (system.recompute)
        perSample *= _activation.recomputeFactor;
    return perSample;
}

CapacityPlan
CapacityPlanner::plan(const SystemModel &system, int numStages) const
{
    NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
    CapacityPlan out;

    const std::uint64_t usable =
        _gpu.memoryBytes > kReserveBytes
            ? _gpu.memoryBytes - kReserveBytes
            : 0;

    double resident = residentParams(system, numStages);
    out.residentParamBytesPerGpu =
        static_cast<std::uint64_t>(resident);
    double perSample = perSampleBytes(system, numStages);

    // --- Batch size. ---
    double budget = static_cast<double>(usable) - resident;
    int batch = 0;
    if (budget > 0.0)
        batch = static_cast<int>(std::floor(budget / perSample));
    batch = std::min(batch, _activation.maxBatch);
    out.fits = batch >= _activation.minBatch;
    out.batch = out.fits ? batch : 0;
    out.activationBytesPerGpu = out.fits
        ? static_cast<std::uint64_t>(perSample * batch)
        : 0;

    // --- CPU memory (pinned staging for swap-based systems). ---
    out.cpuMemBytesTotal =
        system.memory == MemoryMode::AllResident ? 0 : _supernetBytes;

    // --- Reported "Para." (Table 2): what the system keeps around.
    switch (system.memory) {
      case MemoryMode::AllResident:
        out.reportedParamBytes = _supernetBytes;
        break;
      case MemoryMode::SwapOnDemand:
        out.reportedParamBytes = _subnetBytes;
        break;
      case MemoryMode::PredictivePrefetch:
        out.reportedParamBytes = 3 * _subnetBytes;
        break;
    }

    return out;
}

CapacityPlan
CapacityPlanner::planWithBatch(const SystemModel &system,
                               int numStages, int batch) const
{
    NASPIPE_ASSERT(batch >= 1, "pinned batch must be >= 1");
    CapacityPlan out = plan(system, numStages);
    const std::uint64_t usable =
        _gpu.memoryBytes > kReserveBytes
            ? _gpu.memoryBytes - kReserveBytes
            : 0;
    double resident = residentParams(system, numStages);
    double activations =
        perSampleBytes(system, numStages) * batch;
    out.batch = batch;
    out.activationBytesPerGpu =
        static_cast<std::uint64_t>(activations);
    out.fits = resident + activations <=
               static_cast<double>(usable);
    return out;
}

} // namespace naspipe
