#include "memory/exec_context_cache.h"

#include <algorithm>

namespace naspipe {

ExecContextCache::ExecContextCache(const SearchSpace &space,
                                   MemoryMode mode,
                                   std::uint64_t budgetBytes)
    : _space(space), _mode(mode), _budgetBytes(budgetBytes)
{
}

void
ExecContextCache::enforceBudget(std::uint64_t incomingBytes)
{
    if (_budgetBytes == 0)
        return;
    // The §4.2 memory-limit check: before copying an operator in,
    // make room by pushing out least-recently-used layers that are
    // not in use at this instant.
    while (_memory.residentBytes() + incomingBytes > _budgetBytes) {
        LayerId victim;
        if (!_memory.lruVictim(victim, _clock)) {
            // Everything resident is in use right now; admit over
            // budget rather than deadlock.
            _stats.overBudgetFetches++;
            return;
        }
        evictLayer(victim);
        _stats.forcedEvictions++;
    }
}

void
ExecContextCache::fetchLayer(const LayerId &layer,
                             std::uint64_t bytes)
{
    enforceBudget(bytes);
    _memory.admit(layer, bytes, _clock);
}

void
ExecContextCache::evictLayer(const LayerId &layer)
{
    _stats.evictedBytes += _memory.evict(layer);
}

void
ExecContextCache::prefetch(const Subnet &subnet, int lo, int hi)
{
    if (_mode != MemoryMode::PredictivePrefetch)
        return;
    _clock++;
    _stats.prefetchRequests++;
    for (int b = lo; b <= hi; b++) {
        std::uint64_t bytes =
            _space.spec(b, subnet.choice(b)).paramBytes;
        if (bytes == 0)
            continue;  // skip candidates have no context
        LayerId layer = subnet.layer(b);
        if (_memory.tracked(layer))
            continue;
        fetchLayer(layer, bytes);
        _stats.prefetchedBytes += bytes;
    }
}

void
ExecContextCache::ensureResident(const Subnet &subnet, int lo, int hi)
{
    if (_mode == MemoryMode::AllResident)
        return;

    // VPipe behaviour: before switching to the new task's context,
    // push out the previous task's layers that it does not reuse.
    if (_mode == MemoryMode::SwapOnDemand && !_lastTaskKeys.empty()) {
        std::vector<std::uint64_t> needed;
        needed.reserve(static_cast<std::size_t>(hi - lo + 1));
        for (int b = lo; b <= hi; b++)
            needed.push_back(subnet.layer(b).key());
        std::sort(needed.begin(), needed.end());
        for (std::uint64_t key : _lastTaskKeys) {
            if (!std::binary_search(needed.begin(), needed.end(),
                                    key)) {
                LayerId layer{
                    static_cast<std::uint32_t>(key >> 32),
                    static_cast<std::uint32_t>(key & 0xffffffffULL)};
                evictLayer(layer);
            }
        }
        _lastTaskKeys.clear();
    }

    // One logical instant for the whole task, exactly like the
    // simulator's ensureResident at sim.now(): every layer this task
    // touches carries the same count, so none of them can be evicted
    // to make room for a sibling layer of the same task.
    _clock++;
    Tick now = _clock;
    for (int b = lo; b <= hi; b++) {
        std::uint64_t bytes =
            _space.spec(b, subnet.choice(b)).paramBytes;
        if (bytes == 0)
            continue;  // skip candidates have no context
        LayerId layer = subnet.layer(b);
        if (_memory.tracked(layer)) {
            // Tracked means the predictor anticipated this layer —
            // no synchronous swap-in stalls the stage, the event the
            // cache-hit metric counts (§3.3).
            _memory.hitStats().hit();
        } else {
            _memory.hitStats().miss();
            fetchLayer(layer, bytes);
            _stats.syncFetches++;
            _stats.syncFetchedBytes += bytes;
        }
        _memory.touch(layer, now);
    }

    if (_mode == MemoryMode::SwapOnDemand) {
        _lastTaskKeys.clear();
        for (int b = lo; b <= hi; b++)
            _lastTaskKeys.push_back(subnet.layer(b).key());
        std::sort(_lastTaskKeys.begin(), _lastTaskKeys.end());
    }
}

void
ExecContextCache::evictSubnet(const Subnet &subnet, int lo, int hi)
{
    if (_mode != MemoryMode::PredictivePrefetch)
        return;
    for (int b = lo; b <= hi; b++) {
        if (_space.spec(b, subnet.choice(b)).paramBytes > 0)
            evictLayer(subnet.layer(b));
    }
}

} // namespace naspipe
