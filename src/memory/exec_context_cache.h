/**
 * @file
 * ExecContextCache: the context manager ported to the threaded
 * executor.
 *
 * The simulator's ContextManager (§3.1, §4.2) is tied to the
 * discrete-event clock and the simulated DMA engines; a StageWorker
 * thread has neither. This class keeps the same resident-set policy —
 * predictor-driven prefetch, hit/miss classification at execution
 * time ("whether an ML layer's parameter was in GPU memory before its
 * execution", Table 2), eviction of a subnet's stage context after
 * its backward pass, and the §4.2 memory-limit check that evicts LRU
 * idle layers before admitting a copy over budget — but replaces
 * simulated time with a monotonic per-worker access counter. The
 * counter gives LRU decisions the same shape the simulator's clock
 * does: layers touched by the task being executed carry the current
 * count and are never victims of that task's own admissions.
 *
 * The cache is pure bookkeeping: parameters actually live in the
 * shared ParameterStore, and nothing here gates execution or
 * synchronizes threads — so residency decisions cannot perturb the
 * bitwise-reproducible training trajectory. Each StageWorker owns one
 * instance and is its only caller; stats are read after join().
 */

#ifndef NASPIPE_MEMORY_EXEC_CONTEXT_CACHE_H
#define NASPIPE_MEMORY_EXEC_CONTEXT_CACHE_H

#include <cstdint>
#include <vector>

#include "memory/context_manager.h"
#include "memory/gpu_memory.h"
#include "schedule/scheduler.h"
#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {

/**
 * Per-worker parameter-residency bookkeeping.
 */
class ExecContextCache
{
  public:
    /**
     * @param space the search space
     * @param mode memory management strategy (AllResident = no-op)
     * @param budgetBytes parameter-cache budget; 0 means unlimited
     */
    ExecContextCache(const SearchSpace &space, MemoryMode mode,
                     std::uint64_t budgetBytes);

    MemoryMode mode() const { return _mode; }
    std::uint64_t budgetBytes() const { return _budgetBytes; }

    /**
     * Predictor-driven asynchronous fetch of @p subnet's context for
     * blocks [lo, hi]. No-op outside PredictivePrefetch mode.
     */
    void prefetch(const Subnet &subnet, int lo, int hi);

    /**
     * Make @p subnet's blocks [lo, hi] resident for execution,
     * classifying each layer as hit (prefetched in time) or miss
     * (synchronous fetch).
     */
    void ensureResident(const Subnet &subnet, int lo, int hi);

    /**
     * Evict @p subnet's stage context after its backward pass
     * (PredictivePrefetch).
     */
    void evictSubnet(const Subnet &subnet, int lo, int hi);

    /** Resident-set accounting. */
    const GpuMemoryManager &memory() const { return _memory; }

    /** Cache-hit rate over all ensureResident classifications. */
    double hitRate() const { return _memory.hitStats().rate(); }

    const ContextStats &stats() const { return _stats; }

  private:
    void fetchLayer(const LayerId &layer, std::uint64_t bytes);
    void evictLayer(const LayerId &layer);
    void enforceBudget(std::uint64_t incomingBytes);

    const SearchSpace &_space;
    MemoryMode _mode;
    std::uint64_t _budgetBytes;
    /// Logical access counter standing in for the simulator clock.
    Tick _clock = 0;
    GpuMemoryManager _memory;
    ContextStats _stats;
    /// SwapOnDemand: layer keys of the previously executed task.
    std::vector<std::uint64_t> _lastTaskKeys;
};

} // namespace naspipe

#endif // NASPIPE_MEMORY_EXEC_CONTEXT_CACHE_H
