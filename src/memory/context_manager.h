/**
 * @file
 * Context manager: the per-stage process that keeps the right layer
 * parameters on the GPU (§3.1, §4.2).
 *
 * The manager owns the stage's resident-set bookkeeping and the DMA
 * traffic. Under PredictivePrefetch (NASPipe) it asynchronously
 * fetches the contexts the predictor requests and evicts a subnet's
 * stage context right after its backward pass. Under SwapOnDemand
 * (VPipe) there is no lookahead: the missing context is swapped in
 * synchronously when execution reaches it, after evicting the
 * previous task's context. Under AllResident (GPipe/PipeDream and
 * the w/o-predictor ablation) everything lives on the GPU and the
 * manager is a no-op.
 */

#ifndef NASPIPE_MEMORY_CONTEXT_MANAGER_H
#define NASPIPE_MEMORY_CONTEXT_MANAGER_H

#include <cstdint>
#include <set>
#include <vector>

#include "hw/gpu.h"
#include "memory/gpu_memory.h"
#include "schedule/scheduler.h"
#include "sim/simulator.h"
#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {

/** DMA and hit-rate statistics of one stage's context manager. */
struct ContextStats {
    std::uint64_t prefetchedBytes = 0;
    std::uint64_t syncFetchedBytes = 0;
    std::uint64_t evictedBytes = 0;
    std::uint64_t prefetchRequests = 0;
    std::uint64_t syncFetches = 0;
    /// LRU evictions forced by the memory-limit check (§4.2).
    std::uint64_t forcedEvictions = 0;
    /// Copies admitted above budget because nothing was evictable.
    std::uint64_t overBudgetFetches = 0;
};

/**
 * Per-stage context manager.
 */
class ContextManager
{
  public:
    /**
     * @param sim owning simulator
     * @param space the search space
     * @param gpu the stage's GPU (supplies the DMA engines)
     * @param mode memory management strategy
     * @param budgetBytes parameter-cache budget; "NASPipe invokes a
     *        GPU memory limit checking before it copies an operator
     *        to GPU" (§4.2) — a copy that would exceed the budget
     *        first evicts least-recently-used idle layers. 0 means
     *        unlimited.
     */
    ContextManager(Simulator &sim, const SearchSpace &space, Gpu &gpu,
                   MemoryMode mode, std::uint64_t budgetBytes = 0);

    MemoryMode mode() const { return _mode; }
    std::uint64_t budgetBytes() const { return _budgetBytes; }

    /**
     * Predictor-driven asynchronous fetch of @p subnet's context for
     * blocks [lo, hi]. No-op outside PredictivePrefetch mode.
     */
    void prefetch(const Subnet &subnet, int lo, int hi);

    /**
     * Make @p subnet's blocks [lo, hi] resident for execution.
     * Classifies each layer as hit/miss (when @p countStats), issues
     * synchronous fetches for misses, and returns the time at which
     * every layer is usable.
     */
    Tick ensureResident(const Subnet &subnet, int lo, int hi,
                        bool countStats = true);

    /**
     * Evict @p subnet's stage context after its backward pass
     * (PredictivePrefetch); parameters are dirty, so the copy-back
     * occupies the D2H engine.
     */
    void evictSubnet(const Subnet &subnet, int lo, int hi);

    /** Resident-set accounting. */
    const GpuMemoryManager &memory() const { return _memory; }

    /** Cache-hit rate over all ensureResident classifications. */
    double cacheHitRate() const { return _memory.hitStats().rate(); }

    const ContextStats &stats() const { return _stats; }

    void reset();

  private:
    Tick fetchLayer(const LayerId &layer, std::uint64_t bytes);
    void evictLayer(const LayerId &layer);
    void enforceBudget(std::uint64_t incomingBytes);

    Simulator &_sim;
    const SearchSpace &_space;
    Gpu &_gpu;
    MemoryMode _mode;
    std::uint64_t _budgetBytes;
    GpuMemoryManager _memory;
    ContextStats _stats;
    /// SwapOnDemand: layer keys of the previously executed task.
    std::vector<std::uint64_t> _lastTaskKeys;
};

} // namespace naspipe

#endif // NASPIPE_MEMORY_CONTEXT_MANAGER_H
