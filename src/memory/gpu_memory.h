/**
 * @file
 * Per-GPU parameter cache accounting.
 *
 * Tracks which candidate layers' parameters are resident in one GPU's
 * memory, when an in-flight copy becomes usable, and the hit/miss
 * statistics behind Table 2's "Cache Hit" column ("collected by
 * checking whether an ML layer's parameter was in GPU memory before
 * its execution").
 */

#ifndef NASPIPE_MEMORY_GPU_MEMORY_H
#define NASPIPE_MEMORY_GPU_MEMORY_H

#include <cstdint>
#include <map>

#include "common/stats.h"
#include "sim/event.h"
#include "supernet/layer.h"

namespace naspipe {

/** Residency state of one layer on one GPU. */
struct ResidentLayer {
    std::uint64_t bytes = 0;
    Tick availableAt = 0;  ///< copy completion time
    Tick lastUse = 0;      ///< for LRU eviction decisions
};

/**
 * Resident-set bookkeeping for one GPU.
 */
class GpuMemoryManager
{
  public:
    GpuMemoryManager() = default;

    /** Whether @p layer is tracked (copy may still be in flight). */
    bool tracked(const LayerId &layer) const;

    /** Whether @p layer is resident and usable at @p now. */
    bool usable(const LayerId &layer, Tick now) const;

    /**
     * Record the start of a copy for @p layer completing at
     * @p availableAt. No-op if already tracked (the earlier copy
     * wins); returns the effective availability time.
     */
    Tick admit(const LayerId &layer, std::uint64_t bytes,
               Tick availableAt);

    /** Availability time of a tracked layer. */
    Tick availableAt(const LayerId &layer) const;

    /** Record a use of @p layer at @p now (LRU bookkeeping). */
    void touch(const LayerId &layer, Tick now);

    /** Remove @p layer; returns its bytes (0 if not tracked). */
    std::uint64_t evict(const LayerId &layer);

    /** Bytes currently tracked (resident + in flight). */
    std::uint64_t residentBytes() const { return _residentBytes; }

    /** High-water mark of tracked bytes. */
    std::uint64_t peakBytes() const { return _peakBytes; }

    /** Number of tracked layers. */
    std::size_t residentLayers() const { return _layers.size(); }

    /** Hit/miss accounting (callers classify at dispatch time). */
    RatioStat &hitStats() { return _hits; }
    const RatioStat &hitStats() const { return _hits; }

    /**
     * The least-recently-used layer whose last use is before
     * @p before; returns false if none. Used for capacity pressure.
     */
    bool lruVictim(LayerId &victim, Tick before) const;

    void reset();

  private:
    std::map<std::uint64_t, ResidentLayer> _layers;
    std::uint64_t _residentBytes = 0;
    std::uint64_t _peakBytes = 0;
    RatioStat _hits;
};

} // namespace naspipe

#endif // NASPIPE_MEMORY_GPU_MEMORY_H
