#include "memory/context_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

ContextManager::ContextManager(Simulator &sim, const SearchSpace &space,
                               Gpu &gpu, MemoryMode mode,
                               std::uint64_t budgetBytes)
    : _sim(sim), _space(space), _gpu(gpu), _mode(mode),
      _budgetBytes(budgetBytes)
{
}

void
ContextManager::enforceBudget(std::uint64_t incomingBytes)
{
    if (_budgetBytes == 0)
        return;
    // The §4.2 memory-limit check: before copying an operator in,
    // make room by pushing out least-recently-used layers that are
    // not in use at this instant.
    while (_memory.residentBytes() + incomingBytes > _budgetBytes) {
        LayerId victim;
        if (!_memory.lruVictim(victim, _sim.now())) {
            // Everything resident is in use right now; admit over
            // budget rather than deadlock (the runtime's retry path).
            _stats.overBudgetFetches++;
            return;
        }
        evictLayer(victim);
        _stats.forcedEvictions++;
    }
}

Tick
ContextManager::fetchLayer(const LayerId &layer, std::uint64_t bytes)
{
    enforceBudget(bytes);
    // Queue the copy on the H2D engine; pinned CPU memory makes it
    // asynchronous with compute (§4.2).
    Tick done = _gpu.h2d().transferFrom(_sim.now(), bytes);
    return _memory.admit(layer, bytes, done);
}

void
ContextManager::evictLayer(const LayerId &layer)
{
    std::uint64_t bytes = _memory.evict(layer);
    if (bytes) {
        // Dirty parameters are copied back to pinned CPU storage.
        _gpu.d2h().transferFrom(_sim.now(), bytes);
        _stats.evictedBytes += bytes;
    }
}

void
ContextManager::prefetch(const Subnet &subnet, int lo, int hi)
{
    if (_mode != MemoryMode::PredictivePrefetch)
        return;
    _stats.prefetchRequests++;
    for (int b = lo; b <= hi; b++) {
        std::uint64_t bytes =
            _space.spec(b, subnet.choice(b)).paramBytes;
        if (bytes == 0)
            continue;  // skip candidates have no context
        LayerId layer = subnet.layer(b);
        if (_memory.tracked(layer))
            continue;
        fetchLayer(layer, bytes);
        _stats.prefetchedBytes += bytes;
    }
}

Tick
ContextManager::ensureResident(const Subnet &subnet, int lo, int hi,
                               bool countStats)
{
    if (_mode == MemoryMode::AllResident)
        return _sim.now();

    // VPipe behaviour: before switching to the new task's context,
    // push out the previous task's layers that it does not reuse.
    if (_mode == MemoryMode::SwapOnDemand && !_lastTaskKeys.empty()) {
        std::vector<std::uint64_t> needed;
        needed.reserve(static_cast<std::size_t>(hi - lo + 1));
        for (int b = lo; b <= hi; b++)
            needed.push_back(subnet.layer(b).key());
        std::sort(needed.begin(), needed.end());
        for (std::uint64_t key : _lastTaskKeys) {
            if (!std::binary_search(needed.begin(), needed.end(),
                                    key)) {
                LayerId layer{
                    static_cast<std::uint32_t>(key >> 32),
                    static_cast<std::uint32_t>(key & 0xffffffffULL)};
                evictLayer(layer);
            }
        }
        _lastTaskKeys.clear();
    }

    Tick ready = _sim.now();
    for (int b = lo; b <= hi; b++) {
        std::uint64_t bytes =
            _space.spec(b, subnet.choice(b)).paramBytes;
        if (bytes == 0)
            continue;  // skip candidates have no context
        LayerId layer = subnet.layer(b);
        Tick available;
        if (_memory.tracked(layer)) {
            available = _memory.availableAt(layer);
            // Tracked means the predictor anticipated this layer: it
            // is resident or its asynchronous copy is in flight, so
            // no *synchronous* swap-in stalls the stage — the event
            // the cache-hit metric counts (§3.3).
            if (countStats)
                _memory.hitStats().hit();
        } else {
            if (countStats)
                _memory.hitStats().miss();
            available = fetchLayer(layer, bytes);
            _stats.syncFetches++;
            _stats.syncFetchedBytes += bytes;
        }
        _memory.touch(layer, std::max(available, _sim.now()));
        ready = std::max(ready, available);
    }

    if (_mode == MemoryMode::SwapOnDemand) {
        _lastTaskKeys.clear();
        for (int b = lo; b <= hi; b++)
            _lastTaskKeys.push_back(subnet.layer(b).key());
        std::sort(_lastTaskKeys.begin(), _lastTaskKeys.end());
    }
    return ready;
}

void
ContextManager::evictSubnet(const Subnet &subnet, int lo, int hi)
{
    if (_mode != MemoryMode::PredictivePrefetch)
        return;
    for (int b = lo; b <= hi; b++) {
        if (_space.spec(b, subnet.choice(b)).paramBytes > 0)
            evictLayer(subnet.layer(b));
    }
}

void
ContextManager::reset()
{
    _memory.reset();
    _stats = ContextStats();
    _lastTaskKeys.clear();
}

} // namespace naspipe
