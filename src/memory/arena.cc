#include "memory/arena.h"

#include <cstring>

#include "common/logging.h"

namespace naspipe {

Arena::Arena(std::size_t chunkFloats) : _chunkFloats(chunkFloats)
{
    NASPIPE_ASSERT(chunkFloats > 0, "arena chunk must be non-empty");
}

Arena::Chunk &
Arena::chunkWithRoom(std::size_t n)
{
    // First-fit over existing slabs keeps reset()/reuse allocation-
    // free once the high-water mark is reached.
    for (Chunk &chunk : _chunks) {
        if (chunk.capacity - chunk.used >= n)
            return chunk;
    }
    Chunk fresh;
    fresh.capacity = n > _chunkFloats ? n : _chunkFloats;
    fresh.data = std::make_unique<float[]>(fresh.capacity);
    _reserved += fresh.capacity;
    _chunks.push_back(std::move(fresh));
    return _chunks.back();
}

float *
Arena::allocFloats(std::size_t n)
{
    Chunk &chunk = chunkWithRoom(n);
    float *out = chunk.data.get() + chunk.used;
    chunk.used += n;
    _allocated += n;
    std::memset(out, 0, n * sizeof(float));
    return out;
}

void
Arena::reset()
{
    for (Chunk &chunk : _chunks)
        chunk.used = 0;
    _allocated = 0;
}

} // namespace naspipe
