/**
 * @file
 * Swap-cost model and memory capacity planning.
 *
 * Two concerns live here. SwapModel converts parameter bytes to
 * CPU<->GPU copy times over pinned memory (the asynchronous copy_()
 * path of §4.2). CapacityPlanner derives, for a (search space, system
 * model, pipeline depth) combination, what actually fits in GPU
 * memory: the per-GPU resident parameter footprint, the pinned CPU
 * storage, and — most importantly — the largest supported batch size,
 * which Table 2 shows is the dominant lever behind NASPipe's
 * throughput advantage.
 */

#ifndef NASPIPE_MEMORY_SWAP_MODEL_H
#define NASPIPE_MEMORY_SWAP_MODEL_H

#include <cstdint>

#include "hw/cluster.h"
#include "schedule/scheduler.h"
#include "supernet/profile.h"
#include "supernet/search_space.h"

namespace naspipe {

/**
 * Converts bytes to swap durations over one PCIe DMA engine.
 */
class SwapModel
{
  public:
    /**
     * @param bytesPerSec sustained pinned-memory copy bandwidth
     * @param latency fixed per-copy setup latency
     */
    explicit SwapModel(double bytesPerSec = kPcieBytesPerSec,
                       Tick latency = 10 * kTicksPerUs);

    /** Copy duration for @p bytes. */
    Tick swapTime(std::uint64_t bytes) const;

    /** Copy duration in milliseconds (for reports / Table 5). */
    double swapMs(std::uint64_t bytes) const;

    double bytesPerSec() const { return _bytesPerSec; }

  private:
    double _bytesPerSec;
    Tick _latency;
};

/** Workload-dependent activation/compute calibration constants. */
struct ActivationModel {
    /**
     * Bytes of activation + workspace one sample occupies across the
     * whole pipeline while its subnet is in flight (before the
     * recompute / version multipliers below distribute it per GPU).
     */
    std::uint64_t bytesPerSample = 0;
    /** Footprint multiplier with activation recomputation on. */
    double recomputeFactor = 0.25;
    /** Largest batch the workload's algorithm uses (paper Table 2). */
    int maxBatch = 0;
    /** Smallest batch a system can usefully train with. */
    int minBatch = 8;
    /**
     * Bytes per sample of the boundary activation shipped between
     * adjacent stages (and of the matching gradient message).
     */
    std::uint64_t boundaryBytesPerSample = 0;
    /**
     * Kernel fixed-overhead expressed as an equivalent batch size:
     * a task at batch B takes time proportional to
     * (overheadBatch + B), and its useful ALU efficiency is
     * B / (overheadBatch + B). Captures why small-batch baselines
     * burn wall-clock without filling the SM array (Table 2's low
     * GPU ALU rows for GPipe/PipeDream).
     */
    int overheadBatch = 0;
    /** Global compute-time scale calibrated to Table 2's Exec. */
    double computeScale = 1.0;
};

/** Default activation model for a space family. */
ActivationModel defaultActivationModel(SpaceFamily family);

/** What the planner decided for one (space, system, D) combination. */
struct CapacityPlan {
    bool fits = false;            ///< false => OOM (paper: NLP.c0)
    int batch = 0;                ///< largest supported batch
    std::uint64_t residentParamBytesPerGpu = 0;
    std::uint64_t activationBytesPerGpu = 0;
    std::uint64_t cpuMemBytesTotal = 0;  ///< pinned CPU storage
    std::uint64_t reportedParamBytes = 0;  ///< Table 2 "Para." column
};

/**
 * Derives batch sizes and memory footprints (Table 2's B.S., GPU
 * Mem., CPU Mem. and Para. columns) from first principles of each
 * system's residency strategy.
 */
class CapacityPlanner
{
  public:
    /**
     * @param space the search space (only its aggregate sizes are
     *        copied; the planner does not retain a reference)
     * @param gpu GPU parameters (capacity)
     * @param activation workload calibration (defaulted per family)
     */
    CapacityPlanner(const SearchSpace &space, const GpuConfig &gpu,
                    const ActivationModel &activation);

    /** Convenience: family-default activation model. */
    CapacityPlanner(const SearchSpace &space, const GpuConfig &gpu);

    /** Plan for @p system at pipeline depth @p numStages. */
    CapacityPlan plan(const SystemModel &system, int numStages) const;

    /**
     * Plan with an externally pinned batch (the paper's
     * reproducibility methodology fixes the batch across GPU
     * counts). fits reflects whether the pinned batch's activations
     * still fit next to the resident parameters.
     */
    CapacityPlan planWithBatch(const SystemModel &system,
                               int numStages, int batch) const;

    const ActivationModel &activation() const { return _activation; }

    /**
     * GPU bytes not usable for parameters/activations: CUDA context,
     * cuDNN workspaces, communication buffers and allocator
     * fragmentation. 2.5 GB on an 11 GB 2080Ti, calibrated so the
     * derived batch sizes land on Table 2 (GPipe NLP.c1 ~32,
     * PipeDream ~12-16) and NLP.c0 exceeds capacity for the
     * all-resident baselines, as the paper reports.
     */
    static constexpr std::uint64_t kReserveBytes = 2560ULL << 20;

  private:
    /** Resident parameter bytes per GPU under @p system. */
    double residentParams(const SystemModel &system,
                          int numStages) const;

    /** Activation bytes one sample occupies per GPU. */
    double perSampleBytes(const SystemModel &system,
                          int numStages) const;

    std::uint64_t _supernetBytes;
    std::uint64_t _subnetBytes;
    GpuConfig _gpu;
    ActivationModel _activation;
};

} // namespace naspipe

#endif // NASPIPE_MEMORY_SWAP_MODEL_H
