#include "runtime/stage.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

Stage::Stage(Simulator &sim, const SearchSpace &space, Gpu &gpu,
             int index, int numStages, MemoryMode memory, Hooks hooks,
             std::uint64_t cacheBudgetBytes)
    : _sim(sim), _gpu(gpu), _index(index), _numStages(numStages),
      _hooks(std::move(hooks)), _deps(&space),
      _ctx(std::make_unique<ContextManager>(sim, space, gpu, memory,
                                            cacheBudgetBytes))
{
    NASPIPE_ASSERT(index >= 0 && index < numStages,
                   "stage index out of range");
    NASPIPE_ASSERT(_hooks.blockRange, "stage requires blockRange hook");
    NASPIPE_ASSERT(_hooks.upstreamWritesDone,
                   "stage requires upstreamWritesDone hook");
}

void
Stage::pushFwd(SubnetId id)
{
    NASPIPE_ASSERT(std::find(_fwdQueue.begin(), _fwdQueue.end(), id) ==
                       _fwdQueue.end(),
                   "SN", id, " already in forward queue");
    _fwdQueue.push_back(id);
}

void
Stage::pushBwd(SubnetId id, std::vector<PendingBackward> nextBwds)
{
    NASPIPE_ASSERT(std::find(_bwdQueue.begin(), _bwdQueue.end(), id) ==
                       _bwdQueue.end(),
                   "SN", id, " already in backward queue");
    _bwdQueue.push_back(id);
    _bwdMeta.emplace(id, std::move(nextBwds));
}

void
Stage::popFwd(SubnetId id)
{
    auto it = std::find(_fwdQueue.begin(), _fwdQueue.end(), id);
    NASPIPE_ASSERT(it != _fwdQueue.end(), "SN", id,
                   " not in forward queue");
    _fwdQueue.erase(it);
}

std::vector<PendingBackward>
Stage::popBwd(SubnetId id)
{
    auto it = std::find(_bwdQueue.begin(), _bwdQueue.end(), id);
    NASPIPE_ASSERT(it != _bwdQueue.end(), "SN", id,
                   " not in backward queue");
    _bwdQueue.erase(it);
    auto meta = _bwdMeta.find(id);
    NASPIPE_ASSERT(meta != _bwdMeta.end(), "missing backward metadata");
    std::vector<PendingBackward> out = std::move(meta->second);
    _bwdMeta.erase(meta);
    return out;
}

} // namespace naspipe
