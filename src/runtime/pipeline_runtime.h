/**
 * @file
 * The pipeline runtime: executes one supernet training run of any
 * SystemModel (NASPipe, GPipe, PipeDream, VPipe or an ablation) over
 * the simulated cluster, driving the numeric training engine in the
 * exact interleaving the schedule produces.
 *
 * This is Algorithm 1 as an event-driven simulation: stages dispatch
 * tasks when their GPU frees, forward activations and backward
 * gradients travel over the stage links, the context manager swaps
 * layer parameters guided by the predictor, and every parameter READ
 * and WRITE lands on the shared ParameterStore so the run's training
 * result is a real, bitwise-comparable set of weights.
 */

#ifndef NASPIPE_RUNTIME_PIPELINE_RUNTIME_H
#define NASPIPE_RUNTIME_PIPELINE_RUNTIME_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "memory/swap_model.h"
#include "obs/run_observations.h"
#include "partition/mirror.h"
#include "partition/partitioner.h"
#include "partition/placement.h"
#include "runtime/messages.h"
#include "runtime/metrics.h"
#include "fault/fault_plan.h"
#include "schedule/bsp_scheduler.h"
#include "schedule/scheduler.h"
#include "sim/trace.h"
#include "supernet/sampler.h"
#include "train/convergence.h"
#include "train/numeric_executor.h"

namespace naspipe {

/** Configuration of one training run. */
struct RuntimeConfig {
    SystemModel system;
    int numStages = 8;         ///< pipeline depth D == GPU count
    int totalSubnets = 64;     ///< training steps (one batch each)
    int batch = 0;             ///< 0: derive from the capacity planner
    std::uint64_t seed = 7;    ///< master seed (sampler, init, data)
    bool numeric = true;       ///< drive the numeric training engine
    bool traceEnabled = false; ///< record the task timeline
    bool evolutionSearch = false;  ///< evolution sampler (else SPOS)
    /**
     * Hybrid multi-space traversal (§5.5): > 0 explores that many
     * sub-search-spaces simultaneously via HybridSampler (requires a
     * space with a skip candidate). Overrides evolutionSearch.
     */
    int hybridStreams = 0;
    /**
     * Custom exploration frontend: when set, the runtime retrieves
     * its subnet stream from this factory's sampler instead of the
     * built-in ones (the Retiarii-frontend role of §3.1). Overrides
     * hybridStreams and evolutionSearch. The factory is called once
     * per run with the space and the run's master seed; determinism
     * is the sampler's responsibility.
     */
    std::function<std::unique_ptr<SubnetSampler>(
        const SearchSpace &, std::uint64_t)>
        samplerFactory;
    /**
     * Logical feedback lag for feedback-driven samplers (evolution):
     * subnet i is not retrieved until the scores of all subnets
     * <= i - lag have been delivered. This makes the sampler's view
     * a pure function of (seed, losses-by-ID) — independent of GPU
     * count and completion timing — extending Definition 1's
     * reproducibility to feedback-driven search. 0 picks the default
     * (32 when evolutionSearch, disabled otherwise); negative
     * disables explicitly.
     */
    int feedbackLag = 0;
    SgdConfig sgd;
    /**
     * Storage precision of the numeric trajectory (see
     * tensor/kernels/precision.h). Both modes are bitwise-specified;
     * each has its own golden hashes. A checkpoint resumes only under
     * the precision that produced it.
     */
    kernels::PrecisionMode precision = kernels::PrecisionMode::Fp32;
    ClusterConfig cluster;     ///< numStages is overridden
    /** Workload calibration; bytesPerSample==0 => family default. */
    ActivationModel activation;
    double scoreScale = 0.0;   ///< 0: family default (24 / 90)

    /** @name Fault injection and recovery
     * Deterministic fault plan plus the checkpoint/recovery knobs.
     * Fail-stop faults (crash/drop) freeze the run, roll back to the
     * last drained checkpoint, and replay the lost subnets in CSP
     * order; transient faults (stall/degrade) only perturb timing.
     * @{ */
    std::vector<FaultSpec> faults;  ///< fires on completion count
    /**
     * Write a run checkpoint every this many completed subnets, at a
     * pipeline-drain barrier (injection pauses at the boundary so no
     * subnet is in flight). 0 disables mid-run checkpointing — a
     * fail-stop fault then restarts training from subnet 0.
     */
    int ckptInterval = 0;
    std::string ckptPath;    ///< also persist checkpoints here
    std::string resumePath;  ///< start from this checkpoint file
    /** Modeled checkpoint-write bandwidth (local NVMe scale). */
    double ckptWriteBytesPerSec = 2e9;
    /** Modeled detection + restart wall clock per recovery. */
    double recoverySeconds = 5.0;
    /**
     * Consecutive recoveries (no completed subnet in between) before
     * the run gives up; the CLI maps exhaustion to exit code 5.
     */
    int recoveryMaxRetries = 3;
    /** Base of the modeled exponential recovery backoff. */
    double recoveryBackoffSeconds = 1.0;
    /**
     * Arm the watchdog's wall-clock hang deadline (threaded executor
     * only). Crash detection is state-based and always on; the wall
     * deadline is opt-in because it is timing-dependent — the CLI
     * enables it with --obs-wall.
     */
    bool wallWatchdog = false;
    /** Wall deadline for the hang detector when wallWatchdog is on. */
    double watchdogDeadlineSeconds = 30.0;
    /**
     * Heartbeat scan cadence of the watchdog's polling thread in
     * milliseconds (CLI --watchdog-interval-ms). Purely a detection
     * latency / idle-wakeup trade-off: crash detection is state-based,
     * so the cadence never changes what is detected, only how fast —
     * serve tests tighten it, battery-friendly runs relax it.
     */
    int watchdogPollMs = 2;
    /**
     * Called by the threaded executor at the start of each recovery
     * epoch with the 1-based recovery count, before workers respawn.
     * Recovery recreates the commit gate, so per-layer chains restart
     * at rank 0; a live CspOracle attached via commitObserver must
     * reset its chain cursors here (CspOracle::resetLiveChains).
     */
    std::function<void(int)> recoveryObserver;
    /** @} */

    /**
     * Observer of every CommitGate commit, called from worker threads
     * as (layerKey, committing subnet, chain rank, stage). Honored by
     * the threaded executor only (the simulator has no commit gate);
     * the determinism audit layer's CspOracle attaches here to check
     * commit monotonicity live. Must be thread-safe.
     */
    std::function<void(std::uint64_t, SubnetId, std::size_t, int)>
        commitObserver;
};

/** Everything a run produces. */
struct RunResult {
    bool oom = false;          ///< capacity planner rejected the run
    bool failed = false;       ///< run aborted (bad resume, etc.)
    /** Failed because recovery retries ran out (CLI exit 5). */
    bool retriesExhausted = false;
    std::string error;         ///< diagnostic when failed
    CapacityPlan plan;
    RunMetrics metrics;
    std::vector<ConvergencePoint> curve;
    std::map<SubnetId, float> losses;  ///< per-subnet training loss
    std::vector<Subnet> sampled;       ///< subnets in sequence order
    /** Per-subnet stage partitions, parallel to sampled — the other
     *  half of the schedule the logical-mode observability layer
     *  reconstructs timelines from. */
    std::vector<SubnetPartition> partitions;
    /** Threaded executor's wall-mode stage observations (empty for
     *  simulated runs). Timing-stability data; see src/obs/. */
    obs::RunObservations observations;
    SubnetId bestSubnet = -1;          ///< post-training search winner
    double searchAccuracy = 0.0;
    std::uint64_t supernetHash = 0;    ///< bitwise weight fingerprint
    std::shared_ptr<ParameterStore> store;  ///< weights + access log
    std::shared_ptr<Trace> trace;      ///< when traceEnabled
};

/**
 * Runs one training simulation.
 */
class PipelineRuntime
{
  public:
    /**
     * @param space the search space (must outlive the runtime)
     * @param config run configuration
     */
    PipelineRuntime(const SearchSpace &space,
                    const RuntimeConfig &config);

    ~PipelineRuntime();

    PipelineRuntime(const PipelineRuntime &) = delete;
    PipelineRuntime &operator=(const PipelineRuntime &) = delete;

    /** Execute the run to completion and collect the results. */
    RunResult run();

    /** Effective score scale (family default applied). */
    double scoreScale() const { return _scoreScale; }

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
    double _scoreScale;
};

/** Convenience wrapper: configure and run in one call. */
RunResult runTraining(const SearchSpace &space,
                      const RuntimeConfig &config);

} // namespace naspipe

#endif // NASPIPE_RUNTIME_PIPELINE_RUNTIME_H
