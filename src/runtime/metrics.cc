#include "runtime/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace naspipe {

std::string
RunMetrics::summary() const
{
    std::ostringstream oss;
    oss << finishedSubnets << " subnets in "
        << formatFixed(simSeconds, 2) << "s, "
        << formatFixed(samplesPerSec, 1) << " samples/s, bubble "
        << formatFixed(bubbleRatio, 2) << ", ALU "
        << formatFactor(totalAluUtilization, 1) << ", cache "
        << formatCacheHitRate(cacheHitRate);
    if (faultsInjected > 0) {
        oss << ", faults " << faultsInjected << " (" << recoveries
            << " recoveries, " << subnetsReplayed << " replayed, "
            << formatFixed(recoverySeconds + lostComputeSeconds, 2)
            << "s lost)";
        if (retriesExhausted)
            oss << ", retries exhausted";
    }
    if (checkpointsWritten > 0)
        oss << ", ckpts " << checkpointsWritten;
    if (execWorkers > 0) {
        oss << ", threads " << execWorkers << " (gate wait "
            << formatFixed(gateWaitSeconds, 2) << "s, "
            << gateCommits << " commits)";
    }
    return oss.str();
}

double
RunMetrics::aluImbalance() const
{
    if (perGpuAlu.empty())
        return 1.0;
    double lo = perGpuAlu.front(), hi = perGpuAlu.front();
    for (double u : perGpuAlu) {
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    return lo > 0.0 ? hi / lo : 1.0;
}

std::string
formatCacheHitRate(const std::optional<double> &rate)
{
    return rate ? formatPercent(*rate) : std::string("N/A");
}

double
kernelEfficiency(int batch, int overheadBatch)
{
    NASPIPE_ASSERT(batch > 0, "batch must be positive");
    NASPIPE_ASSERT(overheadBatch >= 0, "overhead must be >= 0");
    return static_cast<double>(batch) /
           static_cast<double>(batch + overheadBatch);
}

} // namespace naspipe
