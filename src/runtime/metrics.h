/**
 * @file
 * End-of-run metrics: everything Table 2, Figures 5-7 and the
 * reproducibility tables report about one training run.
 */

#ifndef NASPIPE_RUNTIME_METRICS_H
#define NASPIPE_RUNTIME_METRICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace naspipe {

/** Aggregate metrics of one simulated training run. */
struct RunMetrics {
    // Progress.
    int finishedSubnets = 0;
    int batch = 0;
    double simSeconds = 0.0;

    // Throughput.
    double samplesPerSec = 0.0;
    double subnetsPerHour = 0.0;

    // Pipeline quality.
    double bubbleRatio = 0.0;       ///< mean idle fraction (Table 2)
    double meanExecSeconds = 0.0;   ///< per-subnet busy time (Exec.)
    double totalAluUtilization = 0.0;  ///< sum over GPUs (Fig 7)
    std::vector<double> perGpuAlu;     ///< per-GPU utilization
    /** Max over min per-GPU ALU: the imbalance §5.4 blames for the
     * baselines' poor scaling (1.0 = perfectly even). */
    double aluImbalance() const;

    // Memory.
    double gpuMemFactor = 0.0;      ///< total GPU mem / one GPU (7.8x)
    std::uint64_t cpuMemBytes = 0;  ///< pinned CPU storage
    std::uint64_t reportedParamBytes = 0;  ///< "Para." column

    // Context management. No value means "no cache": AllResident
    // systems keep everything on the GPU, so a hit rate is not merely
    // unknown but meaningless — the optional makes consumers say so
    // explicitly instead of interpreting a sentinel.
    std::optional<double> cacheHitRate;
    std::uint64_t prefetchedBytes = 0;
    std::uint64_t syncFetchedBytes = 0;
    std::uint64_t cachePeakBytes = 0;    ///< max resident set seen
    std::uint64_t cacheBudgetBytes = 0;  ///< §4.2 enforced cap
    std::uint64_t mirrorSyncBytes = 0;
    std::uint64_t mirrorsCreated = 0;

    // Dispatch diagnostics: how often a free stage found nothing to
    // run, by cause.
    std::uint64_t stallEmptyQueues = 0;   ///< no arrived tasks at all
    std::uint64_t stallDependency = 0;    ///< Algorithm 2 blocked all
    std::uint64_t stallMirrorWait = 0;    ///< waiting on mirror push

    // Fault injection and recovery.
    int faultsInjected = 0;    ///< fault-plan entries that fired
    int recoveries = 0;        ///< checkpoint rollbacks performed
    int subnetsReplayed = 0;   ///< subnets redone after rollbacks
    double recoverySeconds = 0.0;     ///< detect+restart wall clock
    double lostComputeSeconds = 0.0;  ///< busy time discarded
    int retriesExhausted = 0;  ///< 1 when recovery gave up (exit 5)
    int checkpointsWritten = 0;
    std::uint64_t checkpointBytes = 0;  ///< size of the last one
    double checkpointSeconds = 0.0;     ///< total time spent writing

    // Threaded executor (ParallelRuntime). wallSeconds is real
    // wall-clock time; for threaded runs simSeconds is set to it so
    // throughput consumers work unchanged. The per-stage vectors are
    // indexed by stage and the gate numbers come from the CommitGate.
    double wallSeconds = 0.0;
    int execWorkers = 0;               ///< 0 = simulated run
    double gateWaitSeconds = 0.0;      ///< sum over workers
    std::uint64_t gateCommits = 0;
    std::vector<double> perStageBusySec;
    std::vector<double> perStageGateWaitSec;
    std::vector<double> perStageIdleSec;
    // Per-stage task counters. Forward/backward counts are
    // structural (one each per subnet per stage); deferral counts
    // depend on the real interleaving.
    std::vector<std::uint64_t> perStageForwards;
    std::vector<std::uint64_t> perStageBackwards;
    std::vector<std::uint64_t> perStageDeferrals;

    // Training quality (numeric engine).
    double finalLoss = 0.0;
    double finalScore = 0.0;
    std::uint64_t supernetHash = 0;
    int causalViolations = 0;  ///< layers w/ non-sequential history

    /** One-line summary for logs. */
    std::string summary() const;
};

/**
 * Useful-ALU efficiency of a kernel at @p batch given the fixed
 * overhead expressed as @p overheadBatch: batch / (batch + overhead).
 * Captures why tiny batches burn wall-clock without filling the SMs.
 */
double kernelEfficiency(int batch, int overheadBatch);

/**
 * Canonical rendering of an optional cache-hit rate: the percentage
 * when present, "N/A" when the system has no cache. Every report
 * surface (summary line, Table 2, CLI) uses this one formatter.
 */
std::string
formatCacheHitRate(const std::optional<double> &rate);

} // namespace naspipe

#endif // NASPIPE_RUNTIME_METRICS_H
