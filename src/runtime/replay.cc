#include "runtime/replay.h"

#include <sstream>

#include "common/logging.h"

namespace naspipe {

ScheduleSignature::ScheduleSignature(const Trace &trace)
{
    for (const TraceRecord &r : trace.taskTimeline()) {
        ScheduleStep step;
        step.start = r.start;
        step.stage = r.stage;
        step.type = r.kind == TraceKind::Forward ? TaskType::Forward
                                                 : TaskType::Backward;
        step.subnet = r.subnet;
        _steps.push_back(step);
    }
}

std::uint64_t
ScheduleSignature::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const ScheduleStep &s : _steps) {
        mix(s.start);
        mix(static_cast<std::uint64_t>(s.stage));
        mix(static_cast<std::uint64_t>(s.type));
        mix(static_cast<std::uint64_t>(s.subnet));
    }
    return h;
}

RunComparison
compareRuns(const RunResult &a, const RunResult &b)
{
    RunComparison cmp;
    cmp.sameWeights =
        a.supernetHash == b.supernetHash && a.supernetHash != 0;

    cmp.sameLosses = a.losses.size() == b.losses.size();
    if (cmp.sameLosses) {
        for (const auto &[id, loss] : a.losses) {
            auto it = b.losses.find(id);
            if (it == b.losses.end() || it->second != loss) {
                cmp.lossMismatches++;
            }
        }
        cmp.sameLosses = cmp.lossMismatches == 0;
    } else {
        cmp.lossMismatches = -1;
    }

    cmp.sameSearch = a.bestSubnet == b.bestSubnet &&
                     a.searchAccuracy == b.searchAccuracy;
    return cmp;
}

std::string
describeComparison(const RunComparison &cmp)
{
    std::ostringstream oss;
    oss << "weights " << (cmp.sameWeights ? "MATCH" : "DIFFER")
        << ", losses " << (cmp.sameLosses ? "MATCH" : "DIFFER")
        << ", search " << (cmp.sameSearch ? "MATCH" : "DIFFER")
        << " => "
        << (cmp.reproducible() ? "REPRODUCIBLE" : "NOT reproducible");
    return oss.str();
}

} // namespace naspipe
