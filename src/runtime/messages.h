/**
 * @file
 * Inter-stage pipeline messages.
 *
 * Forward messages carry a subnet's boundary activations to the next
 * stage; backward messages carry gradients to the previous stage
 * plus the pending-backward metadata the predictor consumes (§3.3:
 * "the received backward tasks ... carry the information of pending
 * backward tasks from the last stage").
 */

#ifndef NASPIPE_RUNTIME_MESSAGES_H
#define NASPIPE_RUNTIME_MESSAGES_H

#include <cstdint>
#include <vector>

#include "schedule/predictor.h"
#include "supernet/subnet.h"

namespace naspipe {

/** Activation message: stage k -> k+1. */
struct FwdMessage {
    SubnetId id = -1;
    std::uint64_t bytes = 0;
};

/** Gradient message: stage k+1 -> k. */
struct BwdMessage {
    SubnetId id = -1;
    std::uint64_t bytes = 0;
    std::vector<PendingBackward> nextBwds;
};

/**
 * Sizes of the boundary tensors a pipeline ships between stages.
 */
struct MessageSizer
{
    std::uint64_t boundaryBytesPerSample = 0;
    int batch = 1;

    /** Bytes of one forward activation message. */
    std::uint64_t
    fwdBytes() const
    {
        return boundaryBytesPerSample *
               static_cast<std::uint64_t>(batch);
    }

    /** Bytes of one backward gradient message (same shape). */
    std::uint64_t bwdBytes() const { return fwdBytes(); }
};

} // namespace naspipe

#endif // NASPIPE_RUNTIME_MESSAGES_H
