/**
 * @file
 * Deterministic replay support.
 *
 * A run's *schedule signature* is the ordered list of compute tasks
 * it executed (start time, stage, type, subnet). Replaying a
 * configuration must reproduce the signature exactly — that is the
 * "simple and deterministic training replay" the paper promises —
 * and two CSP runs on different GPU counts must agree on the
 * *training outcome* (weights, per-subnet losses) even though their
 * schedules differ. This module extracts signatures and compares
 * runs at both levels.
 */

#ifndef NASPIPE_RUNTIME_REPLAY_H
#define NASPIPE_RUNTIME_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/pipeline_runtime.h"
#include "sim/trace.h"

namespace naspipe {

/** One step of a schedule signature. */
struct ScheduleStep {
    Tick start = 0;
    int stage = -1;
    TaskType type = TaskType::Forward;
    SubnetId subnet = -1;

    bool operator==(const ScheduleStep &) const = default;
};

/** Ordered compute-task schedule of one run. */
class ScheduleSignature
{
  public:
    ScheduleSignature() = default;

    /** Extract the signature from a recorded trace. */
    explicit ScheduleSignature(const Trace &trace);

    const std::vector<ScheduleStep> &steps() const { return _steps; }
    std::size_t size() const { return _steps.size(); }

    /** Order-sensitive fingerprint of the schedule. */
    std::uint64_t hash() const;

    bool operator==(const ScheduleSignature &) const = default;

  private:
    std::vector<ScheduleStep> _steps;
};

/** Outcome-level comparison of two runs (Definition 1). */
struct RunComparison {
    bool sameWeights = false;   ///< bitwise supernet equality
    bool sameLosses = false;    ///< per-subnet losses identical
    bool sameSearch = false;    ///< same best subnet found
    int lossMismatches = 0;

    /** All three levels agree. */
    bool
    reproducible() const
    {
        return sameWeights && sameLosses && sameSearch;
    }
};

/**
 * Compare the training outcomes of two runs (typically the same
 * configuration on different GPU counts).
 */
RunComparison compareRuns(const RunResult &a, const RunResult &b);

/** Human-readable verdict line for reports. */
std::string describeComparison(const RunComparison &cmp);

} // namespace naspipe

#endif // NASPIPE_RUNTIME_REPLAY_H
