#include "runtime/pipeline_runtime.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "runtime/stage.h"
#include "schedule/csp_scheduler.h"
#include "sim/simulator.h"
#include "tensor/loss.h"
#include "train/run_checkpoint.h"

namespace naspipe {

/**
 * All run state lives here; the event callbacks capture `this`.
 */
struct PipelineRuntime::Impl {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;
    ActivationModel activation;
    double scoreScale;

    Simulator sim;
    std::unique_ptr<Cluster> cluster;
    std::vector<std::unique_ptr<Stage>> stages;
    std::unique_ptr<SchedulerPolicy> policy;
    std::unique_ptr<SubnetSampler> sampler;
    std::unique_ptr<Partitioner> partitioner;
    std::unique_ptr<HomePlacement> placement;
    std::unique_ptr<MirrorPlanner> mirrors;
    std::unique_ptr<FlushController> flushCtl;
    std::shared_ptr<ParameterStore> store;
    std::unique_ptr<NumericExecutor> exec;
    std::unique_ptr<ConvergenceTracker> tracker;
    std::shared_ptr<Trace> trace;
    SwapModel swap;
    /// Fired flags survive recovery rewinds: a replaced GPU does not
    /// crash again when the completion counter passes the trigger.
    FaultInjector injector;

    CapacityPlan plan;
    int batch = 1;
    UpdateSemantics semantics = UpdateSemantics::Immediate;
    MessageSizer sizer;

    // Bookkeeping.
    std::map<SubnetId, Subnet> subnets;  ///< never GC'd (vs deps)
    std::map<SubnetId, SubnetPartition> partitions;
    /// Mirror entries grouped per (subnet, exec stage).
    std::map<SubnetId, std::map<int, std::vector<MirrorEntry>>>
        mirrorEntries;
    /// Last WRITE to a layer: (completion tick, writer stage).
    std::map<std::uint64_t, std::pair<Tick, int>> lastWrite;
    /// Subnets that activated a layer, in ascending sequence ID.
    std::map<std::uint64_t, std::vector<SubnetId>> activators;
    /// Number of parameter updates applied per layer so far.
    std::map<std::uint64_t, std::size_t> writesApplied;
    std::map<SubnetId, double> execBusySec;
    std::map<SubnetId, float> lossAtCompute;
    std::map<SubnetId, float> losses;
    std::vector<SubnetId> pendingFinish;  ///< Deferred: await flush
    SubnetId nextScoreToReport = 0;
    std::map<SubnetId, double> scoreBuffer;

    int injected = 0;
    int finished = 0;
    int inflight = 0;
    std::uint64_t stallEmptyQueues = 0;
    std::map<std::pair<int, SubnetId>, Tick> fwdArrival;
    std::uint64_t stallDependency = 0;
    std::uint64_t stallMirrorWait = 0;

    // Fault/checkpoint state. A "phase" is one sim.run() between
    // (re)starts; the offsets carry wall-clock and busy time across
    // phases, and completionSec records absolute completion times.
    bool crashed = false;      ///< fail-stop fired; sim was stopped
    int nextCkptAt = 0;        ///< next drain barrier (completed cnt)
    double secOffset = 0.0;    ///< sim seconds before this phase
    double busyOffset = 0.0;   ///< busy seconds from the checkpoint
    std::map<SubnetId, double> completionSec;
    std::string lastCkpt;      ///< serialized last checkpoint
    int recoveries = 0;
    int subnetsReplayed = 0;
    double recoverySecondsTotal = 0.0;
    double lostComputeSeconds = 0.0;
    int checkpointsWritten = 0;
    std::uint64_t checkpointBytes = 0;
    double checkpointSecondsTotal = 0.0;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages),
          activation(c.activation.bytesPerSample
                         ? c.activation
                         : defaultActivationModel(s.family())),
          scoreScale(c.scoreScale > 0.0
                         ? c.scoreScale
                         : defaultScoreScale(s.family())),
          swap(c.cluster.gpu.pcieBytesPerSec,
               c.cluster.gpu.pcieLatency),
          injector(c.faults)
    {
        NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
        NASPIPE_ASSERT(c.totalSubnets >= 1, "need >= 1 subnet");
    }

    const Subnet &
    subnetOf(SubnetId id) const
    {
        auto it = subnets.find(id);
        NASPIPE_ASSERT(it != subnets.end(), "unknown SN", id);
        return it->second;
    }

    std::pair<int, int>
    blockRange(int stage, SubnetId id) const
    {
        auto it = partitions.find(id);
        NASPIPE_ASSERT(it != partitions.end(), "no partition for SN",
                       id);
        const SubnetPartition &p = it->second;
        int lo = p.firstBlock(stage);
        int hi = p.lastBlock(stage);
        return {lo, hi};  // lo > hi means the stage owns no blocks
    }

    bool setup();
    bool upstreamWritesDone(int stage, SubnetId id) const;
    void injectSubnets();
    bool ckptEnabled() const { return config.ckptInterval > 0; }
    int ckptStride() const;
    int boundaryAfter(int completedCount) const;
    double busySum() const;
    void checkFaults(Tick end);
    RunCheckpoint buildCheckpoint(Tick end) const;
    void takeCheckpoint(Tick end);
    void resetRunState();
    bool restore(const RunCheckpoint &ckpt);
    bool beginRecovery();
    void tryDispatch(int k);
    void startForward(int k, SubnetId id);
    void startBackward(int k, SubnetId id);
    void onSubnetComplete(int k, SubnetId id, Tick end);
    int effectiveFeedbackLag() const;
    void deliverScoresBelow(SubnetId maxIdExclusive);
    Tick taskDuration(const Subnet &sn, int lo, int hi,
                      TaskType type) const;
    Tick mirrorPushDelay(int writerStage, int readerStage,
                         std::uint64_t bytes) const;
    Tick readAvailable(const LayerId &layer, int readerStage) const;
    std::vector<PendingBackward> pendingMeta(int k) const;
    RunResult collect();
};

bool
PipelineRuntime::Impl::setup()
{
    // Capacity planning decides whether this system can run at all
    // and at which batch size; an explicitly pinned batch (the
    // reproducibility methodology) is checked against capacity too.
    CapacityPlanner planner(space, config.cluster.gpu, activation);
    plan = config.batch > 0
               ? planner.planWithBatch(model, numStages, config.batch)
               : planner.plan(model, numStages);
    if (!plan.fits)
        return false;
    batch = plan.batch;

    ClusterConfig cc = config.cluster;
    cc.numStages = numStages;
    cluster = std::make_unique<Cluster>(sim, cc);

    policy = makePolicy(model);
    if (config.samplerFactory) {
        sampler = config.samplerFactory(space, config.seed);
        NASPIPE_ASSERT(sampler, "sampler factory returned null");
    } else if (config.hybridStreams > 0) {
        sampler = std::make_unique<HybridSampler>(
            space, config.seed, config.hybridStreams);
    } else if (config.evolutionSearch) {
        sampler = std::make_unique<EvolutionSampler>(space, config.seed);
    } else {
        sampler = std::make_unique<UniformSampler>(space, config.seed);
    }
    partitioner = std::make_unique<Partitioner>(space, batch);
    placement = std::make_unique<HomePlacement>(space, numStages);
    mirrors = std::make_unique<MirrorPlanner>(space, *placement);
    if (model.bulkFlush) {
        flushCtl = std::make_unique<FlushController>(
            model.effectiveBulk(numStages));
    }
    store = std::make_shared<ParameterStore>(space, config.seed);
    store->accessLog().enabled(config.numeric);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(config.seed, "data");
    ec.sgd = config.sgd;
    ec.batch = batch;
    exec = std::make_unique<NumericExecutor>(*store, ec);
    tracker = std::make_unique<ConvergenceTracker>(scoreScale);
    trace = std::make_shared<Trace>();
    trace->enabled(config.traceEnabled);

    if (model.weightStash)
        semantics = UpdateSemantics::WeightStash;
    else if (model.bulkFlush && model.policy != PolicyKind::Csp)
        semantics = UpdateSemantics::Deferred;
    else
        semantics = UpdateSemantics::Immediate;

    sizer.boundaryBytesPerSample = activation.boundaryBytesPerSample;
    sizer.batch = batch;

    for (int k = 0; k < numStages; k++) {
        Stage::Hooks hooks;
        hooks.blockRange = [this, k](SubnetId id) {
            return blockRange(k, id);
        };
        hooks.upstreamWritesDone = [this, k](SubnetId id) {
            return upstreamWritesDone(k, id);
        };
        // The §4.2 memory-limit check. The planned footprint covers
        // the ~3 moving contexts of §3.3 (previous/current/next);
        // contexts awaiting their backward pass also linger, so the
        // enforced cap is 3x the plan — under pressure the LRU
        // awaiting-backward contexts are evicted and re-fetched by
        // the predictor's released-backward path.
        std::uint64_t cacheBudget =
            model.memory == MemoryMode::AllResident
                ? 0
                : 3 * plan.residentParamBytesPerGpu;
        stages.push_back(std::make_unique<Stage>(
            sim, space, cluster->gpu(k), k, numStages, model.memory,
            std::move(hooks), cacheBudget));
    }
    return true;
}

bool
PipelineRuntime::Impl::upstreamWritesDone(int stage, SubnetId id) const
{
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(stage, id);
    for (int b = lo; b <= hi; b++) {
        if (!space.parameterized(b, sn.choice(b)))
            continue;
        std::uint64_t key = sn.layer(b).key();
        auto actIt = activators.find(key);
        NASPIPE_ASSERT(actIt != activators.end(),
                       "candidate's own activation missing");
        const auto &ids = actIt->second;
        auto earlier = static_cast<std::size_t>(
            std::lower_bound(ids.begin(), ids.end(), id) -
            ids.begin());
        auto wIt = writesApplied.find(key);
        std::size_t applied = wIt == writesApplied.end() ? 0
                                                         : wIt->second;
        if (applied < earlier)
            return false;
    }
    return true;
}

Tick
PipelineRuntime::Impl::taskDuration(const Subnet &sn, int lo, int hi,
                                    TaskType type) const
{
    // An empty stage range still costs a kernel-launch-scale hop.
    if (lo > hi)
        return ticksFromMs(0.2);
    double ms = 0.0;
    for (int b = lo; b <= hi; b++) {
        const LayerSpec &spec = space.spec(b, sn.choice(b));
        if (type == TaskType::Forward) {
            ms += spec.fwdMs;
        } else {
            ms += spec.bwdMs;
            // Activation recomputation replays the forward pass.
            if (model.recompute)
                ms += spec.fwdMs;
        }
    }
    // Kernel time scales with (overhead + batch), calibrated against
    // the family's reference batch.
    double factor =
        static_cast<double>(activation.overheadBatch + batch) /
        static_cast<double>(activation.overheadBatch +
                            space.referenceBatch());
    ms *= factor * activation.computeScale;
    return ticksFromMs(ms);
}

Tick
PipelineRuntime::Impl::mirrorPushDelay(int writerStage,
                                       int readerStage,
                                       std::uint64_t bytes) const
{
    if (writerStage == readerStage)
        return 0;
    // The active push travels GPU-to-GPU (peer DMA within a host,
    // Ethernet across hosts) without staging through host memory.
    Tick delay = 0;
    const InterconnectConfig &ic = config.cluster.interconnect;
    bool cross = cluster->hostOf(writerStage) !=
                 cluster->hostOf(readerStage);
    double bw =
        cross ? ic.crossHostBytesPerSec : ic.intraHostBytesPerSec;
    delay += (cross ? ic.crossHostLatency : ic.intraHostLatency) +
             ticksFromSec(static_cast<double>(bytes) / bw);
    return delay;
}

Tick
PipelineRuntime::Impl::readAvailable(const LayerId &layer,
                                     int readerStage) const
{
    auto it = lastWrite.find(layer.key());
    if (it == lastWrite.end())
        return 0;
    auto [when, writerStage] = it->second;
    return when + mirrorPushDelay(writerStage, readerStage,
                                  space.spec(layer).paramBytes);
}

std::vector<PendingBackward>
PipelineRuntime::Impl::pendingMeta(int k) const
{
    // Forwards queued (not yet run) on this stage will produce
    // backwards later; their context can be prefetched by earlier
    // stages once the matching forward passes there (§3.3).
    std::vector<PendingBackward> meta;
    for (SubnetId id : stages[static_cast<std::size_t>(k)]
                           ->fwdCandidates()) {
        meta.push_back(PendingBackward{id, id});
    }
    return meta;
}

void
PipelineRuntime::Impl::injectSubnets()
{
    int limit = model.effectiveInflight(numStages);
    int lag = effectiveFeedbackLag();
    while (injected < config.totalSubnets && inflight < limit) {
        SubnetId nextId = injected;
        // Drain the pipeline for the next checkpoint barrier: at most
        // nextCkptAt subnets are ever injected before the barrier, so
        // finished == nextCkptAt implies inflight == 0 — the drained
        // state a checkpoint captures is a pure function of the
        // completed count under CSP.
        if (ckptEnabled() && injected >= nextCkptAt)
            break;
        if (flushCtl && !flushCtl->canInject(nextId))
            break;
        if (lag > 0) {
            // Feedback-driven samplers see *exactly* the scores of
            // subnets <= i - lag before drawing subnet i, so their
            // draws replay identically on any cluster.
            deliverScoresBelow(nextId - lag + 1);
            if (nextId - nextScoreToReport >= lag)
                break;  // required scores not yet available
        }
        Subnet sn = sampler->next();
        NASPIPE_ASSERT(sn.id() == nextId, "sampler IDs out of sync");

        subnets.emplace(sn.id(), sn);
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                activators[sn.layer(b).key()].push_back(sn.id());
        }
        SubnetPartition part =
            model.balancedPartition
                ? partitioner->balanced(sn, numStages)
                : Partitioner::even(sn.size(), numStages);
        partitions.emplace(sn.id(), std::move(part));

        if (model.mirroring) {
            auto entries =
                mirrors->plan(sn, partitions.at(sn.id()));
            mirrors->activate(entries);
            auto &grouped = mirrorEntries[sn.id()];
            for (auto &entry : entries)
                grouped[entry.execStage].push_back(entry);
        }

        for (auto &stage : stages)
            stage->registerSubnet(sn);
        if (config.numeric)
            exec->beginSubnet(sn);

        fwdArrival[{0, sn.id()}] = sim.now();
        // Retrieval kicks off the context fetch for the entry stage
        // (§3.3: the fetch schedule starts when a subnet is known) —
        // but only within the cache budget of ~3 subnet contexts, so
        // a backed-up entry queue does not balloon GPU memory.
        if (model.predictor &&
            stages[0]->fwdCandidates().size() < 3) {
            auto [lo, hi] = blockRange(0, sn.id());
            if (lo <= hi)
                stages[0]->ctx().prefetch(sn, lo, hi);
        }

        stages[0]->pushFwd(sn.id());
        injected++;
        inflight++;
    }
    tryDispatch(0);
}

void
PipelineRuntime::Impl::tryDispatch(int k)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    if (!st.gpu().compute().freeBy(sim.now()))
        return;  // busy; the completion event re-triggers dispatch
    Decision d = policy->pick(st);
    if (!d.valid()) {
        // Classify the stall for the diagnostics of Table 2's bubble.
        if (st.fwdCandidates().empty() && st.bwdCandidates().empty()) {
            stallEmptyQueues++;
        } else if (model.policy == PolicyKind::Csp &&
                   CspPolicy::schedulableForward(st, -1, false) >= 0) {
            stallMirrorWait++;
        } else {
            stallDependency++;
        }
        return;
    }
    if (d.kind == Decision::Kind::Backward)
        startBackward(k, d.subnet);
    else
        startForward(k, d.subnet);
}

void
PipelineRuntime::Impl::startForward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    st.popFwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 21: predictor runs after the pop, before the
    // forward executes.
    if (model.predictor) {
        st.predictor().beforeForward(
            st, id,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    // Pipeline-forwarding prediction: this subnet's activations head
    // to stage k+1 next, so that stage prefetches its share of the
    // context while this stage computes ("status passed from other
    // stages", §3.3).
    if (model.predictor && k + 1 < numStages) {
        auto [nlo, nhi] = blockRange(k + 1, id);
        if (nlo <= nhi) {
            stages[static_cast<std::size_t>(k) + 1]->ctx().prefetch(
                sn, nlo, nhi);
        }
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));
    if (model.policy == PolicyKind::Csp && lo <= hi) {
        // CSP: a read of a shared layer must see the precedent
        // subnet's write, including the mirror push when the writer
        // ran on another stage (§4.2). Parameter-free skip layers
        // have no state to wait for.
        for (int b = lo; b <= hi; b++) {
            if (space.parameterized(b, sn.choice(b)))
                ready = std::max(ready, readAvailable(sn.layer(b), k));
        }
    }

    Tick duration = taskDuration(sn, lo, hi, TaskType::Forward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    // The numeric READ happens at task start: parameters are sampled
    // when the kernel launches.
    if (config.numeric) {
        sim.scheduleAt(start, [this, k, id, lo, hi] {
            const Subnet &subnet = subnetOf(id);
            if (lo <= hi)
                exec->forwardStage(subnet, lo, hi, semantics, k);
            if (k == numStages - 1)
                lossAtCompute[id] = exec->computeLoss(subnet);
        });
    }

    sim.scheduleAt(
        end,
        [this, k, id, start, end] {
            {
                TraceRecord rec{start, end, k, TraceKind::Forward,
                                id, ""};
                auto it = fwdArrival.find({k, id});
                if (it != fwdArrival.end()) {
                    rec.detail = "wait_ms=" + std::to_string(
                        ticksToMs(start - it->second));
                }
                trace->add(rec);
            }
            execBusySec[id] += ticksToSec(end - start);
            if (k + 1 < numStages) {
                Tick arrival =
                    cluster->link(k, k + 1).sendFrom(
                        end, sizer.fwdBytes());
                sim.scheduleAt(
                    arrival,
                    [this, k, id] {
                        fwdArrival[{k + 1, id}] = sim.now();
                        stages[static_cast<std::size_t>(k) + 1]
                            ->pushFwd(id);
                        tryDispatch(k + 1);
                    },
                    EventPriority::Transfer);
            } else {
                // The last stage turns the forward around into the
                // backward pass.
                stages[static_cast<std::size_t>(k)]->pushBwd(id, {});
            }
            tryDispatch(k);
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::startBackward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    std::vector<PendingBackward> meta = st.popBwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 6: predictor runs before the backward.
    if (model.predictor) {
        st.predictor().beforeBackward(
            st, id, meta,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));

    Tick duration = taskDuration(sn, lo, hi, TaskType::Backward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    sim.scheduleAt(
        end,
        [this, k, id, lo, hi, start, end] {
            Stage &stage = *stages[static_cast<std::size_t>(k)];
            const Subnet &subnet = subnetOf(id);
            trace->add(TraceRecord{start, end, k, TraceKind::Backward,
                                   id, ""});
            execBusySec[id] += ticksToSec(end - start);

            // The numeric WRITE (optimizer step) lands at completion.
            if (config.numeric && lo <= hi)
                exec->backwardStage(subnet, lo, hi, semantics, k);
            if (lo <= hi && semantics != UpdateSemantics::Deferred) {
                for (int b = lo; b <= hi; b++) {
                    if (!space.parameterized(b, subnet.choice(b)))
                        continue;
                    std::uint64_t key = subnet.layer(b).key();
                    lastWrite[key] = {end, k};
                    writesApplied[key]++;
                }
            }

            // Mirror push: updated mirrored parameters travel to the
            // other replicas (§4.2).
            if (model.mirroring) {
                auto subIt = mirrorEntries.find(id);
                if (subIt != mirrorEntries.end()) {
                    auto stIt = subIt->second.find(k);
                    if (stIt != subIt->second.end())
                        mirrors->recordSyncPush(stIt->second);
                }
            }

            stage.mutableDeps().markFinished(id);
            if (lo <= hi)
                stage.ctx().evictSubnet(subnet, lo, hi);

            if (k > 0) {
                Tick arrival = cluster->link(k, k - 1).sendFrom(
                    end, sizer.bwdBytes());
                auto carried = pendingMeta(k);
                sim.scheduleAt(
                    arrival,
                    [this, k, id, carried] {
                        stages[static_cast<std::size_t>(k) - 1]
                            ->pushBwd(id, carried);
                        tryDispatch(k - 1);
                    },
                    EventPriority::Transfer);
            } else {
                onSubnetComplete(k, id, end);
            }
            if (model.policy == PolicyKind::Csp) {
                // Newly visible writes may unblock forward
                // candidates on any stage (mirror pushes).
                for (int s = 0; s < numStages; s++)
                    tryDispatch(s);
            } else {
                tryDispatch(k);
            }
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::onSubnetComplete(int, SubnetId id, Tick end)
{
    inflight--;
    finished++;

    float loss = 0.0f;
    if (config.numeric) {
        if (semantics == UpdateSemantics::Deferred) {
            // Weights update only at the flush; the loss is already
            // known from the last forward stage.
            loss = lossAtCompute.at(id);
            pendingFinish.push_back(id);
        } else {
            loss = exec->finishSubnet(subnetOf(id));
        }
    }
    losses[id] = loss;
    completionSec[id] = secOffset + ticksToSec(end);
    tracker->addSample(completionSec[id], loss);
    scoreBuffer[id] = lossToScore(loss, scoreScale);
    if (effectiveFeedbackLag() == 0)
        deliverScoresBelow(config.totalSubnets);

    bool mayInject = true;
    if (flushCtl) {
        mayInject = flushCtl->onSubnetComplete(id);
        if (mayInject) {
            // BSP flush: apply the bulk's deferred updates together,
            // in sequence-ID order, then release the next bulk.
            if (config.numeric &&
                semantics == UpdateSemantics::Deferred) {
                exec->applyDeferredUpdates(pendingFinish);
                for (SubnetId fid : pendingFinish) {
                    const Subnet &fsn = subnetOf(fid);
                    for (int b = 0; b < fsn.size(); b++) {
                        if (space.parameterized(b, fsn.choice(b)))
                            writesApplied[fsn.layer(b).key()]++;
                    }
                    exec->finishSubnet(fsn);
                }
                pendingFinish.clear();
            }
            trace->add(TraceRecord{end, end, 0, TraceKind::Flush, id,
                                   "bulk flush"});
        }
    }

    // Completions form the fault plan's logical clock.
    checkFaults(end);
    if (crashed)
        return;  // the world is frozen; run() performs the recovery

    if (ckptEnabled() && finished == nextCkptAt)
        takeCheckpoint(end);  // resumes injection after the write
    else if (mayInject)
        injectSubnets();
}

int
PipelineRuntime::Impl::effectiveFeedbackLag() const
{
    if (config.feedbackLag != 0)
        return std::max(0, config.feedbackLag);
    return config.evolutionSearch ? 32 : 0;
}

void
PipelineRuntime::Impl::deliverScoresBelow(SubnetId maxIdExclusive)
{
    // Deliver quality feedback to the exploration algorithm in
    // sequence-ID order, never past the cap, so feedback-driven
    // samplers stay deterministic regardless of completion
    // interleavings.
    while (nextScoreToReport < maxIdExclusive) {
        auto it = scoreBuffer.find(nextScoreToReport);
        if (it == scoreBuffer.end())
            break;
        sampler->reportScore(it->first, it->second);
        scoreBuffer.erase(it);
        nextScoreToReport++;
    }
}

int
PipelineRuntime::Impl::ckptStride() const
{
    int stride = config.ckptInterval;
    if (flushCtl) {
        // Under bulk flushing only a closed bulk leaves the store
        // drained (deferred updates land at the bulk barrier), so
        // checkpoint boundaries round up to bulk multiples.
        int bulk = model.effectiveBulk(numStages);
        stride = (stride + bulk - 1) / bulk * bulk;
    }
    return stride;
}

int
PipelineRuntime::Impl::boundaryAfter(int completedCount) const
{
    int stride = ckptStride();
    return (completedCount / stride + 1) * stride;
}

double
PipelineRuntime::Impl::busySum() const
{
    double total = 0.0;
    for (const auto &[id, sec] : execBusySec)
        total += sec;
    return total;
}

void
PipelineRuntime::Impl::checkFaults(Tick end)
{
    for (const FaultSpec &f : injector.due(finished)) {
        int stage = std::clamp(f.stage, 0, numStages - 1);
        trace->add(TraceRecord{end, end, stage, TraceKind::Fault, -1,
                               f.describe()});
        inform("fault injected: ", f.describe());
        switch (f.kind) {
          case FaultKind::GpuCrash:
            cluster->failStage(stage);
            crashed = true;
            break;
          case FaultKind::LinkDrop: {
            if (numStages < 2)
                break;  // a one-stage pipeline has no links
            int b = std::min(stage, numStages - 2);
            cluster->dropBoundary(b);
            crashed = true;
            break;
          }
          case FaultKind::StageStall: {
            // Occupy the stage's compute engine for the stall window;
            // the scheduled dispatch un-wedges a stage that went idle
            // behind the stall once it lifts.
            Tick dur = ticksFromMs(f.durationMs);
            Tick start =
                cluster->gpu(stage).compute().reserveFrom(end, dur);
            sim.scheduleAt(start + dur,
                           [this, stage] { tryDispatch(stage); });
            break;
          }
          case FaultKind::LinkDegrade: {
            if (numStages < 2)
                break;
            int b = std::min(stage, numStages - 2);
            cluster->degradeBoundary(b, f.factor);
            sim.scheduleAt(end + ticksFromMs(f.durationMs),
                           [this, b] { cluster->restoreBoundary(b); });
            break;
          }
        }
    }
    if (crashed)
        sim.stop();
}

RunCheckpoint
PipelineRuntime::Impl::buildCheckpoint(Tick end) const
{
    RunCheckpoint ckpt;
    ckpt.seed = config.seed;
    ckpt.spaceBlocks = static_cast<std::uint32_t>(space.numBlocks());
    ckpt.spaceChoices =
        static_cast<std::uint32_t>(space.choicesPerBlock());
    ckpt.totalSubnets =
        static_cast<std::uint64_t>(config.totalSubnets);
    ckpt.completed = static_cast<std::uint64_t>(finished);
    ckpt.simSeconds = secOffset + ticksToSec(end);
    ckpt.busySeconds = busyOffset + busySum();
    ckpt.checkpointsWritten =
        static_cast<std::uint64_t>(checkpointsWritten + 1);
    ckpt.losses.reserve(static_cast<std::size_t>(finished));
    ckpt.completionSec.reserve(static_cast<std::size_t>(finished));
    for (SubnetId i = 0; i < finished; i++) {
        ckpt.losses.push_back(losses.at(i));
        ckpt.completionSec.push_back(completionSec.at(i));
    }
    std::ostringstream ss(std::ios::binary);
    store->save(ss);
    ckpt.storeBytes = ss.str();
    std::ostringstream ls(std::ios::binary);
    store->accessLog().saveTo(ls);
    ckpt.accessLogBytes = ls.str();
    return ckpt;
}

void
PipelineRuntime::Impl::takeCheckpoint(Tick end)
{
    NASPIPE_ASSERT(inflight == 0, "checkpoint barrier reached with ",
                   inflight, " subnets in flight");
    RunCheckpoint ckpt = buildCheckpoint(end);
    std::ostringstream os(std::ios::binary);
    bool ok = ckpt.save(os);
    NASPIPE_ASSERT(ok, "in-memory checkpoint serialization failed");
    lastCkpt = os.str();
    checkpointsWritten++;
    checkpointBytes = lastCkpt.size();
    if (!config.ckptPath.empty() &&
        !ckpt.saveFileAtomic(config.ckptPath)) {
        warn("continuing without the on-disk checkpoint");
    }
    double writeSec = static_cast<double>(lastCkpt.size()) /
                          std::max(1.0, config.ckptWriteBytesPerSec) +
                      0.001;
    checkpointSecondsTotal += writeSec;
    nextCkptAt = boundaryAfter(finished);
    trace->add(TraceRecord{end, end + ticksFromSec(writeSec), 0,
                           TraceKind::Checkpoint, -1,
                           "completed=" + std::to_string(finished)});
    // Injection resumes once the write completes: the modeled cost
    // of a checkpoint is the pipeline drain plus this write time.
    sim.scheduleAt(end + ticksFromSec(writeSec),
                   [this] { injectSubnets(); });
}

void
PipelineRuntime::Impl::resetRunState()
{
    sim.reset();
    stages.clear();
    cluster.reset();
    policy.reset();
    sampler.reset();
    partitioner.reset();
    placement.reset();
    mirrors.reset();
    flushCtl.reset();
    store.reset();
    exec.reset();
    tracker.reset();
    trace.reset();
    subnets.clear();
    partitions.clear();
    mirrorEntries.clear();
    lastWrite.clear();
    activators.clear();
    writesApplied.clear();
    execBusySec.clear();
    lossAtCompute.clear();
    losses.clear();
    pendingFinish.clear();
    nextScoreToReport = 0;
    scoreBuffer.clear();
    injected = 0;
    finished = 0;
    inflight = 0;
    fwdArrival.clear();
    completionSec.clear();
    crashed = false;
    // Stall counters, fault bookkeeping, and checkpoint totals carry
    // across phases deliberately: they are cumulative diagnostics.
}

bool
PipelineRuntime::Impl::restore(const RunCheckpoint &ckpt)
{
    if (ckpt.seed != config.seed ||
        ckpt.spaceBlocks !=
            static_cast<std::uint32_t>(space.numBlocks()) ||
        ckpt.spaceChoices !=
            static_cast<std::uint32_t>(space.choicesPerBlock()) ||
        ckpt.totalSubnets !=
            static_cast<std::uint64_t>(config.totalSubnets)) {
        warn("run checkpoint does not match this run: seed ",
             ckpt.seed, " space ", ckpt.spaceBlocks, "x",
             ckpt.spaceChoices, " total ", ckpt.totalSubnets,
             " vs seed ", config.seed, " space ", space.numBlocks(),
             "x", space.choicesPerBlock(), " total ",
             config.totalSubnets);
        return false;
    }
    {
        std::istringstream in(ckpt.storeBytes);
        if (!store->load(in))
            return false;
    }
    {
        std::istringstream in(ckpt.accessLogBytes);
        if (!store->accessLog().loadFrom(in)) {
            warn("run checkpoint: access log unreadable");
            return false;
        }
    }

    const auto completed = static_cast<SubnetId>(ckpt.completed);
    for (SubnetId i = 0; i < completed; i++) {
        auto loss = static_cast<float>(
            ckpt.losses[static_cast<std::size_t>(i)]);
        losses[i] = loss;
        completionSec[i] =
            ckpt.completionSec[static_cast<std::size_t>(i)];
        scoreBuffer[i] = lossToScore(loss, scoreScale);
    }
    {
        // Re-feed the convergence tracker in completion-time order.
        std::vector<std::pair<double, float>> samples;
        samples.reserve(static_cast<std::size_t>(completed));
        for (SubnetId i = 0; i < completed; i++)
            samples.emplace_back(completionSec[i], losses[i]);
        std::sort(samples.begin(), samples.end());
        for (const auto &[when, loss] : samples)
            tracker->addSample(when, loss);
    }

    // Replay the sampler with feedback-lag-faithful score delivery:
    // draws are a pure function of (seed, scores-by-ID), so this
    // reproduces the exact subnet sequence the checkpointed run drew
    // — the CSP property Definition 1 rests on.
    int lag = effectiveFeedbackLag();
    for (SubnetId i = 0; i < completed; i++) {
        if (lag > 0)
            deliverScoresBelow(i - lag + 1);
        Subnet sn = sampler->next();
        NASPIPE_ASSERT(sn.id() == i, "sampler replay out of sync: ",
                       sn.id(), " vs ", i);

        subnets.emplace(sn.id(), sn);
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                activators[sn.layer(b).key()].push_back(sn.id());
        }
        SubnetPartition part =
            model.balancedPartition
                ? partitioner->balanced(sn, numStages)
                : Partitioner::even(sn.size(), numStages);
        partitions.emplace(sn.id(), std::move(part));
        if (model.mirroring) {
            auto entries = mirrors->plan(sn, partitions.at(sn.id()));
            mirrors->activate(entries);
            auto &grouped = mirrorEntries[sn.id()];
            for (auto &entry : entries)
                grouped[entry.execStage].push_back(entry);
        }
        // Registered then immediately finished on every stage: the
        // dependency frontiers advance past the restored prefix, and
        // the numeric executor never opens a context for it.
        for (auto &stage : stages) {
            stage->registerSubnet(sn);
            stage->mutableDeps().markFinished(sn.id());
        }
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                writesApplied[sn.layer(b).key()]++;
        }
        if (flushCtl)
            flushCtl->onSubnetComplete(sn.id());
    }
    if (lag == 0)
        deliverScoresBelow(completed);

    injected = static_cast<int>(completed);
    finished = static_cast<int>(completed);
    inflight = 0;
    // lastWrite stays empty: the restored store is globally
    // consistent, so every read is immediately available.
    return true;
}

bool
PipelineRuntime::Impl::beginRecovery()
{
    double simAtCrash = secOffset + ticksToSec(sim.now());
    double busyAtCrash = busyOffset + busySum();

    RunCheckpoint ckpt;
    bool haveCkpt = false;
    if (!lastCkpt.empty()) {
        std::istringstream in(lastCkpt);
        bool ok = ckpt.load(in);
        NASPIPE_ASSERT(ok, "in-memory checkpoint unreadable");
        haveCkpt = true;
    }
    recoveries++;
    subnetsReplayed += finished - static_cast<int>(ckpt.completed);
    lostComputeSeconds +=
        std::max(0.0, busyAtCrash - ckpt.busySeconds);
    recoverySecondsTotal += config.recoverySeconds;
    inform("recovering: rollback from ", finished, " to ",
           ckpt.completed, " completed subnets (",
           finished - static_cast<int>(ckpt.completed), " to replay)");

    resetRunState();
    secOffset = simAtCrash + config.recoverySeconds;
    busyOffset = ckpt.busySeconds;
    if (!setup())
        return false;  // cannot happen: the same plan fit before
    nextCkptAt = ckptEnabled()
                     ? boundaryAfter(static_cast<int>(ckpt.completed))
                     : 0;
    if (haveCkpt && !restore(ckpt))
        return false;
    return true;
}

RunResult
PipelineRuntime::Impl::collect()
{
    RunResult out;
    out.plan = plan;
    out.losses = losses;
    out.store = store;
    out.trace = trace;

    out.sampled.reserve(subnets.size());
    for (const auto &[id, sn] : subnets)
        out.sampled.push_back(sn);

    RunMetrics &m = out.metrics;
    m.finishedSubnets = finished;
    m.batch = batch;
    m.simSeconds = secOffset + ticksToSec(sim.now());
    if (m.simSeconds > 0.0) {
        m.samplesPerSec = static_cast<double>(finished) * batch /
                          m.simSeconds;
        m.subnetsPerHour =
            static_cast<double>(finished) / m.simSeconds * 3600.0;
    }
    // Engine statistics cover only the final phase (earlier phases
    // died with the fault); utilization windows use phase-local time.
    double phaseSec = ticksToSec(sim.now());
    m.bubbleRatio = cluster->meanBubbleRatio();
    double eff = kernelEfficiency(batch, activation.overheadBatch);
    m.totalAluUtilization =
        cluster->totalAluUtilization(phaseSec) * eff;
    for (int s = 0; s < numStages; s++) {
        m.perGpuAlu.push_back(
            cluster->gpu(s).aluUtilization(phaseSec) * eff);
    }

    double busyTotal = busyOffset + busySum();
    if (finished > 0)
        m.meanExecSeconds = busyTotal / finished;

    m.gpuMemFactor =
        static_cast<double>(plan.residentParamBytesPerGpu +
                            plan.activationBytesPerGpu +
                            CapacityPlanner::kReserveBytes) /
        static_cast<double>(config.cluster.gpu.memoryBytes) *
        numStages;
    m.cpuMemBytes = plan.cpuMemBytesTotal;
    m.reportedParamBytes = plan.reportedParamBytes;

    if (model.memory == MemoryMode::AllResident) {
        m.cacheHitRate = -1.0;
    } else {
        std::uint64_t hits = 0, misses = 0;
        for (const auto &stage : stages) {
            hits += stage->ctx().memory().hitStats().hits();
            misses += stage->ctx().memory().hitStats().misses();
        }
        m.cacheHitRate =
            (hits + misses)
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
        for (const auto &stage : stages) {
            m.prefetchedBytes += stage->ctx().stats().prefetchedBytes;
            m.syncFetchedBytes +=
                stage->ctx().stats().syncFetchedBytes;
        }
    }
    if (model.mirroring) {
        m.mirrorSyncBytes = mirrors->stats().syncBytes;
        m.mirrorsCreated = mirrors->stats().mirrorsCreated;
    }

    m.stallEmptyQueues = stallEmptyQueues;
    m.stallDependency = stallDependency;
    m.stallMirrorWait = stallMirrorWait;

    m.faultsInjected = injector.firedCount();
    m.recoveries = recoveries;
    m.subnetsReplayed = subnetsReplayed;
    m.recoverySeconds = recoverySecondsTotal;
    m.lostComputeSeconds = lostComputeSeconds;
    m.checkpointsWritten = checkpointsWritten;
    m.checkpointBytes = checkpointBytes;
    m.checkpointSeconds = checkpointSecondsTotal;

    // The "supernet loss" is the trailing-window mean over the last
    // subnets *by sequence ID* (not completion order), so the metric
    // itself is invariant across GPU counts whenever the per-subnet
    // losses are.
    if (!losses.empty()) {
        std::size_t window = std::min<std::size_t>(16, losses.size());
        double total = 0.0;
        auto it = losses.end();
        for (std::size_t i = 0; i < window; i++)
            total += (--it)->second;
        m.finalLoss = total / static_cast<double>(window);
        m.finalScore = lossToScore(m.finalLoss, scoreScale);
    }
    out.curve = tracker->curve(64);

    if (config.numeric) {
        out.supernetHash = store->supernetHash();
        m.supernetHash = out.supernetHash;
        int violations = 0;
        for (const LayerId &layer : store->accessLog().touchedLayers()) {
            if (!store->accessLog().sequentiallyEquivalent(layer))
                violations++;
        }
        m.causalViolations = violations;

        SearchResult search =
            searchBestSubnet(*exec, out.sampled, scoreScale,
                             deriveSeed(config.seed, "search"));
        out.bestSubnet = search.best.id();
        out.searchAccuracy = search.accuracy;
    }
    return out;
}

PipelineRuntime::PipelineRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config)),
      _scoreScale(_impl->scoreScale)
{
}

PipelineRuntime::~PipelineRuntime() = default;

RunResult
PipelineRuntime::run()
{
    Impl &im = *_impl;
    if (!im.setup()) {
        RunResult out;
        out.oom = true;
        out.plan = im.plan;
        return out;
    }
    im.nextCkptAt = im.ckptEnabled() ? im.ckptStride() : 0;

    if (!im.config.resumePath.empty()) {
        RunCheckpoint ckpt;
        if (!ckpt.loadFile(im.config.resumePath) ||
            !im.restore(ckpt)) {
            RunResult out;
            out.failed = true;
            out.error = "cannot resume from checkpoint '" +
                        im.config.resumePath + "'";
            out.plan = im.plan;
            return out;
        }
        im.secOffset = ckpt.simSeconds;
        im.busyOffset = ckpt.busySeconds;
        im.checkpointsWritten =
            static_cast<int>(ckpt.checkpointsWritten);
        if (im.ckptEnabled()) {
            im.nextCkptAt =
                im.boundaryAfter(static_cast<int>(ckpt.completed));
        }
        // A later fail-stop fault rolls back to this state.
        std::ostringstream os(std::ios::binary);
        if (ckpt.save(os))
            im.lastCkpt = os.str();
    }

    im.injectSubnets();
    im.sim.run();
    while (im.crashed) {
        // Every fail-stop fault fires exactly once, bounding the
        // recovery loop by the plan size.
        NASPIPE_ASSERT(
            im.recoveries <
                static_cast<int>(im.injector.plan().size()),
            "recovery loop exceeded the fault plan");
        if (!im.beginRecovery()) {
            RunResult out;
            out.failed = true;
            out.error = "recovery from the last checkpoint failed";
            out.plan = im.plan;
            return out;
        }
        im.injectSubnets();
        im.sim.run();
    }
    NASPIPE_ASSERT(im.finished == im.config.totalSubnets,
                   "run ended with ", im.finished, " of ",
                   im.config.totalSubnets, " subnets finished");
    return im.collect();
}

RunResult
runTraining(const SearchSpace &space, const RuntimeConfig &config)
{
    PipelineRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
