#include "runtime/pipeline_runtime.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "runtime/stage.h"
#include "schedule/csp_scheduler.h"
#include "session/training_session.h"
#include "sim/simulator.h"
#include "train/run_checkpoint.h"

namespace naspipe {

/**
 * The simulator-specific half of the run: the event loop, the cluster
 * model, the per-stage schedulers/context managers, mirroring, bulk
 * flushing and fault injection. Everything executor-independent —
 * sampling order, score delivery, checkpoint cadence, resume replay,
 * shared metrics — lives in the TrainingSession this Impl backs.
 */
struct PipelineRuntime::Impl : ExecutionBackend {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;

    TrainingSession session;

    Simulator sim;
    std::unique_ptr<Cluster> cluster;
    std::vector<std::unique_ptr<Stage>> stages;
    std::unique_ptr<SchedulerPolicy> policy;
    std::unique_ptr<HomePlacement> placement;
    std::unique_ptr<MirrorPlanner> mirrors;
    std::unique_ptr<FlushController> flushCtl;
    SwapModel swap;
    /// Fired flags survive recovery rewinds: a replaced GPU does not
    /// crash again when the completion counter passes the trigger.
    FaultInjector injector;

    UpdateSemantics semantics = UpdateSemantics::Immediate;
    MessageSizer sizer;

    // Simulator-side bookkeeping (the session owns subnets, losses
    // and completion times).
    /// Mirror entries grouped per (subnet, exec stage).
    std::map<SubnetId, std::map<int, std::vector<MirrorEntry>>>
        mirrorEntries;
    /// Last WRITE to a layer: (completion tick, writer stage).
    std::map<std::uint64_t, std::pair<Tick, int>> lastWrite;
    /// Subnets that activated a layer, in ascending sequence ID.
    std::map<std::uint64_t, std::vector<SubnetId>> activators;
    /// Number of parameter updates applied per layer so far.
    std::map<std::uint64_t, std::size_t> writesApplied;
    std::map<SubnetId, double> execBusySec;
    std::map<SubnetId, float> lossAtCompute;
    std::vector<SubnetId> pendingFinish;  ///< Deferred: await flush

    std::uint64_t stallEmptyQueues = 0;
    std::map<std::pair<int, SubnetId>, Tick> fwdArrival;
    std::uint64_t stallDependency = 0;
    std::uint64_t stallMirrorWait = 0;

    // Fault state. A "phase" is one sim.run() between (re)starts; the
    // session's offsets carry wall-clock and busy time across phases.
    bool crashed = false;  ///< fail-stop fired; sim was stopped
    int recoveries = 0;
    int subnetsReplayed = 0;
    double recoverySecondsTotal = 0.0;
    double lostComputeSeconds = 0.0;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages), session(s, config),
          swap(c.cluster.gpu.pcieBytesPerSec,
               c.cluster.gpu.pcieLatency),
          injector(c.faults)
    {
        session.attach(this);
    }

    const Subnet &
    subnetOf(SubnetId id) const
    {
        return session.subnetOf(id);
    }

    std::pair<int, int>
    blockRange(int stage, SubnetId id) const
    {
        return session.blockRange(stage, id);
    }

    // ExecutionBackend: the simulator's injection veto and per-subnet
    // registration/restore hooks, called from the session's pump()
    // and restore().
    bool canAdmit(SubnetId next) const override;
    void admit(SubnetId id) override;
    void restoreCompleted(SubnetId id) override;

    bool setup();
    bool upstreamWritesDone(int stage, SubnetId id) const;
    void injectSubnets();
    double busySum() const;
    void checkFaults(Tick end);
    void takeCheckpoint(Tick end);
    void resetRunState();
    bool beginRecovery();
    void tryDispatch(int k);
    void startForward(int k, SubnetId id);
    void startBackward(int k, SubnetId id);
    void onSubnetComplete(int k, SubnetId id, Tick end);
    Tick taskDuration(const Subnet &sn, int lo, int hi,
                      TaskType type) const;
    Tick mirrorPushDelay(int writerStage, int readerStage,
                         std::uint64_t bytes) const;
    Tick readAvailable(const LayerId &layer, int readerStage) const;
    std::vector<PendingBackward> pendingMeta(int k) const;
    RunResult collect();
};

bool
PipelineRuntime::Impl::setup()
{
    if (!session.initRun())
        return false;

    ClusterConfig cc = config.cluster;
    cc.numStages = numStages;
    cluster = std::make_unique<Cluster>(sim, cc);

    policy = makePolicy(model);
    placement = std::make_unique<HomePlacement>(space, numStages);
    mirrors = std::make_unique<MirrorPlanner>(space, *placement);
    if (model.bulkFlush) {
        flushCtl = std::make_unique<FlushController>(
            model.effectiveBulk(numStages));
    }

    if (model.weightStash)
        semantics = UpdateSemantics::WeightStash;
    else if (model.bulkFlush && model.policy != PolicyKind::Csp)
        semantics = UpdateSemantics::Deferred;
    else
        semantics = UpdateSemantics::Immediate;

    sizer.boundaryBytesPerSample =
        session.activationModel().boundaryBytesPerSample;
    sizer.batch = session.batch();

    for (int k = 0; k < numStages; k++) {
        Stage::Hooks hooks;
        hooks.blockRange = [this, k](SubnetId id) {
            return blockRange(k, id);
        };
        hooks.upstreamWritesDone = [this, k](SubnetId id) {
            return upstreamWritesDone(k, id);
        };
        // The §4.2 memory-limit check. The planned footprint covers
        // the ~3 moving contexts of §3.3 (previous/current/next);
        // contexts awaiting their backward pass also linger, so the
        // enforced cap is 3x the plan — under pressure the LRU
        // awaiting-backward contexts are evicted and re-fetched by
        // the predictor's released-backward path.
        std::uint64_t cacheBudget =
            model.memory == MemoryMode::AllResident
                ? 0
                : 3 * session.plan().residentParamBytesPerGpu;
        stages.push_back(std::make_unique<Stage>(
            sim, space, cluster->gpu(k), k, numStages, model.memory,
            std::move(hooks), cacheBudget));
    }
    return true;
}

bool
PipelineRuntime::Impl::upstreamWritesDone(int stage, SubnetId id) const
{
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(stage, id);
    for (int b = lo; b <= hi; b++) {
        if (!space.parameterized(b, sn.choice(b)))
            continue;
        std::uint64_t key = sn.layer(b).key();
        auto actIt = activators.find(key);
        NASPIPE_ASSERT(actIt != activators.end(),
                       "candidate's own activation missing");
        const auto &ids = actIt->second;
        auto earlier = static_cast<std::size_t>(
            std::lower_bound(ids.begin(), ids.end(), id) -
            ids.begin());
        auto wIt = writesApplied.find(key);
        std::size_t applied = wIt == writesApplied.end() ? 0
                                                         : wIt->second;
        if (applied < earlier)
            return false;
    }
    return true;
}

Tick
PipelineRuntime::Impl::taskDuration(const Subnet &sn, int lo, int hi,
                                    TaskType type) const
{
    // An empty stage range still costs a kernel-launch-scale hop.
    if (lo > hi)
        return ticksFromMs(0.2);
    double ms = 0.0;
    for (int b = lo; b <= hi; b++) {
        const LayerSpec &spec = space.spec(b, sn.choice(b));
        if (type == TaskType::Forward) {
            ms += spec.fwdMs;
        } else {
            ms += spec.bwdMs;
            // Activation recomputation replays the forward pass.
            if (model.recompute)
                ms += spec.fwdMs;
        }
    }
    // Kernel time scales with (overhead + batch), calibrated against
    // the family's reference batch.
    const ActivationModel &activation = session.activationModel();
    double factor =
        static_cast<double>(activation.overheadBatch +
                            session.batch()) /
        static_cast<double>(activation.overheadBatch +
                            space.referenceBatch());
    ms *= factor * activation.computeScale;
    return ticksFromMs(ms);
}

Tick
PipelineRuntime::Impl::mirrorPushDelay(int writerStage,
                                       int readerStage,
                                       std::uint64_t bytes) const
{
    if (writerStage == readerStage)
        return 0;
    // The active push travels GPU-to-GPU (peer DMA within a host,
    // Ethernet across hosts) without staging through host memory.
    Tick delay = 0;
    const InterconnectConfig &ic = config.cluster.interconnect;
    bool cross = cluster->hostOf(writerStage) !=
                 cluster->hostOf(readerStage);
    double bw =
        cross ? ic.crossHostBytesPerSec : ic.intraHostBytesPerSec;
    delay += (cross ? ic.crossHostLatency : ic.intraHostLatency) +
             ticksFromSec(static_cast<double>(bytes) / bw);
    return delay;
}

Tick
PipelineRuntime::Impl::readAvailable(const LayerId &layer,
                                     int readerStage) const
{
    auto it = lastWrite.find(layer.key());
    if (it == lastWrite.end())
        return 0;
    auto [when, writerStage] = it->second;
    return when + mirrorPushDelay(writerStage, readerStage,
                                  space.spec(layer).paramBytes);
}

std::vector<PendingBackward>
PipelineRuntime::Impl::pendingMeta(int k) const
{
    // Forwards queued (not yet run) on this stage will produce
    // backwards later; their context can be prefetched by earlier
    // stages once the matching forward passes there (§3.3).
    std::vector<PendingBackward> meta;
    for (SubnetId id : stages[static_cast<std::size_t>(k)]
                           ->fwdCandidates()) {
        meta.push_back(PendingBackward{id, id});
    }
    return meta;
}

bool
PipelineRuntime::Impl::canAdmit(SubnetId next) const
{
    // BSP bulk barrier: the next bulk opens only when the previous
    // one fully flushed.
    return !flushCtl || flushCtl->canInject(next);
}

void
PipelineRuntime::Impl::admit(SubnetId id)
{
    const Subnet &sn = subnetOf(id);
    for (int b = 0; b < sn.size(); b++) {
        if (space.parameterized(b, sn.choice(b)))
            activators[sn.layer(b).key()].push_back(sn.id());
    }
    if (model.mirroring) {
        auto entries = mirrors->plan(sn, session.partitionOf(id));
        mirrors->activate(entries);
        auto &grouped = mirrorEntries[sn.id()];
        for (auto &entry : entries)
            grouped[entry.execStage].push_back(entry);
    }
    for (auto &stage : stages)
        stage->registerSubnet(sn);

    fwdArrival[{0, sn.id()}] = sim.now();
    // Retrieval kicks off the context fetch for the entry stage
    // (§3.3: the fetch schedule starts when a subnet is known) —
    // but only within the cache budget of ~3 subnet contexts, so
    // a backed-up entry queue does not balloon GPU memory.
    if (model.predictor && stages[0]->fwdCandidates().size() < 3) {
        auto [lo, hi] = blockRange(0, sn.id());
        if (lo <= hi)
            stages[0]->ctx().prefetch(sn, lo, hi);
    }

    stages[0]->pushFwd(sn.id());
}

void
PipelineRuntime::Impl::restoreCompleted(SubnetId id)
{
    const Subnet &sn = subnetOf(id);
    for (int b = 0; b < sn.size(); b++) {
        if (space.parameterized(b, sn.choice(b)))
            activators[sn.layer(b).key()].push_back(sn.id());
    }
    if (model.mirroring) {
        auto entries = mirrors->plan(sn, session.partitionOf(id));
        mirrors->activate(entries);
        auto &grouped = mirrorEntries[sn.id()];
        for (auto &entry : entries)
            grouped[entry.execStage].push_back(entry);
    }
    // Registered then immediately finished on every stage: the
    // dependency frontiers advance past the restored prefix, and
    // the numeric executor never opens a context for it.
    for (auto &stage : stages) {
        stage->registerSubnet(sn);
        stage->mutableDeps().markFinished(sn.id());
    }
    for (int b = 0; b < sn.size(); b++) {
        if (space.parameterized(b, sn.choice(b)))
            writesApplied[sn.layer(b).key()]++;
    }
    if (flushCtl)
        flushCtl->onSubnetComplete(sn.id());
    // lastWrite stays empty: the restored store is globally
    // consistent, so every read is immediately available.
}

void
PipelineRuntime::Impl::injectSubnets()
{
    session.pump();
    tryDispatch(0);
}

void
PipelineRuntime::Impl::tryDispatch(int k)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    if (!st.gpu().compute().freeBy(sim.now()))
        return;  // busy; the completion event re-triggers dispatch
    Decision d = policy->pick(st);
    if (!d.valid()) {
        // Classify the stall for the diagnostics of Table 2's bubble.
        if (st.fwdCandidates().empty() && st.bwdCandidates().empty()) {
            stallEmptyQueues++;
        } else if (model.policy == PolicyKind::Csp &&
                   CspPolicy::schedulableForward(st, -1, false) >= 0) {
            stallMirrorWait++;
        } else {
            stallDependency++;
        }
        return;
    }
    if (d.kind == Decision::Kind::Backward)
        startBackward(k, d.subnet);
    else
        startForward(k, d.subnet);
}

void
PipelineRuntime::Impl::startForward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    st.popFwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 21: predictor runs after the pop, before the
    // forward executes.
    if (model.predictor) {
        st.predictor().beforeForward(
            st, id,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    // Pipeline-forwarding prediction: this subnet's activations head
    // to stage k+1 next, so that stage prefetches its share of the
    // context while this stage computes ("status passed from other
    // stages", §3.3).
    if (model.predictor && k + 1 < numStages) {
        auto [nlo, nhi] = blockRange(k + 1, id);
        if (nlo <= nhi) {
            stages[static_cast<std::size_t>(k) + 1]->ctx().prefetch(
                sn, nlo, nhi);
        }
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));
    if (model.policy == PolicyKind::Csp && lo <= hi) {
        // CSP: a read of a shared layer must see the precedent
        // subnet's write, including the mirror push when the writer
        // ran on another stage (§4.2). Parameter-free skip layers
        // have no state to wait for.
        for (int b = lo; b <= hi; b++) {
            if (space.parameterized(b, sn.choice(b)))
                ready = std::max(ready, readAvailable(sn.layer(b), k));
        }
    }

    Tick duration = taskDuration(sn, lo, hi, TaskType::Forward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    // The numeric READ happens at task start: parameters are sampled
    // when the kernel launches.
    if (config.numeric) {
        sim.scheduleAt(start, [this, k, id, lo, hi] {
            const Subnet &subnet = subnetOf(id);
            if (lo <= hi)
                session.exec().forwardStage(subnet, lo, hi, semantics,
                                            k);
            if (k == numStages - 1)
                lossAtCompute[id] = session.exec().computeLoss(subnet);
        });
    }

    sim.scheduleAt(
        end,
        [this, k, id, start, end] {
            {
                TraceRecord rec{start, end, k, TraceKind::Forward,
                                id, ""};
                auto it = fwdArrival.find({k, id});
                if (it != fwdArrival.end()) {
                    rec.detail = "wait_ms=" + std::to_string(
                        ticksToMs(start - it->second));
                }
                session.trace()->add(rec);
            }
            execBusySec[id] += ticksToSec(end - start);
            if (k + 1 < numStages) {
                Tick arrival =
                    cluster->link(k, k + 1).sendFrom(
                        end, sizer.fwdBytes());
                sim.scheduleAt(
                    arrival,
                    [this, k, id] {
                        fwdArrival[{k + 1, id}] = sim.now();
                        stages[static_cast<std::size_t>(k) + 1]
                            ->pushFwd(id);
                        tryDispatch(k + 1);
                    },
                    EventPriority::Transfer);
            } else {
                // The last stage turns the forward around into the
                // backward pass.
                stages[static_cast<std::size_t>(k)]->pushBwd(id, {});
            }
            tryDispatch(k);
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::startBackward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    std::vector<PendingBackward> meta = st.popBwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 6: predictor runs before the backward.
    if (model.predictor) {
        st.predictor().beforeBackward(
            st, id, meta,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));

    Tick duration = taskDuration(sn, lo, hi, TaskType::Backward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    sim.scheduleAt(
        end,
        [this, k, id, lo, hi, start, end] {
            Stage &stage = *stages[static_cast<std::size_t>(k)];
            const Subnet &subnet = subnetOf(id);
            session.trace()->add(TraceRecord{
                start, end, k, TraceKind::Backward, id, ""});
            execBusySec[id] += ticksToSec(end - start);

            // The numeric WRITE (optimizer step) lands at completion.
            if (config.numeric && lo <= hi)
                session.exec().backwardStage(subnet, lo, hi, semantics,
                                             k);
            if (lo <= hi && semantics != UpdateSemantics::Deferred) {
                for (int b = lo; b <= hi; b++) {
                    if (!space.parameterized(b, subnet.choice(b)))
                        continue;
                    std::uint64_t key = subnet.layer(b).key();
                    lastWrite[key] = {end, k};
                    writesApplied[key]++;
                }
            }

            // Mirror push: updated mirrored parameters travel to the
            // other replicas (§4.2).
            if (model.mirroring) {
                auto subIt = mirrorEntries.find(id);
                if (subIt != mirrorEntries.end()) {
                    auto stIt = subIt->second.find(k);
                    if (stIt != subIt->second.end())
                        mirrors->recordSyncPush(stIt->second);
                }
            }

            stage.mutableDeps().markFinished(id);
            if (lo <= hi)
                stage.ctx().evictSubnet(subnet, lo, hi);

            if (k > 0) {
                Tick arrival = cluster->link(k, k - 1).sendFrom(
                    end, sizer.bwdBytes());
                auto carried = pendingMeta(k);
                sim.scheduleAt(
                    arrival,
                    [this, k, id, carried] {
                        stages[static_cast<std::size_t>(k) - 1]
                            ->pushBwd(id, carried);
                        tryDispatch(k - 1);
                    },
                    EventPriority::Transfer);
            } else {
                onSubnetComplete(k, id, end);
            }
            if (model.policy == PolicyKind::Csp) {
                // Newly visible writes may unblock forward
                // candidates on any stage (mirror pushes).
                for (int s = 0; s < numStages; s++)
                    tryDispatch(s);
            } else {
                tryDispatch(k);
            }
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::onSubnetComplete(int, SubnetId id, Tick end)
{
    float loss = 0.0f;
    if (config.numeric) {
        if (semantics == UpdateSemantics::Deferred) {
            // Weights update only at the flush; the loss is already
            // known from the last forward stage.
            loss = lossAtCompute.at(id);
            pendingFinish.push_back(id);
        } else {
            loss = session.exec().finishSubnet(subnetOf(id));
        }
    }
    bool atBarrier = session.recordCompletion(
        id, loss, session.secOffset() + ticksToSec(end));

    bool mayInject = true;
    if (flushCtl) {
        mayInject = flushCtl->onSubnetComplete(id);
        if (mayInject) {
            // BSP flush: apply the bulk's deferred updates together,
            // in sequence-ID order, then release the next bulk.
            if (config.numeric &&
                semantics == UpdateSemantics::Deferred) {
                session.exec().applyDeferredUpdates(pendingFinish);
                for (SubnetId fid : pendingFinish) {
                    const Subnet &fsn = subnetOf(fid);
                    for (int b = 0; b < fsn.size(); b++) {
                        if (space.parameterized(b, fsn.choice(b)))
                            writesApplied[fsn.layer(b).key()]++;
                    }
                    session.exec().finishSubnet(fsn);
                }
                pendingFinish.clear();
            }
            session.trace()->add(TraceRecord{
                end, end, 0, TraceKind::Flush, id, "bulk flush"});
        }
    }

    // Completions form the fault plan's logical clock.
    checkFaults(end);
    if (crashed)
        return;  // the world is frozen; run() performs the recovery

    if (atBarrier)
        takeCheckpoint(end);  // resumes injection after the write
    else if (mayInject)
        injectSubnets();
}

double
PipelineRuntime::Impl::busySum() const
{
    double total = 0.0;
    for (const auto &[id, sec] : execBusySec)
        total += sec;
    return total;
}

void
PipelineRuntime::Impl::checkFaults(Tick end)
{
    for (const FaultSpec &f : injector.due(session.finished())) {
        int stage = std::clamp(f.stage, 0, numStages - 1);
        session.trace()->add(TraceRecord{
            end, end, stage, TraceKind::Fault, -1, f.describe()});
        inform("fault injected: ", f.describe());
        switch (f.kind) {
          case FaultKind::GpuCrash:
            cluster->failStage(stage);
            crashed = true;
            break;
          case FaultKind::LinkDrop: {
            if (numStages < 2)
                break;  // a one-stage pipeline has no links
            int b = std::min(stage, numStages - 2);
            cluster->dropBoundary(b);
            crashed = true;
            break;
          }
          case FaultKind::StageStall: {
            // Occupy the stage's compute engine for the stall window;
            // the scheduled dispatch un-wedges a stage that went idle
            // behind the stall once it lifts.
            Tick dur = ticksFromMs(f.durationMs);
            Tick start =
                cluster->gpu(stage).compute().reserveFrom(end, dur);
            sim.scheduleAt(start + dur,
                           [this, stage] { tryDispatch(stage); });
            break;
          }
          case FaultKind::LinkDegrade: {
            if (numStages < 2)
                break;
            int b = std::min(stage, numStages - 2);
            cluster->degradeBoundary(b, f.factor);
            sim.scheduleAt(end + ticksFromMs(f.durationMs),
                           [this, b] { cluster->restoreBoundary(b); });
            break;
          }
        }
    }
    if (crashed)
        sim.stop();
}

void
PipelineRuntime::Impl::takeCheckpoint(Tick end)
{
    RunCheckpoint ckpt = session.buildCheckpoint(
        session.secOffset() + ticksToSec(end),
        session.busyOffset() + busySum());
    double writeSec = session.commitCheckpoint(ckpt);
    session.trace()->add(TraceRecord{
        end, end + ticksFromSec(writeSec), 0, TraceKind::Checkpoint,
        -1, "completed=" + std::to_string(session.finished())});
    // Injection resumes once the write completes: the modeled cost
    // of a checkpoint is the pipeline drain plus this write time.
    sim.scheduleAt(end + ticksFromSec(writeSec),
                   [this] { injectSubnets(); });
}

void
PipelineRuntime::Impl::resetRunState()
{
    sim.reset();
    stages.clear();
    cluster.reset();
    policy.reset();
    placement.reset();
    mirrors.reset();
    flushCtl.reset();
    mirrorEntries.clear();
    lastWrite.clear();
    activators.clear();
    writesApplied.clear();
    execBusySec.clear();
    lossAtCompute.clear();
    pendingFinish.clear();
    fwdArrival.clear();
    crashed = false;
    // Stall counters and fault bookkeeping carry across phases
    // deliberately: they are cumulative diagnostics. The session's
    // per-run state resets in initRun(); its checkpoint totals and
    // time offsets carry too.
}

bool
PipelineRuntime::Impl::beginRecovery()
{
    double simAtCrash = session.secOffset() + ticksToSec(sim.now());
    double busyAtCrash = session.busyOffset() + busySum();

    RunCheckpoint ckpt;
    bool haveCkpt = false;
    if (!session.lastCheckpoint().empty()) {
        std::istringstream in(session.lastCheckpoint());
        bool ok = ckpt.load(in);
        NASPIPE_ASSERT(ok, "in-memory checkpoint unreadable");
        haveCkpt = true;
    }
    recoveries++;
    subnetsReplayed +=
        session.finished() - static_cast<int>(ckpt.completed);
    lostComputeSeconds +=
        std::max(0.0, busyAtCrash - ckpt.busySeconds);
    recoverySecondsTotal += config.recoverySeconds;
    inform("recovering: rollback from ", session.finished(), " to ",
           ckpt.completed, " completed subnets (",
           session.finished() - static_cast<int>(ckpt.completed),
           " to replay)");

    resetRunState();
    if (!setup())
        return false;  // cannot happen: the same plan fit before
    session.setTimeOffsets(simAtCrash + config.recoverySeconds,
                           ckpt.busySeconds);
    if (haveCkpt && !session.restore(ckpt))
        return false;
    return true;
}

RunResult
PipelineRuntime::Impl::collect()
{
    RunResult out =
        session.collect(session.secOffset() + ticksToSec(sim.now()),
                        session.busyOffset() + busySum());
    RunMetrics &m = out.metrics;

    // Engine statistics cover only the final phase (earlier phases
    // died with the fault); utilization windows use phase-local time.
    double phaseSec = ticksToSec(sim.now());
    m.bubbleRatio = cluster->meanBubbleRatio();
    double eff = kernelEfficiency(session.batch(),
                                  session.activationModel()
                                      .overheadBatch);
    m.totalAluUtilization =
        cluster->totalAluUtilization(phaseSec) * eff;
    for (int s = 0; s < numStages; s++) {
        m.perGpuAlu.push_back(
            cluster->gpu(s).aluUtilization(phaseSec) * eff);
    }

    if (model.memory != MemoryMode::AllResident) {
        std::uint64_t hits = 0, misses = 0;
        for (const auto &stage : stages) {
            hits += stage->ctx().memory().hitStats().hits();
            misses += stage->ctx().memory().hitStats().misses();
            m.prefetchedBytes += stage->ctx().stats().prefetchedBytes;
            m.syncFetchedBytes +=
                stage->ctx().stats().syncFetchedBytes;
            m.cachePeakBytes = std::max(
                m.cachePeakBytes, stage->ctx().memory().peakBytes());
            m.cacheBudgetBytes = stage->ctx().budgetBytes();
        }
        m.cacheHitRate =
            (hits + misses)
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
    }
    if (model.mirroring) {
        m.mirrorSyncBytes = mirrors->stats().syncBytes;
        m.mirrorsCreated = mirrors->stats().mirrorsCreated;
    }

    m.stallEmptyQueues = stallEmptyQueues;
    m.stallDependency = stallDependency;
    m.stallMirrorWait = stallMirrorWait;

    m.faultsInjected = injector.firedCount();
    m.recoveries = recoveries;
    m.subnetsReplayed = subnetsReplayed;
    m.recoverySeconds = recoverySecondsTotal;
    m.lostComputeSeconds = lostComputeSeconds;
    return out;
}

PipelineRuntime::PipelineRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config)),
      _scoreScale(_impl->session.scoreScale())
{
}

PipelineRuntime::~PipelineRuntime() = default;

RunResult
PipelineRuntime::run()
{
    Impl &im = *_impl;
    TrainingSession &session = im.session;
    if (!im.setup()) {
        RunResult out;
        out.oom = true;
        out.plan = session.plan();
        return out;
    }

    if (!im.config.resumePath.empty()) {
        RunCheckpoint ckpt;
        if (!ckpt.loadFile(im.config.resumePath) ||
            !session.restore(ckpt)) {
            RunResult out;
            out.failed = true;
            out.error = "cannot resume from checkpoint '" +
                        im.config.resumePath + "'";
            out.plan = session.plan();
            return out;
        }
        session.setTimeOffsets(ckpt.simSeconds, ckpt.busySeconds);
        session.setCheckpointsWritten(
            static_cast<int>(ckpt.checkpointsWritten));
    }

    im.injectSubnets();
    im.sim.run();
    while (im.crashed) {
        // Every fail-stop fault fires exactly once, bounding the
        // recovery loop by the plan size.
        NASPIPE_ASSERT(
            im.recoveries <
                static_cast<int>(im.injector.plan().size()),
            "recovery loop exceeded the fault plan");
        if (!im.beginRecovery()) {
            RunResult out;
            out.failed = true;
            out.error = "recovery from the last checkpoint failed";
            out.plan = session.plan();
            return out;
        }
        im.injectSubnets();
        im.sim.run();
    }
    NASPIPE_ASSERT(session.finished() == im.config.totalSubnets,
                   "run ended with ", session.finished(), " of ",
                   im.config.totalSubnets, " subnets finished");
    return im.collect();
}

RunResult
runTraining(const SearchSpace &space, const RuntimeConfig &config)
{
    PipelineRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
