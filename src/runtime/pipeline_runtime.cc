#include "runtime/pipeline_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/stage.h"
#include "schedule/csp_scheduler.h"
#include "sim/simulator.h"
#include "tensor/loss.h"

namespace naspipe {

namespace {

double
defaultScoreScale(SpaceFamily family)
{
    // BLEU-like scale for NLP, top-5-percent-like scale for CV.
    return family == SpaceFamily::Nlp ? 24.0 : 90.0;
}

} // namespace

/**
 * All run state lives here; the event callbacks capture `this`.
 */
struct PipelineRuntime::Impl {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;
    ActivationModel activation;
    double scoreScale;

    Simulator sim;
    std::unique_ptr<Cluster> cluster;
    std::vector<std::unique_ptr<Stage>> stages;
    std::unique_ptr<SchedulerPolicy> policy;
    std::unique_ptr<SubnetSampler> sampler;
    std::unique_ptr<Partitioner> partitioner;
    std::unique_ptr<HomePlacement> placement;
    std::unique_ptr<MirrorPlanner> mirrors;
    std::unique_ptr<FlushController> flushCtl;
    std::shared_ptr<ParameterStore> store;
    std::unique_ptr<NumericExecutor> exec;
    std::unique_ptr<ConvergenceTracker> tracker;
    std::shared_ptr<Trace> trace;
    SwapModel swap;

    CapacityPlan plan;
    int batch = 1;
    UpdateSemantics semantics = UpdateSemantics::Immediate;
    MessageSizer sizer;

    // Bookkeeping.
    std::map<SubnetId, Subnet> subnets;  ///< never GC'd (vs deps)
    std::map<SubnetId, SubnetPartition> partitions;
    /// Mirror entries grouped per (subnet, exec stage).
    std::map<SubnetId, std::map<int, std::vector<MirrorEntry>>>
        mirrorEntries;
    /// Last WRITE to a layer: (completion tick, writer stage).
    std::map<std::uint64_t, std::pair<Tick, int>> lastWrite;
    /// Subnets that activated a layer, in ascending sequence ID.
    std::map<std::uint64_t, std::vector<SubnetId>> activators;
    /// Number of parameter updates applied per layer so far.
    std::map<std::uint64_t, std::size_t> writesApplied;
    std::map<SubnetId, double> execBusySec;
    std::map<SubnetId, float> lossAtCompute;
    std::map<SubnetId, float> losses;
    std::vector<SubnetId> pendingFinish;  ///< Deferred: await flush
    SubnetId nextScoreToReport = 0;
    std::map<SubnetId, double> scoreBuffer;

    int injected = 0;
    int finished = 0;
    int inflight = 0;
    std::uint64_t stallEmptyQueues = 0;
    std::map<std::pair<int, SubnetId>, Tick> fwdArrival;
    std::uint64_t stallDependency = 0;
    std::uint64_t stallMirrorWait = 0;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages),
          activation(c.activation.bytesPerSample
                         ? c.activation
                         : defaultActivationModel(s.family())),
          scoreScale(c.scoreScale > 0.0
                         ? c.scoreScale
                         : defaultScoreScale(s.family())),
          swap(c.cluster.gpu.pcieBytesPerSec, c.cluster.gpu.pcieLatency)
    {
        NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
        NASPIPE_ASSERT(c.totalSubnets >= 1, "need >= 1 subnet");
    }

    const Subnet &
    subnetOf(SubnetId id) const
    {
        auto it = subnets.find(id);
        NASPIPE_ASSERT(it != subnets.end(), "unknown SN", id);
        return it->second;
    }

    std::pair<int, int>
    blockRange(int stage, SubnetId id) const
    {
        auto it = partitions.find(id);
        NASPIPE_ASSERT(it != partitions.end(), "no partition for SN",
                       id);
        const SubnetPartition &p = it->second;
        int lo = p.firstBlock(stage);
        int hi = p.lastBlock(stage);
        return {lo, hi};  // lo > hi means the stage owns no blocks
    }

    bool setup();
    bool upstreamWritesDone(int stage, SubnetId id) const;
    void injectSubnets();
    void tryDispatch(int k);
    void startForward(int k, SubnetId id);
    void startBackward(int k, SubnetId id);
    void onSubnetComplete(int k, SubnetId id, Tick end);
    int effectiveFeedbackLag() const;
    void deliverScoresBelow(SubnetId maxIdExclusive);
    Tick taskDuration(const Subnet &sn, int lo, int hi,
                      TaskType type) const;
    Tick mirrorPushDelay(int writerStage, int readerStage,
                         std::uint64_t bytes) const;
    Tick readAvailable(const LayerId &layer, int readerStage) const;
    std::vector<PendingBackward> pendingMeta(int k) const;
    RunResult collect();
};

bool
PipelineRuntime::Impl::setup()
{
    // Capacity planning decides whether this system can run at all
    // and at which batch size; an explicitly pinned batch (the
    // reproducibility methodology) is checked against capacity too.
    CapacityPlanner planner(space, config.cluster.gpu, activation);
    plan = config.batch > 0
               ? planner.planWithBatch(model, numStages, config.batch)
               : planner.plan(model, numStages);
    if (!plan.fits)
        return false;
    batch = plan.batch;

    ClusterConfig cc = config.cluster;
    cc.numStages = numStages;
    cluster = std::make_unique<Cluster>(sim, cc);

    policy = makePolicy(model);
    if (config.samplerFactory) {
        sampler = config.samplerFactory(space, config.seed);
        NASPIPE_ASSERT(sampler, "sampler factory returned null");
    } else if (config.hybridStreams > 0) {
        sampler = std::make_unique<HybridSampler>(
            space, config.seed, config.hybridStreams);
    } else if (config.evolutionSearch) {
        sampler = std::make_unique<EvolutionSampler>(space, config.seed);
    } else {
        sampler = std::make_unique<UniformSampler>(space, config.seed);
    }
    partitioner = std::make_unique<Partitioner>(space, batch);
    placement = std::make_unique<HomePlacement>(space, numStages);
    mirrors = std::make_unique<MirrorPlanner>(space, *placement);
    if (model.bulkFlush) {
        flushCtl = std::make_unique<FlushController>(
            model.effectiveBulk(numStages));
    }
    store = std::make_shared<ParameterStore>(space, config.seed);
    store->accessLog().enabled(config.numeric);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(config.seed, "data");
    ec.sgd = config.sgd;
    ec.batch = batch;
    exec = std::make_unique<NumericExecutor>(*store, ec);
    tracker = std::make_unique<ConvergenceTracker>(scoreScale);
    trace = std::make_shared<Trace>();
    trace->enabled(config.traceEnabled);

    if (model.weightStash)
        semantics = UpdateSemantics::WeightStash;
    else if (model.bulkFlush && model.policy != PolicyKind::Csp)
        semantics = UpdateSemantics::Deferred;
    else
        semantics = UpdateSemantics::Immediate;

    sizer.boundaryBytesPerSample = activation.boundaryBytesPerSample;
    sizer.batch = batch;

    for (int k = 0; k < numStages; k++) {
        Stage::Hooks hooks;
        hooks.blockRange = [this, k](SubnetId id) {
            return blockRange(k, id);
        };
        hooks.upstreamWritesDone = [this, k](SubnetId id) {
            return upstreamWritesDone(k, id);
        };
        // The §4.2 memory-limit check. The planned footprint covers
        // the ~3 moving contexts of §3.3 (previous/current/next);
        // contexts awaiting their backward pass also linger, so the
        // enforced cap is 3x the plan — under pressure the LRU
        // awaiting-backward contexts are evicted and re-fetched by
        // the predictor's released-backward path.
        std::uint64_t cacheBudget =
            model.memory == MemoryMode::AllResident
                ? 0
                : 3 * plan.residentParamBytesPerGpu;
        stages.push_back(std::make_unique<Stage>(
            sim, space, cluster->gpu(k), k, numStages, model.memory,
            std::move(hooks), cacheBudget));
    }
    return true;
}

bool
PipelineRuntime::Impl::upstreamWritesDone(int stage, SubnetId id) const
{
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(stage, id);
    for (int b = lo; b <= hi; b++) {
        if (!space.parameterized(b, sn.choice(b)))
            continue;
        std::uint64_t key = sn.layer(b).key();
        auto actIt = activators.find(key);
        NASPIPE_ASSERT(actIt != activators.end(),
                       "candidate's own activation missing");
        const auto &ids = actIt->second;
        auto earlier = static_cast<std::size_t>(
            std::lower_bound(ids.begin(), ids.end(), id) -
            ids.begin());
        auto wIt = writesApplied.find(key);
        std::size_t applied = wIt == writesApplied.end() ? 0
                                                         : wIt->second;
        if (applied < earlier)
            return false;
    }
    return true;
}

Tick
PipelineRuntime::Impl::taskDuration(const Subnet &sn, int lo, int hi,
                                    TaskType type) const
{
    // An empty stage range still costs a kernel-launch-scale hop.
    if (lo > hi)
        return ticksFromMs(0.2);
    double ms = 0.0;
    for (int b = lo; b <= hi; b++) {
        const LayerSpec &spec = space.spec(b, sn.choice(b));
        if (type == TaskType::Forward) {
            ms += spec.fwdMs;
        } else {
            ms += spec.bwdMs;
            // Activation recomputation replays the forward pass.
            if (model.recompute)
                ms += spec.fwdMs;
        }
    }
    // Kernel time scales with (overhead + batch), calibrated against
    // the family's reference batch.
    double factor =
        static_cast<double>(activation.overheadBatch + batch) /
        static_cast<double>(activation.overheadBatch +
                            space.referenceBatch());
    ms *= factor * activation.computeScale;
    return ticksFromMs(ms);
}

Tick
PipelineRuntime::Impl::mirrorPushDelay(int writerStage,
                                       int readerStage,
                                       std::uint64_t bytes) const
{
    if (writerStage == readerStage)
        return 0;
    // The active push travels GPU-to-GPU (peer DMA within a host,
    // Ethernet across hosts) without staging through host memory.
    Tick delay = 0;
    const InterconnectConfig &ic = config.cluster.interconnect;
    bool cross = cluster->hostOf(writerStage) !=
                 cluster->hostOf(readerStage);
    double bw =
        cross ? ic.crossHostBytesPerSec : ic.intraHostBytesPerSec;
    delay += (cross ? ic.crossHostLatency : ic.intraHostLatency) +
             ticksFromSec(static_cast<double>(bytes) / bw);
    return delay;
}

Tick
PipelineRuntime::Impl::readAvailable(const LayerId &layer,
                                     int readerStage) const
{
    auto it = lastWrite.find(layer.key());
    if (it == lastWrite.end())
        return 0;
    auto [when, writerStage] = it->second;
    return when + mirrorPushDelay(writerStage, readerStage,
                                  space.spec(layer).paramBytes);
}

std::vector<PendingBackward>
PipelineRuntime::Impl::pendingMeta(int k) const
{
    // Forwards queued (not yet run) on this stage will produce
    // backwards later; their context can be prefetched by earlier
    // stages once the matching forward passes there (§3.3).
    std::vector<PendingBackward> meta;
    for (SubnetId id : stages[static_cast<std::size_t>(k)]
                           ->fwdCandidates()) {
        meta.push_back(PendingBackward{id, id});
    }
    return meta;
}

void
PipelineRuntime::Impl::injectSubnets()
{
    int limit = model.effectiveInflight(numStages);
    int lag = effectiveFeedbackLag();
    while (injected < config.totalSubnets && inflight < limit) {
        SubnetId nextId = injected;
        if (flushCtl && !flushCtl->canInject(nextId))
            break;
        if (lag > 0) {
            // Feedback-driven samplers see *exactly* the scores of
            // subnets <= i - lag before drawing subnet i, so their
            // draws replay identically on any cluster.
            deliverScoresBelow(nextId - lag + 1);
            if (nextId - nextScoreToReport >= lag)
                break;  // required scores not yet available
        }
        Subnet sn = sampler->next();
        NASPIPE_ASSERT(sn.id() == nextId, "sampler IDs out of sync");

        subnets.emplace(sn.id(), sn);
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                activators[sn.layer(b).key()].push_back(sn.id());
        }
        SubnetPartition part =
            model.balancedPartition
                ? partitioner->balanced(sn, numStages)
                : Partitioner::even(sn.size(), numStages);
        partitions.emplace(sn.id(), std::move(part));

        if (model.mirroring) {
            auto entries =
                mirrors->plan(sn, partitions.at(sn.id()));
            mirrors->activate(entries);
            auto &grouped = mirrorEntries[sn.id()];
            for (auto &entry : entries)
                grouped[entry.execStage].push_back(entry);
        }

        for (auto &stage : stages)
            stage->registerSubnet(sn);
        if (config.numeric)
            exec->beginSubnet(sn);

        fwdArrival[{0, sn.id()}] = sim.now();
        // Retrieval kicks off the context fetch for the entry stage
        // (§3.3: the fetch schedule starts when a subnet is known) —
        // but only within the cache budget of ~3 subnet contexts, so
        // a backed-up entry queue does not balloon GPU memory.
        if (model.predictor &&
            stages[0]->fwdCandidates().size() < 3) {
            auto [lo, hi] = blockRange(0, sn.id());
            if (lo <= hi)
                stages[0]->ctx().prefetch(sn, lo, hi);
        }

        stages[0]->pushFwd(sn.id());
        injected++;
        inflight++;
    }
    tryDispatch(0);
}

void
PipelineRuntime::Impl::tryDispatch(int k)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    if (!st.gpu().compute().freeBy(sim.now()))
        return;  // busy; the completion event re-triggers dispatch
    Decision d = policy->pick(st);
    if (!d.valid()) {
        // Classify the stall for the diagnostics of Table 2's bubble.
        if (st.fwdCandidates().empty() && st.bwdCandidates().empty()) {
            stallEmptyQueues++;
        } else if (model.policy == PolicyKind::Csp &&
                   CspPolicy::schedulableForward(st, -1, false) >= 0) {
            stallMirrorWait++;
        } else {
            stallDependency++;
        }
        return;
    }
    if (d.kind == Decision::Kind::Backward)
        startBackward(k, d.subnet);
    else
        startForward(k, d.subnet);
}

void
PipelineRuntime::Impl::startForward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    st.popFwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 21: predictor runs after the pop, before the
    // forward executes.
    if (model.predictor) {
        st.predictor().beforeForward(
            st, id,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    // Pipeline-forwarding prediction: this subnet's activations head
    // to stage k+1 next, so that stage prefetches its share of the
    // context while this stage computes ("status passed from other
    // stages", §3.3).
    if (model.predictor && k + 1 < numStages) {
        auto [nlo, nhi] = blockRange(k + 1, id);
        if (nlo <= nhi) {
            stages[static_cast<std::size_t>(k) + 1]->ctx().prefetch(
                sn, nlo, nhi);
        }
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));
    if (model.policy == PolicyKind::Csp && lo <= hi) {
        // CSP: a read of a shared layer must see the precedent
        // subnet's write, including the mirror push when the writer
        // ran on another stage (§4.2). Parameter-free skip layers
        // have no state to wait for.
        for (int b = lo; b <= hi; b++) {
            if (space.parameterized(b, sn.choice(b)))
                ready = std::max(ready, readAvailable(sn.layer(b), k));
        }
    }

    Tick duration = taskDuration(sn, lo, hi, TaskType::Forward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    // The numeric READ happens at task start: parameters are sampled
    // when the kernel launches.
    if (config.numeric) {
        sim.scheduleAt(start, [this, k, id, lo, hi] {
            const Subnet &subnet = subnetOf(id);
            if (lo <= hi)
                exec->forwardStage(subnet, lo, hi, semantics);
            if (k == numStages - 1)
                lossAtCompute[id] = exec->computeLoss(subnet);
        });
    }

    sim.scheduleAt(
        end,
        [this, k, id, start, end] {
            {
                TraceRecord rec{start, end, k, TraceKind::Forward,
                                id, ""};
                auto it = fwdArrival.find({k, id});
                if (it != fwdArrival.end()) {
                    rec.detail = "wait_ms=" + std::to_string(
                        ticksToMs(start - it->second));
                }
                trace->add(rec);
            }
            execBusySec[id] += ticksToSec(end - start);
            if (k + 1 < numStages) {
                Tick arrival =
                    cluster->link(k, k + 1).sendFrom(
                        end, sizer.fwdBytes());
                sim.scheduleAt(
                    arrival,
                    [this, k, id] {
                        fwdArrival[{k + 1, id}] = sim.now();
                        stages[static_cast<std::size_t>(k) + 1]
                            ->pushFwd(id);
                        tryDispatch(k + 1);
                    },
                    EventPriority::Transfer);
            } else {
                // The last stage turns the forward around into the
                // backward pass.
                stages[static_cast<std::size_t>(k)]->pushBwd(id, {});
            }
            tryDispatch(k);
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::startBackward(int k, SubnetId id)
{
    Stage &st = *stages[static_cast<std::size_t>(k)];
    std::vector<PendingBackward> meta = st.popBwd(id);
    const Subnet &sn = subnetOf(id);
    auto [lo, hi] = blockRange(k, id);

    // Algorithm 1 line 6: predictor runs before the backward.
    if (model.predictor) {
        st.predictor().beforeBackward(
            st, id, meta,
            [this](const Task &t, PredictReason) {
                auto [plo, phi] = blockRange(t.stage, t.subnet);
                if (plo <= phi) {
                    stages[static_cast<std::size_t>(t.stage)]
                        ->ctx()
                        .prefetch(subnetOf(t.subnet), plo, phi);
                }
            });
    }

    Tick ready = sim.now();
    if (lo <= hi)
        ready = std::max(ready, st.ctx().ensureResident(sn, lo, hi));

    Tick duration = taskDuration(sn, lo, hi, TaskType::Backward);
    Tick start = st.gpu().compute().reserveFrom(ready, duration);
    Tick end = start + duration;

    sim.scheduleAt(
        end,
        [this, k, id, lo, hi, start, end] {
            Stage &stage = *stages[static_cast<std::size_t>(k)];
            const Subnet &subnet = subnetOf(id);
            trace->add(TraceRecord{start, end, k, TraceKind::Backward,
                                   id, ""});
            execBusySec[id] += ticksToSec(end - start);

            // The numeric WRITE (optimizer step) lands at completion.
            if (config.numeric && lo <= hi)
                exec->backwardStage(subnet, lo, hi, semantics);
            if (lo <= hi && semantics != UpdateSemantics::Deferred) {
                for (int b = lo; b <= hi; b++) {
                    if (!space.parameterized(b, subnet.choice(b)))
                        continue;
                    std::uint64_t key = subnet.layer(b).key();
                    lastWrite[key] = {end, k};
                    writesApplied[key]++;
                }
            }

            // Mirror push: updated mirrored parameters travel to the
            // other replicas (§4.2).
            if (model.mirroring) {
                auto subIt = mirrorEntries.find(id);
                if (subIt != mirrorEntries.end()) {
                    auto stIt = subIt->second.find(k);
                    if (stIt != subIt->second.end())
                        mirrors->recordSyncPush(stIt->second);
                }
            }

            stage.mutableDeps().markFinished(id);
            if (lo <= hi)
                stage.ctx().evictSubnet(subnet, lo, hi);

            if (k > 0) {
                Tick arrival = cluster->link(k, k - 1).sendFrom(
                    end, sizer.bwdBytes());
                auto carried = pendingMeta(k);
                sim.scheduleAt(
                    arrival,
                    [this, k, id, carried] {
                        stages[static_cast<std::size_t>(k) - 1]
                            ->pushBwd(id, carried);
                        tryDispatch(k - 1);
                    },
                    EventPriority::Transfer);
            } else {
                onSubnetComplete(k, id, end);
            }
            if (model.policy == PolicyKind::Csp) {
                // Newly visible writes may unblock forward
                // candidates on any stage (mirror pushes).
                for (int s = 0; s < numStages; s++)
                    tryDispatch(s);
            } else {
                tryDispatch(k);
            }
        },
        EventPriority::Completion);
}

void
PipelineRuntime::Impl::onSubnetComplete(int, SubnetId id, Tick end)
{
    inflight--;
    finished++;

    float loss = 0.0f;
    if (config.numeric) {
        if (semantics == UpdateSemantics::Deferred) {
            // Weights update only at the flush; the loss is already
            // known from the last forward stage.
            loss = lossAtCompute.at(id);
            pendingFinish.push_back(id);
        } else {
            loss = exec->finishSubnet(subnetOf(id));
        }
    }
    losses[id] = loss;
    tracker->addSample(ticksToSec(end), loss);
    scoreBuffer[id] = lossToScore(loss, scoreScale);
    if (effectiveFeedbackLag() == 0)
        deliverScoresBelow(config.totalSubnets);

    if (flushCtl) {
        if (flushCtl->onSubnetComplete(id)) {
            // BSP flush: apply the bulk's deferred updates together,
            // in sequence-ID order, then release the next bulk.
            if (config.numeric &&
                semantics == UpdateSemantics::Deferred) {
                exec->applyDeferredUpdates(pendingFinish);
                for (SubnetId fid : pendingFinish) {
                    const Subnet &fsn = subnetOf(fid);
                    for (int b = 0; b < fsn.size(); b++) {
                        if (space.parameterized(b, fsn.choice(b)))
                            writesApplied[fsn.layer(b).key()]++;
                    }
                    exec->finishSubnet(fsn);
                }
                pendingFinish.clear();
            }
            trace->add(TraceRecord{end, end, 0, TraceKind::Flush, id,
                                   "bulk flush"});
            injectSubnets();
        }
    } else {
        injectSubnets();
    }
}

int
PipelineRuntime::Impl::effectiveFeedbackLag() const
{
    if (config.feedbackLag != 0)
        return std::max(0, config.feedbackLag);
    return config.evolutionSearch ? 32 : 0;
}

void
PipelineRuntime::Impl::deliverScoresBelow(SubnetId maxIdExclusive)
{
    // Deliver quality feedback to the exploration algorithm in
    // sequence-ID order, never past the cap, so feedback-driven
    // samplers stay deterministic regardless of completion
    // interleavings.
    while (nextScoreToReport < maxIdExclusive) {
        auto it = scoreBuffer.find(nextScoreToReport);
        if (it == scoreBuffer.end())
            break;
        sampler->reportScore(it->first, it->second);
        scoreBuffer.erase(it);
        nextScoreToReport++;
    }
}

RunResult
PipelineRuntime::Impl::collect()
{
    RunResult out;
    out.plan = plan;
    out.losses = losses;
    out.store = store;
    out.trace = trace;

    out.sampled.reserve(subnets.size());
    for (const auto &[id, sn] : subnets)
        out.sampled.push_back(sn);

    RunMetrics &m = out.metrics;
    m.finishedSubnets = finished;
    m.batch = batch;
    m.simSeconds = ticksToSec(sim.now());
    if (m.simSeconds > 0.0) {
        m.samplesPerSec = static_cast<double>(finished) * batch /
                          m.simSeconds;
        m.subnetsPerHour =
            static_cast<double>(finished) / m.simSeconds * 3600.0;
    }
    m.bubbleRatio = cluster->meanBubbleRatio();
    double eff = kernelEfficiency(batch, activation.overheadBatch);
    m.totalAluUtilization =
        cluster->totalAluUtilization(m.simSeconds) * eff;
    for (int s = 0; s < numStages; s++) {
        m.perGpuAlu.push_back(
            cluster->gpu(s).aluUtilization(m.simSeconds) * eff);
    }

    double busyTotal = 0.0;
    for (const auto &[id, sec] : execBusySec)
        busyTotal += sec;
    if (finished > 0)
        m.meanExecSeconds = busyTotal / finished;

    m.gpuMemFactor =
        static_cast<double>(plan.residentParamBytesPerGpu +
                            plan.activationBytesPerGpu +
                            CapacityPlanner::kReserveBytes) /
        static_cast<double>(config.cluster.gpu.memoryBytes) *
        numStages;
    m.cpuMemBytes = plan.cpuMemBytesTotal;
    m.reportedParamBytes = plan.reportedParamBytes;

    if (model.memory == MemoryMode::AllResident) {
        m.cacheHitRate = -1.0;
    } else {
        std::uint64_t hits = 0, misses = 0;
        for (const auto &stage : stages) {
            hits += stage->ctx().memory().hitStats().hits();
            misses += stage->ctx().memory().hitStats().misses();
        }
        m.cacheHitRate =
            (hits + misses)
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
        for (const auto &stage : stages) {
            m.prefetchedBytes += stage->ctx().stats().prefetchedBytes;
            m.syncFetchedBytes +=
                stage->ctx().stats().syncFetchedBytes;
        }
    }
    if (model.mirroring) {
        m.mirrorSyncBytes = mirrors->stats().syncBytes;
        m.mirrorsCreated = mirrors->stats().mirrorsCreated;
    }

    m.stallEmptyQueues = stallEmptyQueues;
    m.stallDependency = stallDependency;
    m.stallMirrorWait = stallMirrorWait;

    // The "supernet loss" is the trailing-window mean over the last
    // subnets *by sequence ID* (not completion order), so the metric
    // itself is invariant across GPU counts whenever the per-subnet
    // losses are.
    if (!losses.empty()) {
        std::size_t window = std::min<std::size_t>(16, losses.size());
        double total = 0.0;
        auto it = losses.end();
        for (std::size_t i = 0; i < window; i++)
            total += (--it)->second;
        m.finalLoss = total / static_cast<double>(window);
        m.finalScore = lossToScore(m.finalLoss, scoreScale);
    }
    out.curve = tracker->curve(64);

    if (config.numeric) {
        out.supernetHash = store->supernetHash();
        m.supernetHash = out.supernetHash;
        int violations = 0;
        for (const LayerId &layer : store->accessLog().touchedLayers()) {
            if (!store->accessLog().sequentiallyEquivalent(layer))
                violations++;
        }
        m.causalViolations = violations;

        SearchResult search =
            searchBestSubnet(*exec, out.sampled, scoreScale,
                             deriveSeed(config.seed, "search"));
        out.bestSubnet = search.best.id();
        out.searchAccuracy = search.accuracy;
    }
    return out;
}

PipelineRuntime::PipelineRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config)),
      _scoreScale(_impl->scoreScale)
{
}

PipelineRuntime::~PipelineRuntime() = default;

RunResult
PipelineRuntime::run()
{
    if (!_impl->setup()) {
        RunResult out;
        out.oom = true;
        out.plan = _impl->plan;
        return out;
    }
    _impl->injectSubnets();
    _impl->sim.run();
    NASPIPE_ASSERT(_impl->finished == _impl->config.totalSubnets,
                   "run ended with ", _impl->finished, " of ",
                   _impl->config.totalSubnets, " subnets finished");
    return _impl->collect();
}

RunResult
runTraining(const SearchSpace &space, const RuntimeConfig &config)
{
    PipelineRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
