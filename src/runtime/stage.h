/**
 * @file
 * Per-stage runtime state: the queues, dependency tracker, context
 * manager and predictor of one pipeline worker (one GPU).
 *
 * This is the stateful half of Algorithm 1; the event handling that
 * drives it lives in PipelineRuntime.
 */

#ifndef NASPIPE_RUNTIME_STAGE_H
#define NASPIPE_RUNTIME_STAGE_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hw/gpu.h"
#include "memory/context_manager.h"
#include "schedule/dependency.h"
#include "schedule/predictor.h"
#include "schedule/scheduler.h"
#include "sim/simulator.h"

namespace naspipe {

/**
 * One pipeline stage's runtime state; implements the StageInfo view
 * scheduling policies observe.
 */
class Stage : public StageInfo
{
  public:
    /** Callbacks the stage needs from the runtime. */
    struct Hooks {
        /** Block range of a subnet's partition on a given stage. */
        std::function<std::pair<int, int>(SubnetId)> blockRange;
        /** Mirror-visibility check (StageInfo::upstreamWritesDone). */
        std::function<bool(SubnetId)> upstreamWritesDone;
    };

    /**
     * @param sim owning simulator
     * @param space the search space
     * @param gpu the GPU serving this stage
     * @param index stage index
     * @param numStages pipeline depth
     * @param memory memory mode for the context manager
     * @param hooks runtime callbacks
     * @param cacheBudgetBytes context-manager budget (0: unlimited)
     */
    Stage(Simulator &sim, const SearchSpace &space, Gpu &gpu, int index,
          int numStages, MemoryMode memory, Hooks hooks,
          std::uint64_t cacheBudgetBytes = 0);

    // --- StageInfo interface (what policies may see). ---
    int stageIndex() const override { return _index; }
    int numStages() const override { return _numStages; }
    const std::vector<SubnetId> &fwdCandidates() const override
    {
        return _fwdQueue;
    }
    const std::vector<SubnetId> &bwdCandidates() const override
    {
        return _bwdQueue;
    }
    const Subnet &subnet(SubnetId id) const override
    {
        return _deps.subnet(id);
    }
    std::pair<int, int> blockRange(SubnetId id) const override
    {
        return _hooks.blockRange(id);
    }
    const DependencyTracker &deps() const override { return _deps; }
    bool upstreamWritesDone(SubnetId id) const override
    {
        return _hooks.upstreamWritesDone(id);
    }

    // --- Runtime-side mutators. ---
    /** Register a newly retrieved subnet (L_SN.append). */
    void registerSubnet(const Subnet &subnet)
    {
        _deps.registerSubnet(subnet);
    }

    /** Enqueue an arrived forward task (L_q.append). */
    void pushFwd(SubnetId id);

    /** Enqueue an arrived backward task with predictor metadata. */
    void pushBwd(SubnetId id, std::vector<PendingBackward> nextBwds);

    /** Remove a dispatched forward candidate (L_q.pop). */
    void popFwd(SubnetId id);

    /** Remove a dispatched backward candidate; returns its metadata. */
    std::vector<PendingBackward> popBwd(SubnetId id);

    /** Mutable dependency tracker (markFinished on backward). */
    DependencyTracker &mutableDeps() { return _deps; }

    ContextManager &ctx() { return *_ctx; }
    const ContextManager &ctx() const { return *_ctx; }

    Predictor &predictor() { return _predictor; }

    Gpu &gpu() { return _gpu; }
    const Gpu &gpu() const { return _gpu; }

    /** Total busy compute seconds this stage accumulated. */
    double busySeconds() const
    {
        return _gpu.compute().utilization().busyTime();
    }

  private:
    Simulator &_sim;
    Gpu &_gpu;
    int _index;
    int _numStages;
    Hooks _hooks;
    DependencyTracker _deps;
    std::unique_ptr<ContextManager> _ctx;
    Predictor _predictor;
    std::vector<SubnetId> _fwdQueue;
    std::vector<SubnetId> _bwdQueue;
    std::map<SubnetId, std::vector<PendingBackward>> _bwdMeta;
};

} // namespace naspipe

#endif // NASPIPE_RUNTIME_STAGE_H
