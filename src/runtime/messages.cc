#include "runtime/messages.h"

// Message types are plain data; this translation unit exists so the
// header has a home in the library and future marshalling logic has a
// place to live.
