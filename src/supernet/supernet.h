/**
 * @file
 * Supernet-level aggregate queries.
 *
 * The CSP scheduler's key insight is statistical: "the larger a
 * supernet spans, the fewer dependencies manifest between
 * chronologically close subnets" (§1). This module quantifies that
 * insight — analytically for uniform sampling and empirically for a
 * concrete subnet list — so the scheduler's achievable parallelism
 * can be reasoned about and tested.
 */

#ifndef NASPIPE_SUPERNET_SUPERNET_H
#define NASPIPE_SUPERNET_SUPERNET_H

#include <vector>

#include "supernet/sampler.h"
#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {

/**
 * A supernet: the search space plus dependency statistics over it.
 */
class Supernet
{
  public:
    explicit Supernet(const SearchSpace &space) : _space(space) {}

    const SearchSpace &space() const { return _space; }

    /**
     * Probability that two independently uniform subnets share at
     * least one layer: 1 - (1 - 1/n)^m.
     */
    double shareProbability() const;

    /**
     * Expected number of independent subnets between two consecutive
     * dependent ones (geometric mean gap), 1/shareProbability().
     */
    double expectedIndependentRun() const;

    /**
     * Fraction of ordered pairs (x, y), x < y, within a sliding
     * window of @p window subnets of @p subnets that share a layer.
     * This is the empirical dependency density the CSP scheduler
     * faces.
     */
    static double dependencyDensity(const std::vector<Subnet> &subnets,
                                    int window);

    /**
     * Size of the largest prefix-closed antichain at the head of
     * @p subnets: the number of leading subnets that are pairwise
     * independent, an upper bound on immediately available
     * parallelism.
     */
    static int independentPrefixLength(const std::vector<Subnet> &subnets);

    /** Draw @p count subnets from @p sampler into a vector. */
    static std::vector<Subnet> drawMany(SubnetSampler &sampler,
                                        int count);

  private:
    const SearchSpace &_space;
};

} // namespace naspipe

#endif // NASPIPE_SUPERNET_SUPERNET_H
