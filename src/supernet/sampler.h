/**
 * @file
 * Subnet exploration algorithms (the "frontend" producing the ordered
 * subnet stream).
 *
 * The paper assumes subnets arrive from a NAS exploration algorithm
 * in a producer-consumer fashion (§3.2); the order the sampler emits
 * *is* the causal order CSP must preserve. Uniform per-choice-block
 * sampling (SPOS) is the paper's default; evolution (regularized /
 * aging evolution) is its default *search* strategy; a fixed-sequence
 * sampler supports deterministic replay and targeted tests.
 */

#ifndef NASPIPE_SUPERNET_SAMPLER_H
#define NASPIPE_SUPERNET_SAMPLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "supernet/subnet.h"

namespace naspipe {

/**
 * Abstract producer of the ordered subnet stream.
 */
class SubnetSampler
{
  public:
    virtual ~SubnetSampler() = default;

    /** Produce the next subnet; sequence IDs are consecutive from 0. */
    virtual Subnet next() = 0;

    /**
     * Feed back the training quality of a finished subnet (used by
     * search strategies such as evolution; ignored by others).
     */
    virtual void reportScore(SubnetId id, double score);

    /** Number of subnets produced so far. */
    SubnetId produced() const { return _next; }

  protected:
    /** Allocate the next sequence ID. */
    SubnetId allocateId() { return _next++; }

  private:
    SubnetId _next = 0;
};

/**
 * SPOS-style uniform sampler: every block picks uniformly among its
 * candidates (paper §3: "a per choice block uniform sampling
 * approach, the most representative method").
 */
class UniformSampler : public SubnetSampler
{
  public:
    UniformSampler(const SearchSpace &space, std::uint64_t seed);

    Subnet next() override;

  private:
    const SearchSpace &_space;
    Xoshiro256StarStar _rng;
};

/**
 * Aging-evolution sampler (Real et al.), the paper's default search
 * strategy: keep a population of the most recent P architectures;
 * each step runs an S-way tournament on reported scores and emits a
 * one-block mutation of the winner. Until the population warms up,
 * subnets are sampled uniformly.
 */
class EvolutionSampler : public SubnetSampler
{
  public:
    /**
     * @param space the search space
     * @param seed deterministic stream seed
     * @param population population size P
     * @param tournament tournament size S
     */
    EvolutionSampler(const SearchSpace &space, std::uint64_t seed,
                     int population = 16, int tournament = 4);

    Subnet next() override;

    void reportScore(SubnetId id, double score) override;

  private:
    struct Member {
        Subnet subnet;
        double score = 0.0;
        bool scored = false;
    };

    Subnet sampleUniform(SubnetId id);

    const SearchSpace &_space;
    Xoshiro256StarStar _rng;
    int _population;
    int _tournament;
    std::deque<Member> _members;
};

/**
 * Hybrid multi-space traversal (paper §5.5, Future Applications):
 * "NASPipe allows the hybrid traverse of multiple search spaces
 * simultaneously as NASPipe's runtime design is flexible to hold any
 * number of causal dependency relations."
 *
 * The sampler partitions the supernet's choice blocks into
 * `numStreams` contiguous groups — each group is an independent
 * sub-search-space — and emits subnets round-robin across streams:
 * subnet i explores stream (i mod numStreams), activating only that
 * group's blocks (every other block takes the skip candidate).
 * Consecutive subnets therefore never share a parameterized layer,
 * so the CSP scheduler interleaves the streams without dependency
 * stalls; dependencies only arise within a stream, at numStreams
 * times the sequence distance.
 *
 * Requires a space with a skip candidate (skipMass > 0).
 */
class HybridSampler : public SubnetSampler
{
  public:
    /**
     * @param space the combined search space (skipMass > 0)
     * @param seed deterministic stream seed
     * @param numStreams number of simultaneously traversed spaces
     */
    HybridSampler(const SearchSpace &space, std::uint64_t seed,
                  int numStreams);

    Subnet next() override;

    int numStreams() const { return _numStreams; }

    /** Stream the subnet with sequence ID @p id belongs to. */
    int streamOf(SubnetId id) const
    {
        return static_cast<int>(id % _numStreams);
    }

    /** Block range (inclusive) explored by @p stream. */
    std::pair<int, int> streamBlocks(int stream) const;

  private:
    const SearchSpace &_space;
    Xoshiro256StarStar _rng;
    int _numStreams;
};

/**
 * Replays an explicit, pre-decided list of choice vectors; used for
 * the dependency-structure unit tests and for replay experiments.
 * When the list is exhausted the sampler wraps around (with fresh
 * sequence IDs).
 */
class FixedSequenceSampler : public SubnetSampler
{
  public:
    explicit FixedSequenceSampler(
        std::vector<std::vector<std::uint16_t>> sequence);

    Subnet next() override;

  private:
    std::vector<std::vector<std::uint16_t>> _sequence;
    std::size_t _cursor = 0;
};

} // namespace naspipe

#endif // NASPIPE_SUPERNET_SAMPLER_H
