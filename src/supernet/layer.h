/**
 * @file
 * Candidate-layer model: the kinds of DNN operators a choice block
 * can hold, together with their cost profile (parameter size, forward
 * and backward compute time, and swap time).
 *
 * The eight "representative" kinds mirror Table 5 of the paper
 * (Evolved-Transformer ops for NLP, AmoebaNet ops for CV); the extra
 * kinds round out realistic search spaces (feed-forward blocks, GLUs,
 * pooling, identity/skip) the same way the original spaces do.
 */

#ifndef NASPIPE_SUPERNET_LAYER_H
#define NASPIPE_SUPERNET_LAYER_H

#include <cstdint>
#include <string>

namespace naspipe {

/** Operator kinds available to choice blocks. */
enum class LayerKind : std::uint8_t {
    // NLP (Evolved-Transformer style) kinds; first four are Table 5.
    Conv3x1,
    SepConv7x1,
    LightConv5x1,
    Attention8Head,
    FeedForward,
    GatedLinearUnit,
    // CV (AmoebaNet style) kinds; first four are Table 5.
    Conv3x3,
    SepConv3x3,
    SepConv5x5,
    DilConv3x3,
    MaxPool3x3,
    Identity,
};

/** Number of LayerKind values. */
constexpr int kNumLayerKinds = 12;

/** Short printable name ("Conv 3x1"). */
const char *layerKindName(LayerKind kind);

/** Whether the kind belongs to the NLP operator family. */
bool isNlpKind(LayerKind kind);

/** Whether the kind belongs to the CV operator family. */
bool isCvKind(LayerKind kind);

/**
 * Identity of one candidate layer inside a supernet: the choice block
 * it belongs to and its index within the block. Two subnets share a
 * layer (and thus have a causal dependency) exactly when they pick
 * the same choice in the same block.
 */
struct LayerId {
    std::uint32_t block = 0;
    std::uint32_t choice = 0;

    bool operator==(const LayerId &) const = default;
    auto operator<=>(const LayerId &) const = default;

    /** Dense key usable in hash maps / flat arrays. */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(block) << 32) | choice;
    }
};

/**
 * Cost profile of one candidate layer at the family's reference input
 * size (NLP: batch 192 tokens x 1024 dim; CV: batch 64 of 112x112).
 * Compute times scale linearly with batch relative to the reference;
 * the swap time is parameter-only and batch independent.
 */
struct LayerSpec {
    LayerKind kind = LayerKind::Identity;
    std::uint64_t paramBytes = 0;  ///< fp32 parameter footprint
    double fwdMs = 0.0;            ///< forward time at reference batch
    double bwdMs = 0.0;            ///< backward time at reference batch
    double swapMs = 0.0;           ///< CPU->GPU copy time (PCIe 3 x16)

    /** Parameter count assuming fp32 storage. */
    std::uint64_t params() const { return paramBytes / 4; }

    /** Forward time at an arbitrary batch size. */
    double fwdMsAt(int batch, int referenceBatch) const;

    /** Backward time at an arbitrary batch size. */
    double bwdMsAt(int batch, int referenceBatch) const;
};

} // namespace naspipe

#endif // NASPIPE_SUPERNET_LAYER_H
