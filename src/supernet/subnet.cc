#include "supernet/subnet.h"

#include <sstream>

#include "common/logging.h"

namespace naspipe {

Subnet::Subnet(SubnetId id, std::vector<std::uint16_t> choices)
    : _id(id), _choices(std::move(choices))
{
    NASPIPE_ASSERT(id >= 0, "subnet sequence ID must be non-negative");
    NASPIPE_ASSERT(!_choices.empty(), "subnet must have choices");
}

int
Subnet::choice(int block) const
{
    NASPIPE_ASSERT(block >= 0 && block < size(),
                   "block ", block, " out of range");
    return _choices[static_cast<std::size_t>(block)];
}

LayerId
Subnet::layer(int block) const
{
    return LayerId{static_cast<std::uint32_t>(block),
                   static_cast<std::uint32_t>(choice(block))};
}

bool
Subnet::sharesLayerWith(const Subnet &other) const
{
    return sharesLayerInRange(other, 0, size() - 1);
}

std::vector<int>
Subnet::sharedBlocks(const Subnet &other) const
{
    NASPIPE_ASSERT(other.size() == size(),
                   "subnets from different spaces");
    std::vector<int> blocks;
    for (int b = 0; b < size(); b++) {
        if (_choices[static_cast<std::size_t>(b)] ==
            other._choices[static_cast<std::size_t>(b)]) {
            blocks.push_back(b);
        }
    }
    return blocks;
}

bool
Subnet::sharesLayerInRange(const Subnet &other, int firstBlock,
                           int lastBlock) const
{
    NASPIPE_ASSERT(other.size() == size(),
                   "subnets from different spaces");
    NASPIPE_ASSERT(firstBlock >= 0 && lastBlock < size() &&
                       firstBlock <= lastBlock,
                   "bad block range [", firstBlock, ",", lastBlock, "]");
    for (int b = firstBlock; b <= lastBlock; b++) {
        if (_choices[static_cast<std::size_t>(b)] ==
            other._choices[static_cast<std::size_t>(b)]) {
            return true;
        }
    }
    return false;
}

std::uint64_t
Subnet::paramBytes(const SearchSpace &space) const
{
    std::uint64_t total = 0;
    for (int b = 0; b < size(); b++)
        total += space.spec(b, choice(b)).paramBytes;
    return total;
}

double
Subnet::fwdMs(const SearchSpace &space, int batch) const
{
    double total = 0.0;
    for (int b = 0; b < size(); b++) {
        total += space.spec(b, choice(b))
                     .fwdMsAt(batch, space.referenceBatch());
    }
    return total;
}

double
Subnet::bwdMs(const SearchSpace &space, int batch) const
{
    double total = 0.0;
    for (int b = 0; b < size(); b++) {
        total += space.spec(b, choice(b))
                     .bwdMsAt(batch, space.referenceBatch());
    }
    return total;
}

std::string
Subnet::toString() const
{
    std::ostringstream oss;
    oss << "SN" << _id << "[";
    for (int b = 0; b < size(); b++) {
        if (b)
            oss << ",";
        oss << choice(b);
    }
    oss << "]";
    return oss.str();
}

} // namespace naspipe
