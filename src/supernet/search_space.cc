#include "supernet/search_space.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "supernet/profile.h"

namespace naspipe {

const char *
spaceFamilyName(SpaceFamily family)
{
    return family == SpaceFamily::Nlp ? "NLP" : "CV";
}

namespace {

/** Candidate kinds available per family, in cycling order. */
const LayerKind kNlpKinds[] = {
    LayerKind::Conv3x1,       LayerKind::SepConv7x1,
    LayerKind::LightConv5x1,  LayerKind::Attention8Head,
    LayerKind::FeedForward,   LayerKind::GatedLinearUnit,
};

const LayerKind kCvKinds[] = {
    LayerKind::Conv3x3,    LayerKind::SepConv3x3,
    LayerKind::SepConv5x5, LayerKind::DilConv3x3,
    LayerKind::MaxPool3x3, LayerKind::Identity,
};

} // namespace

SearchSpace::SearchSpace(std::string name, SpaceFamily family,
                         int numBlocks, int choicesPerBlock,
                         std::uint64_t seed, double skipMass)
    : _name(std::move(name)), _family(family), _numBlocks(numBlocks),
      _choicesPerBlock(choicesPerBlock), _skipMass(skipMass)
{
    NASPIPE_ASSERT(numBlocks > 0, "space needs at least one block");
    NASPIPE_ASSERT(choicesPerBlock > 0,
                   "space needs at least one choice per block");
    NASPIPE_ASSERT(skipMass >= 0.0 && skipMass < 1.0,
                   "skip mass must be in [0, 1)");
    NASPIPE_ASSERT(skipMass == 0.0 || choicesPerBlock >= 2,
                   "skip candidate needs >= 2 choices per block");

    const auto &db = LayerProfileDb::instance();
    const LayerKind *kinds =
        family == SpaceFamily::Nlp ? kNlpKinds : kCvKinds;
    const int numKinds = 6;

    // Candidate diversity comes from a counter-based generator keyed
    // by the space seed, so spec(b, c) is a pure function of
    // (seed, b, c): rebuilding the space anywhere gives identical
    // costs, which the reproducibility experiments depend on.
    Philox4x32 philox(deriveSeed(seed, "search-space"));

    _specs.reserve(static_cast<std::size_t>(numBlocks) *
                   static_cast<std::size_t>(choicesPerBlock));
    for (int b = 0; b < numBlocks; b++) {
        for (int c = 0; c < choicesPerBlock; c++) {
            if (_skipMass > 0.0 && c == 0) {
                // Choice 0 is the parameter-free skip candidate.
                LayerSpec skip = db.reference(LayerKind::Identity);
                skip.paramBytes = 0;
                skip.swapMs = 0.0;
                _specs.push_back(skip);
                continue;
            }
            LayerKind kind = kinds[c % numKinds];
            std::uint64_t counter =
                static_cast<std::uint64_t>(b) *
                    static_cast<std::uint64_t>(choicesPerBlock) + c;
            // Scale in [0.7, 1.3): moderate size diversity, as in
            // real spaces where candidates differ in channel width.
            double scale =
                0.7 + 0.6 * philox.uniformFloat(counter);
            LayerSpec spec = db.scaled(kind, scale);
            _totalParamBytes += spec.paramBytes;
            _specs.push_back(spec);
        }
    }
}

const char *
SearchSpace::dataset() const
{
    return _family == SpaceFamily::Nlp ? "WNMT" : "ImageNet";
}

int
SearchSpace::referenceBatch() const
{
    return _family == SpaceFamily::Nlp ? kNlpReferenceBatch
                                       : kCvReferenceBatch;
}

const LayerSpec &
SearchSpace::spec(int block, int choice) const
{
    NASPIPE_ASSERT(block >= 0 && block < _numBlocks,
                   "block ", block, " out of range");
    NASPIPE_ASSERT(choice >= 0 && choice < _choicesPerBlock,
                   "choice ", choice, " out of range");
    return _specs[static_cast<std::size_t>(block) *
                      static_cast<std::size_t>(_choicesPerBlock) +
                  static_cast<std::size_t>(choice)];
}

const LayerSpec &
SearchSpace::spec(const LayerId &id) const
{
    return spec(static_cast<int>(id.block),
                static_cast<int>(id.choice));
}

std::uint64_t
SearchSpace::meanSubnetParamBytes() const
{
    // With skip mass q, a block contributes a parameterized layer
    // with probability (1 - q), uniform over the parameterized
    // candidates; the expected subnet size is therefore
    // (1 - q) * total / (#parameterized per block).
    int paramChoices =
        _skipMass > 0.0 ? _choicesPerBlock - 1 : _choicesPerBlock;
    double mean = (1.0 - _skipMass) *
                  static_cast<double>(_totalParamBytes) /
                  static_cast<double>(paramChoices);
    return static_cast<std::uint64_t>(mean);
}

double
SearchSpace::pairDependencyProbability() const
{
    int paramChoices =
        _skipMass > 0.0 ? _choicesPerBlock - 1 : _choicesPerBlock;
    // P(two subnets pick the same parameterized candidate in one
    // block) = sum over candidates of ((1-q)/paramChoices)^2.
    double pBlock = (1.0 - _skipMass) * (1.0 - _skipMass) /
                    static_cast<double>(paramChoices);
    return 1.0 -
           std::pow(1.0 - pBlock, static_cast<double>(_numBlocks));
}

double
SearchSpace::logCandidates() const
{
    return static_cast<double>(_numBlocks) *
           std::log10(static_cast<double>(_choicesPerBlock));
}

double
defaultSkipMass(SpaceFamily family)
{
    // Calibrated from the paper's Table 2 "Para." column: mean
    // subnet depth / supernet depth is ~474M/(15.5M*48) = 0.63 for
    // the NLP spaces and ~337M/(20.8M*32) = 0.51 for the CV spaces.
    return family == SpaceFamily::Nlp ? 0.37 : 0.49;
}

SearchSpace
makeNlpC0()
{
    return SearchSpace("NLP.c0", SpaceFamily::Nlp, 48, 96, 7,
                       defaultSkipMass(SpaceFamily::Nlp));
}

SearchSpace
makeNlpC1()
{
    return SearchSpace("NLP.c1", SpaceFamily::Nlp, 48, 72, 7,
                       defaultSkipMass(SpaceFamily::Nlp));
}

SearchSpace
makeNlpC2()
{
    return SearchSpace("NLP.c2", SpaceFamily::Nlp, 48, 48, 7,
                       defaultSkipMass(SpaceFamily::Nlp));
}

SearchSpace
makeNlpC3()
{
    return SearchSpace("NLP.c3", SpaceFamily::Nlp, 48, 24, 7,
                       defaultSkipMass(SpaceFamily::Nlp));
}

SearchSpace
makeCvC1()
{
    return SearchSpace("CV.c1", SpaceFamily::Cv, 32, 48, 7,
                       defaultSkipMass(SpaceFamily::Cv));
}

SearchSpace
makeCvC2()
{
    return SearchSpace("CV.c2", SpaceFamily::Cv, 32, 24, 7,
                       defaultSkipMass(SpaceFamily::Cv));
}

SearchSpace
makeCvC3()
{
    return SearchSpace("CV.c3", SpaceFamily::Cv, 32, 12, 7,
                       defaultSkipMass(SpaceFamily::Cv));
}

SearchSpace
makeSpaceByName(const std::string &name)
{
    if (name == "NLP.c0")
        return makeNlpC0();
    if (name == "NLP.c1")
        return makeNlpC1();
    if (name == "NLP.c2")
        return makeNlpC2();
    if (name == "NLP.c3")
        return makeNlpC3();
    if (name == "CV.c1")
        return makeCvC1();
    if (name == "CV.c2")
        return makeCvC2();
    if (name == "CV.c3")
        return makeCvC3();
    fatal("unknown search space: ", name);
}

std::vector<std::string>
defaultSpaceNames()
{
    return {"NLP.c0", "NLP.c1", "NLP.c2", "NLP.c3",
            "CV.c1",  "CV.c2",  "CV.c3"};
}

SearchSpace
makeTinySpace(SpaceFamily family, std::uint64_t seed)
{
    return SearchSpace("tiny", family, 4, 3, seed);
}

} // namespace naspipe
