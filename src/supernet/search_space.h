/**
 * @file
 * Search-space model: a supernet's static structure.
 *
 * A search space is a sequence of m choice blocks, each with n
 * candidate layers (paper §3, Preliminaries). The seven evaluated
 * spaces (Table 1) are provided as named builders; NLP spaces follow
 * the Evolved-Transformer operator family and CV spaces follow
 * AmoebaNet, with per-candidate cost diversity generated from a
 * counter-based RNG so every build of a space is identical.
 */

#ifndef NASPIPE_SUPERNET_SEARCH_SPACE_H
#define NASPIPE_SUPERNET_SEARCH_SPACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "supernet/layer.h"

namespace naspipe {

/** Task family of a search space. */
enum class SpaceFamily {
    Nlp,  ///< Evolved-Transformer style (WNMT dataset)
    Cv,   ///< AmoebaNet style (ImageNet dataset)
};

/** Printable family name. */
const char *spaceFamilyName(SpaceFamily family);

/**
 * Immutable description of one supernet search space.
 */
class SearchSpace
{
  public:
    /**
     * Build a space with generated candidate diversity.
     *
     * Real NAS spaces (Evolved Transformer, AmoebaNet) include
     * skip/identity candidates, so sampled subnets activate only
     * part of the supernet's depth; the paper's own Table 2 "Para."
     * column shows subnets averaging ~60 % of full depth for NLP and
     * ~50 % for CV. When @p skipMass > 0, choice 0 of every block is
     * a parameter-free identity candidate and samplers draw it with
     * probability @p skipMass (the remaining mass is uniform over
     * the parameterized candidates). Parameter-free candidates carry
     * no causal dependency — there is no shared trainable state.
     *
     * @param name display name ("NLP.c1")
     * @param family operator family
     * @param numBlocks number of choice blocks (m)
     * @param choicesPerBlock candidates per block (n)
     * @param seed deterministic seed for candidate cost diversity
     * @param skipMass sampling probability of the skip candidate
     */
    SearchSpace(std::string name, SpaceFamily family, int numBlocks,
                int choicesPerBlock, std::uint64_t seed = 7,
                double skipMass = 0.0);

    const std::string &name() const { return _name; }
    SpaceFamily family() const { return _family; }
    int numBlocks() const { return _numBlocks; }
    int choicesPerBlock() const { return _choicesPerBlock; }

    /** Dataset associated with the family (Table 1). */
    const char *dataset() const;

    /** Reference batch for the family's cost profile. */
    int referenceBatch() const;

    /** Cost profile of candidate @p choice in block @p block. */
    const LayerSpec &spec(int block, int choice) const;

    /** Cost profile by LayerId. */
    const LayerSpec &spec(const LayerId &id) const;

    /** Sampling mass of the skip candidate (0: no skip choice). */
    double skipMass() const { return _skipMass; }

    /** Whether candidate (block, choice) carries trainable state. */
    bool parameterized(int block, int choice) const
    {
        return spec(block, choice).paramBytes > 0;
    }

    /** Total parameter bytes of the whole supernet. */
    std::uint64_t totalParamBytes() const { return _totalParamBytes; }

    /** Mean parameter bytes of a sampled subnet (skip-aware). */
    std::uint64_t meanSubnetParamBytes() const;

    /**
     * Probability that two independently sampled subnets share a
     * *parameterized* layer in at least one block — the causal
     * dependency density the CSP scheduler faces.
     */
    double pairDependencyProbability() const;

    /** Number of candidate layers overall (m * n). */
    int totalLayers() const { return _numBlocks * _choicesPerBlock; }

    /** The NAS search-space size: n^m candidate architectures. */
    double logCandidates() const;

  private:
    std::string _name;
    SpaceFamily _family;
    int _numBlocks;
    int _choicesPerBlock;
    double _skipMass;
    std::vector<LayerSpec> _specs;  ///< [block * n + choice]
    std::uint64_t _totalParamBytes = 0;
};

/** Default skip mass per family, calibrated from Table 2's "Para."
 * column (subnet depth ~63 % for NLP, ~51 % for CV). */
double defaultSkipMass(SpaceFamily family);

/** @name Table 1 space builders
 * The seven default search spaces of the evaluation.
 * @{ */
SearchSpace makeNlpC0();  ///< 48 blocks x 96 layers, WNMT
SearchSpace makeNlpC1();  ///< 48 blocks x 72 layers, WNMT
SearchSpace makeNlpC2();  ///< 48 blocks x 48 layers, WNMT
SearchSpace makeNlpC3();  ///< 48 blocks x 24 layers, WNMT
SearchSpace makeCvC1();   ///< 32 blocks x 48 layers, ImageNet
SearchSpace makeCvC2();   ///< 32 blocks x 24 layers, ImageNet
SearchSpace makeCvC3();   ///< 32 blocks x 12 layers, ImageNet
/** @} */

/** Build a Table 1 space by name ("NLP.c1"); fatal on unknown name. */
SearchSpace makeSpaceByName(const std::string &name);

/** All seven Table 1 space names in the paper's order. */
std::vector<std::string> defaultSpaceNames();

/** A small space for unit tests (4 blocks x 3 choices). */
SearchSpace makeTinySpace(SpaceFamily family = SpaceFamily::Nlp,
                          std::uint64_t seed = 7);

} // namespace naspipe

#endif // NASPIPE_SUPERNET_SEARCH_SPACE_H
