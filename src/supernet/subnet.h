/**
 * @file
 * Subnet representation: one sampled architecture.
 *
 * A subnet is an m-sized list of layer choices, one per choice block,
 * carrying the sequence ID the exploration algorithm assigned to it
 * (paper §3, Preliminaries). Causal dependencies between subnets are
 * decided purely from choice overlap.
 */

#ifndef NASPIPE_SUPERNET_SUBNET_H
#define NASPIPE_SUPERNET_SUBNET_H

#include <cstdint>
#include <string>
#include <vector>

#include "supernet/layer.h"
#include "supernet/search_space.h"

namespace naspipe {

/** Sequence ID of a subnet in the exploration order. */
using SubnetId = std::int64_t;

/**
 * One sampled subnet: a choice per block plus its sequence ID.
 */
class Subnet
{
  public:
    Subnet() = default;

    /**
     * @param id sequence ID assigned by the exploration algorithm
     * @param choices layer choice per block
     */
    Subnet(SubnetId id, std::vector<std::uint16_t> choices);

    SubnetId id() const { return _id; }

    /** Number of blocks (m). */
    int size() const { return static_cast<int>(_choices.size()); }

    /** Choice in block @p block. */
    int choice(int block) const;

    /** All choices. */
    const std::vector<std::uint16_t> &choices() const { return _choices; }

    /** LayerId of the activated layer in @p block. */
    LayerId layer(int block) const;

    /**
     * Whether this subnet activates the same layer as @p other in any
     * block, i.e. whether a causal dependency exists between them.
     */
    bool sharesLayerWith(const Subnet &other) const;

    /** Blocks in which this subnet and @p other pick the same layer. */
    std::vector<int> sharedBlocks(const Subnet &other) const;

    /**
     * Whether any block in [firstBlock, lastBlock] of this subnet
     * activates the same layer as @p other picks in that block. This
     * is the stage-local dependency test of Algorithm 2 (the blocks
     * of one pipeline stage against the whole earlier subnet).
     */
    bool sharesLayerInRange(const Subnet &other, int firstBlock,
                            int lastBlock) const;

    /** Total parameter bytes of the activated layers. */
    std::uint64_t paramBytes(const SearchSpace &space) const;

    /** Sum of forward times at @p batch over all activated layers. */
    double fwdMs(const SearchSpace &space, int batch) const;

    /** Sum of backward times at @p batch over all activated layers. */
    double bwdMs(const SearchSpace &space, int batch) const;

    /** Compact display string ("SN3[0,2,1,1]"). */
    std::string toString() const;

    bool operator==(const Subnet &) const = default;

  private:
    SubnetId _id = -1;
    std::vector<std::uint16_t> _choices;
};

} // namespace naspipe

#endif // NASPIPE_SUPERNET_SUBNET_H
