#include "supernet/layer.h"

#include "common/logging.h"

namespace naspipe {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv3x1:
        return "Conv 3x1";
      case LayerKind::SepConv7x1:
        return "Sep Conv 7x1";
      case LayerKind::LightConv5x1:
        return "Light Conv 5x1";
      case LayerKind::Attention8Head:
        return "8 Head Attention";
      case LayerKind::FeedForward:
        return "Feed Forward";
      case LayerKind::GatedLinearUnit:
        return "GLU";
      case LayerKind::Conv3x3:
        return "Conv 3x3";
      case LayerKind::SepConv3x3:
        return "Sep Conv 3x3";
      case LayerKind::SepConv5x5:
        return "Sep Conv 5x5";
      case LayerKind::DilConv3x3:
        return "Dil Conv 3x3";
      case LayerKind::MaxPool3x3:
        return "Max Pool 3x3";
      case LayerKind::Identity:
        return "Identity";
    }
    return "?";
}

bool
isNlpKind(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv3x1:
      case LayerKind::SepConv7x1:
      case LayerKind::LightConv5x1:
      case LayerKind::Attention8Head:
      case LayerKind::FeedForward:
      case LayerKind::GatedLinearUnit:
        return true;
      default:
        return false;
    }
}

bool
isCvKind(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv3x3:
      case LayerKind::SepConv3x3:
      case LayerKind::SepConv5x5:
      case LayerKind::DilConv3x3:
      case LayerKind::MaxPool3x3:
      case LayerKind::Identity:
        return true;
      default:
        return false;
    }
}

double
LayerSpec::fwdMsAt(int batch, int referenceBatch) const
{
    NASPIPE_ASSERT(batch > 0 && referenceBatch > 0,
                   "batch sizes must be positive");
    return fwdMs * static_cast<double>(batch) /
           static_cast<double>(referenceBatch);
}

double
LayerSpec::bwdMsAt(int batch, int referenceBatch) const
{
    NASPIPE_ASSERT(batch > 0 && referenceBatch > 0,
                   "batch sizes must be positive");
    return bwdMs * static_cast<double>(batch) /
           static_cast<double>(referenceBatch);
}

} // namespace naspipe
