#include "supernet/supernet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace naspipe {

double
Supernet::shareProbability() const
{
    double n = static_cast<double>(_space.choicesPerBlock());
    double m = static_cast<double>(_space.numBlocks());
    return 1.0 - std::pow(1.0 - 1.0 / n, m);
}

double
Supernet::expectedIndependentRun() const
{
    double p = shareProbability();
    if (p <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / p;
}

double
Supernet::dependencyDensity(const std::vector<Subnet> &subnets,
                            int window)
{
    NASPIPE_ASSERT(window >= 2, "window must cover at least a pair");
    std::uint64_t pairs = 0;
    std::uint64_t dependent = 0;
    for (std::size_t i = 0; i < subnets.size(); i++) {
        std::size_t limit =
            std::min(subnets.size(),
                     i + static_cast<std::size_t>(window));
        for (std::size_t j = i + 1; j < limit; j++) {
            pairs++;
            if (subnets[i].sharesLayerWith(subnets[j]))
                dependent++;
        }
    }
    return pairs ? static_cast<double>(dependent) /
                       static_cast<double>(pairs)
                 : 0.0;
}

int
Supernet::independentPrefixLength(const std::vector<Subnet> &subnets)
{
    for (std::size_t i = 1; i < subnets.size(); i++) {
        for (std::size_t j = 0; j < i; j++) {
            if (subnets[j].sharesLayerWith(subnets[i]))
                return static_cast<int>(i);
        }
    }
    return static_cast<int>(subnets.size());
}

std::vector<Subnet>
Supernet::drawMany(SubnetSampler &sampler, int count)
{
    NASPIPE_ASSERT(count >= 0, "negative draw count");
    std::vector<Subnet> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; i++)
        out.push_back(sampler.next());
    return out;
}

} // namespace naspipe
