#include "supernet/sampler.h"

#include "common/logging.h"

namespace naspipe {

void
SubnetSampler::reportScore(SubnetId, double)
{
}

namespace {

/**
 * One skip-aware block draw: the skip candidate (choice 0) gets the
 * space's skip mass, the rest is uniform over the parameterized
 * candidates. Exactly one double draw plus at most one integer draw
 * per block, so the stream consumption is deterministic.
 */
std::uint16_t
drawChoice(const SearchSpace &space, Xoshiro256StarStar &rng)
{
    int n = space.choicesPerBlock();
    if (space.skipMass() > 0.0) {
        if (rng.nextDouble() < space.skipMass())
            return 0;
        return static_cast<std::uint16_t>(
            1 + rng.nextBelow(static_cast<std::uint64_t>(n - 1)));
    }
    return static_cast<std::uint16_t>(
        rng.nextBelow(static_cast<std::uint64_t>(n)));
}

} // namespace

UniformSampler::UniformSampler(const SearchSpace &space,
                               std::uint64_t seed)
    : _space(space), _rng(deriveSeed(seed, "uniform-sampler"))
{
}

Subnet
UniformSampler::next()
{
    std::vector<std::uint16_t> choices(
        static_cast<std::size_t>(_space.numBlocks()));
    for (auto &c : choices)
        c = drawChoice(_space, _rng);
    return Subnet(allocateId(), std::move(choices));
}

EvolutionSampler::EvolutionSampler(const SearchSpace &space,
                                   std::uint64_t seed, int population,
                                   int tournament)
    : _space(space), _rng(deriveSeed(seed, "evolution-sampler")),
      _population(population), _tournament(tournament)
{
    NASPIPE_ASSERT(population >= 2, "population must be >= 2");
    NASPIPE_ASSERT(tournament >= 1 && tournament <= population,
                   "tournament size must be in [1, population]");
}

Subnet
EvolutionSampler::sampleUniform(SubnetId id)
{
    std::vector<std::uint16_t> choices(
        static_cast<std::size_t>(_space.numBlocks()));
    for (auto &c : choices)
        c = drawChoice(_space, _rng);
    return Subnet(id, std::move(choices));
}

Subnet
EvolutionSampler::next()
{
    SubnetId id = allocateId();
    Subnet child;
    if (static_cast<int>(_members.size()) < _population) {
        // Warm-up phase: fill the population with uniform samples.
        child = sampleUniform(id);
    } else {
        // Tournament selection among random members; unscored members
        // count as score 0 so early children do not dominate.
        std::size_t winner = _rng.nextBelow(_members.size());
        for (int round = 1; round < _tournament; round++) {
            std::size_t probe = _rng.nextBelow(_members.size());
            if (_members[probe].score > _members[winner].score)
                winner = probe;
        }
        // Mutate exactly one block of the winner: resample the block
        // with the skip-aware rule; when the draw lands on the same
        // candidate, deterministically flip to/from the nearest
        // alternative so the child always differs.
        std::vector<std::uint16_t> choices =
            _members[winner].subnet.choices();
        auto block = static_cast<std::size_t>(
            _rng.nextBelow(choices.size()));
        int n = _space.choicesPerBlock();
        if (n > 1) {
            std::uint16_t mutated = drawChoice(_space, _rng);
            if (mutated == choices[block])
                mutated = choices[block] == 0 ? 1 : 0;
            choices[block] = mutated;
        }
        child = Subnet(id, std::move(choices));
        // Aging: the oldest member dies regardless of fitness.
        _members.pop_front();
    }
    _members.push_back(Member{child, 0.0, false});
    return child;
}

void
EvolutionSampler::reportScore(SubnetId id, double score)
{
    for (auto &member : _members) {
        if (member.subnet.id() == id) {
            member.score = score;
            member.scored = true;
            return;
        }
    }
    // The member may have aged out before its score arrived; that is
    // normal in a pipelined run where training lags sampling.
}

HybridSampler::HybridSampler(const SearchSpace &space,
                             std::uint64_t seed, int numStreams)
    : _space(space), _rng(deriveSeed(seed, "hybrid-sampler")),
      _numStreams(numStreams)
{
    NASPIPE_ASSERT(numStreams >= 1, "need >= 1 stream");
    NASPIPE_ASSERT(numStreams <= space.numBlocks(),
                   "more streams than choice blocks");
    NASPIPE_ASSERT(space.skipMass() > 0.0,
                   "hybrid traversal requires a skip candidate "
                   "(space skipMass > 0)");
}

std::pair<int, int>
HybridSampler::streamBlocks(int stream) const
{
    NASPIPE_ASSERT(stream >= 0 && stream < _numStreams,
                   "stream out of range");
    int m = _space.numBlocks();
    int lo = static_cast<int>(
        (static_cast<long long>(m) * stream) / _numStreams);
    int hi = static_cast<int>(
        (static_cast<long long>(m) * (stream + 1)) / _numStreams) -
        1;
    return {lo, hi};
}

Subnet
HybridSampler::next()
{
    SubnetId id = allocateId();
    auto [lo, hi] = streamBlocks(streamOf(id));
    std::vector<std::uint16_t> choices(
        static_cast<std::size_t>(_space.numBlocks()), 0);
    for (int b = lo; b <= hi; b++) {
        choices[static_cast<std::size_t>(b)] =
            drawChoice(_space, _rng);
    }
    return Subnet(id, std::move(choices));
}

FixedSequenceSampler::FixedSequenceSampler(
    std::vector<std::vector<std::uint16_t>> sequence)
    : _sequence(std::move(sequence))
{
    NASPIPE_ASSERT(!_sequence.empty(),
                   "fixed sequence must be non-empty");
}

Subnet
FixedSequenceSampler::next()
{
    const auto &choices = _sequence[_cursor];
    _cursor = (_cursor + 1) % _sequence.size();
    return Subnet(allocateId(), choices);
}

} // namespace naspipe
