/**
 * @file
 * Layer cost profile database.
 *
 * NASPipe partitions subnets using "pre-profiled statistics of each
 * layer" (§3.2) and sizes its swap schedule from per-layer parameter
 * footprints. This database is that profile: for the eight
 * representative kinds it reproduces Table 5 of the paper verbatim
 * (compute times and swap times measured at the reference input
 * sizes); parameter bytes are derived from the measured swap time and
 * the testbed's PCIe 3.0 x16 bandwidth of 15760 MB/s, keeping the
 * whole model self-consistent.
 */

#ifndef NASPIPE_SUPERNET_PROFILE_H
#define NASPIPE_SUPERNET_PROFILE_H

#include <vector>

#include "supernet/layer.h"

namespace naspipe {

/** Testbed PCIe 3.0 x16 host-to-device bandwidth (paper §5). */
constexpr double kPcieBytesPerSec = 15760.0 * 1e6;

/** Reference batch for the NLP profile (input (192, 1024)). */
constexpr int kNlpReferenceBatch = 192;

/** Reference batch for the CV profile (input (64, 112, 112)). */
constexpr int kCvReferenceBatch = 64;

/**
 * Immutable database of reference layer profiles, one per LayerKind.
 */
class LayerProfileDb
{
  public:
    /** The process-wide profile database. */
    static const LayerProfileDb &instance();

    /** Reference profile of @p kind. */
    const LayerSpec &reference(LayerKind kind) const;

    /**
     * A scaled variant of @p kind: parameter bytes, compute times and
     * swap time all scale by @p scale, modelling the size diversity
     * of candidate layers within a search space.
     */
    LayerSpec scaled(LayerKind kind, double scale) const;

    /** All reference profiles (Table 5 plus the extra kinds). */
    const std::vector<LayerSpec> &all() const { return _specs; }

    /** The family's reference batch for @p kind. */
    static int referenceBatch(LayerKind kind);

  private:
    LayerProfileDb();

    std::vector<LayerSpec> _specs;
};

} // namespace naspipe

#endif // NASPIPE_SUPERNET_PROFILE_H
