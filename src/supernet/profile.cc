#include "supernet/profile.h"

#include <cmath>

#include "common/logging.h"

namespace naspipe {

namespace {

/** Parameter bytes implied by a swap time over PCIe 3.0 x16. */
std::uint64_t
bytesFromSwapMs(double swapMs)
{
    return static_cast<std::uint64_t>(
        std::llround(swapMs * 1e-3 * kPcieBytesPerSec));
}

LayerSpec
makeSpec(LayerKind kind, double fwdMs, double bwdMs, double swapMs)
{
    LayerSpec spec;
    spec.kind = kind;
    spec.fwdMs = fwdMs;
    spec.bwdMs = bwdMs;
    spec.swapMs = swapMs;
    spec.paramBytes = bytesFromSwapMs(swapMs);
    return spec;
}

} // namespace

const LayerProfileDb &
LayerProfileDb::instance()
{
    static LayerProfileDb db;
    return db;
}

LayerProfileDb::LayerProfileDb()
{
    _specs.resize(kNumLayerKinds);

    auto put = [&](LayerSpec spec) {
        _specs[static_cast<std::size_t>(spec.kind)] = spec;
    };

    // --- Table 5, NLP family, input (192, 1024). ---
    put(makeSpec(LayerKind::Conv3x1, 5.0, 10.0, 1.76));
    put(makeSpec(LayerKind::SepConv7x1, 4.2, 5.7, 0.56));
    put(makeSpec(LayerKind::LightConv5x1, 0.68, 1.4, 0.03));
    put(makeSpec(LayerKind::Attention8Head, 7.9, 13.8, 2.07));
    // Additional Evolved-Transformer ops (not in Table 5): costs
    // follow the same compute-per-parameter trend as the table rows.
    put(makeSpec(LayerKind::FeedForward, 3.6, 6.2, 1.07));
    put(makeSpec(LayerKind::GatedLinearUnit, 1.5, 2.6, 0.40));

    // --- Table 5, CV family, input (64, 112, 112). ---
    put(makeSpec(LayerKind::Conv3x3, 7.9, 13.8, 4.6));
    put(makeSpec(LayerKind::SepConv3x3, 2.8, 4.0, 0.68));
    put(makeSpec(LayerKind::SepConv5x5, 6.7, 9.9, 2.04));
    put(makeSpec(LayerKind::DilConv3x3, 2.5, 3.4, 0.58));
    // Additional AmoebaNet ops: pooling and skip are parameter-free
    // (swap is effectively instant) but still cost compute.
    put(makeSpec(LayerKind::MaxPool3x3, 0.9, 1.1, 0.001));
    put(makeSpec(LayerKind::Identity, 0.05, 0.05, 0.0));
}

const LayerSpec &
LayerProfileDb::reference(LayerKind kind) const
{
    auto idx = static_cast<std::size_t>(kind);
    NASPIPE_ASSERT(idx < _specs.size(), "unknown layer kind");
    return _specs[idx];
}

LayerSpec
LayerProfileDb::scaled(LayerKind kind, double scale) const
{
    NASPIPE_ASSERT(scale > 0.0, "layer scale must be positive");
    LayerSpec spec = reference(kind);
    spec.paramBytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(spec.paramBytes) * scale));
    spec.fwdMs *= scale;
    spec.bwdMs *= scale;
    spec.swapMs *= scale;
    return spec;
}

int
LayerProfileDb::referenceBatch(LayerKind kind)
{
    return isNlpKind(kind) ? kNlpReferenceBatch : kCvReferenceBatch;
}

} // namespace naspipe
