/**
 * @file
 * The simulation kernel: a clock plus the event queue.
 */

#ifndef NASPIPE_SIM_SIMULATOR_H
#define NASPIPE_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>

#include "sim/event.h"

namespace naspipe {

/**
 * Deterministic discrete-event simulation kernel.
 *
 * Components schedule callbacks at absolute or relative times; run()
 * executes them in deterministic (time, priority, insertion) order.
 * A step limit guards against accidental livelock in model code.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p action at absolute time @p when (>= now). */
    void scheduleAt(Tick when, std::function<void()> action,
                    EventPriority priority = EventPriority::Default);

    /** Schedule @p action @p delay ticks from now. */
    void scheduleAfter(Tick delay, std::function<void()> action,
                       EventPriority priority = EventPriority::Default);

    /** Run until the event queue drains; returns events executed. */
    std::uint64_t run();

    /**
     * Abort the current run() from inside an event callback: no
     * further events execute and run() returns with the queue's
     * remaining events intact (a fail-stop fault freezes the world
     * mid-instant). The flag clears on the next run()/runUntil().
     */
    void stop() { _stopRequested = true; }

    /** Whether the last run() was aborted via stop(). */
    bool stopped() const { return _stopRequested; }

    /**
     * Run until simulated time would exceed @p deadline; events at
     * exactly @p deadline still execute. Returns events executed.
     */
    std::uint64_t runUntil(Tick deadline);

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return _executed; }

    /** Pending event count. */
    std::size_t pendingEvents() const { return _queue.size(); }

    /**
     * Upper bound on events executed per run() call; exceeding it
     * panics (it indicates a model bug, e.g. a zero-delay self-loop).
     */
    void stepLimit(std::uint64_t limit) { _stepLimit = limit; }

    /** Reset time to zero and drop pending events. */
    void reset();

  private:
    std::uint64_t runLoop(bool bounded, Tick deadline);

    EventQueue _queue;
    Tick _now = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _stepLimit = 500'000'000ULL;
    bool _stopRequested = false;
};

} // namespace naspipe

#endif // NASPIPE_SIM_SIMULATOR_H
