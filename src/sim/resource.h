/**
 * @file
 * Serially-occupied resources (engines) for the hardware models.
 */

#ifndef NASPIPE_SIM_RESOURCE_H
#define NASPIPE_SIM_RESOURCE_H

#include <string>

#include "common/stats.h"
#include "sim/event.h"
#include "sim/simulator.h"

namespace naspipe {

/**
 * An exclusive engine that serializes work items and records its busy
 * intervals. GPU compute units, H2D/D2H copy engines and network
 * links are all instances of this.
 *
 * The engine does not queue callbacks itself; callers reserve time on
 * it and receive the (start, end) of their slot, then schedule their
 * own completion events. This keeps the scheduling *policy* (which
 * task next) entirely outside the hardware model, which matters here
 * because the whole point of the reproduction is comparing policies.
 */
class SerialEngine
{
  public:
    /**
     * @param sim owning simulator (for utilization timestamps)
     * @param name diagnostic name ("gpu3.compute")
     */
    SerialEngine(Simulator &sim, std::string name);

    /** Time at which the engine next becomes free. */
    Tick freeAt() const { return _freeAt; }

    /** Whether the engine is free at @p when. */
    bool freeBy(Tick when) const { return _freeAt <= when; }

    /**
     * Reserve @p duration of engine time starting no earlier than now.
     * @return the start time of the granted slot (>= now).
     */
    Tick reserve(Tick duration);

    /**
     * Reserve @p duration starting no earlier than @p earliest.
     * @return the start time of the granted slot.
     */
    Tick reserveFrom(Tick earliest, Tick duration);

    /** Busy-interval statistics (for ALU utilization / bubbles). */
    const UtilizationTracker &utilization() const { return _util; }

    /** Clear statistics and availability (used between runs). */
    void reset();

    const std::string &name() const { return _name; }

  private:
    Simulator &_sim;
    std::string _name;
    Tick _freeAt = 0;
    UtilizationTracker _util;
};

/**
 * A bandwidth-and-latency channel: transfers are serialized on the
 * channel and each takes latency + bytes/bandwidth.
 */
class Channel
{
  public:
    /**
     * @param sim owning simulator
     * @param name diagnostic name ("pcie.h2d")
     * @param bytesPerSec sustained bandwidth
     * @param latency fixed per-transfer latency in ticks
     */
    Channel(Simulator &sim, std::string name, double bytesPerSec,
            Tick latency);

    /** Duration of a @p bytes transfer excluding queueing. */
    Tick transferTime(std::uint64_t bytes) const;

    /**
     * Reserve the channel for a @p bytes transfer starting no earlier
     * than @p earliest.
     * @return the completion time of the transfer.
     */
    Tick transferFrom(Tick earliest, std::uint64_t bytes);

    /** Completion time for a transfer started as soon as possible. */
    Tick transfer(std::uint64_t bytes);

    /** Underlying engine (for utilization statistics). */
    const SerialEngine &engine() const { return _engine; }

    double bytesPerSec() const { return _bytesPerSec; }
    Tick latency() const { return _latency; }

    /** Clear statistics and availability. */
    void reset() { _engine.reset(); }

  private:
    SerialEngine _engine;
    double _bytesPerSec;
    Tick _latency;
};

} // namespace naspipe

#endif // NASPIPE_SIM_RESOURCE_H
