#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace naspipe {

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Forward:
        return "fwd";
      case TraceKind::Backward:
        return "bwd";
      case TraceKind::Prefetch:
        return "prefetch";
      case TraceKind::Evict:
        return "evict";
      case TraceKind::MirrorSync:
        return "mirror";
      case TraceKind::Stall:
        return "stall";
      case TraceKind::Flush:
        return "flush";
      case TraceKind::Fault:
        return "fault";
      case TraceKind::Checkpoint:
        return "ckpt";
      case TraceKind::Recovery:
        return "recovery";
    }
    return "?";
}

void
Trace::add(const TraceRecord &record)
{
    if (!_enabled)
        return;
    NASPIPE_ASSERT(record.end >= record.start,
                   "trace record with negative duration");
    _records.push_back(record);
}

std::vector<TraceRecord>
Trace::byKind(TraceKind kind) const
{
    std::vector<TraceRecord> out;
    for (const auto &r : _records) {
        if (r.kind == kind)
            out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord>
Trace::byStage(int stage) const
{
    std::vector<TraceRecord> out;
    for (const auto &r : _records) {
        if (r.stage == stage)
            out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord>
Trace::taskTimeline() const
{
    std::vector<TraceRecord> out;
    for (const auto &r : _records) {
        if (r.kind == TraceKind::Forward || r.kind == TraceKind::Backward)
            out.push_back(r);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.start < b.start;
                     });
    return out;
}

std::string
Trace::renderTimeline(int numStages, int columns) const
{
    auto tasks = taskTimeline();
    if (tasks.empty())
        return "(empty timeline)\n";

    Tick horizon = 0;
    for (const auto &r : tasks)
        horizon = std::max(horizon, r.end);
    if (horizon == 0)
        horizon = 1;

    auto toCol = [&](Tick t) {
        return static_cast<int>(static_cast<double>(t) /
                                static_cast<double>(horizon) *
                                (columns - 1));
    };

    std::ostringstream oss;
    for (int stage = 0; stage < numStages; stage++) {
        std::string row(columns, '.');
        for (const auto &r : tasks) {
            if (r.stage != stage)
                continue;
            int c0 = toCol(r.start);
            int c1 = std::max(c0, toCol(r.end) - 1);
            // Label the slot with the subnet's sequence digit; upper
            // case for backward passes so dependencies stand out.
            char label = '#';
            if (r.subnet >= 0) {
                char digit =
                    static_cast<char>('0' + (r.subnet % 10));
                label = (r.kind == TraceKind::Backward)
                            ? static_cast<char>(
                                  'A' + (r.subnet % 10))
                            : digit;
            }
            for (int c = c0; c <= c1 && c < columns; c++)
                row[c] = label;
        }
        oss << "stage " << stage << " |" << row << "|\n";
    }
    oss << "(digits: forward subnet id; letters A=0..J=9: backward; "
           ".: idle; horizon "
        << formatFixed(ticksToSec(horizon), 3) << "s)\n";
    return oss.str();
}

std::string
Trace::exportChromeJson() const
{
    // Chrome trace-event format: microsecond timestamps, "X"
    // (complete) events, pid/tid mapping stages to tracks.
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceRecord &r : _records) {
        if (!first)
            oss << ",";
        first = false;
        std::string name = traceKindName(r.kind);
        if (r.subnet >= 0)
            name += " SN" + std::to_string(r.subnet);
        // Zero-duration markers (e.g. flushes) get 1 us so they
        // remain visible.
        double durUs =
            std::max(1.0, static_cast<double>(r.end - r.start) /
                              kTicksPerUs);
        oss << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":"
            << static_cast<double>(r.start) / kTicksPerUs
            << ",\"dur\":" << durUs << ",\"pid\":0,\"tid\":"
            << r.stage << ",\"args\":{\"subnet\":" << r.subnet;
        if (!r.detail.empty()) {
            oss << ",\"detail\":\"";
            for (char c : r.detail) {
                if (c == '"' || c == '\\')
                    oss << '\\';
                oss << c;
            }
            oss << "\"";
        }
        oss << "}}";
    }
    oss << "]}";
    return oss.str();
}

} // namespace naspipe
