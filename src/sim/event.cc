#include "sim/event.h"

#include <cmath>

#include "common/logging.h"

namespace naspipe {

Tick
ticksFromMs(double ms)
{
    NASPIPE_ASSERT(ms >= 0.0, "negative duration");
    return static_cast<Tick>(std::llround(ms * 1e6));
}

Tick
ticksFromSec(double sec)
{
    NASPIPE_ASSERT(sec >= 0.0, "negative duration");
    return static_cast<Tick>(std::llround(sec * 1e9));
}

double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

bool
EventQueue::Compare::operator()(const Event &a, const Event &b) const
{
    // std::priority_queue is a max-heap; invert for min ordering.
    if (a.when != b.when)
        return a.when > b.when;
    if (a.priority != b.priority)
        return static_cast<int>(a.priority) > static_cast<int>(b.priority);
    return a.sequence > b.sequence;
}

std::uint64_t
EventQueue::push(Tick when, EventPriority priority,
                 std::function<void()> action)
{
    NASPIPE_ASSERT(action, "event must have an action");
    Event ev;
    ev.when = when;
    ev.priority = priority;
    ev.sequence = _nextSequence++;
    ev.action = std::move(action);
    _heap.push(std::move(ev));
    return _heap.size();
}

Tick
EventQueue::nextTime() const
{
    NASPIPE_ASSERT(!_heap.empty(), "nextTime on empty queue");
    return _heap.top().when;
}

Event
EventQueue::pop()
{
    NASPIPE_ASSERT(!_heap.empty(), "pop on empty queue");
    // priority_queue::top() is const; move via const_cast is the
    // standard workaround and safe because we pop immediately.
    Event ev = std::move(const_cast<Event &>(_heap.top()));
    _heap.pop();
    return ev;
}

void
EventQueue::clear()
{
    while (!_heap.empty())
        _heap.pop();
}

} // namespace naspipe
