/**
 * @file
 * Event primitives of the deterministic discrete-event simulator.
 *
 * Simulated time is kept in integer nanoseconds (Tick) so that event
 * ordering never depends on floating-point rounding; ties are broken
 * by an explicit (priority, insertion sequence) pair, which makes the
 * whole simulation bit-reproducible — the substrate property NASPipe's
 * reproducibility experiments rely on.
 */

#ifndef NASPIPE_SIM_EVENT_H
#define NASPIPE_SIM_EVENT_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace naspipe {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Ticks per microsecond/millisecond/second. */
constexpr Tick kTicksPerUs = 1000;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert milliseconds (possibly fractional) to ticks. */
Tick ticksFromMs(double ms);

/** Convert seconds (possibly fractional) to ticks. */
Tick ticksFromSec(double sec);

/** Convert ticks to fractional seconds (for reporting only). */
double ticksToSec(Tick t);

/** Convert ticks to fractional milliseconds (for reporting only). */
double ticksToMs(Tick t);

/**
 * Event priorities: lower value runs first at equal time. Completion
 * events run before scheduling decisions so a freed engine is visible
 * to the scheduler examining the same instant.
 */
enum class EventPriority : int {
    Completion = 0,
    Transfer = 1,
    Schedule = 2,
    Default = 3,
};

/** One pending event: a callback at a time with a tie-break key. */
struct Event {
    Tick when = 0;
    EventPriority priority = EventPriority::Default;
    std::uint64_t sequence = 0;
    std::function<void()> action;
};

/**
 * Min-ordered queue of events keyed by (when, priority, sequence).
 * The sequence counter is assigned at insertion, so two events at the
 * same time and priority run in insertion order.
 */
class EventQueue
{
  public:
    /** Insert an event; returns the assigned sequence number. */
    std::uint64_t push(Tick when, EventPriority priority,
                       std::function<void()> action);

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return _heap.size(); }

    /** Time of the earliest event; queue must be non-empty. */
    Tick nextTime() const;

    /** Remove and return the earliest event. */
    Event pop();

    /** Drop all pending events. */
    void clear();

  private:
    struct Compare {
        bool operator()(const Event &a, const Event &b) const;
    };

    std::priority_queue<Event, std::vector<Event>, Compare> _heap;
    std::uint64_t _nextSequence = 0;
};

} // namespace naspipe

#endif // NASPIPE_SIM_EVENT_H
