#include "sim/resource.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace naspipe {

SerialEngine::SerialEngine(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{
}

Tick
SerialEngine::reserve(Tick duration)
{
    return reserveFrom(_sim.now(), duration);
}

Tick
SerialEngine::reserveFrom(Tick earliest, Tick duration)
{
    Tick start = std::max({earliest, _freeAt, _sim.now()});
    _freeAt = start + duration;
    if (duration > 0)
        _util.addBusy(ticksToSec(start), ticksToSec(_freeAt));
    return start;
}

void
SerialEngine::reset()
{
    _freeAt = 0;
    _util.reset();
}

Channel::Channel(Simulator &sim, std::string name, double bytesPerSec,
                 Tick latency)
    : _engine(sim, std::move(name)), _bytesPerSec(bytesPerSec),
      _latency(latency)
{
    NASPIPE_ASSERT(bytesPerSec > 0.0, "channel bandwidth must be positive");
}

Tick
Channel::transferTime(std::uint64_t bytes) const
{
    double sec = static_cast<double>(bytes) / _bytesPerSec;
    return _latency + ticksFromSec(sec);
}

Tick
Channel::transferFrom(Tick earliest, std::uint64_t bytes)
{
    Tick duration = transferTime(bytes);
    Tick start = _engine.reserveFrom(earliest, duration);
    return start + duration;
}

Tick
Channel::transfer(std::uint64_t bytes)
{
    return transferFrom(0, bytes);
}

} // namespace naspipe
