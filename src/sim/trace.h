/**
 * @file
 * Execution trace recorder.
 *
 * The trace records every scheduled task (forward/backward per stage)
 * with its start/end times. It backs three experiments: the schedule
 * timelines of Figure 1, the per-layer access order of Table 4, and
 * the deterministic replay check of the appendix.
 */

#ifndef NASPIPE_SIM_TRACE_H
#define NASPIPE_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event.h"

namespace naspipe {

/** What a trace record describes. */
enum class TraceKind {
    Forward,      ///< forward pass of a subnet stage
    Backward,     ///< backward pass of a subnet stage
    Prefetch,     ///< parameter copy CPU -> GPU
    Evict,        ///< parameter copy GPU -> CPU
    MirrorSync,   ///< mirrored-parameter push between stages
    Stall,        ///< engine idle waiting for a synchronous swap
    Flush,        ///< BSP bulk barrier
    Fault,        ///< injected fault firing
    Checkpoint,   ///< run checkpoint written at a drain barrier
    Recovery,     ///< rollback + respawn after a fail-stop fault
};

/** Human-readable tag for a trace kind. */
const char *traceKindName(TraceKind kind);

/** One trace record. */
struct TraceRecord {
    Tick start = 0;
    Tick end = 0;
    int stage = -1;          ///< pipeline stage / GPU index
    TraceKind kind = TraceKind::Forward;
    std::int64_t subnet = -1;  ///< subnet sequence ID (-1: none)
    std::string detail;      ///< optional free-form annotation
};

/**
 * Append-only trace with filtered views. Recording can be switched
 * off entirely for the large throughput runs.
 */
class Trace
{
  public:
    /** Enable or disable recording (enabled by default). */
    void enabled(bool on) { _enabled = on; }
    bool enabled() const { return _enabled; }

    /** Append a record (ignored while disabled). */
    void add(const TraceRecord &record);

    /** All records in insertion order. */
    const std::vector<TraceRecord> &records() const { return _records; }

    /** Records of one kind, preserving order. */
    std::vector<TraceRecord> byKind(TraceKind kind) const;

    /** Records of one stage, preserving order. */
    std::vector<TraceRecord> byStage(int stage) const;

    /** Compute/task records (Forward/Backward) sorted by start time. */
    std::vector<TraceRecord> taskTimeline() const;

    /**
     * Render an ASCII Gantt chart of Forward/Backward records, one
     * row per stage, for small schedules (Figure 1 visualization).
     * @param columns horizontal resolution of the chart.
     */
    std::string renderTimeline(int numStages, int columns = 100) const;

    /**
     * Export all records as Chrome trace-event JSON ("X" complete
     * events, one track per stage), loadable in chrome://tracing or
     * Perfetto for interactive inspection of a schedule.
     */
    std::string exportChromeJson() const;

    /** Drop all records. */
    void clear() { _records.clear(); }

    std::size_t size() const { return _records.size(); }

  private:
    bool _enabled = true;
    std::vector<TraceRecord> _records;
};

} // namespace naspipe

#endif // NASPIPE_SIM_TRACE_H
