#include "sim/simulator.h"

#include "common/logging.h"

namespace naspipe {

void
Simulator::scheduleAt(Tick when, std::function<void()> action,
                      EventPriority priority)
{
    NASPIPE_ASSERT(when >= _now, "cannot schedule in the past: when=",
                   when, " now=", _now);
    _queue.push(when, priority, std::move(action));
}

void
Simulator::scheduleAfter(Tick delay, std::function<void()> action,
                         EventPriority priority)
{
    _queue.push(_now + delay, priority, std::move(action));
}

std::uint64_t
Simulator::run()
{
    return runLoop(false, 0);
}

std::uint64_t
Simulator::runUntil(Tick deadline)
{
    return runLoop(true, deadline);
}

std::uint64_t
Simulator::runLoop(bool bounded, Tick deadline)
{
    _stopRequested = false;
    std::uint64_t executed = 0;
    while (!_queue.empty() && !_stopRequested) {
        if (bounded && _queue.nextTime() > deadline)
            break;
        Event ev = _queue.pop();
        _now = ev.when;
        ev.action();
        executed++;
        _executed++;
        if (executed > _stepLimit) {
            panic("simulator exceeded step limit of ", _stepLimit,
                  " events; likely a zero-delay event loop");
        }
    }
    if (bounded && _now < deadline && _queue.empty())
        _now = deadline;
    return executed;
}

void
Simulator::reset()
{
    _queue.clear();
    _now = 0;
    _executed = 0;
    _stopRequested = false;
}

} // namespace naspipe
