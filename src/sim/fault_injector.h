/**
 * @file
 * Compatibility shim: fault injection moved to src/fault/ when it
 * became executor-agnostic (the same seeded plan now drives both the
 * simulator and the threaded executor). Include fault/fault_plan.h
 * directly in new code.
 */

#ifndef NASPIPE_SIM_FAULT_INJECTOR_H
#define NASPIPE_SIM_FAULT_INJECTOR_H

#include "fault/fault_plan.h"

#endif // NASPIPE_SIM_FAULT_INJECTOR_H
