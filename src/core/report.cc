#include "core/report.h"

#include <map>

#include "common/logging.h"
#include "common/string_util.h"
#include "supernet/profile.h"

namespace naspipe {

namespace {

SpaceFamily
familyOfName(const std::string &spaceName)
{
    return startsWith(spaceName, "NLP") ? SpaceFamily::Nlp
                                        : SpaceFamily::Cv;
}

std::string
paramCountString(std::uint64_t paramBytes)
{
    // Parameter count (fp32) in the paper's "1327M" / "14.8B" style.
    double params = static_cast<double>(paramBytes) / 4.0;
    if (params >= 1e9)
        return formatFixed(params / 1e9, 1) + "B";
    return formatFixed(params / 1e6, 0) + "M";
}

} // namespace

std::string
formatScore(double score, SpaceFamily family)
{
    if (family == SpaceFamily::Nlp)
        return formatFixed(score, 2);  // BLEU-like
    return formatFixed(score, 1) + "%";  // top-5-like
}

TextTable
buildTable1(const std::vector<std::string> &spaceNames)
{
    TextTable table({"Search Space", "# Choice Blocks", "# Layer/Block",
                     "Dataset"});
    for (const std::string &name : spaceNames) {
        SearchSpace space = makeSpaceByName(name);
        table.addRow({space.name(),
                      std::to_string(space.numBlocks()),
                      std::to_string(space.choicesPerBlock()),
                      space.dataset()});
    }
    return table;
}

std::vector<std::string>
table2Row(const ExperimentResult &result)
{
    const RunResult &run = result.run;
    SpaceFamily family = familyOfName(result.spaceName);
    if (run.oom) {
        return {result.spaceName, result.systemName, "OOM", "-", "-",
                "-",              "-",               "-",   "-", "-",
                "-"};
    }
    const RunMetrics &m = run.metrics;
    return {
        result.spaceName,
        result.systemName,
        paramCountString(m.reportedParamBytes),
        formatScore(run.searchAccuracy, family),
        std::to_string(m.batch),
        formatFactor(m.gpuMemFactor, 1),
        formatFactor(m.totalAluUtilization, 1),
        m.cpuMemBytes ? formatBytes(m.cpuMemBytes) : "0",
        formatFixed(m.meanExecSeconds, 2),
        formatFixed(m.bubbleRatio, 2),
        formatCacheHitRate(m.cacheHitRate),
    };
}

TextTable
buildTable2(const std::vector<ExperimentResult> &results)
{
    TextTable table({"Space", "System", "Para.", "Score", "Batch",
                     "GPU Mem.", "GPU ALU", "CPU Mem.", "Exec.(s)",
                     "Bub.", "Cache Hit"});
    std::string lastSpace;
    for (const ExperimentResult &result : results) {
        if (!lastSpace.empty() && result.spaceName != lastSpace)
            table.addSeparator();
        lastSpace = result.spaceName;
        table.addRow(table2Row(result));
    }
    return table;
}

TextTable
buildTable5()
{
    const auto &db = LayerProfileDb::instance();
    TextTable table({"Family", "Input Size", "Layer", "Comp.(ms)",
                     "Swap(ms)"});
    const LayerKind nlp[] = {
        LayerKind::Conv3x1, LayerKind::SepConv7x1,
        LayerKind::LightConv5x1, LayerKind::Attention8Head};
    const LayerKind cv[] = {LayerKind::Conv3x3, LayerKind::SepConv3x3,
                            LayerKind::SepConv5x5,
                            LayerKind::DilConv3x3};
    for (LayerKind kind : nlp) {
        const LayerSpec &spec = db.reference(kind);
        table.addRow({"NLP", "(192, 1024)", layerKindName(kind),
                      formatFixed(spec.fwdMs, 2) + "/" +
                          formatFixed(spec.bwdMs, 2),
                      formatFixed(spec.swapMs, 2)});
    }
    table.addSeparator();
    for (LayerKind kind : cv) {
        const LayerSpec &spec = db.reference(kind);
        table.addRow({"CV", "(64, 112, 112)", layerKindName(kind),
                      formatFixed(spec.fwdMs, 2) + "/" +
                          formatFixed(spec.bwdMs, 2),
                      formatFixed(spec.swapMs, 2)});
    }
    return table;
}

TextTable
buildThroughputTable(const std::vector<ExperimentResult> &results)
{
    // Group results per space, find the GPipe baseline of each.
    std::map<std::string, std::vector<const ExperimentResult *>>
        bySpace;
    std::vector<std::string> order;
    for (const ExperimentResult &result : results) {
        if (!bySpace.count(result.spaceName))
            order.push_back(result.spaceName);
        bySpace[result.spaceName].push_back(&result);
    }

    TextTable table({"Space", "System", "Samples/s", "Normalized",
                     "Subnets/h", "Bubble"});
    for (const std::string &spaceName : order) {
        const auto &group = bySpace[spaceName];
        const RunResult *baseline = nullptr;
        for (const auto *r : group) {
            if (r->systemName == "GPipe" && !r->run.oom)
                baseline = &r->run;
        }
        if (!baseline) {
            for (const auto *r : group) {
                if (!r->run.oom) {
                    baseline = &r->run;
                    break;
                }
            }
        }
        table.addSeparator();
        for (const auto *r : group) {
            if (r->run.oom) {
                table.addRow({spaceName, r->systemName, "OOM", "-",
                              "-", "-"});
                continue;
            }
            const RunMetrics &m = r->run.metrics;
            double norm = baseline
                              ? normalizedThroughput(r->run, *baseline)
                              : 1.0;
            table.addRow({spaceName, r->systemName,
                          formatFixed(m.samplesPerSec, 1),
                          formatFactor(norm, 2),
                          formatFixed(m.subnetsPerHour, 0),
                          formatFixed(m.bubbleRatio, 2)});
        }
    }
    return table;
}

} // namespace naspipe
