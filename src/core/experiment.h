/**
 * @file
 * Paper experiment definitions: the space/system/GPU-count matrix of
 * §5, with one configuration helper per experiment so every bench
 * binary reproduces its table or figure from the same settings.
 */

#ifndef NASPIPE_CORE_EXPERIMENT_H
#define NASPIPE_CORE_EXPERIMENT_H

#include <string>
#include <vector>

#include "core/engine.h"
#include "runtime/pipeline_runtime.h"
#include "schedule/scheduler.h"
#include "supernet/search_space.h"

namespace naspipe {

/** The four evaluated systems in the paper's order. */
std::vector<SystemModel> evaluatedSystems();

/** NASPipe plus its three ablated variants (§5.3 / Figure 6). */
std::vector<SystemModel> ablationSystems();

/**
 * One cell of the evaluation matrix: a system trained on a space.
 */
struct ExperimentResult {
    std::string spaceName;
    std::string systemName;
    RunResult run;
};

/** Shared defaults of the paper's evaluation (§5, Default Setting). */
struct EvaluationDefaults {
    int gpus = 8;
    int steps = 96;          ///< subnets trained per measurement run
    std::uint64_t seed = 7;
    bool trace = false;
};

/** Engine options matching the evaluation defaults. */
Engine::Options optionsFrom(const EvaluationDefaults &defaults);

/**
 * Train @p system on @p space under @p defaults; steps and seed are
 * shared across systems so comparisons are apples-to-apples.
 */
ExperimentResult runExperiment(const SearchSpace &space,
                               const SystemModel &system,
                               const EvaluationDefaults &defaults);

/**
 * The full evaluation sweep: every system on every named space.
 * OOM results (e.g. GPipe on NLP.c0) appear with run.oom == true.
 */
std::vector<ExperimentResult> runEvaluationMatrix(
    const std::vector<std::string> &spaceNames,
    const std::vector<SystemModel> &systems,
    const EvaluationDefaults &defaults);

/**
 * Throughput of @p run normalized to @p baseline (Figure 5's y-axis;
 * returns 0 when either run OOMed).
 */
double normalizedThroughput(const RunResult &run,
                            const RunResult &baseline);

} // namespace naspipe

#endif // NASPIPE_CORE_EXPERIMENT_H
