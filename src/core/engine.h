/**
 * @file
 * naspipe::Engine — the library's public entry point.
 *
 * A downstream user builds (or picks) a search space, constructs an
 * Engine, and trains: the engine runs the CSP pipeline by default
 * and exposes the baselines and ablations through the same call.
 *
 * @code
 *   auto space = naspipe::makeNlpC2();
 *   naspipe::Engine engine(space, {.gpus = 8, .steps = 128});
 *   naspipe::RunResult result = engine.train();
 *   // result.metrics.samplesPerSec, result.searchAccuracy, ...
 * @endcode
 */

#ifndef NASPIPE_CORE_ENGINE_H
#define NASPIPE_CORE_ENGINE_H

#include <vector>

#include "runtime/pipeline_runtime.h"
#include "runtime/replay.h"
#include "schedule/scheduler.h"
#include "supernet/search_space.h"

namespace naspipe {

/**
 * High-level training facade.
 */
class Engine
{
  public:
    /** User-facing options (a trimmed RuntimeConfig). */
    struct Options {
        int gpus = 8;            ///< pipeline depth / GPU count
        int steps = 64;          ///< subnets to train (one batch each)
        std::uint64_t seed = 7;  ///< master random seed
        int batch = 0;           ///< 0: auto-size from GPU memory
        bool trace = false;      ///< record the task timeline
        bool evolutionSearch = false;  ///< evolution sampler
        SgdConfig sgd;           ///< optimizer hyperparameters
    };

    /**
     * @param space the search space (must outlive the engine)
     * @param options run options
     */
    Engine(const SearchSpace &space, const Options &options);

    /** Train with NASPipe (CSP + predictor + mirroring). */
    RunResult train() const;

    /** Train with an explicit system model (baseline/ablation). */
    RunResult trainWith(const SystemModel &system) const;

    /** The full RuntimeConfig the engine would run @p system with. */
    RuntimeConfig configFor(const SystemModel &system) const;

    const SearchSpace &space() const { return _space; }
    const Options &options() const { return _options; }

    /**
     * The largest batch @p system supports on *every* GPU count in
     * @p gpuCounts (0 when some count cannot run at all). The
     * paper's cross-cluster methodology pins the batch like this so
     * runs on different clusters train the same trajectory.
     */
    static int commonBatch(const SearchSpace &space,
                           const SystemModel &system,
                           const std::vector<int> &gpuCounts);

    /**
     * Run @p system on every GPU count in @p gpuCounts — with the
     * batch pinned to commonBatch() unless @p options.batch sets one
     * — and check Definition 1: all runs must produce
     * bitwise-identical weights, identical per-subnet losses, and
     * the same search result.
     *
     * @return the pairwise comparison against the first run for each
     *         subsequent GPU count (empty if < 2 counts).
     */
    static std::vector<RunComparison> verifyReproducibility(
        const SearchSpace &space, const SystemModel &system,
        const std::vector<int> &gpuCounts, const Options &options);

  private:
    const SearchSpace &_space;
    Options _options;
};

} // namespace naspipe

#endif // NASPIPE_CORE_ENGINE_H
