/**
 * @file
 * Report builders: turn run results into the paper's tables.
 */

#ifndef NASPIPE_CORE_REPORT_H
#define NASPIPE_CORE_REPORT_H

#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"

namespace naspipe {

/** Table 1: the search-space setup. */
TextTable buildTable1(const std::vector<std::string> &spaceNames);

/**
 * Table 2: resource consumption and micro events (Para., Score,
 * Batch, GPU Mem., GPU ALU, CPU Mem., Exec., Bub., Cache Hit).
 */
TextTable buildTable2(const std::vector<ExperimentResult> &results);

/** One Table 2 row for a result (exposed for tests). */
std::vector<std::string> table2Row(const ExperimentResult &result);

/**
 * Table 5: computation vs swap time of the eight representative
 * layers, straight from the profile database.
 */
TextTable buildTable5();

/**
 * Figure 5-style throughput summary: normalized throughput of every
 * system per space (normalized to GPipe where it runs, to NASPipe
 * otherwise) plus NASPipe's subnets/hour.
 */
TextTable buildThroughputTable(
    const std::vector<ExperimentResult> &results);

/** Format a run's score like the paper (BLEU or top-5 %). */
std::string formatScore(double score, SpaceFamily family);

} // namespace naspipe

#endif // NASPIPE_CORE_REPORT_H
