/**
 * @file
 * Ablation study driver (§5.3 / Figure 6): NASPipe with its
 * scheduler, predictor or mirroring individually disabled.
 */

#ifndef NASPIPE_CORE_ABLATION_H
#define NASPIPE_CORE_ABLATION_H

#include <vector>

#include "common/table.h"
#include "core/experiment.h"

namespace naspipe {

/** Result of one ablated variant on one space. */
struct AblationEntry {
    std::string spaceName;
    std::string variantName;
    RunResult run;
    double normalizedThroughput = 0.0;  ///< vs full NASPipe
};

/**
 * Run NASPipe and its three ablated variants on @p space; throughputs
 * are normalized to full NASPipe.
 */
std::vector<AblationEntry> runAblationStudy(
    const SearchSpace &space, const EvaluationDefaults &defaults);

/** Render an ablation study as a table. */
TextTable buildAblationTable(const std::vector<AblationEntry> &entries);

} // namespace naspipe

#endif // NASPIPE_CORE_ABLATION_H
