#include "core/ablation.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "core/report.h"

namespace naspipe {

std::vector<AblationEntry>
runAblationStudy(const SearchSpace &space,
                 const EvaluationDefaults &defaults)
{
    std::vector<AblationEntry> entries;
    const RunResult *reference = nullptr;

    for (const SystemModel &system : ablationSystems()) {
        AblationEntry entry;
        entry.spaceName = space.name();
        entry.variantName = system.name;
        entry.run = runExperiment(space, system, defaults).run;
        entries.push_back(std::move(entry));
    }

    // Normalize to the full system (always the first variant).
    reference = &entries.front().run;
    for (AblationEntry &entry : entries) {
        entry.normalizedThroughput =
            normalizedThroughput(entry.run, *reference);
    }
    return entries;
}

TextTable
buildAblationTable(const std::vector<AblationEntry> &entries)
{
    TextTable table({"Space", "Variant", "Samples/s", "vs NASPipe",
                     "Bubble", "Batch"});
    std::string lastSpace;
    for (const AblationEntry &entry : entries) {
        if (!lastSpace.empty() && entry.spaceName != lastSpace)
            table.addSeparator();
        lastSpace = entry.spaceName;
        if (entry.run.oom) {
            table.addRow({entry.spaceName, entry.variantName, "OOM",
                          "-", "-", "-"});
            continue;
        }
        const RunMetrics &m = entry.run.metrics;
        table.addRow({entry.spaceName, entry.variantName,
                      formatFixed(m.samplesPerSec, 1),
                      formatFactor(entry.normalizedThroughput, 2),
                      formatFixed(m.bubbleRatio, 2),
                      std::to_string(m.batch)});
    }
    return table;
}

} // namespace naspipe
