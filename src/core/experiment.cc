#include "core/experiment.h"

#include "common/logging.h"

namespace naspipe {

std::vector<SystemModel>
evaluatedSystems()
{
    return {naspipeSystem(), gpipeSystem(), pipedreamSystem(),
            vpipeSystem()};
}

std::vector<SystemModel>
ablationSystems()
{
    return {naspipeSystem(), naspipeWithoutScheduler(),
            naspipeWithoutPredictor(), naspipeWithoutMirroring()};
}

Engine::Options
optionsFrom(const EvaluationDefaults &defaults)
{
    Engine::Options options;
    options.gpus = defaults.gpus;
    options.steps = defaults.steps;
    options.seed = defaults.seed;
    options.trace = defaults.trace;
    return options;
}

ExperimentResult
runExperiment(const SearchSpace &space, const SystemModel &system,
              const EvaluationDefaults &defaults)
{
    Engine engine(space, optionsFrom(defaults));
    ExperimentResult out;
    out.spaceName = space.name();
    out.systemName = system.name;
    out.run = engine.trainWith(system);
    return out;
}

std::vector<ExperimentResult>
runEvaluationMatrix(const std::vector<std::string> &spaceNames,
                    const std::vector<SystemModel> &systems,
                    const EvaluationDefaults &defaults)
{
    std::vector<ExperimentResult> out;
    for (const std::string &name : spaceNames) {
        SearchSpace space = makeSpaceByName(name);
        for (const SystemModel &system : systems)
            out.push_back(runExperiment(space, system, defaults));
    }
    return out;
}

double
normalizedThroughput(const RunResult &run, const RunResult &baseline)
{
    if (run.oom || baseline.oom)
        return 0.0;
    if (baseline.metrics.samplesPerSec <= 0.0)
        return 0.0;
    return run.metrics.samplesPerSec / baseline.metrics.samplesPerSec;
}

} // namespace naspipe
