#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

Engine::Engine(const SearchSpace &space, const Options &options)
    : _space(space), _options(options)
{
    NASPIPE_ASSERT(options.gpus >= 1, "need >= 1 GPU");
    NASPIPE_ASSERT(options.steps >= 1, "need >= 1 training step");
}

RuntimeConfig
Engine::configFor(const SystemModel &system) const
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = _options.gpus;
    config.totalSubnets = _options.steps;
    config.batch = _options.batch;
    config.seed = _options.seed;
    config.traceEnabled = _options.trace;
    config.evolutionSearch = _options.evolutionSearch;
    config.sgd = _options.sgd;
    return config;
}

RunResult
Engine::train() const
{
    return trainWith(naspipeSystem());
}

RunResult
Engine::trainWith(const SystemModel &system) const
{
    return runTraining(_space, configFor(system));
}

int
Engine::commonBatch(const SearchSpace &space, const SystemModel &system,
                    const std::vector<int> &gpuCounts)
{
    NASPIPE_ASSERT(!gpuCounts.empty(), "need at least one GPU count");
    CapacityPlanner planner(space, GpuConfig{});
    int batch = 0;
    for (int gpus : gpuCounts) {
        CapacityPlan plan = planner.plan(system, gpus);
        if (!plan.fits)
            return 0;
        batch = batch == 0 ? plan.batch
                           : std::min(batch, plan.batch);
    }
    return batch;
}

std::vector<RunComparison>
Engine::verifyReproducibility(const SearchSpace &space,
                              const SystemModel &system,
                              const std::vector<int> &gpuCounts,
                              const Options &options)
{
    NASPIPE_ASSERT(!gpuCounts.empty(), "need at least one GPU count");
    // Pin the batch across clusters (§5.2: "kept the random seed,
    // batch size ... the same").
    int batch = options.batch > 0
                    ? options.batch
                    : commonBatch(space, system, gpuCounts);
    NASPIPE_ASSERT(batch > 0, "no batch fits every GPU count");

    std::vector<RunResult> results;
    for (int gpus : gpuCounts) {
        Options o = options;
        o.gpus = gpus;
        o.batch = batch;
        Engine engine(space, o);
        results.push_back(engine.trainWith(system));
        NASPIPE_ASSERT(!results.back().oom,
                       "reproducibility run OOMed on ", gpus,
                       " GPUs; pick a smaller space");
    }
    std::vector<RunComparison> comparisons;
    for (std::size_t i = 1; i < results.size(); i++)
        comparisons.push_back(compareRuns(results[0], results[i]));
    return comparisons;
}

} // namespace naspipe
