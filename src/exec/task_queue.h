/**
 * @file
 * Bounded multi-producer single-consumer task queue.
 *
 * Each stage worker owns one inbox of this type; the upstream stage,
 * the downstream stage (returning gradients) and the coordinator all
 * push into it, and only the owning worker pops. Pushes block when
 * the queue is full — the classic bounded-buffer backpressure — but
 * the parallel runtime sizes every inbox to at least the in-flight
 * subnet limit, and a CSP subnet holds exactly one live pipeline
 * token at a time, so a push can never participate in a cyclic wait
 * (see DESIGN.md, "Parallel executor").
 */

#ifndef NASPIPE_EXEC_TASK_QUEUE_H
#define NASPIPE_EXEC_TASK_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/lock_rank.h"

namespace naspipe {

/**
 * Bounded MPSC FIFO. All methods are thread-safe; pop-side methods
 * must only be called from the single consumer thread.
 */
template <typename T>
class BoundedTaskQueue
{
  public:
    /** @param capacity maximum queued items (>= 1). */
    explicit BoundedTaskQueue(std::size_t capacity)
        : _capacity(capacity < 1 ? 1 : capacity)
    {
    }

    BoundedTaskQueue(const BoundedTaskQueue &) = delete;
    BoundedTaskQueue &operator=(const BoundedTaskQueue &) = delete;

    /**
     * Blocking push; waits while the queue is at capacity. A push
     * into a closed queue drops the item silently — the consumer is
     * gone (crashed or aborted) and the coordinator will rebuild the
     * pipeline state from a checkpoint anyway.
     */
    void
    push(T item)
    {
        std::unique_lock<RankedMutex> lock(_queueMu);
        _space.wait(lock, [this] {
            return _closed || _items.size() < _capacity;
        });
        if (_closed)
            return;
        _items.push_back(std::move(item));
        _ready.notify_one();
    }

    /** Non-blocking push; returns false when at capacity or closed. */
    bool
    tryPush(T item)
    {
        std::lock_guard<RankedMutex> lock(_queueMu);
        if (_closed || _items.size() >= _capacity)
            return false;
        _items.push_back(std::move(item));
        _ready.notify_one();
        return true;
    }

    /**
     * Close the queue: subsequent pushes drop their item and any
     * producer blocked on a full queue is released. A dead consumer
     * closes its own inbox so no producer can wait on it forever.
     * pop() semantics are unchanged — only close queues whose
     * consumer will never pop again.
     */
    void
    close()
    {
        {
            std::lock_guard<RankedMutex> lock(_queueMu);
            _closed = true;
        }
        _space.notify_all();
        _ready.notify_all();
    }

    /** Blocking pop of one item (consumer thread only). */
    T
    pop()
    {
        std::unique_lock<RankedMutex> lock(_queueMu);
        _ready.wait(lock, [this] { return !_items.empty(); });
        T item = std::move(_items.front());
        _items.pop_front();
        _space.notify_one();
        return item;
    }

    /** Non-blocking pop; returns false when empty. */
    bool
    tryPop(T &out)
    {
        std::lock_guard<RankedMutex> lock(_queueMu);
        if (_items.empty())
            return false;
        out = std::move(_items.front());
        _items.pop_front();
        _space.notify_one();
        return true;
    }

    /**
     * Move every queued item into @p out (appended) without blocking;
     * returns the number drained. Consumer thread only.
     */
    template <typename Container>
    std::size_t
    drainInto(Container &out)
    {
        std::lock_guard<RankedMutex> lock(_queueMu);
        std::size_t n = _items.size();
        for (auto &item : _items)
            out.push_back(std::move(item));
        _items.clear();
        if (n > 0)
            _space.notify_all();
        return n;
    }

    std::size_t
    size() const
    {
        std::lock_guard<RankedMutex> lock(_queueMu);
        return _items.size();
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return _capacity; }

  private:
    const std::size_t _capacity;
    mutable RankedMutex _queueMu{LockRank::ExecQueue};
    std::condition_variable_any _ready;
    std::condition_variable_any _space;
    std::deque<T> _items;
    bool _closed = false;
};

} // namespace naspipe

#endif // NASPIPE_EXEC_TASK_QUEUE_H
