/**
 * @file
 * Sequence-ID commit gate: CSP's causal order as a concurrency
 * protocol.
 *
 * The simulator proves NASPipe's schedule; this gate carries the same
 * invariant into real multi-threaded execution. For every shared
 * layer the gate keeps the ascending list of subnets that activate it
 * (the layer's *causal chain*) and a commit counter. A worker may
 * READ a layer for subnet i only once every lower-sequence activator
 * has committed its WRITE, and commits must themselves arrive in
 * chain order — so each layer observes exactly the R,W,R,W history a
 * sequential run produces, and the trained weights are bitwise
 * identical to the simulator's no matter how the OS interleaves the
 * worker threads.
 *
 * Lock discipline: the layer table is guarded by a shared_mutex
 * (registration on the coordinator takes it exclusive; workers
 * resolve layers shared). Entries are never removed, and
 * unordered_map guarantees element-pointer stability, so workers
 * cache LayerChain pointers and then poll the per-layer atomic
 * counter lock-free. Commit uses release ordering and readiness
 * checks use acquire, which is what makes the parameter bytes
 * written before a commit visible to the next reader.
 */

#ifndef NASPIPE_EXEC_COMMIT_GATE_H
#define NASPIPE_EXEC_COMMIT_GATE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/lock_rank.h"
#include "supernet/subnet.h"

namespace naspipe {

/**
 * Per-layer causal chains plus commit counters.
 */
class CommitGate
{
  public:
    /** One resolved (layer, subnet) gate dependency. */
    struct Claim {
        const void *chain = nullptr;  ///< opaque LayerChain handle
        std::size_t rank = 0;         ///< position in the chain
        std::uint64_t layerKey = 0;
        SubnetId subnet = -1;  ///< resolved activator (event hook)
    };

    CommitGate() = default;
    CommitGate(const CommitGate &) = delete;
    CommitGate &operator=(const CommitGate &) = delete;

    /**
     * Append @p subnet to @p layerKey's causal chain. Must be called
     * in ascending subnet order per layer (the injection order), and
     * before any task of @p subnet is dispatched.
     */
    void registerActivation(std::uint64_t layerKey, SubnetId subnet);

    /**
     * Resolve the (layer, subnet) pair into a lock-free pollable
     * claim. The pair must have been registered.
     */
    Claim resolve(std::uint64_t layerKey, SubnetId subnet) const;

    /** Whether every activator ranked below the claim has committed. */
    bool readable(const Claim &claim) const;

    /** Convenience: resolve + readable in one call. */
    bool readable(std::uint64_t layerKey, SubnetId subnet) const;

    /**
     * Commit @p claim's WRITE. Aborts if commits would leave chain
     * order (a scheduler bug, never a data-dependent condition).
     * Wakes blocked waitReadable() calls and fires the commit hooks.
     * @p stage tags the event-observer callback with the committing
     * pipeline stage (-1 = unknown / not a pipelined caller).
     */
    void commit(const Claim &claim, int stage = -1);

    /** Resolve-and-commit convenience. */
    void commit(std::uint64_t layerKey, SubnetId subnet);

    /**
     * Block until readable(). Used by tests and by schedulers that
     * prefer blocking acquisition; the parallel runtime's workers
     * poll readable() instead so a blocked forward can never wedge a
     * worker that still has runnable tasks.
     */
    void waitReadable(const Claim &claim);

    /**
     * Hook fired after every commit (outside the layer-table lock).
     * The parallel runtime uses it to wake stage workers whose
     * forward candidates may have become schedulable.
     */
    void onCommit(std::function<void()> hook) { _hook = std::move(hook); }

    /**
     * Commit *event* observer: called on every commit with
     * (layerKey, committing subnet, chain rank, stage) — the
     * determinism audit layer's CspOracle attaches here to check
     * commit monotonicity live. Called from worker threads; the
     * observer must be thread-safe. Install before workers start.
     */
    using CommitEventHook = std::function<void(
        std::uint64_t layerKey, SubnetId subnet, std::size_t rank,
        int stage)>;
    void onCommitEvent(CommitEventHook hook)
    {
        _eventHook = std::move(hook);
    }

    /** Total commits so far. */
    std::uint64_t commits() const
    {
        return _commits.load(std::memory_order_acquire);
    }

    /** Number of layers with at least one registered activator. */
    std::size_t layers() const;

    /** Committed WRITE count of @p layerKey (0 if unregistered). */
    std::size_t committedOf(std::uint64_t layerKey) const;

  private:
    struct LayerChain {
        std::vector<SubnetId> activators;  ///< ascending sequence IDs
        std::atomic<std::size_t> committed{0};
    };

    const LayerChain *chainOf(std::uint64_t layerKey) const;

    mutable RankedSharedMutex _gateTableMu{LockRank::ExecGateTable};
    std::unordered_map<std::uint64_t, LayerChain> _chains;
    std::function<void()> _hook;
    CommitEventHook _eventHook;
    std::atomic<std::uint64_t> _commits{0};

    // waitReadable() parking lot: commits broadcast here.
    mutable RankedMutex _gateWaitMu{LockRank::ExecGateWait};
    mutable std::condition_variable_any _waitCv;
};

} // namespace naspipe

#endif // NASPIPE_EXEC_COMMIT_GATE_H
