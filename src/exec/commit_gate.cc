#include "exec/commit_gate.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

void
CommitGate::registerActivation(std::uint64_t layerKey, SubnetId subnet)
{
    std::unique_lock<RankedSharedMutex> lock(_gateTableMu);
    LayerChain &chain = _chains[layerKey];
    NASPIPE_ASSERT(chain.activators.empty() ||
                       chain.activators.back() < subnet,
                   "gate registration out of sequence order for layer ",
                   layerKey, ": ", subnet, " after ",
                   chain.activators.empty() ? -1
                                            : chain.activators.back());
    chain.activators.push_back(subnet);
}

const CommitGate::LayerChain *
CommitGate::chainOf(std::uint64_t layerKey) const
{
    std::shared_lock<RankedSharedMutex> lock(_gateTableMu);
    auto it = _chains.find(layerKey);
    return it == _chains.end() ? nullptr : &it->second;
}

CommitGate::Claim
CommitGate::resolve(std::uint64_t layerKey, SubnetId subnet) const
{
    // Hold the table lock across the activator search, not just the
    // chain lookup: the coordinator may be growing this chain's
    // vector under the exclusive lock at this very moment. Appends
    // only ever add *higher* sequence IDs, so the rank computed here
    // stays valid after the lock drops.
    std::shared_lock<RankedSharedMutex> lock(_gateTableMu);
    auto found = _chains.find(layerKey);
    NASPIPE_ASSERT(found != _chains.end(), "layer ", layerKey,
                   " has no registered activators");
    const LayerChain *chain = &found->second;
    auto it = std::lower_bound(chain->activators.begin(),
                               chain->activators.end(), subnet);
    NASPIPE_ASSERT(it != chain->activators.end() && *it == subnet,
                   "SN", subnet, " is not an activator of layer ",
                   layerKey);
    Claim claim;
    claim.chain = chain;
    claim.rank = static_cast<std::size_t>(
        it - chain->activators.begin());
    claim.layerKey = layerKey;
    claim.subnet = subnet;
    return claim;
}

bool
CommitGate::readable(const Claim &claim) const
{
    const auto *chain = static_cast<const LayerChain *>(claim.chain);
    return chain->committed.load(std::memory_order_acquire) >=
           claim.rank;
}

bool
CommitGate::readable(std::uint64_t layerKey, SubnetId subnet) const
{
    return readable(resolve(layerKey, subnet));
}

void
CommitGate::commit(const Claim &claim, int stage)
{
    auto *chain = const_cast<LayerChain *>(
        static_cast<const LayerChain *>(claim.chain));
    // The release store publishes the parameter bytes the worker
    // wrote before committing; the order assertion catches scheduler
    // bugs (a commit may only extend the chain by exactly one).
    std::size_t was =
        chain->committed.fetch_add(1, std::memory_order_acq_rel);
    NASPIPE_ASSERT(was == claim.rank,
                   "commit out of causal order on layer ",
                   claim.layerKey, ": rank ", claim.rank,
                   " committed after ", was, " earlier commits");
    // acq_rel (not relaxed) so commits() observed from another thread
    // is ordered with the per-chain counters it summarizes.
    _commits.fetch_add(1, std::memory_order_acq_rel);
    if (_eventHook) {
        // The subnet ID comes from the claim, captured under the
        // table lock at resolve() time — reading activators[] here
        // would race the coordinator growing the vector.
        _eventHook(claim.layerKey, claim.subnet, claim.rank, stage);
    }
    {
        // An empty critical section orders the notify after any
        // concurrent waiter's predicate check, so no wakeup is lost.
        std::lock_guard<RankedMutex> lock(_gateWaitMu);
    }
    _waitCv.notify_all();
    if (_hook)
        _hook();
}

void
CommitGate::commit(std::uint64_t layerKey, SubnetId subnet)
{
    commit(resolve(layerKey, subnet));
}

void
CommitGate::waitReadable(const Claim &claim)
{
    if (readable(claim))
        return;
    std::unique_lock<RankedMutex> lock(_gateWaitMu);
    _waitCv.wait(lock, [&] { return readable(claim); });
}

std::size_t
CommitGate::layers() const
{
    std::shared_lock<RankedSharedMutex> lock(_gateTableMu);
    return _chains.size();
}

std::size_t
CommitGate::committedOf(std::uint64_t layerKey) const
{
    const LayerChain *chain = chainOf(layerKey);
    return chain ? chain->committed.load(std::memory_order_acquire)
                 : 0;
}

} // namespace naspipe
