/**
 * @file
 * ParallelRuntime: the CSP schedule on real OS threads.
 *
 * A second runtime layer next to PipelineRuntime: instead of a
 * discrete-event simulation of D GPUs, it launches one StageWorker
 * thread per pipeline stage plus a coordinator (the calling thread),
 * and executes the numeric training run with genuine concurrency.
 * The CommitGate enforces the exact causal read/write order CSP
 * proves sequential-equivalent, so for any worker count — and any OS
 * thread interleaving — the trained weights are **bitwise identical**
 * to the simulator's (and hence to sequential training); the
 * equivalence harness in tests/integration/test_parallel_equivalence
 * asserts this on the paper spaces.
 *
 * Shares RuntimeConfig and RunResult with the simulator so the two
 * executors are drop-in interchangeable (`naspipe_cli
 * --executor=threads|sim`); both drive the shared TrainingSession
 * coordinator core (src/session), which owns sampling, score
 * delivery and the drained-checkpoint/resume cadence. The feature
 * matrix of what each executor supports (systems, faults,
 * checkpoint/resume, context cache, oracle hooks) lives in
 * README.md's "Choosing an executor" table; supported() is the
 * programmatic form of that matrix and names the feature in its
 * rejection reason.
 */

#ifndef NASPIPE_EXEC_PARALLEL_RUNTIME_H
#define NASPIPE_EXEC_PARALLEL_RUNTIME_H

#include <memory>

#include "runtime/pipeline_runtime.h"

namespace naspipe {

/**
 * Executes one training run on worker threads.
 */
class ParallelRuntime
{
  public:
    /**
     * @param space the search space (must outlive the runtime)
     * @param config run configuration (numStages == worker threads)
     */
    ParallelRuntime(const SearchSpace &space,
                    const RuntimeConfig &config);

    ~ParallelRuntime();

    ParallelRuntime(const ParallelRuntime &) = delete;
    ParallelRuntime &operator=(const ParallelRuntime &) = delete;

    /** Execute the run to completion and collect the results. */
    RunResult run();

    /** Effective score scale (family default applied). */
    double scoreScale() const;

    /**
     * Whether @p config can run on the threaded executor; fills
     * @p why (when non-null) with the first rejection reason.
     */
    static bool supported(const RuntimeConfig &config,
                          std::string *why = nullptr);

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/** Convenience wrapper: configure and run on threads in one call. */
RunResult runTrainingThreaded(const SearchSpace &space,
                              const RuntimeConfig &config);

} // namespace naspipe

#endif // NASPIPE_EXEC_PARALLEL_RUNTIME_H
