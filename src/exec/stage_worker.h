/**
 * @file
 * One OS thread per pipeline stage.
 *
 * A StageWorker owns a bounded MPSC inbox fed by the upstream stage
 * (forward activations), the downstream stage (backward gradients)
 * and the coordinator (fresh subnets into stage 0). Its scheduling
 * loop is Algorithm 1 re-expressed for real threads:
 *
 *   - backward tasks always run first (they release dependencies);
 *   - among forward candidates, run the lowest-sequence-ID one whose
 *     stage-local shared layers are all readable per the CommitGate
 *     (Algorithm 2's SCHEDULE());
 *   - a forward that is not yet readable is *deferred*, never blocked
 *     on, so a worker with runnable work is never wedged behind an
 *     unsatisfied dependency — the liveness argument is that the
 *     globally lowest unfinished subnet only depends on finished
 *     subnets, hence is always runnable wherever its token sits.
 *
 * Workers never touch the sampler, the partitioner or each other's
 * state: a task carries an immutable, shared SubnetRun (subnet +
 * partition), and all cross-thread parameter visibility goes through
 * the CommitGate's acquire/release commits.
 */

#ifndef NASPIPE_EXEC_STAGE_WORKER_H
#define NASPIPE_EXEC_STAGE_WORKER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "exec/commit_gate.h"
#include "exec/task_queue.h"
#include "fault/heartbeat.h"
#include "memory/exec_context_cache.h"
#include "obs/run_observations.h"
#include "obs/wall_clock.h"
#include "partition/partitioner.h"
#include "schedule/exec_predictor.h"
#include "sim/trace.h"
#include "supernet/subnet.h"
#include "train/numeric_executor.h"

namespace naspipe {

/**
 * Per-job execution context for multi-tenant pools (src/serve).
 *
 * A shared-pool StageWorker serves tasks from many independent
 * search jobs; each job owns its own commit gate (causal chains),
 * numeric executor and parameter store. A task resolves those
 * through the binding its SubnetRun carries — a null binding means
 * the single-tenant path, which uses the worker-construction
 * defaults and behaves exactly as before. The binding is immutable
 * while any of its tasks is in flight and must outlive them.
 */
struct JobBinding {
    int jobId = 0;
    const SearchSpace *space = nullptr;
    CommitGate *gate = nullptr;
    NumericExecutor *exec = nullptr;
};

/** Immutable per-subnet execution record shared by every stage. */
struct SubnetRun {
    Subnet subnet;
    SubnetPartition partition;
    /** Owning job in a multi-tenant pool; null = single-tenant. */
    const JobBinding *job = nullptr;
    /**
     * Global dispatch ticket: the cross-job priority the forward
     * queues sort by. The serve scheduler assigns tickets in its
     * deterministic admission order; single-tenant runtimes set
     * ticket = sequence ID, so ticket order is exactly Algorithm 2's
     * lowest-ID-first order and nothing changes for them.
     */
    std::uint64_t ticket = 0;
};

/** A pipeline token travelling between stage workers. */
struct ExecTask {
    enum class Kind { Forward, Backward };
    Kind kind = Kind::Forward;
    std::shared_ptr<const SubnetRun> run;
};

/** Per-worker context-management knobs (mirrors the sim's Stage). */
struct StageContextConfig {
    MemoryMode mode = MemoryMode::AllResident;
    bool predictor = false;  ///< Algorithm-3 prediction enabled
    int prefetchDepth = 2;   ///< predicted tasks to prefetch
    std::uint64_t budgetBytes = 0;  ///< §4.2 cap; 0 = unlimited
};

/**
 * The worker thread of one pipeline stage.
 */
class StageWorker
{
  public:
    /** Wall-clock accounting of one worker (read after join()). */
    struct Stats {
        double busySec = 0.0;      ///< executing forward/backward
        double gateWaitSec = 0.0;  ///< candidates present, none ready
        double idleSec = 0.0;      ///< no candidates at all
        std::uint64_t forwards = 0;
        std::uint64_t backwards = 0;
        std::uint64_t deferrals = 0;  ///< fwd scans that found nothing
        std::uint64_t idleWakeups = 0;  ///< sleeps with empty queues
    };

    using ContextConfig = StageContextConfig;

    /**
     * @param stage this worker's stage index
     * @param numStages pipeline depth D
     * @param space the search space
     * @param gate the shared commit gate
     * @param exec numeric executor, or nullptr for schedule-only runs
     * @param semantics parameter-update semantics (Immediate for CSP)
     * @param inboxCapacity bounded-inbox capacity (>= in-flight limit)
     * @param ctx context cache/predictor configuration
     */
    StageWorker(int stage, int numStages, const SearchSpace &space,
                CommitGate &gate, NumericExecutor *exec,
                UpdateSemantics semantics, std::size_t inboxCapacity,
                ContextConfig ctx = ContextConfig());

    StageWorker(const StageWorker &) = delete;
    StageWorker &operator=(const StageWorker &) = delete;

    /** Wire the pipeline; stage 0's completion sink is @p complete. */
    void connect(StageWorker *next, StageWorker *prev,
                 std::function<void(std::shared_ptr<const SubnetRun>)>
                     complete);

    /** Start the worker thread; @p epoch anchors trace timestamps. */
    void start(obs::TimePoint epoch, bool recordTrace);

    /** Enqueue a task (blocking when the inbox is full). */
    void submit(ExecTask task);

    /** Wake the scheduling loop (a gate commit may unblock a fwd). */
    void notify();

    /** Ask the loop to exit once its queues drain, then notify. */
    void requestStop();

    /**
     * Ask the loop to exit *immediately*, abandoning queued work, and
     * close the inbox so no producer can block on it. Used when the
     * supervisor quiesces the pipeline after a fail-stop incident —
     * the abandoned tasks are rebuilt from the checkpoint replay.
     */
    void requestAbort();

    /** Join the worker thread. */
    void join();

    /** @name Fault injection (supervision layer)
     * Latches armed by the coordinator at task boundaries; the worker
     * thread consumes them at the top of its scheduling loop (crash,
     * stall) or per executed task (degrade). @{ */
    /** Fail-stop: the loop abandons its inbox and exits. */
    void injectCrash() { _crashLatch = true; notify(); }
    /** Sleep through @p ticks bounded waits before the next task. */
    void injectStall(int ticks) { _stallTicks = ticks; notify(); }
    /** Slow down the next @p tasks executed tasks. */
    void injectDegrade(int tasks) { _degradeTasks = tasks; }
    /** @} */

    /** Liveness signal for the watchdog (progress + state). */
    const fault::WorkerHeartbeat &heartbeat() const { return _hb; }

    int stage() const { return _stage; }

    /** Post-join accounting. */
    const Stats &stats() const { return _stats; }

    /** Post-join context-cache accounting. */
    const ExecContextCache &cache() const { return _cache; }

    /** Post-join prediction accounting. */
    const ExecPredictor &predictor() const { return _predictor; }

    /** Post-join trace records (empty unless recordTrace). */
    const std::vector<TraceRecord> &traceRecords() const
    {
        return _traceRecords;
    }

    /** Post-join wall-mode observations (histograms, gate-wait
     *  attribution by layer). */
    const obs::StageObservation &observation() const { return _obs; }

  private:
    /** A deferred-or-ready task with its resolved gate claims. */
    struct Pending {
        std::shared_ptr<const SubnetRun> run;
        std::vector<CommitGate::Claim> claims;
        bool claimsResolved = false;
    };

    void runLoop();
    void drainInbox();
    /** @name Multi-tenant resolution (job binding, else defaults)
     * @{ */
    const SearchSpace &spaceOf(const SubnetRun &run) const
    {
        return run.job ? *run.job->space : _space;
    }
    CommitGate &gateOf(const SubnetRun &run) const
    {
        return run.job ? *run.job->gate : _gate;
    }
    NumericExecutor *execOf(const SubnetRun &run) const
    {
        return run.job ? run.job->exec : _exec;
    }
    /** @} */
    /** Consume a stall latch: sleep through @p ticks bounded waits. */
    void stallFor(int ticks);
    /** Index into _fwd of the lowest-ID readable forward, or -1; on
     *  -1 with queued forwards, @p blockedOn receives the layer key
     *  whose chain blocks the lowest-sequence candidate. */
    int findRunnableForward(std::uint64_t *blockedOn);
    void resolveClaims(Pending &pending);
    void execForward(Pending pending);
    void execBackward(Pending pending);
    std::pair<int, int> blockRange(const SubnetRun &run) const;
    double secondsSinceEpoch() const;
    /** Prefetch @p run's stage context (predictor paths). */
    void prefetchRun(const SubnetRun &run);
    /** The sorted forward queue as sequence IDs (predictor input). */
    std::vector<SubnetId> queuedForwardIds() const;
    /** Prefetch the queued forwards the predictor named. */
    void prefetchPredicted(const std::vector<SubnetId> &picks);

    const int _stage;
    const int _numStages;
    const SearchSpace &_space;
    CommitGate &_gate;
    NumericExecutor *_exec;
    const UpdateSemantics _semantics;

    BoundedTaskQueue<ExecTask> _inbox;
    StageWorker *_next = nullptr;
    StageWorker *_prev = nullptr;
    std::function<void(std::shared_ptr<const SubnetRun>)> _complete;

    // Scheduling-loop signal: submit()/notify()/requestStop() bump
    // the counter so a wakeup arriving during a scan is never lost.
    RankedMutex _signalMu{LockRank::ExecWorkerSignal};
    std::condition_variable_any _cv;
    std::uint64_t _signals = 0;
    bool _stop = false;
    bool _abort = false;

    // Fault latches (coordinator writes, worker thread consumes).
    std::atomic<bool> _crashLatch{false};
    std::atomic<int> _stallTicks{0};
    std::atomic<int> _degradeTasks{0};
    fault::WorkerHeartbeat _hb;

    // Thread-local scheduling state (worker thread only).
    std::deque<Pending> _bwd;
    std::vector<Pending> _fwd;  ///< sorted by ascending sequence ID

    // Context management (worker thread only; read after join()).
    ExecContextCache _cache;
    ExecPredictor _predictor;

    std::thread _thread;
    obs::TimePoint _epoch;
    bool _recordTrace = false;
    Stats _stats;
    std::vector<TraceRecord> _traceRecords;
    obs::StageObservation _obs;
    double _lastCommitSec = -1.0;  ///< for the commit-gap histogram
};

} // namespace naspipe

#endif // NASPIPE_EXEC_STAGE_WORKER_H
