#include "exec/stage_worker.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace naspipe {

StageWorker::StageWorker(int stage, int numStages,
                         const SearchSpace &space, CommitGate &gate,
                         NumericExecutor *exec,
                         UpdateSemantics semantics,
                         std::size_t inboxCapacity, ContextConfig ctx)
    : _stage(stage), _numStages(numStages), _space(space), _gate(gate),
      _exec(exec), _semantics(semantics), _inbox(inboxCapacity),
      _cache(space, ctx.mode, ctx.budgetBytes),
      _predictor(ctx.predictor, ctx.prefetchDepth)
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages,
                   "stage index out of range");
}

void
StageWorker::connect(
    StageWorker *next, StageWorker *prev,
    std::function<void(std::shared_ptr<const SubnetRun>)> complete)
{
    _next = next;
    _prev = prev;
    _complete = std::move(complete);
}

void
StageWorker::start(obs::TimePoint epoch, bool recordTrace)
{
    _epoch = epoch;
    _recordTrace = recordTrace;
    _thread = std::thread([this] { runLoop(); });
}

void
StageWorker::submit(ExecTask task)
{
    _inbox.push(std::move(task));
    notify();
}

void
StageWorker::notify()
{
    {
        std::lock_guard<RankedMutex> lock(_signalMu);
        _signals++;
    }
    _cv.notify_one();
}

void
StageWorker::requestStop()
{
    {
        std::lock_guard<RankedMutex> lock(_signalMu);
        _stop = true;
        _signals++;
    }
    _cv.notify_one();
}

void
StageWorker::requestAbort()
{
    {
        std::lock_guard<RankedMutex> lock(_signalMu);
        _stop = true;
        _abort = true;
        _signals++;
    }
    // Closing the inbox releases any peer blocked pushing into it —
    // without this, quiescing after a crash could wedge a surviving
    // worker mid-submit.
    _inbox.close();
    _cv.notify_one();
}

void
StageWorker::join()
{
    if (_thread.joinable())
        _thread.join();
}

std::pair<int, int>
StageWorker::blockRange(const SubnetRun &run) const
{
    return {run.partition.firstBlock(_stage),
            run.partition.lastBlock(_stage)};
}

double
StageWorker::secondsSinceEpoch() const
{
    return obs::secondsSince(_epoch);
}

void
StageWorker::prefetchRun(const SubnetRun &run)
{
    auto [lo, hi] = blockRange(run);
    if (lo <= hi)
        _cache.prefetch(run.subnet, lo, hi);
}

std::vector<SubnetId>
StageWorker::queuedForwardIds() const
{
    std::vector<SubnetId> ids;
    ids.reserve(_fwd.size());
    for (const Pending &p : _fwd)
        ids.push_back(p.run->subnet.id());
    return ids;
}

void
StageWorker::prefetchPredicted(const std::vector<SubnetId> &picks)
{
    // Predictor paths are single-tenant only (a multi-tenant pool
    // runs with the predictor off), so _fwd's ticket order is
    // sequence-ID order here and the binary search stays valid.
    for (SubnetId id : picks) {
        auto at = std::lower_bound(
            _fwd.begin(), _fwd.end(), id,
            [](const Pending &p, SubnetId v) {
                return p.run->subnet.id() < v;
            });
        if (at != _fwd.end() && at->run->subnet.id() == id)
            prefetchRun(*at->run);
    }
}

void
StageWorker::drainInbox()
{
    std::deque<ExecTask> fresh;
    _inbox.drainInto(fresh);
    for (ExecTask &task : fresh) {
        Pending pending;
        pending.run = std::move(task.run);
        // An arriving task is this stage's advance notice ("status
        // passed from other stages", §3.3): prefetch its context
        // before anything executes. Fresh subnets entering stage 0
        // are gated to ~3 queued contexts like the simulator's entry
        // retrieval, so a backed-up entry queue does not balloon the
        // cache.
        if (_predictor.enabled() &&
            (task.kind == ExecTask::Kind::Backward || _stage > 0 ||
             _fwd.size() < 3)) {
            prefetchRun(*pending.run);
        }
        if (task.kind == ExecTask::Kind::Backward) {
            _bwd.push_back(std::move(pending));
        } else {
            // Keep forwards sorted by dispatch ticket so the
            // runnable scan walks Algorithm 2's lowest-first order.
            // Single-tenant runs set ticket = sequence ID; a
            // multi-tenant pool's tickets encode the serve
            // scheduler's deterministic cross-job admission order.
            std::uint64_t ticket = pending.run->ticket;
            auto at = std::lower_bound(
                _fwd.begin(), _fwd.end(), ticket,
                [](const Pending &p, std::uint64_t v) {
                    return p.run->ticket < v;
                });
            _fwd.insert(at, std::move(pending));
        }
    }
}

void
StageWorker::resolveClaims(Pending &pending)
{
    if (pending.claimsResolved)
        return;
    const SubnetRun &run = *pending.run;
    auto [lo, hi] = blockRange(run);
    for (int b = lo; b <= hi; b++) {
        if (!spaceOf(run).parameterized(b, run.subnet.choice(b)))
            continue;
        pending.claims.push_back(gateOf(run).resolve(
            run.subnet.layer(b).key(), run.subnet.id()));
    }
    pending.claimsResolved = true;
}

int
StageWorker::findRunnableForward(std::uint64_t *blockedOn)
{
    for (std::size_t i = 0; i < _fwd.size(); i++) {
        resolveClaims(_fwd[i]);
        bool ready = true;
        for (const CommitGate::Claim &claim : _fwd[i].claims) {
            if (!gateOf(*_fwd[i].run).readable(claim)) {
                ready = false;
                // Attribute the stall to the chain holding the
                // lowest-sequence candidate: per the liveness
                // argument it is the one whose commit this stage is
                // really waiting for.
                if (i == 0 && blockedOn)
                    *blockedOn = claim.layerKey;
                break;
            }
        }
        if (ready)
            return static_cast<int>(i);
    }
    return -1;
}

void
StageWorker::execForward(Pending pending)
{
    // An armed degrade latch slows this task down (scheduling-neutral:
    // CSP order is unaffected, only wall time stretches).
    if (_degradeTasks.load() > 0 && _degradeTasks.fetch_sub(1) > 0)
        for (int i = 0; i < 64; i++)
            std::this_thread::yield();
    const SubnetRun &run = *pending.run;
    auto [lo, hi] = blockRange(run);
    // Algorithm 1 line 21: predictor runs after the pop, before the
    // forward executes — the forwards queued next get their context
    // fetched while this one computes (Algorithm 3 lines 16-18).
    prefetchPredicted(_predictor.beforeForward(run.subnet.id(),
                                               queuedForwardIds()));
    if (lo <= hi)
        _cache.ensureResident(run.subnet, lo, hi);
    NumericExecutor *exec = execOf(run);
    double start = secondsSinceEpoch();
    if (exec && lo <= hi)
        exec->forwardStage(run.subnet, lo, hi, _semantics, _stage);
    if (exec && _stage == _numStages - 1)
        exec->computeLoss(run.subnet);
    double end = secondsSinceEpoch();
    _stats.busySec += end - start;
    _stats.forwards++;
    _hb.beat();
    if (_recordTrace) {
        _traceRecords.push_back(TraceRecord{
            ticksFromSec(start), ticksFromSec(end), _stage,
            TraceKind::Forward, run.subnet.id(), "threads"});
    }

    if (_stage + 1 < _numStages) {
        _next->submit(
            ExecTask{ExecTask::Kind::Forward, std::move(pending.run)});
    } else {
        // The last stage turns the forward around; the claims are
        // stage-local, so the backward reuses them for its commits.
        _bwd.push_back(std::move(pending));
    }
}

void
StageWorker::execBackward(Pending pending)
{
    if (_degradeTasks.load() > 0 && _degradeTasks.fetch_sub(1) > 0)
        for (int i = 0; i < 64; i++)
            std::this_thread::yield();
    const SubnetRun &run = *pending.run;
    auto [lo, hi] = blockRange(run);
    // Algorithm 1 line 6: predictor runs before the backward. The
    // commit this backward is about to publish unblocks the lowest
    // queued forwards (Algorithm 3 lines 4-8) — re-fetch their
    // contexts if the budget evicted them.
    prefetchPredicted(_predictor.beforeBackward(queuedForwardIds()));
    if (lo <= hi)
        _cache.ensureResident(run.subnet, lo, hi);
    NumericExecutor *exec = execOf(run);
    double start = secondsSinceEpoch();
    if (exec && lo <= hi)
        exec->backwardStage(run.subnet, lo, hi, _semantics, _stage);
    // Commit strictly after the optimizer steps: the release edge in
    // CommitGate::commit is what publishes the new parameter bytes to
    // the next activator's forward read.
    resolveClaims(pending);
    for (const CommitGate::Claim &claim : pending.claims)
        gateOf(run).commit(claim, _stage);
    double end = secondsSinceEpoch();
    _stats.busySec += end - start;
    _stats.backwards++;
    _hb.beat();
    if (!pending.claims.empty()) {
        if (_lastCommitSec >= 0.0)
            _obs.commitGapSeconds.record(end - _lastCommitSec);
        _lastCommitSec = end;
    }
    if (_recordTrace) {
        _traceRecords.push_back(TraceRecord{
            ticksFromSec(start), ticksFromSec(end), _stage,
            TraceKind::Backward, run.subnet.id(), "threads"});
    }

    // The backward pass retires this subnet's stage context (§3.3):
    // evict it so the resident set stays at the ~3 moving contexts
    // the budget plans for.
    if (lo <= hi)
        _cache.evictSubnet(run.subnet, lo, hi);

    if (_stage > 0) {
        _prev->submit(
            ExecTask{ExecTask::Kind::Backward, std::move(pending.run)});
    } else {
        _complete(std::move(pending.run));
    }
}

void
StageWorker::stallFor(int ticks)
{
    // A stall models a transient slowdown: the worker stays alive
    // (state Stalled, heartbeat frozen) but executes nothing for a
    // bounded number of short waits. Bounded waits — not a condition
    // wait — so the stall ends even if no signal ever arrives.
    _hb.setState(fault::WorkerState::Stalled);
    std::unique_lock<RankedMutex> lock(_signalMu);
    for (int i = 0; i < ticks && !_stop; i++)
        _cv.wait_for(lock, std::chrono::milliseconds(1));
    lock.unlock();
    _hb.setState(fault::WorkerState::Running);
}

void
StageWorker::runLoop()
{
    for (;;) {
        // Snapshot the signal counter *before* scanning so a commit
        // or submit that lands mid-scan prevents the sleep below.
        std::uint64_t seen;
        bool stopping;
        bool aborting;
        {
            std::lock_guard<RankedMutex> lock(_signalMu);
            seen = _signals;
            stopping = _stop;
            aborting = _abort;
        }
        // Fault latches first: a crashed worker abandons everything
        // (its inbox closes so no peer blocks pushing to it); an
        // aborted worker exits the same way but counts as a clean
        // supervised shutdown.
        if (_crashLatch.exchange(false)) {
            _inbox.close();
            _hb.setState(fault::WorkerState::Crashed);
            return;
        }
        if (aborting) {
            _inbox.close();
            _hb.setState(fault::WorkerState::Exited);
            return;
        }
        int stall = _stallTicks.exchange(0);
        if (stall > 0)
            stallFor(stall);
        drainInbox();

        if (!_bwd.empty()) {
            Pending task = std::move(_bwd.front());
            _bwd.pop_front();
            execBackward(std::move(task));
            continue;
        }
        std::uint64_t blockedOn = 0;
        int idx = findRunnableForward(&blockedOn);
        if (idx >= 0) {
            Pending task = std::move(
                _fwd[static_cast<std::size_t>(idx)]);
            _fwd.erase(_fwd.begin() + idx);
            execForward(std::move(task));
            continue;
        }

        if (stopping && _fwd.empty() && _inbox.empty()) {
            _hb.setState(fault::WorkerState::Exited);
            break;
        }

        // Nothing runnable: an unreadable forward means we are
        // waiting on the commit gate; truly empty queues are idle
        // (pipeline fill/drain bubbles).
        bool gateWait = !_fwd.empty();
        if (gateWait)
            _stats.deferrals++;
        else
            _stats.idleWakeups++;
        obs::TimePoint waitStart = obs::now();
        {
            std::unique_lock<RankedMutex> lock(_signalMu);
            _cv.wait(lock,
                     [&] { return _signals != seen || _stop; });
        }
        double waited = obs::secondsSince(waitStart);
        if (gateWait) {
            _stats.gateWaitSec += waited;
            _obs.recordGateWait(blockedOn, waited);
            if (_recordTrace) {
                double startSec =
                    obs::secondsBetween(_epoch, waitStart);
                _traceRecords.push_back(TraceRecord{
                    ticksFromSec(startSec),
                    ticksFromSec(startSec + waited), _stage,
                    TraceKind::Stall,
                    _fwd.front().run->subnet.id(),
                    "gate L" + std::to_string(blockedOn)});
            }
        } else {
            _stats.idleSec += waited;
        }
    }
}

} // namespace naspipe
