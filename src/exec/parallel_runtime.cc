#include "exec/parallel_runtime.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "exec/commit_gate.h"
#include "exec/stage_worker.h"
#include "tensor/loss.h"

namespace naspipe {

bool
ParallelRuntime::supported(const RuntimeConfig &config,
                           std::string *why)
{
    auto reject = [&](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (config.system.policy != PolicyKind::Csp) {
        return reject("threaded executor requires a CSP system: "
                      "BSP/ASP weights depend on the interleaving, "
                      "which real threads cannot replay");
    }
    if (config.system.weightStash)
        return reject("weight stashing is simulator-only");
    if (config.system.bulkFlush)
        return reject("bulk-flush (BSP) systems are simulator-only");
    if (!config.faults.empty())
        return reject("fault injection is simulator-only");
    if (config.ckptInterval > 0)
        return reject("mid-run checkpointing is simulator-only");
    if (!config.resumePath.empty())
        return reject("checkpoint resume is simulator-only");
    return true;
}

/**
 * All run state; the coordinator (the thread calling run()) owns the
 * sampler, injection and completion bookkeeping, the workers own
 * execution.
 */
struct ParallelRuntime::Impl {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;
    double scoreScale;

    CapacityPlan plan;
    int batch = 1;

    std::shared_ptr<ParameterStore> store;
    std::unique_ptr<NumericExecutor> exec;
    std::unique_ptr<SubnetSampler> sampler;
    std::unique_ptr<Partitioner> partitioner;
    std::unique_ptr<ConvergenceTracker> tracker;
    std::shared_ptr<Trace> trace;

    CommitGate gate;
    std::vector<std::unique_ptr<StageWorker>> workers;
    std::unique_ptr<BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>
        completions;

    // Coordinator bookkeeping (mirrors PipelineRuntime::Impl).
    std::vector<std::shared_ptr<const SubnetRun>> runs;  ///< by ID
    std::map<SubnetId, float> losses;
    SubnetId nextScoreToReport = 0;
    std::map<SubnetId, double> scoreBuffer;
    int injected = 0;
    int finished = 0;
    int inflight = 0;

    std::chrono::steady_clock::time_point epoch;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages),
          scoreScale(c.scoreScale > 0.0
                         ? c.scoreScale
                         : defaultScoreScale(s.family()))
    {
        NASPIPE_ASSERT(numStages >= 1, "need >= 1 worker");
        NASPIPE_ASSERT(c.totalSubnets >= 1, "need >= 1 subnet");
    }

    double
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    }

    bool setup();
    int effectiveFeedbackLag() const;
    void deliverScoresBelow(SubnetId maxIdExclusive);
    void injectSubnets();
    RunResult collect();
};

bool
ParallelRuntime::Impl::setup()
{
    // Same capacity discipline as the simulator: identical batch =>
    // identical LR scaling and gradient-noise scale => the numeric
    // trajectory the equivalence harness compares bitwise.
    ActivationModel activation =
        config.activation.bytesPerSample
            ? config.activation
            : defaultActivationModel(space.family());
    CapacityPlanner planner(space, config.cluster.gpu, activation);
    plan = config.batch > 0
               ? planner.planWithBatch(model, numStages, config.batch)
               : planner.plan(model, numStages);
    if (!plan.fits)
        return false;
    batch = plan.batch;

    if (config.samplerFactory) {
        sampler = config.samplerFactory(space, config.seed);
        NASPIPE_ASSERT(sampler, "sampler factory returned null");
    } else if (config.hybridStreams > 0) {
        sampler = std::make_unique<HybridSampler>(
            space, config.seed, config.hybridStreams);
    } else if (config.evolutionSearch) {
        sampler =
            std::make_unique<EvolutionSampler>(space, config.seed);
    } else {
        sampler = std::make_unique<UniformSampler>(space, config.seed);
    }
    partitioner = std::make_unique<Partitioner>(space, batch);

    store = std::make_shared<ParameterStore>(space, config.seed);
    // Pre-materialize every layer: after this, worker threads only
    // ever look up existing entries, so the store's maps need no
    // structural locking on the hot path.
    store->materializeAll();
    store->accessLog().enabled(config.numeric);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(config.seed, "data");
    ec.sgd = config.sgd;
    ec.batch = batch;
    exec = std::make_unique<NumericExecutor>(*store, ec);
    tracker = std::make_unique<ConvergenceTracker>(scoreScale);
    trace = std::make_shared<Trace>();
    trace->enabled(config.traceEnabled);

    int limit = model.effectiveInflight(numStages);
    // A subnet owns exactly one live pipeline token, so `limit`
    // bounds every inbox; the 2x slack keeps pushes non-blocking.
    auto inboxCapacity =
        static_cast<std::size_t>(std::max(2 * limit, 8));
    completions = std::make_unique<
        BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>(
        inboxCapacity);

    for (int k = 0; k < numStages; k++) {
        workers.push_back(std::make_unique<StageWorker>(
            k, numStages, space, gate,
            config.numeric ? exec.get() : nullptr,
            UpdateSemantics::Immediate, inboxCapacity));
    }
    for (int k = 0; k < numStages; k++) {
        workers[static_cast<std::size_t>(k)]->connect(
            k + 1 < numStages
                ? workers[static_cast<std::size_t>(k) + 1].get()
                : nullptr,
            k > 0 ? workers[static_cast<std::size_t>(k) - 1].get()
                  : nullptr,
            k == 0
                ? [this](std::shared_ptr<const SubnetRun> run) {
                      completions->push(std::move(run));
                  }
                : std::function<
                      void(std::shared_ptr<const SubnetRun>)>());
    }
    gate.onCommit([this] {
        for (auto &worker : workers)
            worker->notify();
    });
    if (config.commitObserver)
        gate.onCommitEvent(config.commitObserver);
    return true;
}

int
ParallelRuntime::Impl::effectiveFeedbackLag() const
{
    if (config.feedbackLag != 0)
        return std::max(0, config.feedbackLag);
    return config.evolutionSearch ? 32 : 0;
}

void
ParallelRuntime::Impl::deliverScoresBelow(SubnetId maxIdExclusive)
{
    // Identical delivery discipline to the simulator: scores reach
    // the sampler in sequence-ID order, never past the cap, so a
    // feedback-driven sampler draws the exact same subnet stream.
    while (nextScoreToReport < maxIdExclusive) {
        auto it = scoreBuffer.find(nextScoreToReport);
        if (it == scoreBuffer.end())
            break;
        sampler->reportScore(it->first, it->second);
        scoreBuffer.erase(it);
        nextScoreToReport++;
    }
}

void
ParallelRuntime::Impl::injectSubnets()
{
    int limit = model.effectiveInflight(numStages);
    int lag = effectiveFeedbackLag();
    while (injected < config.totalSubnets && inflight < limit) {
        SubnetId nextId = injected;
        if (lag > 0) {
            deliverScoresBelow(nextId - lag + 1);
            if (nextId - nextScoreToReport >= lag)
                break;  // required scores not yet available
        }
        Subnet sn = sampler->next();
        NASPIPE_ASSERT(sn.id() == nextId, "sampler IDs out of sync");

        auto run = std::make_shared<SubnetRun>();
        run->partition =
            model.balancedPartition
                ? partitioner->balanced(sn, numStages)
                : Partitioner::even(sn.size(), numStages);
        // Registration must precede dispatch: every layer's causal
        // chain is complete for this subnet before any worker can
        // resolve a claim against it.
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                gate.registerActivation(sn.layer(b).key(), sn.id());
        }
        if (config.numeric)
            exec->beginSubnet(sn);
        run->subnet = std::move(sn);
        runs.push_back(run);
        workers[0]->submit(
            ExecTask{ExecTask::Kind::Forward, std::move(run)});
        injected++;
        inflight++;
    }
}

RunResult
ParallelRuntime::Impl::collect()
{
    RunResult out;
    out.plan = plan;
    out.losses = losses;
    out.store = store;
    out.trace = trace;
    out.sampled.reserve(runs.size());
    for (const auto &run : runs)
        out.sampled.push_back(run->subnet);

    RunMetrics &m = out.metrics;
    m.finishedSubnets = finished;
    m.batch = batch;
    double wall = elapsed();
    // simSeconds doubles as "the run's seconds" so every downstream
    // consumer (throughput lines, reports) works unchanged; the
    // threaded-only fields carry the real-concurrency breakdown.
    m.simSeconds = wall;
    m.wallSeconds = wall;
    m.execWorkers = numStages;
    if (wall > 0.0) {
        m.samplesPerSec =
            static_cast<double>(finished) * batch / wall;
        m.subnetsPerHour =
            static_cast<double>(finished) / wall * 3600.0;
    }

    double busyTotal = 0.0, bubbleTotal = 0.0;
    for (const auto &worker : workers) {
        const StageWorker::Stats &s = worker->stats();
        m.perStageBusySec.push_back(s.busySec);
        m.perStageGateWaitSec.push_back(s.gateWaitSec);
        m.perStageIdleSec.push_back(s.idleSec);
        m.gateWaitSeconds += s.gateWaitSec;
        busyTotal += s.busySec;
        if (wall > 0.0) {
            bubbleTotal +=
                std::clamp(1.0 - s.busySec / wall, 0.0, 1.0);
        }
    }
    m.bubbleRatio =
        numStages > 0 ? bubbleTotal / numStages : 0.0;
    if (finished > 0)
        m.meanExecSeconds = busyTotal / finished;
    m.gateCommits = gate.commits();
    m.cacheHitRate = -1.0;  // no simulated context cache

    if (!losses.empty()) {
        std::size_t window = std::min<std::size_t>(16, losses.size());
        double total = 0.0;
        auto it = losses.end();
        for (std::size_t i = 0; i < window; i++)
            total += (--it)->second;
        m.finalLoss = total / static_cast<double>(window);
        m.finalScore = lossToScore(m.finalLoss, scoreScale);
    }
    out.curve = tracker->curve(64);

    if (config.traceEnabled) {
        std::vector<TraceRecord> merged;
        for (const auto &worker : workers) {
            merged.insert(merged.end(),
                          worker->traceRecords().begin(),
                          worker->traceRecords().end());
        }
        std::sort(merged.begin(), merged.end(),
                  [](const TraceRecord &a, const TraceRecord &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.stage < b.stage;
                  });
        for (const TraceRecord &rec : merged)
            trace->add(rec);
    }

    if (config.numeric) {
        out.supernetHash = store->supernetHash();
        m.supernetHash = out.supernetHash;
        int violations = 0;
        for (const LayerId &layer :
             store->accessLog().touchedLayers()) {
            if (!store->accessLog().sequentiallyEquivalent(layer))
                violations++;
        }
        m.causalViolations = violations;

        SearchResult search =
            searchBestSubnet(*exec, out.sampled, scoreScale,
                             deriveSeed(config.seed, "search"));
        out.bestSubnet = search.best.id();
        out.searchAccuracy = search.accuracy;
    }
    return out;
}

ParallelRuntime::ParallelRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config))
{
}

ParallelRuntime::~ParallelRuntime() = default;

double
ParallelRuntime::scoreScale() const
{
    return _impl->scoreScale;
}

RunResult
ParallelRuntime::run()
{
    Impl &im = *_impl;
    std::string why;
    if (!supported(im.config, &why)) {
        RunResult out;
        out.failed = true;
        out.error = why;
        return out;
    }
    if (!im.setup()) {
        RunResult out;
        out.oom = true;
        out.plan = im.plan;
        return out;
    }

    im.epoch = std::chrono::steady_clock::now();
    for (auto &worker : im.workers)
        worker->start(im.epoch, im.config.traceEnabled);

    im.injectSubnets();
    while (im.finished < im.config.totalSubnets) {
        std::shared_ptr<const SubnetRun> run =
            im.completions->pop();
        im.inflight--;
        im.finished++;
        float loss = 0.0f;
        if (im.config.numeric)
            loss = im.exec->finishSubnet(run->subnet);
        SubnetId id = run->subnet.id();
        im.losses[id] = loss;
        im.tracker->addSample(im.elapsed(), loss);
        im.scoreBuffer[id] = lossToScore(loss, im.scoreScale);
        if (im.effectiveFeedbackLag() == 0)
            im.deliverScoresBelow(im.config.totalSubnets);
        im.injectSubnets();
    }

    for (auto &worker : im.workers)
        worker->requestStop();
    for (auto &worker : im.workers)
        worker->join();

    NASPIPE_ASSERT(im.finished == im.config.totalSubnets,
                   "run ended with ", im.finished, " of ",
                   im.config.totalSubnets, " subnets finished");
    return im.collect();
}

RunResult
runTrainingThreaded(const SearchSpace &space,
                    const RuntimeConfig &config)
{
    ParallelRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
