#include "exec/parallel_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/commit_gate.h"
#include "exec/stage_worker.h"
#include "obs/wall_clock.h"
#include "session/training_session.h"
#include "train/run_checkpoint.h"

namespace naspipe {

bool
ParallelRuntime::supported(const RuntimeConfig &config,
                           std::string *why)
{
    auto reject = [&](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (config.system.policy != PolicyKind::Csp) {
        return reject("threaded executor requires a CSP system: "
                      "BSP/ASP weights depend on the interleaving, "
                      "which real threads cannot replay");
    }
    if (config.system.weightStash)
        return reject("weight stashing is simulator-only");
    if (config.system.bulkFlush)
        return reject("bulk-flush (BSP) systems are simulator-only");
    if (!config.faults.empty())
        return reject("fault injection is simulator-only");
    return true;
}

/**
 * The coordinator (the thread calling run()) drives the shared
 * TrainingSession; this Impl is the session's execution backend —
 * it owns the commit gate, the worker threads and the completion
 * queue, and dispatches every admitted subnet into stage 0.
 */
struct ParallelRuntime::Impl : ExecutionBackend {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;

    TrainingSession session;

    CommitGate gate;
    std::vector<std::unique_ptr<StageWorker>> workers;
    std::unique_ptr<BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>
        completions;

    obs::TimePoint epoch;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages), session(s, config)
    {
        NASPIPE_ASSERT(numStages >= 1, "need >= 1 worker");
        NASPIPE_ASSERT(c.totalSubnets >= 1, "need >= 1 subnet");
        session.attach(this);
    }

    double
    elapsed() const
    {
        return obs::secondsSince(epoch);
    }

    /**
     * Dispatch subnet @p id into the pipeline. Registration must
     * precede dispatch: every layer's causal chain is complete for
     * this subnet before any worker can resolve a claim against it.
     */
    void
    admit(SubnetId id) override
    {
        const Subnet &sn = session.subnetOf(id);
        auto run = std::make_shared<SubnetRun>();
        run->subnet = sn;
        run->partition = session.partitionOf(id);
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                gate.registerActivation(sn.layer(b).key(), sn.id());
        }
        workers[0]->submit(
            ExecTask{ExecTask::Kind::Forward, std::move(run)});
    }

    /**
     * A checkpoint-restored subnet needs no executor-side state:
     * deliberately NOT registered in the commit gate, so the live
     * run's causal chains start fresh at rank 0 — which keeps the
     * CspOracle's commit-monotonicity check valid across a resume.
     * The restored store already holds its weight updates, and the
     * drained barrier guarantees it held no pipeline token.
     */
    void
    restoreCompleted(SubnetId id) override
    {
        (void)id;
    }

    bool setup();
    RunResult collect();
};

bool
ParallelRuntime::Impl::setup()
{
    // Same capacity discipline as the simulator: identical batch =>
    // identical LR scaling and gradient-noise scale => the numeric
    // trajectory the equivalence harness compares bitwise.
    if (!session.initRun())
        return false;

    // Pre-materialize every layer: after this, worker threads only
    // ever look up existing entries, so the store's maps need no
    // structural locking on the hot path.
    session.store()->materializeAll();

    int limit = model.effectiveInflight(numStages);
    // A subnet owns exactly one live pipeline token, so `limit`
    // bounds every inbox; the 2x slack keeps pushes non-blocking.
    auto inboxCapacity =
        static_cast<std::size_t>(std::max(2 * limit, 8));
    completions = std::make_unique<
        BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>(
        inboxCapacity);

    StageWorker::ContextConfig ctx;
    ctx.mode = model.memory;
    ctx.predictor = model.predictor;
    ctx.prefetchDepth = model.prefetchDepth;
    // The §4.2 memory-limit check, same cap as the simulator: the
    // planned footprint covers the ~3 moving contexts of §3.3;
    // contexts awaiting their backward pass also linger, so the
    // enforced budget is 3x the plan.
    ctx.budgetBytes =
        model.memory == MemoryMode::AllResident
            ? 0
            : 3 * session.plan().residentParamBytesPerGpu;

    for (int k = 0; k < numStages; k++) {
        workers.push_back(std::make_unique<StageWorker>(
            k, numStages, space, gate,
            config.numeric ? &session.exec() : nullptr,
            UpdateSemantics::Immediate, inboxCapacity, ctx));
    }
    for (int k = 0; k < numStages; k++) {
        workers[static_cast<std::size_t>(k)]->connect(
            k + 1 < numStages
                ? workers[static_cast<std::size_t>(k) + 1].get()
                : nullptr,
            k > 0 ? workers[static_cast<std::size_t>(k) - 1].get()
                  : nullptr,
            k == 0
                ? [this](std::shared_ptr<const SubnetRun> run) {
                      completions->push(std::move(run));
                  }
                : std::function<
                      void(std::shared_ptr<const SubnetRun>)>());
    }
    gate.onCommit([this] {
        for (auto &worker : workers)
            worker->notify();
    });
    if (config.commitObserver)
        gate.onCommitEvent(config.commitObserver);
    return true;
}

RunResult
ParallelRuntime::Impl::collect()
{
    double wall = elapsed();
    double busySum = 0.0;
    for (const auto &worker : workers)
        busySum += worker->stats().busySec;

    RunResult out = session.collect(session.secOffset() + wall,
                                    session.busyOffset() + busySum);
    RunMetrics &m = out.metrics;
    // wallSeconds is this process's real run time; simSeconds (set by
    // the session) additionally carries the producing run's seconds
    // across a resume, so throughput consumers work unchanged.
    m.wallSeconds = wall;
    m.execWorkers = numStages;

    double bubbleTotal = 0.0;
    for (const auto &worker : workers) {
        const StageWorker::Stats &s = worker->stats();
        m.perStageBusySec.push_back(s.busySec);
        m.perStageGateWaitSec.push_back(s.gateWaitSec);
        m.perStageIdleSec.push_back(s.idleSec);
        m.perStageForwards.push_back(s.forwards);
        m.perStageBackwards.push_back(s.backwards);
        m.perStageDeferrals.push_back(s.deferrals);
        // The sim's stall taxonomy, threaded counterpart: a deferral
        // is Algorithm 2 blocking every queued forward, an idle
        // wakeup is a sleep with nothing queued at all.
        m.stallDependency += s.deferrals;
        m.stallEmptyQueues += s.idleWakeups;
        m.gateWaitSeconds += s.gateWaitSec;
        if (wall > 0.0) {
            bubbleTotal +=
                std::clamp(1.0 - s.busySec / wall, 0.0, 1.0);
        }
        // Stage-ascending merge: deterministic observation order.
        out.observations.stages.push_back(worker->observation());
    }
    m.bubbleRatio =
        numStages > 0 ? bubbleTotal / numStages : 0.0;
    m.gateCommits = gate.commits();

    // Real per-worker context-cache accounting (the port of the
    // simulator's ContextManager); AllResident systems have no cache
    // and report N/A.
    if (model.memory != MemoryMode::AllResident) {
        std::uint64_t hits = 0, misses = 0;
        for (const auto &worker : workers) {
            const ExecContextCache &cache = worker->cache();
            hits += cache.memory().hitStats().hits();
            misses += cache.memory().hitStats().misses();
            m.prefetchedBytes += cache.stats().prefetchedBytes;
            m.syncFetchedBytes += cache.stats().syncFetchedBytes;
            m.cachePeakBytes = std::max(m.cachePeakBytes,
                                        cache.memory().peakBytes());
            m.cacheBudgetBytes = cache.budgetBytes();
        }
        m.cacheHitRate =
            (hits + misses)
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
    }

    if (config.traceEnabled) {
        std::vector<TraceRecord> merged;
        for (const auto &worker : workers) {
            merged.insert(merged.end(),
                          worker->traceRecords().begin(),
                          worker->traceRecords().end());
        }
        std::sort(merged.begin(), merged.end(),
                  [](const TraceRecord &a, const TraceRecord &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.stage < b.stage;
                  });
        for (const TraceRecord &rec : merged)
            out.trace->add(rec);
    }
    return out;
}

ParallelRuntime::ParallelRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config))
{
}

ParallelRuntime::~ParallelRuntime() = default;

double
ParallelRuntime::scoreScale() const
{
    return _impl->session.scoreScale();
}

RunResult
ParallelRuntime::run()
{
    Impl &im = *_impl;
    TrainingSession &session = im.session;
    std::string why;
    if (!supported(im.config, &why)) {
        RunResult out;
        out.failed = true;
        out.error = why;
        return out;
    }
    if (!im.setup()) {
        RunResult out;
        out.oom = true;
        out.plan = session.plan();
        return out;
    }

    if (!im.config.resumePath.empty()) {
        RunCheckpoint ckpt;
        if (!ckpt.loadFile(im.config.resumePath) ||
            !session.restore(ckpt)) {
            RunResult out;
            out.failed = true;
            out.error = "cannot resume from checkpoint '" +
                        im.config.resumePath + "'";
            out.plan = session.plan();
            return out;
        }
        session.setTimeOffsets(ckpt.simSeconds, ckpt.busySeconds);
        session.setCheckpointsWritten(
            static_cast<int>(ckpt.checkpointsWritten));
        // ParameterStore::load drops the version-map entries of
        // layers restored at version 0; re-materialize so the hot
        // path stays structurally read-only for the workers.
        session.store()->materializeAll();
    }

    im.epoch = obs::now();
    for (auto &worker : im.workers)
        worker->start(im.epoch, im.config.traceEnabled);

    session.pump();
    while (session.finished() < session.totalSubnets()) {
        std::shared_ptr<const SubnetRun> run =
            im.completions->pop();
        float loss = 0.0f;
        if (im.config.numeric)
            loss = session.exec().finishSubnet(run->subnet);
        bool atBarrier = session.recordCompletion(
            run->subnet.id(), loss,
            session.secOffset() + im.elapsed());
        if (atBarrier) {
            // The barrier is drained by construction: injection
            // paused at nextCkptAt, so no subnet is in flight, and
            // every worker write for a completed subnet is visible
            // here (gate-commit release edges plus the completion
            // queue's mutex hand-off). Threaded checkpoints carry
            // wall-clock seconds and no live busy accounting.
            RunCheckpoint ckpt = session.buildCheckpoint(
                session.secOffset() + im.elapsed(),
                session.busyOffset());
            session.commitCheckpoint(ckpt);
        }
        session.pump();
    }

    for (auto &worker : im.workers)
        worker->requestStop();
    for (auto &worker : im.workers)
        worker->join();

    NASPIPE_ASSERT(session.finished() == session.totalSubnets(),
                   "run ended with ", session.finished(), " of ",
                   session.totalSubnets(), " subnets finished");
    return im.collect();
}

RunResult
runTrainingThreaded(const SearchSpace &space,
                    const RuntimeConfig &config)
{
    ParallelRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
