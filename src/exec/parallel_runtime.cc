#include "exec/parallel_runtime.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/lock_rank.h"
#include "common/logging.h"
#include "exec/commit_gate.h"
#include "exec/stage_worker.h"
#include "fault/recovery_policy.h"
#include "fault/watchdog.h"
#include "obs/wall_clock.h"
#include "session/training_session.h"
#include "train/run_checkpoint.h"

namespace naspipe {

bool
ParallelRuntime::supported(const RuntimeConfig &config,
                           std::string *why)
{
    auto reject = [&](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (config.system.policy != PolicyKind::Csp) {
        return reject("threaded executor requires a CSP system: "
                      "BSP/ASP weights depend on the interleaving, "
                      "which real threads cannot replay");
    }
    if (config.system.weightStash)
        return reject("weight stashing is simulator-only");
    if (config.system.bulkFlush)
        return reject("bulk-flush (BSP) systems are simulator-only");
    return true;
}

/**
 * The coordinator (the thread calling run()) drives the shared
 * TrainingSession; this Impl is the session's execution backend —
 * it owns the commit gate, the worker threads, the completion queue
 * and the supervision layer (heartbeat watchdog + recovery policy),
 * and dispatches every admitted subnet into stage 0.
 *
 * Gate, workers, completions queue and watchdog are *phase-scoped*:
 * a fail-stop recovery tears them all down (quiesce) and rebuilds
 * them (setup + startWorkers), exactly like the simulator's
 * resetRunState + setup. The fault injector, the recovery policy and
 * the cumulative fault counters live across phases.
 */
struct ParallelRuntime::Impl : ExecutionBackend {
    const SearchSpace &space;
    RuntimeConfig config;
    SystemModel model;
    int numStages;

    TrainingSession session;

    std::unique_ptr<CommitGate> gate;
    std::vector<std::unique_ptr<StageWorker>> workers;
    std::unique_ptr<BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>
        completions;

    // Supervision. The watchdog is declared after the completion
    // queue so it is destroyed first — its incident callback pushes
    // the nullptr sentinel into `completions`.
    FaultInjector injector;
    fault::RecoveryPolicy policy;
    std::unique_ptr<fault::Watchdog> watchdog;
    RankedMutex execIncidentMu{LockRank::ExecIncident};
    int incidentStage = -1;        ///< last incident's victim stage
    std::string incidentReason;    ///< last incident's description
    bool failStopPending = false;  ///< coordinator-only freeze flag

    // Cumulative fault/recovery accounting (across phases).
    int recoveries = 0;
    int subnetsReplayed = 0;
    double recoverySecondsTotal = 0.0;
    double lostComputeSeconds = 0.0;
    bool retriesExhausted = false;

    obs::TimePoint epoch;

    Impl(const SearchSpace &s, const RuntimeConfig &c)
        : space(s), config(c), model(c.system),
          numStages(c.numStages), session(s, config),
          injector(c.faults),
          policy(fault::RecoveryPolicy::Config{
              c.recoveryMaxRetries, c.recoveryBackoffSeconds, 60.0})
    {
        NASPIPE_ASSERT(numStages >= 1, "need >= 1 worker");
        NASPIPE_ASSERT(c.totalSubnets >= 1, "need >= 1 subnet");
        session.attach(this);
    }

    double
    elapsed() const
    {
        return obs::secondsSince(epoch);
    }

    /**
     * Dispatch subnet @p id into the pipeline. Registration must
     * precede dispatch: every layer's causal chain is complete for
     * this subnet before any worker can resolve a claim against it.
     */
    void
    admit(SubnetId id) override
    {
        const Subnet &sn = session.subnetOf(id);
        auto run = std::make_shared<SubnetRun>();
        run->subnet = sn;
        run->partition = session.partitionOf(id);
        // Single-tenant: ticket = sequence ID keeps the workers'
        // forward queues in Algorithm 2's lowest-ID-first order.
        run->ticket = static_cast<std::uint64_t>(id);
        for (int b = 0; b < sn.size(); b++) {
            if (space.parameterized(b, sn.choice(b)))
                gate->registerActivation(sn.layer(b).key(), sn.id());
        }
        workers[0]->submit(
            ExecTask{ExecTask::Kind::Forward, std::move(run)});
    }

    /**
     * A checkpoint-restored subnet needs no executor-side state:
     * deliberately NOT registered in the commit gate, so the live
     * run's causal chains start fresh at rank 0 — which keeps the
     * CspOracle's commit-monotonicity check valid across a resume
     * and across in-place recovery (which recreates the gate; a live
     * oracle resets its cursors via RuntimeConfig::recoveryObserver).
     * The restored store already holds its weight updates, and the
     * drained barrier guarantees it held no pipeline token.
     */
    void
    restoreCompleted(SubnetId id) override
    {
        (void)id;
    }

    bool setup();
    void startWorkers();
    void quiesce();
    void checkFaults();
    bool recover();
    double joinedBusySum() const;
    RunResult collect();
};

bool
ParallelRuntime::Impl::setup()
{
    // Phase-scoped teardown first (recovery re-enters here): the
    // watchdog before the workers it observes, the workers before
    // the gate they reference.
    watchdog.reset();
    workers.clear();
    gate = std::make_unique<CommitGate>();

    // Same capacity discipline as the simulator: identical batch =>
    // identical LR scaling and gradient-noise scale => the numeric
    // trajectory the equivalence harness compares bitwise.
    if (!session.initRun())
        return false;

    // Pre-materialize every layer: after this, worker threads only
    // ever look up existing entries, so the store's maps need no
    // structural locking on the hot path.
    session.store()->materializeAll();

    int limit = model.effectiveInflight(numStages);
    // A subnet owns exactly one live pipeline token, so `limit`
    // bounds every inbox; the 2x slack keeps pushes non-blocking.
    auto inboxCapacity =
        static_cast<std::size_t>(std::max(2 * limit, 8));
    completions = std::make_unique<
        BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>(
        inboxCapacity);

    StageWorker::ContextConfig ctx;
    ctx.mode = model.memory;
    ctx.predictor = model.predictor;
    ctx.prefetchDepth = model.prefetchDepth;
    // The §4.2 memory-limit check, same cap as the simulator: the
    // planned footprint covers the ~3 moving contexts of §3.3;
    // contexts awaiting their backward pass also linger, so the
    // enforced budget is 3x the plan.
    ctx.budgetBytes =
        model.memory == MemoryMode::AllResident
            ? 0
            : 3 * session.plan().residentParamBytesPerGpu;

    for (int k = 0; k < numStages; k++) {
        workers.push_back(std::make_unique<StageWorker>(
            k, numStages, space, *gate,
            config.numeric ? &session.exec() : nullptr,
            UpdateSemantics::Immediate, inboxCapacity, ctx));
    }
    for (int k = 0; k < numStages; k++) {
        workers[static_cast<std::size_t>(k)]->connect(
            k + 1 < numStages
                ? workers[static_cast<std::size_t>(k) + 1].get()
                : nullptr,
            k > 0 ? workers[static_cast<std::size_t>(k) - 1].get()
                  : nullptr,
            k == 0
                ? [this](std::shared_ptr<const SubnetRun> run) {
                      completions->push(std::move(run));
                  }
                : std::function<
                      void(std::shared_ptr<const SubnetRun>)>());
    }
    gate->onCommit([this] {
        for (auto &worker : workers)
            worker->notify();
    });
    if (config.commitObserver)
        gate->onCommitEvent(config.commitObserver);
    return true;
}

void
ParallelRuntime::Impl::startWorkers()
{
    epoch = obs::now();
    for (auto &worker : workers)
        worker->start(epoch, config.traceEnabled);

    // Supervision: the watchdog polls the heartbeats and reports the
    // first incident by pushing the nullptr sentinel into the
    // completion queue — the coordinator is the single recovery
    // authority and learns about failures exactly where it already
    // blocks. Crash detection is state-based (deterministic); the
    // wall hang deadline is opt-in via RuntimeConfig::wallWatchdog.
    fault::Watchdog::Config wc;
    wc.wallDeadline = config.wallWatchdog;
    wc.deadlineSeconds = config.watchdogDeadlineSeconds;
    wc.pollMs = config.watchdogPollMs;
    std::vector<const fault::WorkerHeartbeat *> hearts;
    hearts.reserve(workers.size());
    for (const auto &worker : workers)
        hearts.push_back(&worker->heartbeat());
    watchdog = std::make_unique<fault::Watchdog>(
        wc, std::move(hearts),
        [this](int worker, const std::string &reason) {
            {
                std::lock_guard<RankedMutex> lock(execIncidentMu);
                incidentStage = worker;
                incidentReason = reason;
            }
            completions->push(nullptr);
        });
}

void
ParallelRuntime::Impl::quiesce()
{
    // Teardown order matters: the watchdog first (it reads the
    // heartbeats and could re-fire on a dying worker), then abort
    // every worker — requestAbort closes each inbox, so a surviving
    // worker blocked pushing to the dead stage is released — then
    // join.
    watchdog.reset();
    for (auto &worker : workers)
        worker->requestAbort();
    for (auto &worker : workers)
        worker->join();
}

double
ParallelRuntime::Impl::joinedBusySum() const
{
    double total = 0.0;
    for (const auto &worker : workers)
        total += worker->stats().busySec;
    return total;
}

/**
 * The fault plan's logical clock is the completion count, same as
 * the simulator: called after every recordCompletion. Fail-stop
 * faults latch a crash into the victim worker and freeze the
 * coordinator (failStopPending) until the watchdog's sentinel
 * arrives; transient faults only perturb timing.
 */
void
ParallelRuntime::Impl::checkFaults()
{
    for (const FaultSpec &f : injector.due(session.finished())) {
        int stage = std::clamp(f.stage, 0, numStages - 1);
        session.trace()->add(TraceRecord{
            ticksFromSec(elapsed()), ticksFromSec(elapsed()), stage,
            TraceKind::Fault, -1, f.describe()});
        inform("fault injected: ", f.describe());
        switch (f.kind) {
          case FaultKind::GpuCrash:
            workers[static_cast<std::size_t>(stage)]->injectCrash();
            failStopPending = true;
            break;
          case FaultKind::LinkDrop: {
            if (numStages < 2)
                break;  // a one-stage pipeline has no links
            // The downstream end of the dropped link loses its
            // traffic — fail-stop for the stage behind it.
            int b = std::min(stage, numStages - 2);
            workers[static_cast<std::size_t>(b) + 1]->injectCrash();
            failStopPending = true;
            break;
          }
          case FaultKind::StageStall: {
            int ticks = std::max(1, static_cast<int>(f.durationMs));
            workers[static_cast<std::size_t>(stage)]->injectStall(
                ticks);
            break;
          }
          case FaultKind::LinkDegrade: {
            if (numStages < 2)
                break;
            int b = std::min(stage, numStages - 2);
            int tasks = std::max(1, static_cast<int>(f.durationMs));
            workers[static_cast<std::size_t>(b)]->injectDegrade(
                tasks);
            break;
          }
        }
    }
}

/**
 * In-place recovery after quiesce(): charge the attempt to the
 * policy, roll the session back to the last drained checkpoint,
 * rebuild the phase (gate, workers, watchdog) and respawn. The
 * replayed subnets re-execute in CSP order, so the run lands on the
 * same bits as a fault-free run — the simulator's beginRecovery,
 * re-expressed for threads.
 */
bool
ParallelRuntime::Impl::recover()
{
    double wallAtCrash = session.secOffset() + elapsed();
    double busyAtCrash = session.busyOffset() + joinedBusySum();

    RunCheckpoint ckpt;
    bool haveCkpt = false;
    if (!session.lastCheckpoint().empty()) {
        std::istringstream in(session.lastCheckpoint());
        bool ok = ckpt.load(in);
        NASPIPE_ASSERT(ok, "in-memory checkpoint unreadable");
        haveCkpt = true;
    }
    recoveries++;
    subnetsReplayed +=
        session.finished() - static_cast<int>(ckpt.completed);
    lostComputeSeconds +=
        std::max(0.0, busyAtCrash - ckpt.busySeconds);
    // Modeled, not slept: detection + restart plus the policy's
    // exponential backoff are charged into the run's time offsets.
    double backoff = policy.nextBackoffSeconds();
    recoverySecondsTotal += config.recoverySeconds + backoff;
    {
        std::lock_guard<RankedMutex> lock(execIncidentMu);
        inform("recovering stage ", incidentStage, " (",
               incidentReason, "): rollback from ",
               session.finished(), " to ", ckpt.completed,
               " completed subnets (",
               session.finished() - static_cast<int>(ckpt.completed),
               " to replay, attempt ", policy.consecutiveFailures(),
               ")");
    }

    if (!setup())
        return false;  // cannot happen: the same plan fit before
    session.setTimeOffsets(
        wallAtCrash + config.recoverySeconds + backoff,
        ckpt.busySeconds);
    if (haveCkpt && !session.restore(ckpt))
        return false;
    // restore() drops version-map entries of layers restored at
    // version 0; re-materialize so the hot path stays structurally
    // read-only for the respawned workers.
    session.store()->materializeAll();
    // initRun() reset the trace (the simulator loses its pre-crash
    // trace the same way) — the recovery span opens the new phase.
    session.trace()->add(TraceRecord{
        0, 0, std::max(incidentStage, 0), TraceKind::Recovery, -1,
        "rollback to " + std::to_string(ckpt.completed) +
            ", attempt " +
            std::to_string(policy.consecutiveFailures())});
    // The gate was recreated, so every causal chain restarts at rank
    // 0 — a live CspOracle resets its cursors through this hook.
    if (config.recoveryObserver)
        config.recoveryObserver(recoveries);
    failStopPending = false;
    startWorkers();
    return true;
}

RunResult
ParallelRuntime::Impl::collect()
{
    double wall = elapsed();
    double busySum = 0.0;
    for (const auto &worker : workers)
        busySum += worker->stats().busySec;

    RunResult out = session.collect(session.secOffset() + wall,
                                    session.busyOffset() + busySum);
    RunMetrics &m = out.metrics;
    // wallSeconds is this process's real run time; simSeconds (set by
    // the session) additionally carries the producing run's seconds
    // across a resume, so throughput consumers work unchanged.
    m.wallSeconds = wall;
    m.execWorkers = numStages;

    double bubbleTotal = 0.0;
    for (const auto &worker : workers) {
        const StageWorker::Stats &s = worker->stats();
        m.perStageBusySec.push_back(s.busySec);
        m.perStageGateWaitSec.push_back(s.gateWaitSec);
        m.perStageIdleSec.push_back(s.idleSec);
        m.perStageForwards.push_back(s.forwards);
        m.perStageBackwards.push_back(s.backwards);
        m.perStageDeferrals.push_back(s.deferrals);
        // The sim's stall taxonomy, threaded counterpart: a deferral
        // is Algorithm 2 blocking every queued forward, an idle
        // wakeup is a sleep with nothing queued at all.
        m.stallDependency += s.deferrals;
        m.stallEmptyQueues += s.idleWakeups;
        m.gateWaitSeconds += s.gateWaitSec;
        if (wall > 0.0) {
            bubbleTotal +=
                std::clamp(1.0 - s.busySec / wall, 0.0, 1.0);
        }
        // Stage-ascending merge: deterministic observation order.
        out.observations.stages.push_back(worker->observation());
    }
    m.bubbleRatio =
        numStages > 0 ? bubbleTotal / numStages : 0.0;
    m.gateCommits = gate->commits();

    m.faultsInjected = injector.firedCount();
    m.recoveries = recoveries;
    m.subnetsReplayed = subnetsReplayed;
    m.recoverySeconds = recoverySecondsTotal;
    m.lostComputeSeconds = lostComputeSeconds;
    m.retriesExhausted = retriesExhausted ? 1 : 0;

    // Real per-worker context-cache accounting (the port of the
    // simulator's ContextManager); AllResident systems have no cache
    // and report N/A.
    if (model.memory != MemoryMode::AllResident) {
        std::uint64_t hits = 0, misses = 0;
        for (const auto &worker : workers) {
            const ExecContextCache &cache = worker->cache();
            hits += cache.memory().hitStats().hits();
            misses += cache.memory().hitStats().misses();
            m.prefetchedBytes += cache.stats().prefetchedBytes;
            m.syncFetchedBytes += cache.stats().syncFetchedBytes;
            m.cachePeakBytes = std::max(m.cachePeakBytes,
                                        cache.memory().peakBytes());
            m.cacheBudgetBytes = cache.budgetBytes();
        }
        m.cacheHitRate =
            (hits + misses)
                ? static_cast<double>(hits) / (hits + misses)
                : 0.0;
    }

    if (config.traceEnabled) {
        std::vector<TraceRecord> merged;
        for (const auto &worker : workers) {
            merged.insert(merged.end(),
                          worker->traceRecords().begin(),
                          worker->traceRecords().end());
        }
        std::sort(merged.begin(), merged.end(),
                  [](const TraceRecord &a, const TraceRecord &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.stage < b.stage;
                  });
        for (const TraceRecord &rec : merged)
            out.trace->add(rec);
    }
    return out;
}

ParallelRuntime::ParallelRuntime(const SearchSpace &space,
                                 const RuntimeConfig &config)
    : _impl(std::make_unique<Impl>(space, config))
{
}

ParallelRuntime::~ParallelRuntime() = default;

double
ParallelRuntime::scoreScale() const
{
    return _impl->session.scoreScale();
}

RunResult
ParallelRuntime::run()
{
    Impl &im = *_impl;
    TrainingSession &session = im.session;
    std::string why;
    if (!supported(im.config, &why)) {
        RunResult out;
        out.failed = true;
        out.error = why;
        return out;
    }
    if (!im.setup()) {
        RunResult out;
        out.oom = true;
        out.plan = session.plan();
        return out;
    }

    if (!im.config.resumePath.empty()) {
        RunCheckpoint ckpt;
        if (!ckpt.loadFile(im.config.resumePath) ||
            !session.restore(ckpt)) {
            RunResult out;
            out.failed = true;
            out.error = "cannot resume from checkpoint '" +
                        im.config.resumePath + "'";
            out.plan = session.plan();
            return out;
        }
        session.setTimeOffsets(ckpt.simSeconds, ckpt.busySeconds);
        session.setCheckpointsWritten(
            static_cast<int>(ckpt.checkpointsWritten));
        // ParameterStore::load drops the version-map entries of
        // layers restored at version 0; re-materialize so the hot
        // path stays structurally read-only for the workers.
        session.store()->materializeAll();
    }

    im.startWorkers();

    session.pump();
    while (session.finished() < session.totalSubnets() ||
           im.failStopPending) {
        std::shared_ptr<const SubnetRun> run =
            im.completions->pop();

        if (!run) {
            // Watchdog sentinel: a stage crashed (or, under the
            // opt-in wall deadline, hung). Quiesce the surviving
            // workers, then either give up (bounded retries) or
            // roll back and respawn in place.
            im.quiesce();
            if (!im.policy.allowRetry()) {
                im.retriesExhausted = true;
                RunResult out;
                out.failed = true;
                out.retriesExhausted = true;
                {
                    std::lock_guard<RankedMutex> lock(im.execIncidentMu);
                    out.error =
                        "recovery retries exhausted after " +
                        std::to_string(
                            im.policy.consecutiveFailures() + 1) +
                        " consecutive failures (stage " +
                        std::to_string(im.incidentStage) + ": " +
                        im.incidentReason + ")";
                }
                out.plan = session.plan();
                return out;
            }
            if (!im.recover()) {
                RunResult out;
                out.failed = true;
                out.error =
                    "recovery from the last checkpoint failed";
                out.plan = session.plan();
                return out;
            }
            session.pump();
            continue;
        }

        if (im.failStopPending) {
            // The world is frozen after a fail-stop fault, exactly
            // like the simulator's sim.stop(): stragglers that drain
            // before the watchdog's sentinel are *dropped*, not
            // recorded — the rollback replays them, and the logical
            // clock (hence subnetsReplayed and the fault plan's
            // remaining triggers) stays deterministic.
            continue;
        }
        float loss = 0.0f;
        if (im.config.numeric)
            loss = session.exec().finishSubnet(run->subnet);
        bool atBarrier = session.recordCompletion(
            run->subnet.id(), loss,
            session.secOffset() + im.elapsed());
        im.checkFaults();
        if (im.failStopPending)
            continue;  // no checkpoint at a crash-coincident barrier
        im.policy.noteProgress();
        if (atBarrier) {
            // The barrier is drained by construction: injection
            // paused at nextCkptAt, so no subnet is in flight, and
            // every worker write for a completed subnet is visible
            // here (gate-commit release edges plus the completion
            // queue's mutex hand-off). Threaded checkpoints carry
            // wall-clock seconds and no live busy accounting.
            RunCheckpoint ckpt = session.buildCheckpoint(
                session.secOffset() + im.elapsed(),
                session.busyOffset());
            session.commitCheckpoint(ckpt);
        }
        session.pump();
    }

    // The watchdog goes first — a clean drain flips every heartbeat
    // to Exited, which must not read as an incident.
    im.watchdog.reset();
    for (auto &worker : im.workers)
        worker->requestStop();
    for (auto &worker : im.workers)
        worker->join();

    NASPIPE_ASSERT(session.finished() == session.totalSubnets(),
                   "run ended with ", session.finished(), " of ",
                   session.totalSubnets(), " subnets finished");
    return im.collect();
}

RunResult
runTrainingThreaded(const SearchSpace &space,
                    const RuntimeConfig &config)
{
    ParallelRuntime runtime(space, config);
    return runtime.run();
}

} // namespace naspipe
