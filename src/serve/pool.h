/**
 * @file
 * SharedStagePool — one StageWorker pipeline serving every job.
 *
 * The pool is the multiplexed half of the serve architecture: D
 * worker threads (one per pipeline stage), one completion queue, one
 * watchdog — shared by all tenants. Tasks carry their job's binding,
 * so a worker resolves the right commit gate / numeric executor per
 * task; the workers themselves hold no job state, which is what
 * makes a tenant's crash recovery a pure coordinator-side operation
 * (no thread is ever torn down on a job fault).
 *
 * Worker context management runs AllResident with the predictor off:
 * every job's store pre-materializes at admission, and the context
 * cache is pure bookkeeping (never numerics), so sharing it across
 * tenants would only entangle their metric accounting — while the
 * per-job weights stay bitwise-identical either way.
 *
 * The pool watchdog supervises the *service*, not the jobs: job
 * faults never latch a worker crash (they are job-logical events),
 * so an incident here means a real defect or a hang — the service
 * maps it to a service-level failure, distinct from any per-job
 * failure.
 */

#ifndef NASPIPE_SERVE_POOL_H
#define NASPIPE_SERVE_POOL_H

#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "exec/stage_worker.h"
#include "exec/task_queue.h"
#include "fault/watchdog.h"

namespace naspipe {
namespace serve {

class SharedStagePool
{
  public:
    struct Config {
        int numStages = 4;  ///< pipeline depth shared by every job
        /** Stage-inbox and completion-queue capacity; size to at
         *  least the admitted jobs' summed in-flight windows. */
        std::size_t inboxCapacity = 16;
        /** Watchdog heartbeat scan cadence (--watchdog-interval-ms). */
        int watchdogPollMs = 2;
        /** Opt-in wall-clock hang deadline (timing-dependent). */
        bool wallDeadline = false;
        double deadlineSeconds = 30.0;
        bool recordTrace = false;
    };

    /**
     * @param defaultSpace single-tenant fallback the worker
     *        constructor requires; every serve task carries a job
     *        binding, so it is never consulted (it must merely
     *        outlive the pool)
     */
    SharedStagePool(const SearchSpace &defaultSpace, Config config);

    ~SharedStagePool();

    SharedStagePool(const SharedStagePool &) = delete;
    SharedStagePool &operator=(const SharedStagePool &) = delete;

    /** Build and start the workers and the watchdog. */
    void start();

    /** Submit a forward into stage 0 (coordinator thread). */
    void dispatch(std::shared_ptr<const SubnetRun> run);

    /** Wake every worker (job-gate commit hook). */
    void notifyAll();

    /** Fully-retired subnets (stage 0 backward done) plus the
     *  watchdog's nullptr incident sentinel. */
    BoundedTaskQueue<std::shared_ptr<const SubnetRun>> &
    completions()
    {
        return *_completions;
    }

    /** Clean shutdown: drain-stop the workers and join. */
    void shutdown();

    /** Emergency teardown: abandon queued work and join. */
    void abort();

    /** Last watchdog incident (valid after the nullptr sentinel). */
    std::string incidentDescription() const;

    int numStages() const { return _config.numStages; }
    bool started() const { return _started; }

    /** Post-shutdown per-stage accounting. */
    const StageWorker &worker(int stage) const
    {
        return *_workers[static_cast<std::size_t>(stage)];
    }

  private:
    const SearchSpace &_defaultSpace;
    const Config _config;

    /** Single-tenant fallback gate the worker constructor requires;
     *  never used by bound tasks. */
    CommitGate _defaultGate;

    std::vector<std::unique_ptr<StageWorker>> _workers;
    std::unique_ptr<
        BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>
        _completions;

    // Declared after the queue: the watchdog's incident callback
    // pushes the sentinel into it, so it must be destroyed first.
    std::unique_ptr<fault::Watchdog> _watchdog;
    mutable RankedMutex _poolIncidentMu{LockRank::ServePoolIncident};
    int _incidentStage = -1;
    std::string _incidentReason;

    bool _started = false;
    bool _joined = false;
};

} // namespace serve
} // namespace naspipe

#endif // NASPIPE_SERVE_POOL_H
