#include "serve/job.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "schedule/scheduler.h"
#include "supernet/search_space.h"
#include "train/run_checkpoint.h"

namespace naspipe {
namespace serve {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Admitted:
        return "admitted";
    case JobState::Running:
        return "running";
    case JobState::Recovering:
        return "recovering";
    case JobState::Draining:
        return "draining";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    }
    return "?";
}

bool
jobTransitionAllowed(JobState from, JobState to)
{
    switch (from) {
    case JobState::Queued:
        return to == JobState::Admitted || to == JobState::Failed;
    case JobState::Admitted:
        return to == JobState::Running || to == JobState::Failed;
    case JobState::Running:
        return to == JobState::Draining ||
               to == JobState::Recovering || to == JobState::Done ||
               to == JobState::Failed;
    case JobState::Draining:
        return to == JobState::Recovering ||
               to == JobState::Done || to == JobState::Failed;
    case JobState::Recovering:
        return to == JobState::Running || to == JobState::Failed;
    case JobState::Done:
    case JobState::Failed:
        return false;  // terminal
    }
    return false;
}

bool
validateJobSpec(const JobSpec &spec, std::string *why)
{
    auto reject = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    std::vector<std::string> names = defaultSpaceNames();
    if (std::find(names.begin(), names.end(), spec.space) ==
        names.end())
        return reject("unknown search space '" + spec.space + "'");
    if (spec.steps < 1)
        return reject("steps must be >= 1");
    if (spec.priority < 1)
        return reject("priority must be >= 1");
    if (spec.ckptInterval < 0)
        return reject("ckpt interval must be >= 0");
    if (spec.recoveryRetries < 0)
        return reject("retries must be >= 0");
    if (spec.maxInflight < 0)
        return reject("window must be >= 0");
    for (const FaultSpec &f : spec.faults) {
        if (!faultIsFailStop(f.kind)) {
            return reject(
                "transient fault '" + f.describe() +
                "' is not job-scoped: on a shared pool a "
                "stall/degrade would perturb every tenant");
        }
        if (f.atStep < 1)
            return reject("fault step must be >= 1");
    }
    return true;
}

bool
parseJobSpec(const std::string &text, JobSpec &out,
             std::string *why)
{
    auto reject = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    JobSpec spec;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ',')) {
        if (token.empty())
            continue;
        std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            return reject("job spec token '" + token +
                          "' is not key=value");
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (value.empty())
            return reject("job spec key '" + key +
                          "' has an empty value");
        try {
            if (key == "name") {
                spec.name = value;
            } else if (key == "space") {
                spec.space = value;
            } else if (key == "seed") {
                spec.seed = std::stoull(value);
            } else if (key == "steps") {
                spec.steps = std::stoi(value);
            } else if (key == "priority") {
                spec.priority = std::stoi(value);
            } else if (key == "ckpt") {
                spec.ckptInterval = std::stoi(value);
            } else if (key == "ckpt-path") {
                spec.ckptPath = value;
            } else if (key == "retries") {
                spec.recoveryRetries = std::stoi(value);
            } else if (key == "window") {
                spec.maxInflight = std::stoi(value);
            } else if (key == "precision") {
                if (!kernels::parsePrecisionMode(value,
                                                 spec.precision))
                    return reject("bad precision '" + value +
                                  "' (want fp32 or fp16)");
            } else if (key == "fault") {
                FaultSpec f;
                std::string err;
                if (!parseFaultSpec(value, f, &err))
                    return reject("bad fault '" + value + "': " +
                                  err);
                spec.faults.push_back(f);
            } else {
                return reject("unknown job spec key '" + key + "'");
            }
        } catch (const std::exception &) {
            return reject("job spec key '" + key +
                          "' has a non-numeric value '" + value +
                          "'");
        }
    }
    out = std::move(spec);
    return true;
}

namespace {

RuntimeConfig
buildConfig(const JobSpec &spec, int numStages)
{
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = numStages;
    config.totalSubnets = spec.steps;
    config.seed = spec.seed;
    config.numeric = true;
    config.ckptInterval = spec.ckptInterval;
    config.ckptPath = spec.ckptPath;
    config.faults = spec.faults;
    config.recoveryMaxRetries = spec.recoveryRetries;
    config.precision = spec.precision;
    return config;
}

} // namespace

ServeJob::ServeJob(int id, JobSpec spec, int numStages)
    : _id(id), _spec(std::move(spec)),
      _space(makeSpaceByName(_spec.space)),
      _config(buildConfig(_spec, numStages)),
      _session(_space, _config), _injector(_spec.faults),
      _policy(fault::RecoveryPolicy::Config{
          _spec.recoveryRetries, _config.recoveryBackoffSeconds,
          60.0})
{
    NASPIPE_ASSERT(numStages >= 1, "job needs >= 1 pool stage");
    _session.attach(this);
}

bool
ServeJob::canAdmit(SubnetId next) const
{
    (void)next;
    // The session already enforces the system in-flight window; the
    // spec's own cap narrows it per job (a small window is how a
    // low-priority tenant bounds its pool share).
    if (_spec.maxInflight > 0 &&
        _session.inflight() >= _spec.maxInflight)
        return false;
    return true;
}

void
ServeJob::admit(SubnetId id)
{
    const Subnet &sn = _session.subnetOf(id);
    auto run = std::make_shared<SubnetRun>();
    run->subnet = sn;
    run->partition = _session.partitionOf(id);
    run->job = &_binding;
    // The scheduler-assigned global ticket: pool workers order their
    // forward queues by it, so the cross-job interleaving is decided
    // here (deterministically), not by arrival timing.
    run->ticket = _nextTicket;
    // Registration precedes dispatch: the job's causal chains are
    // complete for this subnet before any worker resolves a claim.
    for (int b = 0; b < sn.size(); b++) {
        if (_space.parameterized(b, sn.choice(b)))
            _gate->registerActivation(sn.layer(b).key(), sn.id());
    }
    _hooks.dispatch(std::move(run));
}

void
ServeJob::restoreCompleted(SubnetId id)
{
    // Same contract as the solo threaded executor: restored subnets
    // are deliberately NOT registered in the gate, so the new phase's
    // chains start fresh at rank 0.
    (void)id;
}

bool
ServeJob::start(PoolHooks hooks, double nowSeconds)
{
    NASPIPE_ASSERT(_state == JobState::Queued,
                   "start() on a non-queued job (", _id, ")");
    NASPIPE_ASSERT(hooks.dispatch, "job needs a pool dispatch hook");
    _hooks = std::move(hooks);
    if (!_session.initRun()) {
        fail("capacity planner rejected the job (space " +
             _spec.space + " does not fit " +
             std::to_string(_config.numStages) + " stages)");
        return false;
    }
    // Resume-from-file: a ckpt-path that already holds a checkpoint
    // (a previous submission of this job was interrupted after a
    // drained barrier) restarts the trajectory from that barrier. A
    // missing file is a fresh start; an unreadable or mismatched one
    // fails the job rather than silently retraining from subnet 0.
    if (!_spec.ckptPath.empty() &&
        std::ifstream(_spec.ckptPath).good()) {
        RunCheckpoint ckpt;
        if (!ckpt.loadFile(_spec.ckptPath) ||
            !_session.restore(ckpt)) {
            fail("cannot resume from checkpoint '" + _spec.ckptPath +
                 "'");
            return false;
        }
        _session.setTimeOffsets(ckpt.simSeconds, ckpt.busySeconds);
        _session.setCheckpointsWritten(
            static_cast<int>(ckpt.checkpointsWritten));
        inform("job ", _id, ": resumed from '", _spec.ckptPath,
               "' at ", ckpt.completed, " completed subnets");
    }
    // Pre-materialize so the shared workers' hot path stays
    // structurally read-only on this job's private store.
    _session.store()->materializeAll();
    rebuildGate();
    _startedAt = nowSeconds;
    _phaseStart = nowSeconds;
    setState(JobState::Admitted);
    return true;
}

bool
ServeJob::pumpOne(std::uint64_t ticket)
{
    NASPIPE_ASSERT(_state == JobState::Admitted ||
                       _state == JobState::Running,
                   "pumpOne() on job ", _id, " in state ",
                   jobStateName(_state));
    _nextTicket = ticket;
    int injected = _session.pump(1);
    if (injected > 0 && _state == JobState::Admitted)
        setState(JobState::Running);
    refreshDrainState();
    return injected > 0;
}

bool
ServeJob::admissible()
{
    if (_state != JobState::Admitted && _state != JobState::Running)
        return false;
    return _session.admissible();
}

void
ServeJob::applyCompletion(
    const std::shared_ptr<const SubnetRun> &run, double nowSeconds)
{
    NASPIPE_ASSERT(_state == JobState::Running ||
                       _state == JobState::Draining,
                   "completion for job ", _id, " in state ",
                   jobStateName(_state));
    float loss = 0.0f;
    if (_config.numeric)
        loss = _session.exec().finishSubnet(run->subnet);
    double at =
        _session.secOffset() + (nowSeconds - _phaseStart);
    bool atBarrier =
        _session.recordCompletion(run->subnet.id(), loss, at);

    // The job's fault plan runs on the job's own logical clock (its
    // completion count) — neighbors never advance it.
    for (const FaultSpec &f : _injector.due(_session.finished())) {
        inform("job ", _id, ": fault injected: ", f.describe());
        if (faultIsFailStop(f.kind))
            beginFailStop("injected fault: " + f.describe());
    }
    if (_failStopPending)
        return;  // no checkpoint at a crash-coincident barrier

    _policy.noteProgress();
    if (atBarrier) {
        RunCheckpoint ckpt = _session.buildCheckpoint(
            _session.secOffset() + (nowSeconds - _phaseStart),
            _session.busyOffset());
        _session.commitCheckpoint(ckpt);
    }
    if (_session.finished() == _session.totalSubnets())
        finish(nowSeconds);
    else
        refreshDrainState();
}

bool
ServeJob::noteStragglerDropped()
{
    NASPIPE_ASSERT(_state == JobState::Recovering,
                   "straggler drop for job ", _id, " in state ",
                   jobStateName(_state));
    NASPIPE_ASSERT(_pendingDrain > 0,
                   "job ", _id, " drained more stragglers than it "
                   "had in flight");
    _pendingDrain--;
    return _pendingDrain == 0;
}

bool
ServeJob::recover(double nowSeconds)
{
    NASPIPE_ASSERT(_state == JobState::Recovering &&
                       _pendingDrain == 0,
                   "recover() before job ", _id, " drained");
    if (_cancelRequested) {
        fail("cancelled");
        return false;
    }
    if (!_policy.allowRetry()) {
        _retriesExhausted = true;
        fail("recovery retries exhausted after " +
             std::to_string(_policy.consecutiveFailures() + 1) +
             " consecutive failures (" + _failStopReason + ")");
        return false;
    }

    double wallAtCrash =
        _session.secOffset() + (nowSeconds - _phaseStart);
    RunCheckpoint ckpt;
    bool haveCkpt = false;
    if (!_session.lastCheckpoint().empty()) {
        std::istringstream in(_session.lastCheckpoint());
        bool ok = ckpt.load(in);
        NASPIPE_ASSERT(ok, "in-memory checkpoint unreadable");
        haveCkpt = true;
    }
    _recoveries++;
    _subnetsReplayed +=
        _session.finished() - static_cast<int>(ckpt.completed);
    double backoff = _policy.nextBackoffSeconds();
    _recoverySecondsTotal += _config.recoverySeconds + backoff;
    inform("job ", _id, " recovering (", _failStopReason,
           "): rollback from ", _session.finished(), " to ",
           ckpt.completed, " completed subnets (",
           _session.finished() - static_cast<int>(ckpt.completed),
           " to replay, attempt ", _policy.consecutiveFailures(),
           ")");

    if (!_session.initRun()) {
        fail("recovery re-plan failed");  // cannot happen: fit before
        return false;
    }
    _session.setTimeOffsets(
        wallAtCrash + _config.recoverySeconds + backoff,
        ckpt.busySeconds);
    if (haveCkpt && !_session.restore(ckpt)) {
        fail("recovery from the last checkpoint failed");
        return false;
    }
    _session.store()->materializeAll();
    // Fresh job gate: this job's causal chains restart at rank 0.
    // The shared workers and every other tenant's gate are untouched.
    rebuildGate();
    if (_hooks.recovered)
        _hooks.recovered(_recoveries);
    _failStopPending = false;
    _phaseStart = nowSeconds;
    setState(JobState::Running);
    return true;
}

void
ServeJob::requestCancel()
{
    switch (_state) {
    case JobState::Queued:
    case JobState::Admitted:
        fail("cancelled");
        return;
    case JobState::Running:
    case JobState::Draining:
        _cancelRequested = true;
        // Drain like a fail-stop: in-flight stragglers are dropped,
        // then recover() observes the cancel and fails the job.
        beginFailStop("cancelled");
        return;
    case JobState::Recovering:
        _cancelRequested = true;
        return;
    case JobState::Done:
    case JobState::Failed:
        return;  // already terminal
    }
}

void
ServeJob::refreshDrainState()
{
    if (_state == JobState::Running &&
        _session.injected() == _session.totalSubnets() &&
        _session.inflight() > 0)
        setState(JobState::Draining);
}

void
ServeJob::fail(const std::string &reason)
{
    _error = reason;
    _result.failed = true;
    _result.retriesExhausted = _retriesExhausted;
    _result.error = reason;
    _result.plan = _session.plan();
    setState(JobState::Failed);
}

int
ServeJob::window() const
{
    int limit =
        _config.system.effectiveInflight(_config.numStages);
    if (_spec.maxInflight > 0)
        limit = std::min(limit, _spec.maxInflight);
    return limit;
}

void
ServeJob::setState(JobState next)
{
    NASPIPE_ASSERT(jobTransitionAllowed(_state, next),
                   "illegal job state transition ",
                   jobStateName(_state), " -> ",
                   jobStateName(next), " (job ", _id, ")");
    _state = next;
}

void
ServeJob::rebuildGate()
{
    _gate = std::make_unique<CommitGate>();
    if (_hooks.wakeAll)
        _gate->onCommit(_hooks.wakeAll);
    if (_hooks.commitEvent)
        _gate->onCommitEvent(_hooks.commitEvent);
    _binding.jobId = _id;
    _binding.space = &_space;
    _binding.gate = _gate.get();
    _binding.exec = _config.numeric ? &_session.exec() : nullptr;
}

void
ServeJob::beginFailStop(const std::string &reason)
{
    _failStopPending = true;
    _failStopReason = reason;
    _pendingDrain = _session.inflight();
    setState(JobState::Recovering);
}

void
ServeJob::finish(double nowSeconds)
{
    double total =
        _session.secOffset() + (nowSeconds - _phaseStart);
    _result = _session.collect(total, _session.busyOffset());
    RunMetrics &m = _result.metrics;
    m.wallSeconds = nowSeconds - _startedAt;
    m.execWorkers = _config.numStages;
    m.gateCommits = _gate->commits();
    m.faultsInjected = _injector.firedCount();
    m.recoveries = _recoveries;
    m.subnetsReplayed = _subnetsReplayed;
    m.recoverySeconds = _recoverySecondsTotal;
    setState(JobState::Done);
}

} // namespace serve
} // namespace naspipe
