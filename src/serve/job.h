/**
 * @file
 * ServeJob — one tenant of the multi-tenant search service.
 *
 * A job wraps everything that must be *private* for per-job bitwise
 * reproducibility and fault isolation: a TrainingSession (sampler,
 * score delivery, checkpoint cadence), a CommitGate (the job's own
 * causal chains — CSP's guarantee is per supernet, so chains never
 * cross jobs), a ParameterStore/NumericExecutor pair, a seeded fault
 * plan and a bounded-retry recovery policy. What it does NOT own is
 * compute: admitted subnets are dispatched into the shared
 * StageWorker pool, tagged with this job's JobBinding so the workers
 * resolve the right gate and executor per task.
 *
 * Lifecycle (the serve state machine):
 *
 *   Queued ──▶ Admitted ──▶ Running ◀──▶ Recovering
 *                │             │  ▲          │
 *                ▼             ▼  │          ▼
 *              Failed       Draining ──▶ Done/Failed
 *
 * Queued jobs hold no pool resources (service-level admission
 * control defers them); Admitted jobs have an initialized session
 * and a reserved in-flight window; Running jobs have subnets in the
 * pipeline; Draining jobs injected everything and await completions;
 * Recovering jobs took a fail-stop fault and are discarding their
 * in-flight stragglers before rolling back to the last drained
 * checkpoint. Done/Failed are terminal. One job's crash — even its
 * retry exhaustion — only ever touches its own state: the rollback
 * restores the job's private store and rebuilds the job's private
 * gate, while the shared workers never stop serving the neighbors.
 */

#ifndef NASPIPE_SERVE_JOB_H
#define NASPIPE_SERVE_JOB_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/commit_gate.h"
#include "exec/stage_worker.h"
#include "fault/fault_plan.h"
#include "fault/recovery_policy.h"
#include "session/training_session.h"
#include "tensor/kernels/precision.h"

namespace naspipe {
namespace serve {

/** Lifecycle of one search job inside the service. */
enum class JobState {
    Queued,      ///< submitted; no pool resources held yet
    Admitted,    ///< session initialized, in-flight window reserved
    Running,     ///< subnets in the pipeline
    Recovering,  ///< fail-stop taken; draining stragglers, will
                 ///< roll back to the last drained checkpoint
    Draining,    ///< all subnets injected; completions outstanding
    Done,        ///< finished; result available
    Failed,      ///< cancelled, crashed out of retries, or rejected
};

/** Printable state name ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** Whether @p from -> @p to is a legal state-machine edge. */
bool jobTransitionAllowed(JobState from, JobState to);

/** Client-facing description of one search job. */
struct JobSpec {
    std::string name;              ///< display name (default job<id>)
    std::string space = "NLP.c1";  ///< search-space name (Table 1)
    std::uint64_t seed = 7;
    int steps = 32;        ///< subnets to train (totalSubnets)
    int priority = 1;      ///< WRR weight; higher = more slots
    int ckptInterval = 0;  ///< drained-checkpoint cadence (0: off)
    /** Persist drained checkpoints here; on start, a checkpoint
     *  already present at this path resumes the job from it (the
     *  resubmit-after-interruption path — the resumed trajectory is
     *  bitwise the uninterrupted one). */
    std::string ckptPath;
    int recoveryRetries = 3;  ///< consecutive retries before Failed
    int maxInflight = 0;      ///< per-job window cap (0: system)
    /** Numeric storage precision of the job's trajectory. */
    kernels::PrecisionMode precision = kernels::PrecisionMode::Fp32;
    /** Job-scoped fault plan; fail-stop kinds only — a crash poisons
     *  this job's pipeline state, never the shared workers. */
    std::vector<FaultSpec> faults;
};

/**
 * Validate @p spec against the service's pool shape; fills @p why
 * with the first problem. Transient fault kinds are rejected: on a
 * shared pool a stall/degrade would perturb every tenant.
 */
bool validateJobSpec(const JobSpec &spec, std::string *why);

/**
 * Parse a CLI job spec: comma-separated `key=value` pairs with keys
 * name, space, seed, steps, priority, ckpt (interval), ckpt-path,
 * retries, window, precision (fp32|fp16), and repeatable fault
 * (value `KIND@STEP`, KIND crash|drop). Example:
 *
 *   space=NLP.c1,seed=11,steps=32,priority=2,ckpt=8,fault=crash@12
 *
 * Returns false and sets @p why on malformed input.
 */
bool parseJobSpec(const std::string &text, JobSpec &out,
                  std::string *why = nullptr);

/**
 * One tenant: private session/gate/plan/policy, shared compute.
 * All methods are coordinator-thread-only.
 */
class ServeJob : public ExecutionBackend
{
  public:
    /** Pool-side hooks a job dispatches through. */
    struct PoolHooks {
        /** Submit a run into stage 0 of the shared pool. */
        std::function<void(std::shared_ptr<const SubnetRun>)>
            dispatch;
        /** Wake every pool worker (a job-gate commit hook). */
        std::function<void()> wakeAll;
        /**
         * Observer of every commit on this job's gate, as
         * (layerKey, subnet, chain rank, stage) — the per-job
         * CspOracle's live tap. Called from worker threads; must be
         * thread-safe.
         */
        std::function<void(std::uint64_t, SubnetId, std::size_t,
                           int)>
            commitEvent;
        /**
         * Called after each successful recovery with the job's
         * 1-based recovery count. The job gate was recreated, so
         * chains restart at rank 0 — a live CspOracle resets its
         * cursors here.
         */
        std::function<void(int)> recovered;
    };

    /**
     * @param id service-assigned job ID (also the metric namespace)
     * @param spec validated job description
     * @param numStages shared pool depth (== every job's stages)
     */
    ServeJob(int id, JobSpec spec, int numStages);

    ServeJob(const ServeJob &) = delete;
    ServeJob &operator=(const ServeJob &) = delete;

    /** @name ExecutionBackend (the session calls back into the job)
     * @{ */
    bool canAdmit(SubnetId next) const override;
    void admit(SubnetId id) override;
    void restoreCompleted(SubnetId id) override;
    /** @} */

    /**
     * Queued -> Admitted: build this phase's commit gate, initialize
     * the session and pre-materialize the store. Returns false (and
     * fails the job) when the capacity planner rejects the spec.
     * @p nowSeconds is the service clock (the job's time origin).
     */
    bool start(PoolHooks hooks, double nowSeconds);

    /**
     * Assign the global dispatch ticket of the *next* admitted
     * subnet, then inject it (session.pump(1) -> admit()). The
     * service calls this once per WRR slot.
     */
    bool pumpOne(std::uint64_t ticket);

    /** Whether the session could inject a subnet right now. */
    bool admissible();

    /**
     * Apply one completed subnet: compute the loss, record it, fire
     * due faults (fail-stop flips the job to Recovering), take the
     * drained checkpoint at a barrier, and finish the job when this
     * was the last subnet. @p nowSeconds is the service wall clock.
     */
    void applyCompletion(const std::shared_ptr<const SubnetRun> &run,
                         double nowSeconds);

    /**
     * One straggler of a Recovering job drained (and was dropped).
     * Returns true when the drain is complete and recover() may run.
     */
    bool noteStragglerDropped();

    /**
     * Roll back and rejoin: charge the retry policy (exhaustion
     * fails the job — the per-job exit-5 path), rebuild the gate,
     * re-init the session, restore the last drained checkpoint and
     * replay the sampler. Neighbors are untouched by construction:
     * everything rebuilt here is job-private.
     */
    bool recover(double nowSeconds);

    /** Cancel: Queued jobs fail immediately; live jobs drain their
     *  in-flight stragglers first (dropped, like a fail-stop), then
     *  fail without recovery. */
    void requestCancel();
    bool cancelRequested() const { return _cancelRequested; }

    /** Mark Draining once everything is injected (status cosmetics;
     *  the admission gates already stop the pump). */
    void refreshDrainState();

    /** Collect the run result (valid once Done). */
    const RunResult &result() const { return _result; }

    /** Terminal-failure record. */
    void fail(const std::string &reason);

    /** @name Introspection
     * @{ */
    int id() const { return _id; }
    const JobSpec &spec() const { return _spec; }
    JobState state() const { return _state; }
    bool terminal() const
    {
        return _state == JobState::Done ||
               _state == JobState::Failed;
    }
    const std::string &error() const { return _error; }
    bool retriesExhausted() const { return _retriesExhausted; }
    const SearchSpace &space() const { return _space; }
    TrainingSession &session() { return _session; }
    const TrainingSession &session() const { return _session; }
    /** Reserved in-flight window (admission-control accounting). */
    int window() const;
    int recoveries() const { return _recoveries; }
    int subnetsReplayed() const { return _subnetsReplayed; }
    int pendingDrain() const { return _pendingDrain; }
    std::uint64_t supernetHash() const
    {
        return _result.supernetHash;
    }
    /** @} */

  private:
    void setState(JobState next);
    void rebuildGate();
    void beginFailStop(const std::string &reason);
    void finish(double nowSeconds);

    const int _id;
    const JobSpec _spec;

    // Declaration order matters: the session holds references to the
    // space and the config, so both must outlive (= precede) it.
    SearchSpace _space;
    RuntimeConfig _config;
    TrainingSession _session;

    JobState _state = JobState::Queued;
    std::string _error;
    bool _retriesExhausted = false;
    bool _cancelRequested = false;

    // Phase-scoped causal chains (rebuilt on every recovery, exactly
    // like the solo threaded executor's in-place recovery).
    std::unique_ptr<CommitGate> _gate;
    JobBinding _binding;
    PoolHooks _hooks;
    std::uint64_t _nextTicket = 0;

    FaultInjector _injector;
    fault::RecoveryPolicy _policy;
    bool _failStopPending = false;
    std::string _failStopReason;
    int _pendingDrain = 0;  ///< stragglers left to drop (Recovering)

    // Cumulative fault accounting (across recovery phases).
    int _recoveries = 0;
    int _subnetsReplayed = 0;
    double _recoverySecondsTotal = 0.0;

    double _startedAt = 0.0;   ///< service clock at start()
    double _phaseStart = 0.0;  ///< service clock at this phase's start
    RunResult _result;
};

} // namespace serve
} // namespace naspipe

#endif // NASPIPE_SERVE_JOB_H
