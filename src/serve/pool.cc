#include "serve/pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/wall_clock.h"

namespace naspipe {
namespace serve {

SharedStagePool::SharedStagePool(const SearchSpace &defaultSpace,
                                 Config config)
    : _defaultSpace(defaultSpace), _config(config)
{
    NASPIPE_ASSERT(_config.numStages >= 1,
                   "pool needs >= 1 stage, got ", _config.numStages);
    NASPIPE_ASSERT(_config.inboxCapacity >= 1,
                   "pool inbox capacity must be >= 1");
}

SharedStagePool::~SharedStagePool()
{
    if (_started && !_joined)
        abort();
}

void
SharedStagePool::start()
{
    NASPIPE_ASSERT(!_started, "pool already started");
    _completions = std::make_unique<
        BoundedTaskQueue<std::shared_ptr<const SubnetRun>>>(
        _config.inboxCapacity);

    // AllResident, predictor off: job stores pre-materialize at
    // admission and the cache/predictor layer is per-run bookkeeping
    // that a multi-tenant queue would only muddle (it never touches
    // numerics, so per-job weights are unaffected).
    StageWorker::ContextConfig ctx;
    ctx.mode = MemoryMode::AllResident;
    ctx.predictor = false;

    for (int k = 0; k < _config.numStages; k++) {
        _workers.push_back(std::make_unique<StageWorker>(
            k, _config.numStages, _defaultSpace, _defaultGate,
            nullptr, UpdateSemantics::Immediate,
            _config.inboxCapacity, ctx));
    }
    for (int k = 0; k < _config.numStages; k++) {
        _workers[static_cast<std::size_t>(k)]->connect(
            k + 1 < _config.numStages
                ? _workers[static_cast<std::size_t>(k) + 1].get()
                : nullptr,
            k > 0 ? _workers[static_cast<std::size_t>(k) - 1].get()
                  : nullptr,
            k == 0
                ? [this](std::shared_ptr<const SubnetRun> run) {
                      _completions->push(std::move(run));
                  }
                : std::function<
                      void(std::shared_ptr<const SubnetRun>)>());
    }

    obs::TimePoint epoch = obs::now();
    for (auto &worker : _workers)
        worker->start(epoch, _config.recordTrace);

    // Service-level supervision: an incident here means a worker
    // thread actually died or the whole pool hung — never a job
    // fault (those are coordinator-logical). The sentinel lands in
    // the completion queue, where the coordinator already blocks.
    fault::Watchdog::Config wc;
    wc.wallDeadline = _config.wallDeadline;
    wc.deadlineSeconds = _config.deadlineSeconds;
    wc.pollMs = _config.watchdogPollMs;
    std::vector<const fault::WorkerHeartbeat *> hearts;
    hearts.reserve(_workers.size());
    for (const auto &worker : _workers)
        hearts.push_back(&worker->heartbeat());
    _watchdog = std::make_unique<fault::Watchdog>(
        wc, std::move(hearts),
        [this](int worker, const std::string &reason) {
            {
                std::lock_guard<RankedMutex> lock(_poolIncidentMu);
                _incidentStage = worker;
                _incidentReason = reason;
            }
            _completions->push(nullptr);
        });
    _started = true;
}

void
SharedStagePool::dispatch(std::shared_ptr<const SubnetRun> run)
{
    NASPIPE_ASSERT(_started, "dispatch into a stopped pool");
    NASPIPE_ASSERT(run && run->job,
                   "serve pool tasks must carry a job binding");
    _workers[0]->submit(
        ExecTask{ExecTask::Kind::Forward, std::move(run)});
}

void
SharedStagePool::notifyAll()
{
    for (auto &worker : _workers)
        worker->notify();
}

void
SharedStagePool::shutdown()
{
    if (!_started || _joined)
        return;
    // Watchdog first: a clean drain flips every heartbeat to Exited,
    // which must not read as an incident.
    _watchdog.reset();
    for (auto &worker : _workers)
        worker->requestStop();
    for (auto &worker : _workers)
        worker->join();
    _joined = true;
}

void
SharedStagePool::abort()
{
    if (!_started || _joined)
        return;
    _watchdog.reset();
    for (auto &worker : _workers)
        worker->requestAbort();
    for (auto &worker : _workers)
        worker->join();
    _joined = true;
}

std::string
SharedStagePool::incidentDescription() const
{
    std::lock_guard<RankedMutex> lock(_poolIncidentMu);
    if (_incidentStage < 0)
        return "no incident";
    return "pool stage " + std::to_string(_incidentStage) + ": " +
           _incidentReason;
}

} // namespace serve
} // namespace naspipe
