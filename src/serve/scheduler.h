/**
 * @file
 * JobScheduler — the deterministic cross-job interleaving policy.
 *
 * The serve layer multiplexes N independent searches over one worker
 * pool, and the multiplexing itself must be reproducible: given the
 * same job specs (weights, seeds, arrival order), the sequence of
 * scheduling decisions — which job injects the next subnet, which
 * job's completion is applied next — must be a pure function of
 * those inputs, never of thread timing. Per-job *weights* are
 * already interleaving-invariant under CSP (each job has its own
 * causal chains), so determinism here is about the service-level
 * trajectory: status progressions, checkpoint barriers, fault
 * trigger points and metric exports replay bit-for-bit.
 *
 * Two decisions, two deterministic rules:
 *
 *  - **Admission** uses smooth weighted round-robin: every eligible
 *    job's credit grows by its weight, the highest credit (lowest
 *    job ID on ties) wins the slot and pays back the sum of the
 *    eligible weights. Over any window, job i receives slots in
 *    proportion weight_i / sum(weights) — priorities are bandwidth
 *    shares, not strict precedence, so no tenant starves.
 *  - **Completion draining** rotates a cursor over the jobs that
 *    have work in flight: the coordinator commits to applying the
 *    chosen job's next completion (buffering others until it
 *    arrives), so the applied-event order is schedule-chosen, not
 *    arrival-chosen.
 */

#ifndef NASPIPE_SERVE_SCHEDULER_H
#define NASPIPE_SERVE_SCHEDULER_H

#include <map>
#include <vector>

namespace naspipe {
namespace serve {

class JobScheduler
{
  public:
    /** Register a job with its WRR weight (>= 1). */
    void addJob(int jobId, int weight);

    /** Drop a finished job (its credit state is discarded). */
    void removeJob(int jobId);

    /** Whether @p jobId is currently registered. */
    bool hasJob(int jobId) const;

    /**
     * Pick the next admission slot among @p eligible (ascending job
     * IDs; must all be registered). Smooth WRR: deterministic, and
     * on ties the lowest job ID wins. Returns -1 when @p eligible is
     * empty.
     */
    int pickAdmit(const std::vector<int> &eligible);

    /**
     * Pick which job's completion to apply next among @p eligible
     * (ascending job IDs). Plain rotation — completions are paced by
     * the pipeline itself, so fairness weighting belongs to
     * admission only. Returns -1 when @p eligible is empty.
     */
    int pickDrain(const std::vector<int> &eligible);

  private:
    struct Entry {
        int weight = 1;
        long long credit = 0;
    };
    std::map<int, Entry> _jobs;
    int _drainCursor = -1;  ///< last drain pick (rotation point)
};

} // namespace serve
} // namespace naspipe

#endif // NASPIPE_SERVE_SCHEDULER_H
