/**
 * @file
 * SearchService — a long-running multi-tenant search front end.
 *
 * The service owns one SharedStagePool and multiplexes N independent
 * supernet searches over it. Clients submit JobSpecs (singly or as a
 * batch), may cancel jobs, and observe per-job status; run() drives
 * every submitted job to a terminal state on the caller's thread
 * (the coordinator).
 *
 * The coordinator loop is the determinism boundary. All
 * order-sensitive decisions go through the JobScheduler:
 *
 *   1. service admission control — Queued jobs become Admitted in
 *      job-ID order whenever the in-flight budget has room for
 *      their window (so the pool's queues can never be oversubscribed
 *      into a deadlock);
 *   2. subnet admission — one subnet per smooth-WRR slot
 *      (ServeJob::pumpOne), repeated until no job is admissible;
 *   3. completion draining — the scheduler commits to a drain
 *      target; completions of other jobs are buffered per job until
 *      their turn, so the *applied* event sequence is a pure
 *      function of (job specs, seeds, schedule) even though arrival
 *      order is thread-raced.
 *
 * Fault isolation: a job's fail-stop fault freezes only that job —
 * the coordinator drops its in-flight stragglers (the rollback
 * replays them), rolls the job back to its last drained checkpoint
 * and rebuilds its private gate, while every other tenant keeps
 * training on the untouched shared workers. While a crashed job
 * drains, admissions pause globally (a deterministic freeze window)
 * so the cross-job schedule replays bit-for-bit. Retry exhaustion
 * fails the one job (the per-job exit-5 path); a pool watchdog
 * incident is a *service* failure and fails every live job.
 */

#ifndef NASPIPE_SERVE_SERVICE_H
#define NASPIPE_SERVE_SERVICE_H

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "obs/metrics_registry.h"
#include "serve/job.h"
#include "serve/pool.h"
#include "serve/scheduler.h"

namespace naspipe {
namespace serve {

struct ServiceConfig {
    int numStages = 4;  ///< shared pool depth (every job runs on it)
    /**
     * Total in-flight budget across admitted jobs (sum of their
     * windows); Queued jobs wait until a finishing tenant frees
     * room. 0 = unbounded.
     */
    int maxTotalInflight = 0;
    int watchdogPollMs = 2;   ///< pool watchdog cadence
    bool wallDeadline = false;  ///< opt-in pool hang detector
    double deadlineSeconds = 30.0;
    /**
     * Observer of every job-gate commit, as (jobId, layerKey,
     * subnet, chain rank, stage). Called from pool worker threads;
     * must be thread-safe. The determinism-audit tests attach one
     * CspOracle per job here.
     */
    std::function<void(int, std::uint64_t, SubnetId, std::size_t,
                       int)>
        commitObserver;
    /** Called after a job's successful recovery with (jobId,
     *  1-based recovery count); a live CspOracle resets its chain
     *  cursors here (the job gate was recreated). */
    std::function<void(int, int)> recoveryObserver;
};

/** Point-in-time public view of one job. */
struct JobStatus {
    int id = 0;
    std::string name;
    JobState state = JobState::Queued;
    int priority = 1;
    int injected = 0;
    int finished = 0;
    int total = 0;
    int recoveries = 0;
    std::uint64_t supernetHash = 0;  ///< valid once Done
    std::string error;               ///< non-empty once Failed
};

class SearchService
{
  public:
    /** run() outcomes, ordered by severity (max wins). */
    enum Outcome {
        AllDone = 0,          ///< every job Done
        JobFailed = 3,        ///< >= 1 job Failed (not retries)
        RetriesExhausted = 5, ///< >= 1 job out of recovery retries
        ServiceFailed = 6,    ///< pool incident; every live job lost
    };

    explicit SearchService(ServiceConfig config);

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /** @name Client API (thread-safe; usable while run() is live)
     * @{ */
    /**
     * Validate and enqueue one job. Returns the job ID, or -1 with
     * @p why set on a rejected spec / a draining service.
     */
    int submit(const JobSpec &spec, std::string *why = nullptr);

    /**
     * Batched submission: all specs validate or none enqueue, and
     * the batch receives consecutive job IDs in argument order.
     * Returns the IDs, or empty with @p why set.
     */
    std::vector<int> submitBatch(const std::vector<JobSpec> &specs,
                                 std::string *why = nullptr);

    /** Request cancellation; false for an unknown job ID. */
    bool cancel(int jobId);

    /** Stop accepting submissions (run() then ends when the last
     *  accepted job terminates). */
    void drain();

    /** Snapshot of every job's status, ascending job ID. */
    std::vector<JobStatus> status() const;
    /** @} */

    /**
     * Drive every job to a terminal state on this thread. Returns
     * the worst Outcome across jobs (ServiceFailed on a pool
     * incident).
     */
    int run();

    /** Post-run introspection (coordinator thread only). */
    const ServeJob *job(int jobId) const;
    const std::string &serviceError() const { return _serviceError; }

    /**
     * Deterministic per-job metrics export: every job's Stable
     * results under "job/<id>/...", plus service aggregates. With
     * @p stableOnly the document is byte-identical across reruns of
     * the same specs (the CI rerun gate).
     */
    std::string exportMetricsJson(bool stableOnly) const;

  private:
    double elapsed() const;
    void applyControl();
    void admitQueued();
    void progressRecovering();
    bool anyRecovering() const;
    bool allTerminal() const;
    /** Blocking pop + route one pool event; false on the watchdog
     *  sentinel (service failure). */
    bool popAndRoute();
    void finalizeJob(ServeJob &job);
    void failService(const std::string &reason);
    void updateStatus();
    ServeJob::PoolHooks hooks(int jobId);

    const ServiceConfig _config;

    // Coordinator-owned state.
    std::map<int, std::unique_ptr<ServeJob>> _jobs;
    std::map<int, std::deque<std::shared_ptr<const SubnetRun>>>
        _inbound;  ///< buffered completions awaiting their turn
    std::set<int> _reserved;  ///< jobs holding an admission window
    JobScheduler _sched;
    std::unique_ptr<SharedStagePool> _pool;
    std::uint64_t _nextTicket = 0;
    long long _admittedWindows = 0;
    bool _serviceFailed = false;
    std::string _serviceError;
    obs::TimePoint _epoch;
    double _wallSeconds = 0.0;  ///< total at run() exit

    // Client-facing state (any thread).
    mutable RankedMutex _clientMu{LockRank::ServeClient};
    int _nextJobId = 1;
    bool _draining = false;
    std::vector<std::pair<int, JobSpec>> _pendingSpecs;
    std::vector<int> _pendingCancels;
    std::vector<JobStatus> _statusSnap;
};

} // namespace serve
} // namespace naspipe

#endif // NASPIPE_SERVE_SERVICE_H
