#include "serve/service.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "obs/wall_clock.h"

namespace naspipe {
namespace serve {

SearchService::SearchService(ServiceConfig config) : _config(config)
{
    NASPIPE_ASSERT(_config.numStages >= 1,
                   "service needs >= 1 pool stage");
    NASPIPE_ASSERT(_config.maxTotalInflight >= 0,
                   "in-flight budget must be >= 0");
}

int
SearchService::submit(const JobSpec &spec, std::string *why)
{
    if (!validateJobSpec(spec, why))
        return -1;
    std::lock_guard<RankedMutex> lock(_clientMu);
    if (_draining) {
        if (why)
            *why = "service is draining; submissions closed";
        return -1;
    }
    int id = _nextJobId++;
    JobSpec named = spec;
    if (named.name.empty())
        named.name = "job" + std::to_string(id);
    _pendingSpecs.emplace_back(id, std::move(named));
    return id;
}

std::vector<int>
SearchService::submitBatch(const std::vector<JobSpec> &specs,
                           std::string *why)
{
    // All-or-nothing: validate the whole batch before the first
    // enqueue, so a typo in spec 7 does not strand specs 1-6.
    for (std::size_t i = 0; i < specs.size(); i++) {
        std::string reason;
        if (!validateJobSpec(specs[i], &reason)) {
            if (why)
                *why = "job " + std::to_string(i + 1) + ": " +
                       reason;
            return {};
        }
    }
    std::vector<int> ids;
    std::lock_guard<RankedMutex> lock(_clientMu);
    if (_draining) {
        if (why)
            *why = "service is draining; submissions closed";
        return {};
    }
    ids.reserve(specs.size());
    for (const JobSpec &spec : specs) {
        int id = _nextJobId++;
        JobSpec named = spec;
        if (named.name.empty())
            named.name = "job" + std::to_string(id);
        _pendingSpecs.emplace_back(id, std::move(named));
        ids.push_back(id);
    }
    return ids;
}

bool
SearchService::cancel(int jobId)
{
    std::lock_guard<RankedMutex> lock(_clientMu);
    if (jobId < 1 || jobId >= _nextJobId)
        return false;
    _pendingCancels.push_back(jobId);
    return true;
}

void
SearchService::drain()
{
    std::lock_guard<RankedMutex> lock(_clientMu);
    _draining = true;
}

std::vector<JobStatus>
SearchService::status() const
{
    std::lock_guard<RankedMutex> lock(_clientMu);
    return _statusSnap;
}

const ServeJob *
SearchService::job(int jobId) const
{
    auto it = _jobs.find(jobId);
    return it == _jobs.end() ? nullptr : it->second.get();
}

double
SearchService::elapsed() const
{
    return obs::secondsSince(_epoch);
}

ServeJob::PoolHooks
SearchService::hooks(int jobId)
{
    ServeJob::PoolHooks h;
    h.dispatch = [this](std::shared_ptr<const SubnetRun> run) {
        _pool->dispatch(std::move(run));
    };
    h.wakeAll = [this] { _pool->notifyAll(); };
    if (_config.commitObserver) {
        auto observer = _config.commitObserver;
        h.commitEvent = [observer, jobId](std::uint64_t layerKey,
                                          SubnetId subnet,
                                          std::size_t rank,
                                          int stage) {
            observer(jobId, layerKey, subnet, rank, stage);
        };
    }
    if (_config.recoveryObserver) {
        auto observer = _config.recoveryObserver;
        h.recovered = [observer, jobId](int attempt) {
            observer(jobId, attempt);
        };
    }
    return h;
}

void
SearchService::applyControl()
{
    std::vector<std::pair<int, JobSpec>> specs;
    std::vector<int> cancels;
    {
        std::lock_guard<RankedMutex> lock(_clientMu);
        specs.swap(_pendingSpecs);
        cancels.swap(_pendingCancels);
    }
    for (auto &entry : specs) {
        auto job = std::make_unique<ServeJob>(
            entry.first, std::move(entry.second),
            _config.numStages);
        _sched.addJob(entry.first, job->spec().priority);
        _inbound[entry.first];
        _jobs.emplace(entry.first, std::move(job));
    }
    for (int id : cancels) {
        auto it = _jobs.find(id);
        if (it == _jobs.end() || it->second->terminal())
            continue;
        it->second->requestCancel();
        if (it->second->terminal())
            finalizeJob(*it->second);
    }
}

void
SearchService::admitQueued()
{
    // Service admission control, ascending job ID: a job becomes
    // Admitted only when the in-flight budget still covers its
    // window, so admitted jobs can always make independent progress
    // and the pool's bounded queues stay deadlock-free.
    long long budget =
        _config.maxTotalInflight > 0
            ? _config.maxTotalInflight
            : std::numeric_limits<long long>::max();
    for (auto &entry : _jobs) {
        ServeJob &job = *entry.second;
        if (job.state() != JobState::Queued)
            continue;
        long long window = job.window();
        if (window > budget) {
            job.fail("job window (" + std::to_string(window) +
                     ") exceeds the service in-flight budget (" +
                     std::to_string(budget) + ")");
            finalizeJob(job);
            continue;
        }
        if (_admittedWindows + window > budget)
            continue;  // wait for a tenant to finish
        if (job.start(hooks(job.id()), elapsed())) {
            _admittedWindows += window;
            _reserved.insert(job.id());
        } else {
            finalizeJob(job);  // capacity planner rejected the spec
        }
    }
}

bool
SearchService::anyRecovering() const
{
    for (const auto &entry : _jobs) {
        if (entry.second->state() == JobState::Recovering)
            return true;
    }
    return false;
}

bool
SearchService::allTerminal() const
{
    for (const auto &entry : _jobs) {
        if (!entry.second->terminal())
            return false;
    }
    return true;
}

void
SearchService::progressRecovering()
{
    for (auto &entry : _jobs) {
        ServeJob &job = *entry.second;
        if (job.state() != JobState::Recovering)
            continue;
        // Completions buffered before the fault was applied are
        // stragglers too: drop them against the drain count.
        std::deque<std::shared_ptr<const SubnetRun>> &buf =
            _inbound[job.id()];
        while (!buf.empty() && job.pendingDrain() > 0) {
            buf.pop_front();
            job.noteStragglerDropped();
        }
        if (job.pendingDrain() > 0)
            continue;  // in-flight stragglers still to arrive
        if (!job.recover(elapsed()))
            finalizeJob(job);  // cancelled or retries exhausted
    }
}

bool
SearchService::popAndRoute()
{
    std::shared_ptr<const SubnetRun> run =
        _pool->completions().pop();
    if (!run) {
        failService("pool watchdog incident (" +
                    _pool->incidentDescription() + ")");
        return false;
    }
    NASPIPE_ASSERT(run->job, "pool completion without a binding");
    auto it = _jobs.find(run->job->jobId);
    NASPIPE_ASSERT(it != _jobs.end(), "completion for unknown job ",
                   run->job->jobId);
    ServeJob &job = *it->second;
    if (job.state() == JobState::Recovering) {
        // A straggler of the crashed phase: dropped, not recorded —
        // the rollback replays it, and the job's logical clock stays
        // deterministic.
        job.noteStragglerDropped();
        return true;
    }
    NASPIPE_ASSERT(!job.terminal(), "completion for terminal job ",
                   job.id());
    _inbound[job.id()].push_back(std::move(run));
    return true;
}

void
SearchService::finalizeJob(ServeJob &job)
{
    NASPIPE_ASSERT(job.terminal(), "finalize on a live job");
    if (_sched.hasJob(job.id()))
        _sched.removeJob(job.id());
    if (_reserved.erase(job.id()))
        _admittedWindows -= job.window();
    NASPIPE_ASSERT(_inbound[job.id()].empty(),
                   "terminal job ", job.id(),
                   " left buffered completions");
    if (job.state() == JobState::Done) {
        inform("job ", job.id(), " (", job.spec().name, ") done: ",
               job.session().finished(), " subnets, hash ",
               job.supernetHash());
    } else {
        inform("job ", job.id(), " (", job.spec().name,
               ") failed: ", job.error());
    }
}

void
SearchService::failService(const std::string &reason)
{
    _serviceFailed = true;
    _serviceError = reason;
    inform("service failure: ", reason);
    // Every live tenant is lost with the pool. Per-job state is
    // still reported honestly: they fail with the service reason,
    // not a fabricated per-job cause.
    for (auto &entry : _jobs) {
        ServeJob &job = *entry.second;
        if (job.terminal())
            continue;
        _inbound[job.id()].clear();
        job.fail("service failure: " + reason);
        if (_sched.hasJob(job.id()))
            _sched.removeJob(job.id());
        if (_reserved.erase(job.id()))
            _admittedWindows -= job.window();
    }
    _pool->abort();
}

void
SearchService::updateStatus()
{
    std::vector<JobStatus> snap;
    snap.reserve(_jobs.size());
    for (const auto &entry : _jobs) {
        const ServeJob &job = *entry.second;
        JobStatus s;
        s.id = job.id();
        s.name = job.spec().name;
        s.state = job.state();
        s.priority = job.spec().priority;
        s.injected = job.session().injected();
        s.finished = job.session().finished();
        s.total = job.spec().steps;
        s.recoveries = job.recoveries();
        s.supernetHash = job.supernetHash();
        s.error = job.error();
        snap.push_back(std::move(s));
    }
    std::lock_guard<RankedMutex> lock(_clientMu);
    _statusSnap = std::move(snap);
}

int
SearchService::run()
{
    _epoch = obs::now();
    applyControl();
    if (_jobs.empty()) {
        _wallSeconds = elapsed();
        return AllDone;
    }

    // The pool needs a single-tenant fallback space reference for
    // the worker constructor; any live space works (bound tasks
    // never consult it), and jobs are never erased from _jobs.
    SharedStagePool::Config pc;
    pc.numStages = _config.numStages;
    long long windows = 0;
    for (const auto &entry : _jobs)
        windows += entry.second->window();
    if (_config.maxTotalInflight > 0)
        windows = std::min<long long>(windows,
                                      _config.maxTotalInflight);
    pc.inboxCapacity =
        static_cast<std::size_t>(std::max<long long>(2 * windows, 16));
    pc.watchdogPollMs = _config.watchdogPollMs;
    pc.wallDeadline = _config.wallDeadline;
    pc.deadlineSeconds = _config.deadlineSeconds;
    _pool = std::make_unique<SharedStagePool>(
        _jobs.begin()->second->space(), pc);
    _pool->start();

    while (!_serviceFailed) {
        applyControl();
        admitQueued();
        progressRecovering();
        updateStatus();

        if (allTerminal()) {
            std::lock_guard<RankedMutex> lock(_clientMu);
            if (_pendingSpecs.empty() && _pendingCancels.empty())
                break;
            continue;
        }

        if (anyRecovering()) {
            // Deterministic freeze: while any tenant drains its
            // crashed phase, nothing is admitted and nothing is
            // applied — arriving events are only buffered (or
            // dropped for the crashed job), so the replayed schedule
            // is timing-independent.
            popAndRoute();
            continue;
        }

        // Admission phase: one subnet per smooth-WRR slot until no
        // job can accept another. The global ticket sequence defines
        // the workers' cross-job forward priority.
        bool admitted = false;
        while (true) {
            std::vector<int> eligible;
            for (auto &entry : _jobs) {
                if (entry.second->admissible())
                    eligible.push_back(entry.first);
            }
            if (eligible.empty())
                break;
            int pick = _sched.pickAdmit(eligible);
            _jobs[pick]->pumpOne(_nextTicket++);
            admitted = true;
        }
        if (admitted)
            updateStatus();

        // Drain phase: commit to one job's next completion.
        std::vector<int> targets;
        for (auto &entry : _jobs) {
            JobState s = entry.second->state();
            if ((s == JobState::Running ||
                 s == JobState::Draining) &&
                entry.second->session().inflight() > 0)
                targets.push_back(entry.first);
        }
        if (targets.empty()) {
            // No admissions possible and nothing in flight, yet a
            // job is non-terminal: only control traffic (a submit or
            // cancel racing in) can unblock this.
            std::lock_guard<RankedMutex> lock(_clientMu);
            NASPIPE_ASSERT(!_pendingSpecs.empty() ||
                               !_pendingCancels.empty(),
                           "serve coordinator wedged: live jobs but "
                           "no admissible or in-flight work");
            continue;
        }
        int target = _sched.pickDrain(targets);
        // Commit to the target: block until *its* next completion is
        // buffered. Job states cannot change while buffering (faults
        // only latch on applied events), so the wait terminates —
        // the target has work in flight and CSP liveness guarantees
        // its lowest unfinished subnet is always runnable.
        std::deque<std::shared_ptr<const SubnetRun>> &buf =
            _inbound[target];
        while (buf.empty()) {
            if (!popAndRoute())
                break;  // service failure
        }
        if (_serviceFailed || buf.empty())
            continue;
        std::shared_ptr<const SubnetRun> done =
            std::move(buf.front());
        buf.pop_front();
        ServeJob &job = *_jobs[target];
        job.applyCompletion(done, elapsed());
        if (job.terminal())
            finalizeJob(job);
        updateStatus();
    }

    _wallSeconds = elapsed();
    if (!_serviceFailed)
        _pool->shutdown();
    updateStatus();

    if (_serviceFailed)
        return ServiceFailed;
    int outcome = AllDone;
    for (const auto &entry : _jobs) {
        const ServeJob &job = *entry.second;
        if (job.state() != JobState::Failed)
            continue;
        outcome = std::max(
            outcome, job.retriesExhausted()
                         ? static_cast<int>(RetriesExhausted)
                         : static_cast<int>(JobFailed));
    }
    return outcome;
}

std::string
SearchService::exportMetricsJson(bool stableOnly) const
{
    obs::MetricsRegistry reg;
    std::uint64_t totalFinished = 0;
    std::uint64_t combinedHash = 1469598103934665603ULL;  // FNV-1a
    int done = 0, failed = 0;
    for (const auto &entry : _jobs) {
        const ServeJob &job = *entry.second;
        std::string p = "job/" + std::to_string(job.id()) + "/";
        reg.text(p + "name", job.spec().name);
        reg.text(p + "space", job.spec().space);
        reg.text(p + "state", jobStateName(job.state()));
        reg.counter(p + "seed", job.spec().seed);
        reg.counter(p + "priority",
                    static_cast<std::uint64_t>(
                        job.spec().priority));
        reg.counter(p + "total_subnets",
                    static_cast<std::uint64_t>(job.spec().steps));
        reg.counter(p + "finished_subnets",
                    static_cast<std::uint64_t>(
                        job.session().finished()));
        reg.counter(p + "recoveries",
                    static_cast<std::uint64_t>(job.recoveries()));
        reg.counter(p + "subnets_replayed",
                    static_cast<std::uint64_t>(
                        job.subnetsReplayed()));
        totalFinished +=
            static_cast<std::uint64_t>(job.session().finished());
        if (job.state() == JobState::Done) {
            done++;
            const RunMetrics &m = job.result().metrics;
            reg.counter(p + "supernet_hash", job.supernetHash());
            reg.gauge(p + "final_loss", m.finalLoss);
            reg.gauge(p + "search_accuracy",
                      job.result().searchAccuracy);
            reg.counter(p + "gate_commits",
                        static_cast<std::uint64_t>(m.gateCommits));
            // Fold per-job hashes in ascending job-ID order: one
            // fingerprint over the whole multi-tenant outcome.
            std::uint64_t h = job.supernetHash();
            for (int b = 0; b < 8; b++) {
                combinedHash ^= (h >> (8 * b)) & 0xffULL;
                combinedHash *= 1099511628211ULL;
            }
        }
        if (job.state() == JobState::Failed) {
            failed++;
            reg.text(p + "error", job.error());
        }
    }
    reg.counter("serve/jobs",
                static_cast<std::uint64_t>(_jobs.size()));
    reg.counter("serve/jobs_done",
                static_cast<std::uint64_t>(done));
    reg.counter("serve/jobs_failed",
                static_cast<std::uint64_t>(failed));
    reg.counter("serve/pool_stages",
                static_cast<std::uint64_t>(_config.numStages));
    reg.counter("serve/tickets", _nextTicket);
    reg.counter("run/finished_subnets", totalFinished);
    reg.counter("quality/supernet_hash", combinedHash);
    reg.gauge("serve/wall_s", _wallSeconds, 6,
              obs::Stability::Timing);
    if (_wallSeconds > 0.0) {
        reg.gauge("serve/throughput_subnets_per_s",
                  static_cast<double>(totalFinished) / _wallSeconds,
                  6, obs::Stability::Timing);
    }
    std::vector<std::pair<std::string, std::string>> headers;
    headers.emplace_back("mode", "serve");
    headers.emplace_back("stages",
                         std::to_string(_config.numStages));
    return reg.exportJson(headers, stableOnly);
}

} // namespace serve
} // namespace naspipe
