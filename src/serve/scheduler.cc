#include "serve/scheduler.h"

#include "common/logging.h"

namespace naspipe {
namespace serve {

void
JobScheduler::addJob(int jobId, int weight)
{
    NASPIPE_ASSERT(weight >= 1, "WRR weight must be >= 1, got ",
                   weight);
    NASPIPE_ASSERT(!hasJob(jobId), "job ", jobId,
                   " already scheduled");
    _jobs[jobId] = Entry{weight, 0};
}

void
JobScheduler::removeJob(int jobId)
{
    _jobs.erase(jobId);
}

bool
JobScheduler::hasJob(int jobId) const
{
    return _jobs.count(jobId) != 0;
}

int
JobScheduler::pickAdmit(const std::vector<int> &eligible)
{
    if (eligible.empty())
        return -1;
    // Smooth WRR over the eligible subset: grow every candidate's
    // credit by its weight, the richest candidate wins (lowest job
    // ID on ties — std::map iteration is ascending, and only a
    // strictly greater credit displaces the incumbent), and the
    // winner pays back the round's total weight. Jobs that are
    // ineligible this round (window full, checkpoint barrier,
    // feedback lag) neither gain nor pay — their share is simply
    // redistributed for the round, which keeps the pick a pure
    // function of the eligibility sequence.
    long long total = 0;
    int pick = -1;
    long long best = 0;
    for (int id : eligible) {
        auto it = _jobs.find(id);
        NASPIPE_ASSERT(it != _jobs.end(), "job ", id,
                       " not registered with the scheduler");
        it->second.credit += it->second.weight;
        total += it->second.weight;
        if (pick < 0 || it->second.credit > best) {
            pick = id;
            best = it->second.credit;
        }
    }
    _jobs[pick].credit -= total;
    return pick;
}

int
JobScheduler::pickDrain(const std::vector<int> &eligible)
{
    if (eligible.empty())
        return -1;
    // Rotate: first eligible job strictly above the cursor, wrapping
    // to the lowest. Re-entrant under a changing eligible set — the
    // cursor only remembers the last pick.
    int pick = -1;
    for (int id : eligible) {
        if (id > _drainCursor) {
            pick = id;
            break;
        }
    }
    if (pick < 0)
        pick = eligible.front();
    _drainCursor = pick;
    return pick;
}

} // namespace serve
} // namespace naspipe
