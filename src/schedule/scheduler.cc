#include "schedule/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "schedule/csp_scheduler.h"
#include "schedule/ssp_scheduler.h"

namespace naspipe {

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Csp:
        return "csp";
      case PolicyKind::Greedy:
        return "greedy";
      case PolicyKind::Ssp:
        return "ssp";
    }
    return "?";
}

const char *
memoryModeName(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::AllResident:
        return "all-resident";
      case MemoryMode::SwapOnDemand:
        return "swap-on-demand";
      case MemoryMode::PredictivePrefetch:
        return "predictive-prefetch";
    }
    return "?";
}

Decision
GreedyPolicy::pick(const StageInfo &stage) const
{
    // Backward first, lowest sequence ID.
    const auto &bwd = stage.bwdCandidates();
    if (!bwd.empty())
        return Decision::backward(*std::min_element(bwd.begin(),
                                                    bwd.end()));
    const auto &fwd = stage.fwdCandidates();
    if (!fwd.empty())
        return Decision::forward(*std::min_element(fwd.begin(),
                                                   fwd.end()));
    return Decision::none();
}

int
SystemModel::effectiveBulk(int numStages) const
{
    NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
    return bulkSize > 0 ? bulkSize : numStages;
}

int
SystemModel::effectiveInflight(int numStages) const
{
    NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
    // PipeDream's 1F1B discipline keeps exactly D batches in flight;
    // other systems default to 2D so the scheduler has slack.
    int limit = maxInflight > 0
                    ? maxInflight
                    : (weightStash ? numStages : 2 * numStages);
    if (bulkFlush)
        limit = std::max(limit, effectiveBulk(numStages));
    return limit;
}

const char *
SystemModel::syncName() const
{
    if (policy == PolicyKind::Csp)
        return "CSP";
    if (policy == PolicyKind::Ssp)
        return "SSP";
    return bulkFlush ? "BSP" : "ASP";
}

std::unique_ptr<SchedulerPolicy>
makePolicy(const SystemModel &model)
{
    if (model.policy == PolicyKind::Csp)
        return std::make_unique<CspPolicy>();
    if (model.policy == PolicyKind::Ssp)
        return std::make_unique<SspPolicy>(model.staleness);
    return std::make_unique<GreedyPolicy>();
}

SystemModel
naspipeSystem()
{
    SystemModel m;
    m.name = "NASPipe";
    m.policy = PolicyKind::Csp;
    m.memory = MemoryMode::PredictivePrefetch;
    m.bulkFlush = false;
    m.balancedPartition = true;
    m.mirroring = true;
    m.weightStash = false;
    m.recompute = true;
    m.predictor = true;
    return m;
}

SystemModel
gpipeSystem()
{
    SystemModel m;
    m.name = "GPipe";
    m.policy = PolicyKind::Greedy;
    m.memory = MemoryMode::AllResident;
    m.bulkFlush = true;
    m.balancedPartition = false;  // static operator placement
    m.mirroring = false;
    m.weightStash = false;
    m.recompute = true;  // "most compact memory ... rematerialization"
    m.predictor = false;
    return m;
}

SystemModel
pipedreamSystem()
{
    SystemModel m;
    m.name = "PipeDream";
    m.policy = PolicyKind::Greedy;
    m.memory = MemoryMode::AllResident;
    m.bulkFlush = false;  // ASP: asynchronous parameter updates
    m.balancedPartition = false;
    m.mirroring = false;
    m.weightStash = true;  // per-batch weight versions
    m.recompute = false;   // paper: baselines except PipeDream remat
    m.predictor = false;
    return m;
}

SystemModel
vpipeSystem()
{
    SystemModel m;
    m.name = "VPipe";
    m.policy = PolicyKind::Greedy;
    m.memory = MemoryMode::SwapOnDemand;
    m.bulkFlush = true;  // "GPipe and VPipe are all configured w/ BSP"
    m.balancedPartition = false;
    m.mirroring = false;
    m.weightStash = false;
    m.recompute = true;
    m.predictor = false;
    return m;
}

SystemModel
naspipeWithoutScheduler()
{
    // "NASPipe w/o scheduler had to finish the execution of a
    // pipeline before injecting the next pipeline" (§5.3): CSP
    // dependency preservation stays, but a bulk barrier is added so
    // pipelines never overlap.
    SystemModel m = naspipeSystem();
    m.name = "NASPipe w/o scheduler";
    m.bulkFlush = true;
    return m;
}

SystemModel
naspipeWithoutPredictor()
{
    // "the whole supernet was stored inside GPU memory" (§5.3).
    SystemModel m = naspipeSystem();
    m.name = "NASPipe w/o predictor";
    m.memory = MemoryMode::AllResident;
    m.predictor = false;
    return m;
}

SystemModel
naspipeWithoutMirroring()
{
    // Context manager disabled: subnets execute under the static
    // placement, so per-subnet partitions are no longer balanced.
    SystemModel m = naspipeSystem();
    m.name = "NASPipe w/o mirroring";
    m.balancedPartition = false;
    m.mirroring = false;
    return m;
}

} // namespace naspipe
