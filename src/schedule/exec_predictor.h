/**
 * @file
 * ExecPredictor: Algorithm 3's prediction decisions for the threaded
 * executor.
 *
 * The simulator's Predictor walks the stage-local DependencyTracker
 * to name the next tasks (schedule/predictor.*). A StageWorker has a
 * simpler but equivalent view: its forward queue is kept sorted by
 * sequence ID, and under CSP the next forward this stage runs is
 * always the lowest-ID queued one. The three prediction moments map
 * onto the worker loop as:
 *
 *  - *status passed from other stages* (§3.3): a task arriving in the
 *    inbox is this stage's advance notice — its context is prefetched
 *    at drain time, before any execution;
 *  - *before a backward* (Algorithm 3 lines 4-8): the commit the
 *    backward is about to publish unblocks the lowest-ID queued
 *    forwards — prefetch their contexts (the released-backward
 *    re-fetch path when the budget evicted them);
 *  - *before a forward* (Algorithm 3 lines 16-18): the forwards
 *    queued right after the one being launched run next — prefetch
 *    up to prefetchDepth of them.
 *
 * The predictor only *names* subnets; the worker's ExecContextCache
 * performs (and accounts) the fetches. Like the cache it never gates
 * execution, so prediction quality affects the hit rate, not the
 * trained weights.
 */

#ifndef NASPIPE_SCHEDULE_EXEC_PREDICTOR_H
#define NASPIPE_SCHEDULE_EXEC_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "supernet/subnet.h"

namespace naspipe {

/**
 * Stateless pick logic plus prediction accounting for one worker.
 */
class ExecPredictor
{
  public:
    /** Prediction-call accounting of one worker. */
    struct Stats {
        std::uint64_t beforeForward = 0;
        std::uint64_t beforeBackward = 0;
        std::uint64_t predicted = 0;  ///< subnets named for prefetch
    };

    /**
     * @param enabled disabled predictors never name anything
     * @param prefetchDepth predicted tasks to prefetch per call
     */
    ExecPredictor(bool enabled, int prefetchDepth)
        : _enabled(enabled), _prefetchDepth(prefetchDepth)
    {
    }

    bool enabled() const { return _enabled; }

    /**
     * Algorithm 3 lines 16-18: forward @p current is about to run;
     * name the queued forwards that follow it. @p queuedFwd is the
     * worker's forward queue in ascending sequence-ID order.
     */
    std::vector<SubnetId>
    beforeForward(SubnetId current,
                  const std::vector<SubnetId> &queuedFwd);

    /**
     * Algorithm 3 lines 4-8: a backward is about to commit; name the
     * lowest-ID queued forwards its commit may unblock.
     */
    std::vector<SubnetId>
    beforeBackward(const std::vector<SubnetId> &queuedFwd);

    const Stats &stats() const { return _stats; }

  private:
    std::vector<SubnetId>
    lowestQueued(SubnetId exclude,
                 const std::vector<SubnetId> &queuedFwd);

    bool _enabled;
    int _prefetchDepth;
    Stats _stats;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_EXEC_PREDICTOR_H
