#include "schedule/dependency.h"

#include "common/logging.h"

namespace naspipe {

void
DependencyTracker::registerSubnet(const Subnet &subnet)
{
    NASPIPE_ASSERT(subnet.id() == _nextExpected,
                   "subnets must register in sequence order: got ",
                   subnet.id(), " expected ", _nextExpected);
    _subnets.emplace(subnet.id(), subnet);
    _nextExpected++;
}

bool
DependencyTracker::knows(SubnetId id) const
{
    return _subnets.count(id) > 0;
}

const Subnet &
DependencyTracker::subnet(SubnetId id) const
{
    auto it = _subnets.find(id);
    NASPIPE_ASSERT(it != _subnets.end(), "unknown subnet SN", id);
    return it->second;
}

void
DependencyTracker::markFinished(SubnetId id)
{
    NASPIPE_ASSERT(id >= _frontier, "subnet SN", id,
                   " already eliminated");
    NASPIPE_ASSERT(!_finished.count(id), "subnet SN", id,
                   " finished twice");
    _finished.insert(id);
    // Elimination scheme: advance the frontier over the finished
    // prefix and drop those subnets from both lists.
    while (_finished.count(_frontier)) {
        _finished.erase(_frontier);
        _subnets.erase(_frontier);
        _frontier++;
    }
}

bool
DependencyTracker::finished(SubnetId id) const
{
    return id < _frontier || _finished.count(id) > 0;
}

bool
DependencyTracker::blockedBy(const Subnet &candidate, int firstBlock,
                             int lastBlock, SubnetId earlier) const
{
    // A stage that owns no blocks of the candidate (firstBlock >
    // lastBlock under a skewed partition) touches no layers and can
    // never be blocked.
    if (firstBlock > lastBlock)
        return false;
    const Subnet &other = subnet(earlier);
    if (!_space)
        return candidate.sharesLayerInRange(other, firstBlock,
                                            lastBlock);
    // Skip-aware check: equal choices only conflict when the shared
    // candidate actually holds parameters.
    for (int b = firstBlock; b <= lastBlock; b++) {
        if (candidate.choice(b) == other.choice(b) &&
            _space->parameterized(b, candidate.choice(b))) {
            return true;
        }
    }
    return false;
}

bool
DependencyTracker::satisfied(const Subnet &candidate, int firstBlock,
                             int lastBlock) const
{
    return firstBlocker(candidate, firstBlock, lastBlock) < 0;
}

SubnetId
DependencyTracker::firstBlocker(const Subnet &candidate, int firstBlock,
                                int lastBlock) const
{
    for (SubnetId w = _frontier; w < candidate.id(); w++) {
        if (_finished.count(w))
            continue;
        NASPIPE_ASSERT(knows(w), "dependency check against unknown SN",
                       w, "; register subnets in order");
        if (blockedBy(candidate, firstBlock, lastBlock, w))
            return w;
    }
    return -1;
}

bool
DependencyTracker::satisfiedWithStaleness(const Subnet &candidate,
                                          int firstBlock,
                                          int lastBlock,
                                          SubnetId staleness) const
{
    NASPIPE_ASSERT(staleness >= 0, "staleness must be >= 0");
    for (SubnetId w = _frontier;
         w < candidate.id() - staleness; w++) {
        if (_finished.count(w))
            continue;
        NASPIPE_ASSERT(knows(w), "dependency check against unknown SN",
                       w, "; register subnets in order");
        if (blockedBy(candidate, firstBlock, lastBlock, w))
            return false;
    }
    return true;
}

bool
DependencyTracker::satisfiedAssuming(const Subnet &candidate,
                                     int firstBlock, int lastBlock,
                                     SubnetId hypothetical) const
{
    for (SubnetId w = _frontier; w < candidate.id(); w++) {
        if (w == hypothetical || _finished.count(w))
            continue;
        NASPIPE_ASSERT(knows(w), "dependency check against unknown SN",
                       w, "; register subnets in order");
        if (blockedBy(candidate, firstBlock, lastBlock, w))
            return false;
    }
    return true;
}

void
DependencyTracker::reset()
{
    _subnets.clear();
    _finished.clear();
    _frontier = 0;
    _nextExpected = 0;
}

} // namespace naspipe
