/**
 * @file
 * CSP scheduling policy (paper Algorithms 1 and 2).
 *
 * Backward tasks always run first ("backward tasks can remove the
 * precedence constraints on the following tasks, making a larger
 * scheduling search space"); among forward candidates, the policy
 * walks the queue in ascending sequence-ID order and returns the
 * first whose stage-local layers do not intersect any unfinished
 * earlier subnet — exactly Algorithm 2's SCHEDULE().
 */

#ifndef NASPIPE_SCHEDULE_CSP_SCHEDULER_H
#define NASPIPE_SCHEDULE_CSP_SCHEDULER_H

#include "schedule/scheduler.h"

namespace naspipe {

/** The dependency-preserving policy of NASPipe. */
class CspPolicy : public SchedulerPolicy
{
  public:
    Decision pick(const StageInfo &stage) const override;
    const char *name() const override { return "csp"; }

    /**
     * Algorithm 2 as a standalone call: the lowest-ID forward
     * candidate that satisfies CSP, or -1.
     *
     * @param stage the stage view
     * @param assumeFinished optional subnet to pretend finished
     *        (Algorithm 3's pre-add of a received backward), -1 for
     *        the plain check
     * @param requireWritesVisible also require the stage's mirror
     *        copies to be current (dispatch needs this; prediction
     *        deliberately looks past it, since the pending write is
     *        exactly what it anticipates)
     */
    static SubnetId schedulableForward(const StageInfo &stage,
                                       SubnetId assumeFinished = -1,
                                       bool requireWritesVisible =
                                           false);
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_CSP_SCHEDULER_H
