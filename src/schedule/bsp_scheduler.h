/**
 * @file
 * Bulk-synchronous-parallel flush control (GPipe / VPipe / Retiarii
 * style, and the "NASPipe w/o scheduler" ablation).
 *
 * BSP systems process subnets in bulks: a bulk of B subnets is
 * injected into the pipeline, and a synchronization barrier (flush)
 * after the bulk applies all parameter updates together before the
 * next bulk may start (§2.3). The flush is what breaks causal
 * dependencies *within* a bulk — reads of every member happen against
 * pre-bulk weights — and what inflates the bubble ratio, since the
 * pipeline drains at every barrier.
 */

#ifndef NASPIPE_SCHEDULE_BSP_SCHEDULER_H
#define NASPIPE_SCHEDULE_BSP_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "supernet/subnet.h"

namespace naspipe {

/**
 * Tracks bulk membership and completion for one BSP run.
 */
class FlushController
{
  public:
    /** @param bulkSize subnets per bulk (B). */
    explicit FlushController(int bulkSize);

    int bulkSize() const { return _bulkSize; }

    /** Bulk index of subnet @p id. */
    std::int64_t bulkOf(SubnetId id) const;

    /** Currently executing bulk. */
    std::int64_t currentBulk() const { return _currentBulk; }

    /** Whether @p id may be injected (its bulk is the current one). */
    bool canInject(SubnetId id) const;

    /**
     * Record that subnet @p id finished its full pipeline traversal.
     * @return true when this completion closes the current bulk (a
     *         flush happens and the next bulk is released).
     */
    bool onSubnetComplete(SubnetId id);

    /** Members of the current bulk that already completed. */
    int completedInBulk() const { return _completedInBulk; }

    /** Number of flushes performed so far. */
    std::uint64_t flushes() const { return _flushes; }

    /** Subnet IDs belonging to bulk @p bulk, in sequence order. */
    std::vector<SubnetId> bulkMembers(std::int64_t bulk) const;

    void reset();

  private:
    int _bulkSize;
    std::int64_t _currentBulk = 0;
    int _completedInBulk = 0;
    std::uint64_t _flushes = 0;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_BSP_SCHEDULER_H
