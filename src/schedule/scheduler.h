/**
 * @file
 * Scheduling policy abstraction and system models.
 *
 * The four evaluated systems (NASPipe, GPipe, PipeDream, VPipe) and
 * the three ablated NASPipe variants differ along independent axes:
 * which task a free stage runs next (the policy), whether bulk
 * barriers gate injection (BSP), how GPU memory is managed, whether
 * subnets run under balanced per-subnet partitions, and whether
 * weight stashing or activation recomputation is used. SystemModel
 * captures one point in that space; the pipeline runtime executes any
 * SystemModel over the simulated cluster.
 */

#ifndef NASPIPE_SCHEDULE_SCHEDULER_H
#define NASPIPE_SCHEDULE_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "schedule/dependency.h"
#include "schedule/task.h"
#include "supernet/subnet.h"

namespace naspipe {

/** Task-selection policy family. */
enum class PolicyKind {
    Csp,     ///< NASPipe: Algorithm 1/2, dependency-preserving
    Greedy,  ///< GPipe/PipeDream/VPipe: bwd first, fwd in ID order
    Ssp,     ///< bounded staleness (the CSP<->ASP spectrum, §2.3)
};

/** GPU memory management strategy. */
enum class MemoryMode {
    AllResident,         ///< whole supernet pinned in GPU memory
    SwapOnDemand,        ///< VPipe: one subnet resident, sync swaps
    PredictivePrefetch,  ///< NASPipe: predictor-driven, ~3 subnets
};

/** Printable names. */
const char *policyKindName(PolicyKind kind);
const char *memoryModeName(MemoryMode mode);

/**
 * What a policy may observe about a stage when picking the next
 * task. Implemented by the runtime's per-stage state.
 */
class StageInfo
{
  public:
    virtual ~StageInfo() = default;

    /** This stage's index. */
    virtual int stageIndex() const = 0;

    /** Pipeline depth D. */
    virtual int numStages() const = 0;

    /** Forward tasks whose inputs have arrived, in arrival order. */
    virtual const std::vector<SubnetId> &fwdCandidates() const = 0;

    /** Backward tasks whose gradients have arrived, arrival order. */
    virtual const std::vector<SubnetId> &bwdCandidates() const = 0;

    /** The subnet with sequence ID @p id. */
    virtual const Subnet &subnet(SubnetId id) const = 0;

    /** This stage's block range under @p id's execution partition. */
    virtual std::pair<int, int> blockRange(SubnetId id) const = 0;

    /** The stage-local dependency tracker (L_SN, L_f, frontier). */
    virtual const DependencyTracker &deps() const = 0;

    /**
     * Whether every earlier subnet sharing a layer with @p id's
     * blocks on this stage has already *applied and pushed* its
     * parameter update (the mirror copies on this stage are up to
     * date, §4.2). Algorithm 2's local finished-list check alone
     * cannot see a pending write executing on an earlier stage of a
     * differently partitioned subnet; dispatching must also wait for
     * the mirrored parameters to arrive.
     */
    virtual bool upstreamWritesDone(SubnetId id) const = 0;
};

/**
 * A task-selection policy: given the stage view, decide what runs.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Pick the next task for a free stage, or Decision::none(). */
    virtual Decision pick(const StageInfo &stage) const = 0;

    /** Policy display name. */
    virtual const char *name() const = 0;
};

/**
 * Greedy baseline policy: backward tasks first (lowest ID), then the
 * lowest-ID forward task — with *no* causal dependency check. GPipe,
 * PipeDream and VPipe all select this way; their remaining
 * differences (flush, stashing, memory) live in SystemModel.
 */
class GreedyPolicy : public SchedulerPolicy
{
  public:
    Decision pick(const StageInfo &stage) const override;
    const char *name() const override { return "greedy"; }
};

/**
 * Full description of one training system to simulate.
 */
struct SystemModel {
    std::string name;                ///< display name ("NASPipe")
    PolicyKind policy = PolicyKind::Csp;
    int staleness = 0;               ///< SSP staleness bound
    MemoryMode memory = MemoryMode::PredictivePrefetch;
    bool bulkFlush = false;          ///< BSP barrier per bulk
    int bulkSize = 0;                ///< subnets per bulk (0: = D)
    bool balancedPartition = true;   ///< per-subnet balanced stages
    bool mirroring = true;           ///< mirror layers across stages
    bool weightStash = false;        ///< PipeDream weight stashing
    bool recompute = true;           ///< activation recomputation
    bool predictor = true;           ///< context predictor enabled
    int maxInflight = 0;             ///< concurrent subnets (0: 2*D)
    int prefetchDepth = 2;           ///< predicted tasks to prefetch

    /** Effective bulk size at pipeline depth @p numStages. */
    int effectiveBulk(int numStages) const;

    /** Effective in-flight limit at pipeline depth @p numStages. */
    int effectiveInflight(int numStages) const;

    /** Whether this model preserves CSP's dependency property. */
    bool preservesDependencies() const
    {
        return policy == PolicyKind::Csp;
    }

    /** Synchronization label for reports ("CSP"/"BSP"/"ASP"). */
    const char *syncName() const;
};

/** Instantiate the policy object a SystemModel calls for. */
std::unique_ptr<SchedulerPolicy> makePolicy(const SystemModel &model);

/** @name Evaluated system models (paper §5, baselines + NASPipe)
 * @{ */
SystemModel naspipeSystem();
SystemModel gpipeSystem();
SystemModel pipedreamSystem();
SystemModel vpipeSystem();
/** @} */

/** @name Ablated NASPipe variants (paper §5.3)
 * @{ */
SystemModel naspipeWithoutScheduler();
SystemModel naspipeWithoutPredictor();
SystemModel naspipeWithoutMirroring();
/** @} */

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_SCHEDULER_H
