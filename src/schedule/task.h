/**
 * @file
 * Task model: the minimal unit of scheduling and execution.
 *
 * "The basic scheduling and execution unit in NASPipe's runtime is a
 * task, which is defined as either a subnet stage i's forward pass or
 * backward pass on processing one input batch. Each task is
 * identified by a task property (forward or backward), subnet ID, and
 * stage ID." (§3.2)
 */

#ifndef NASPIPE_SCHEDULE_TASK_H
#define NASPIPE_SCHEDULE_TASK_H

#include <string>

#include "supernet/subnet.h"

namespace naspipe {

/** Execution property of a task. */
enum class TaskType {
    Forward,
    Backward,
};

/** Printable task-type name ("fwd"/"bwd"). */
const char *taskTypeName(TaskType type);

/** One schedulable task. */
struct Task {
    TaskType type = TaskType::Forward;
    SubnetId subnet = -1;
    int stage = -1;

    bool operator==(const Task &) const = default;
    auto operator<=>(const Task &) const = default;

    /** Display string ("fwd(SN3@2)"). */
    std::string toString() const;
};

/**
 * Scheduling decision returned by a policy: run a task now, or
 * nothing is runnable.
 */
struct Decision {
    enum class Kind { None, Forward, Backward };

    Kind kind = Kind::None;
    SubnetId subnet = -1;

    static Decision none() { return Decision{}; }
    static Decision forward(SubnetId id)
    {
        return Decision{Kind::Forward, id};
    }
    static Decision backward(SubnetId id)
    {
        return Decision{Kind::Backward, id};
    }

    bool valid() const { return kind != Kind::None; }

    bool operator==(const Decision &) const = default;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_TASK_H
