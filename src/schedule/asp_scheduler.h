/**
 * @file
 * Asynchronous-parallel (PipeDream-style) support: weight stashing.
 *
 * PipeDream interleaves forward and backward computation with
 * asynchronous parameter updates (ASP). To keep a batch's backward
 * mathematically consistent with its forward despite intervening
 * updates, each stage *stashes* the weight version its forward used
 * and restores it for the backward. The stash multiplies the
 * parameter memory of early stages (one version per in-flight batch)
 * — a major reason PipeDream's supported batch size in Table 2 is
 * roughly half of GPipe's.
 */

#ifndef NASPIPE_SCHEDULE_ASP_SCHEDULER_H
#define NASPIPE_SCHEDULE_ASP_SCHEDULER_H

#include <cstdint>
#include <map>

#include "supernet/subnet.h"

namespace naspipe {

/**
 * Bookkeeping of stashed weight versions on one stage.
 */
class WeightStash
{
  public:
    WeightStash() = default;

    /**
     * Record that @p id's forward ran with @p bytes of stage
     * parameters (a version is stashed).
     */
    void onForward(SubnetId id, std::uint64_t bytes);

    /**
     * Record that @p id's backward consumed its stashed version.
     * @return the bytes released.
     */
    std::uint64_t onBackward(SubnetId id);

    /** Versions currently stashed. */
    std::size_t liveVersions() const { return _stash.size(); }

    /** Bytes currently held by stashed versions. */
    std::uint64_t liveBytes() const { return _liveBytes; }

    /** High-water mark of stashed bytes. */
    std::uint64_t peakBytes() const { return _peakBytes; }

    /**
     * Planning estimate of the stash multiplier for stage @p stage of
     * a depth-@p numStages pipeline: stage s holds up to
     * (numStages - s) weight versions simultaneously (PipeDream's
     * 1F1B steady state), i.e. the *extra* resident parameter factor
     * is (numStages - s - 1).
     */
    static double stashFactor(int stage, int numStages);

    /** Mean extra resident factor across all stages. */
    static double meanStashFactor(int numStages);

    void reset();

  private:
    std::map<SubnetId, std::uint64_t> _stash;
    std::uint64_t _liveBytes = 0;
    std::uint64_t _peakBytes = 0;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_ASP_SCHEDULER_H
