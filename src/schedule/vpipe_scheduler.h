/**
 * @file
 * VPipe-style on-demand swap planning.
 *
 * VPipe keeps exactly one subnet's stage parameters resident per GPU
 * and swaps subnet contexts between CPU and GPU memory around each
 * execution — without a predictor, so nearly every first access to a
 * layer is a miss that stalls for a synchronous swap-in (the ~1-8 %
 * cache-hit column of Table 2: hits happen only when consecutive
 * subnets coincidentally share a layer on the same stage). This
 * module sizes those swaps and estimates the stall they add to a
 * stage execution.
 */

#ifndef NASPIPE_SCHEDULE_VPIPE_SCHEDULER_H
#define NASPIPE_SCHEDULE_VPIPE_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "supernet/search_space.h"
#include "supernet/subnet.h"

namespace naspipe {

/** One planned swap around a VPipe stage execution. */
struct SwapPlan {
    std::uint64_t fetchBytes = 0;  ///< layers to bring in (misses)
    std::uint64_t evictBytes = 0;  ///< previous context to push out
    int hitLayers = 0;             ///< layers already resident
    int missLayers = 0;            ///< layers requiring swap-in
};

/**
 * Plans VPipe's per-execution swaps on one stage.
 */
class VpipeSwapPlanner
{
  public:
    /**
     * @param space the search space
     * @param stage the stage this planner serves
     */
    VpipeSwapPlanner(const SearchSpace &space, int stage);

    /**
     * Plan the swap for executing @p subnet's blocks
     * [@p firstBlock, @p lastBlock] on this stage, given that the
     * previously executed subnet's layers are still resident.
     */
    SwapPlan plan(const Subnet &subnet, int firstBlock, int lastBlock);

    /** Layers currently resident on this stage's GPU. */
    std::size_t residentLayers() const { return _resident.size(); }

    void reset();

  private:
    const SearchSpace &_space;
    int _stage;
    std::vector<std::uint64_t> _resident;  ///< layer keys, sorted
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_VPIPE_SCHEDULER_H
