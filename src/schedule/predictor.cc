#include "schedule/predictor.h"

#include <algorithm>

#include "common/logging.h"
#include "schedule/csp_scheduler.h"

namespace naspipe {

void
Predictor::beforeBackward(const StageInfo &stage, SubnetId received,
                          const std::vector<PendingBackward> &nextBwds,
                          const FetchFn &fetch)
{
    NASPIPE_ASSERT(fetch, "predictor requires a fetch callback");
    _stats.calls++;

    // Lines 4-8: pre-add the received backward to L_f and re-run
    // SCHEDULE(); the produced forward is likely next.
    SubnetId fwd = CspPolicy::schedulableForward(stage, received);
    if (fwd >= 0) {
        fetch(Task{TaskType::Forward, fwd, stage.stageIndex()},
              PredictReason::AfterBackward);
        _stats.fetchesRequested++;
    }

    // Lines 9-10: remember the pending backwards the message carried.
    for (const auto &bwd : nextBwds) {
        if (std::find(_blocked.begin(), _blocked.end(), bwd) ==
            _blocked.end()) {
            _blocked.push_back(bwd);
            _stats.pendingRecorded++;
        }
    }
}

void
Predictor::beforeForward(const StageInfo &stage, SubnetId current,
                         const FetchFn &fetch)
{
    NASPIPE_ASSERT(fetch, "predictor requires a fetch callback");
    _stats.calls++;

    // Lines 13-15: the current forward may release a pending
    // backward; fetch its context ahead of arrival.
    for (auto it = _blocked.begin(); it != _blocked.end();) {
        if (it->precedence == current) {
            fetch(Task{TaskType::Backward, it->id,
                       stage.stageIndex()},
                  PredictReason::ReleasedBackward);
            _stats.fetchesRequested++;
            it = _blocked.erase(it);
        } else {
            ++it;
        }
    }

    // Lines 16-18: predict the forward scheduled after this one.
    // The runtime pops the current forward from L_q before calling
    // (Algorithm 1 line 20 precedes line 21), so re-running
    // SCHEDULE() yields the *following* runnable forward; the
    // inequality guard keeps the call safe even if it did not.
    SubnetId fwd = CspPolicy::schedulableForward(stage);
    if (fwd >= 0 && fwd != current) {
        fetch(Task{TaskType::Forward, fwd, stage.stageIndex()},
              PredictReason::AfterForward);
        _stats.fetchesRequested++;
    }
}

void
Predictor::reset()
{
    _blocked.clear();
    _stats = PredictorStats();
}

} // namespace naspipe
