/**
 * @file
 * Stale-synchronous-parallel (SSP) policy.
 *
 * §2.3 of the paper lists SSP (Ho et al.) among the synchronization
 * methods "not designed to tackle causal dependencies in supernet
 * training". This implementation makes the point quantitative: SSP
 * with staleness bound s tolerates reads that are at most s subnets
 * stale — a candidate's forward may proceed while blockers within
 * sequence-distance s are still unfinished. s = 0 degenerates to
 * Algorithm 2's check (without the mirror-visibility wait CSP adds);
 * s = infinity degenerates to ASP. The sync-spectrum ablation bench
 * sweeps s to chart throughput gained per reproducibility lost.
 */

#ifndef NASPIPE_SCHEDULE_SSP_SCHEDULER_H
#define NASPIPE_SCHEDULE_SSP_SCHEDULER_H

#include "schedule/scheduler.h"

namespace naspipe {

/** Bounded-staleness dependency policy. */
class SspPolicy : public SchedulerPolicy
{
  public:
    /** @param staleness tolerated blocker distance (>= 0). */
    explicit SspPolicy(int staleness);

    Decision pick(const StageInfo &stage) const override;
    const char *name() const override { return "ssp"; }

    int staleness() const { return _staleness; }

  private:
    int _staleness;
};

/**
 * A NASPipe-like system (predictive memory, balanced partitions,
 * mirroring) whose scheduler tolerates @p staleness: the sync
 * spectrum between CSP and ASP.
 */
SystemModel sspSystem(int staleness);

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_SSP_SCHEDULER_H
