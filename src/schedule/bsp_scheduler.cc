#include "schedule/bsp_scheduler.h"

#include "common/logging.h"

namespace naspipe {

FlushController::FlushController(int bulkSize) : _bulkSize(bulkSize)
{
    NASPIPE_ASSERT(bulkSize >= 1, "bulk size must be >= 1");
}

std::int64_t
FlushController::bulkOf(SubnetId id) const
{
    NASPIPE_ASSERT(id >= 0, "invalid subnet ID");
    return id / _bulkSize;
}

bool
FlushController::canInject(SubnetId id) const
{
    return bulkOf(id) == _currentBulk;
}

bool
FlushController::onSubnetComplete(SubnetId id)
{
    NASPIPE_ASSERT(bulkOf(id) == _currentBulk,
                   "completion for SN", id, " outside current bulk ",
                   _currentBulk);
    _completedInBulk++;
    NASPIPE_ASSERT(_completedInBulk <= _bulkSize,
                   "more completions than bulk members");
    if (_completedInBulk == _bulkSize) {
        _completedInBulk = 0;
        _currentBulk++;
        _flushes++;
        return true;
    }
    return false;
}

std::vector<SubnetId>
FlushController::bulkMembers(std::int64_t bulk) const
{
    std::vector<SubnetId> members;
    members.reserve(static_cast<std::size_t>(_bulkSize));
    for (int i = 0; i < _bulkSize; i++)
        members.push_back(bulk * _bulkSize + i);
    return members;
}

void
FlushController::reset()
{
    _currentBulk = 0;
    _completedInBulk = 0;
    _flushes = 0;
}

} // namespace naspipe
