/**
 * @file
 * Context predictor (paper Algorithm 3, §3.3).
 *
 * The predictor forecasts the next tasks a stage will run so the
 * context manager can prefetch their layer parameters. It is invoked
 * at two points of the runtime loop:
 *
 *  - before a backward pass runs: the backward will finish its
 *    subnet's WRITE on this stage, so the predictor pre-adds it to
 *    the finished list and re-runs SCHEDULE() — the forward that
 *    produces "has a high chance to be the next scheduled". It also
 *    records the pending backward tasks carried by the received
 *    message from later stages.
 *
 *  - before a forward pass runs: if this forward releases a recorded
 *    pending backward (its precedence equals the current forward),
 *    that backward's context is fetched; SCHEDULE() is re-run to
 *    predict the following forward as well.
 */

#ifndef NASPIPE_SCHEDULE_PREDICTOR_H
#define NASPIPE_SCHEDULE_PREDICTOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "schedule/scheduler.h"
#include "schedule/task.h"

namespace naspipe {

/**
 * A backward task blocked at the tail of the pipeline because its
 * forward has not arrived yet; `precedence` names the forward whose
 * completion unblocks it. Carried inside backward messages between
 * stages (§3.3).
 */
struct PendingBackward {
    SubnetId id = -1;          ///< the blocked backward's subnet
    SubnetId precedence = -1;  ///< forward that must run first

    bool operator==(const PendingBackward &) const = default;
};

/** Why the predictor requested a fetch (for statistics). */
enum class PredictReason {
    AfterBackward,   ///< fwd predicted by pre-adding a bwd to L_f
    ReleasedBackward,///< pending bwd released by the current fwd
    AfterForward,    ///< next fwd predicted before a fwd runs
};

/** Aggregate predictor statistics. */
struct PredictorStats {
    std::uint64_t calls = 0;
    std::uint64_t fetchesRequested = 0;
    std::uint64_t pendingRecorded = 0;
};

/**
 * Per-stage predictor.
 */
class Predictor
{
  public:
    /** Callback type: request a context fetch for a predicted task. */
    using FetchFn =
        std::function<void(const Task &, PredictReason)>;

    Predictor() = default;

    /**
     * Algorithm 3, backward branch: called when a backward for
     * @p received is about to run on @p stage.
     *
     * @param stage the stage view
     * @param received subnet whose backward just arrived
     * @param nextBwds pending backwards carried by the message
     * @param fetch fetch-request callback
     */
    void beforeBackward(const StageInfo &stage, SubnetId received,
                        const std::vector<PendingBackward> &nextBwds,
                        const FetchFn &fetch);

    /**
     * Algorithm 3, forward branch: called when the forward of
     * @p current is about to run on @p stage.
     */
    void beforeForward(const StageInfo &stage, SubnetId current,
                       const FetchFn &fetch);

    /** Blocked-backward records not yet released. */
    const std::vector<PendingBackward> &blocked() const
    {
        return _blocked;
    }

    const PredictorStats &stats() const { return _stats; }

    void reset();

  private:
    std::vector<PendingBackward> _blocked;  ///< L_blocked
    PredictorStats _stats;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_PREDICTOR_H
