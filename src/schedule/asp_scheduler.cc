#include "schedule/asp_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

void
WeightStash::onForward(SubnetId id, std::uint64_t bytes)
{
    NASPIPE_ASSERT(!_stash.count(id), "SN", id, " already stashed");
    _stash.emplace(id, bytes);
    _liveBytes += bytes;
    _peakBytes = std::max(_peakBytes, _liveBytes);
}

std::uint64_t
WeightStash::onBackward(SubnetId id)
{
    auto it = _stash.find(id);
    NASPIPE_ASSERT(it != _stash.end(), "SN", id, " has no stash");
    std::uint64_t bytes = it->second;
    _liveBytes -= bytes;
    _stash.erase(it);
    return bytes;
}

double
WeightStash::stashFactor(int stage, int numStages)
{
    NASPIPE_ASSERT(stage >= 0 && stage < numStages,
                   "stage out of range");
    return static_cast<double>(numStages - stage - 1);
}

double
WeightStash::meanStashFactor(int numStages)
{
    NASPIPE_ASSERT(numStages >= 1, "need >= 1 stage");
    double total = 0.0;
    for (int s = 0; s < numStages; s++)
        total += stashFactor(s, numStages);
    return total / static_cast<double>(numStages);
}

void
WeightStash::reset()
{
    _stash.clear();
    _liveBytes = 0;
    _peakBytes = 0;
}

} // namespace naspipe
