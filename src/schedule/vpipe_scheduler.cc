#include "schedule/vpipe_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

VpipeSwapPlanner::VpipeSwapPlanner(const SearchSpace &space, int stage)
    : _space(space), _stage(stage)
{
    NASPIPE_ASSERT(stage >= 0, "stage must be non-negative");
}

SwapPlan
VpipeSwapPlanner::plan(const Subnet &subnet, int firstBlock,
                       int lastBlock)
{
    NASPIPE_ASSERT(firstBlock >= 0 && lastBlock < subnet.size() &&
                       firstBlock <= lastBlock,
                   "bad block range");

    SwapPlan out;
    std::vector<std::uint64_t> next;
    next.reserve(static_cast<std::size_t>(lastBlock - firstBlock + 1));

    for (int b = firstBlock; b <= lastBlock; b++) {
        if (_space.spec(b, subnet.choice(b)).paramBytes == 0)
            continue;  // skip candidates have no context
        LayerId layer = subnet.layer(b);
        std::uint64_t key = layer.key();
        next.push_back(key);
        if (std::binary_search(_resident.begin(), _resident.end(),
                               key)) {
            out.hitLayers++;
        } else {
            out.missLayers++;
            out.fetchBytes +=
                _space.spec(b, subnet.choice(b)).paramBytes;
        }
    }

    // Everything from the previous context that the new subnet does
    // not reuse is evicted (written back: parameters are dirty after
    // the previous backward pass).
    std::sort(next.begin(), next.end());
    for (std::uint64_t key : _resident) {
        if (!std::binary_search(next.begin(), next.end(), key)) {
            auto block = static_cast<int>(key >> 32);
            auto choice = static_cast<int>(key & 0xffffffffULL);
            out.evictBytes += _space.spec(block, choice).paramBytes;
        }
    }

    _resident = std::move(next);
    return out;
}

void
VpipeSwapPlanner::reset()
{
    _resident.clear();
}

} // namespace naspipe
