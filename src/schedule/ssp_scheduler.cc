#include "schedule/ssp_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace naspipe {

SspPolicy::SspPolicy(int staleness) : _staleness(staleness)
{
    NASPIPE_ASSERT(staleness >= 0, "staleness must be >= 0");
}

Decision
SspPolicy::pick(const StageInfo &stage) const
{
    const auto &bwd = stage.bwdCandidates();
    if (!bwd.empty())
        return Decision::backward(*std::min_element(bwd.begin(),
                                                    bwd.end()));

    std::vector<SubnetId> queue = stage.fwdCandidates();
    std::sort(queue.begin(), queue.end());
    for (SubnetId qval : queue) {
        const Subnet &candidate = stage.subnet(qval);
        auto [lo, hi] = stage.blockRange(qval);
        if (stage.deps().satisfiedWithStaleness(candidate, lo, hi,
                                                _staleness)) {
            return Decision::forward(qval);
        }
    }
    return Decision::none();
}

SystemModel
sspSystem(int staleness)
{
    SystemModel m;
    m.name = "SSP(s=" + std::to_string(staleness) + ")";
    m.policy = PolicyKind::Ssp;
    m.staleness = staleness;
    m.memory = MemoryMode::PredictivePrefetch;
    m.bulkFlush = false;
    m.balancedPartition = true;
    m.mirroring = true;
    m.weightStash = false;
    m.recompute = true;
    m.predictor = true;
    return m;
}

} // namespace naspipe
