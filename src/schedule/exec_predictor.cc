#include "schedule/exec_predictor.h"

namespace naspipe {

std::vector<SubnetId>
ExecPredictor::lowestQueued(SubnetId exclude,
                            const std::vector<SubnetId> &queuedFwd)
{
    std::vector<SubnetId> picks;
    if (!_enabled || _prefetchDepth <= 0)
        return picks;
    for (SubnetId id : queuedFwd) {
        if (id == exclude)
            continue;
        picks.push_back(id);
        if (static_cast<int>(picks.size()) >= _prefetchDepth)
            break;
    }
    _stats.predicted += picks.size();
    return picks;
}

std::vector<SubnetId>
ExecPredictor::beforeForward(SubnetId current,
                             const std::vector<SubnetId> &queuedFwd)
{
    if (_enabled)
        _stats.beforeForward++;
    return lowestQueued(current, queuedFwd);
}

std::vector<SubnetId>
ExecPredictor::beforeBackward(const std::vector<SubnetId> &queuedFwd)
{
    if (_enabled)
        _stats.beforeBackward++;
    return lowestQueued(-1, queuedFwd);
}

} // namespace naspipe
