#include "schedule/csp_scheduler.h"

#include <algorithm>

namespace naspipe {

Decision
CspPolicy::pick(const StageInfo &stage) const
{
    // Heuristic (1): backward tasks have the highest priority.
    const auto &bwd = stage.bwdCandidates();
    if (!bwd.empty())
        return Decision::backward(*std::min_element(bwd.begin(),
                                                    bwd.end()));

    SubnetId fwd = schedulableForward(stage, -1, true);
    if (fwd >= 0)
        return Decision::forward(fwd);
    return Decision::none();
}

SubnetId
CspPolicy::schedulableForward(const StageInfo &stage,
                              SubnetId assumeFinished,
                              bool requireWritesVisible)
{
    // Walk L_q in ascending sequence-ID order (lower ID first).
    std::vector<SubnetId> queue = stage.fwdCandidates();
    std::sort(queue.begin(), queue.end());

    for (SubnetId qval : queue) {
        const Subnet &candidate = stage.subnet(qval);
        auto [lo, hi] = stage.blockRange(qval);
        bool ok;
        if (assumeFinished >= 0) {
            ok = stage.deps().satisfiedAssuming(candidate, lo, hi,
                                                assumeFinished);
        } else {
            ok = stage.deps().satisfied(candidate, lo, hi);
        }
        if (ok && requireWritesVisible)
            ok = stage.upstreamWritesDone(qval);
        if (ok)
            return qval;
    }
    return -1;
}

} // namespace naspipe
