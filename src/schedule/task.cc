#include "schedule/task.h"

#include <sstream>

namespace naspipe {

const char *
taskTypeName(TaskType type)
{
    return type == TaskType::Forward ? "fwd" : "bwd";
}

std::string
Task::toString() const
{
    std::ostringstream oss;
    oss << taskTypeName(type) << "(SN" << subnet << "@" << stage << ")";
    return oss.str();
}

} // namespace naspipe
