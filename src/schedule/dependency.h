/**
 * @file
 * Per-stage causal dependency tracking (the core of Algorithm 2).
 *
 * Each stage keeps a registry of the subnets it knows (L_SN), the set
 * of subnets whose backward pass already ran on this stage (L_f), and
 * a frontier implementing the paper's elimination scheme: "when
 * subnets before a seq ID are all finished, we remove them both from
 * the finished list and the dependencies check" (§3.2).
 *
 * satisfied(y, lo, hi) answers Algorithm 2's inner loops: is any
 * layer y picks in blocks [lo, hi] (the stage's partition of y) also
 * picked by an *unfinished* earlier subnet?
 */

#ifndef NASPIPE_SCHEDULE_DEPENDENCY_H
#define NASPIPE_SCHEDULE_DEPENDENCY_H

#include <cstdint>
#include <map>
#include <set>

#include "supernet/subnet.h"

namespace naspipe {

/**
 * Tracks which earlier subnets still block a candidate on one stage.
 */
class DependencyTracker
{
  public:
    /**
     * @param space when given, parameter-free candidates (skip /
     *        identity layers, which hold no trainable state) are
     *        exempt from dependency checks; without a space every
     *        equal choice counts.
     */
    explicit DependencyTracker(const SearchSpace *space = nullptr)
        : _space(space)
    {
    }

    /**
     * Register a subnet (stages retrieve subnets in sequence order
     * from the frontend; IDs must arrive consecutively).
     */
    void registerSubnet(const Subnet &subnet);

    /** Whether subnet @p id is known (registered, not eliminated). */
    bool knows(SubnetId id) const;

    /** Access a registered subnet. */
    const Subnet &subnet(SubnetId id) const;

    /**
     * Record that @p id's backward pass finished on this stage
     * (Algorithm 1 line 10, L_f.append). Advances the frontier and
     * garbage-collects fully-ordered prefixes.
     */
    void markFinished(SubnetId id);

    /** Whether @p id is finished on this stage. */
    bool finished(SubnetId id) const;

    /**
     * Algorithm 2's check for one candidate: true iff no unfinished
     * subnet with a smaller sequence ID shares a layer with the
     * candidate's blocks [firstBlock, lastBlock].
     *
     * @param candidate subnet being considered for a forward pass
     * @param firstBlock first block of the stage's partition of it
     * @param lastBlock last block (inclusive) of that partition
     */
    bool satisfied(const Subnet &candidate, int firstBlock,
                   int lastBlock) const;

    /**
     * The blocking subnet with the smallest ID, or -1 if satisfied.
     * Used by the predictor to propagate pending-backward metadata.
     */
    SubnetId firstBlocker(const Subnet &candidate, int firstBlock,
                          int lastBlock) const;

    /**
     * Variant of satisfied() that pretends @p hypothetical is already
     * finished — Algorithm 3 lines 5-6 pre-add the just-received
     * backward to L_f before re-running SCHEDULE().
     */
    bool satisfiedAssuming(const Subnet &candidate, int firstBlock,
                           int lastBlock, SubnetId hypothetical) const;

    /**
     * SSP variant: blockers within sequence distance @p staleness of
     * the candidate are tolerated (their writes may be read stale).
     * staleness == 0 is satisfied().
     */
    bool satisfiedWithStaleness(const Subnet &candidate,
                                int firstBlock, int lastBlock,
                                SubnetId staleness) const;

    /** All IDs below this are finished and eliminated. */
    SubnetId frontier() const { return _frontier; }

    /** Number of retained (non-eliminated) subnets. */
    std::size_t retained() const { return _subnets.size(); }

    /** Size of the finished list (after elimination). */
    std::size_t finishedCount() const { return _finished.size(); }

    void reset();

  private:
    bool blockedBy(const Subnet &candidate, int firstBlock,
                   int lastBlock, SubnetId earlier) const;

    const SearchSpace *_space = nullptr;
    std::map<SubnetId, Subnet> _subnets;  ///< L_SN (frontier-trimmed)
    std::set<SubnetId> _finished;         ///< L_f (frontier-trimmed)
    SubnetId _frontier = 0;
    SubnetId _nextExpected = 0;
};

} // namespace naspipe

#endif // NASPIPE_SCHEDULE_DEPENDENCY_H
