/**
 * @file
 * CspOracle — the determinism audit layer's runtime invariant
 * checker.
 *
 * CSP's reproducibility claim (Definition 1) rests on two invariants
 * the scheduler and the threaded executor must uphold for every
 * shared choice-block layer:
 *
 *  1. **Read freshness**: every READ by subnet i observes exactly the
 *     WRITEs of the activators with smaller sequence IDs — i.e. the
 *     write of the *largest smaller* sequence ID has landed, and no
 *     write of a larger ID has. Equivalently the layer's history is
 *     the strict R,W,R,W… sequence sequential training produces.
 *  2. **Commit monotonicity**: CommitGate commits extend each
 *     layer's causal chain by exactly one, in ascending sequence-ID
 *     order.
 *
 * The equivalence tests sample these invariants indirectly (hash
 * comparison); the oracle asserts them directly, so a violation
 * localizes to the first offending (layer, pair-of-sequence-IDs)
 * instead of a bitwise mismatch at the end of the run. It consumes
 * either a recorded AccessLog (post-run audit) or live CommitGate
 * events via the gate's onCommitEvent() observer hook, and renders a
 * human-readable report naming the layer, the stage, and the two
 * offending sequence IDs.
 */

#ifndef NASPIPE_VERIFY_CSP_ORACLE_H
#define NASPIPE_VERIFY_CSP_ORACLE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "supernet/layer.h"
#include "train/access_log.h"

namespace naspipe {

class CommitGate;

/** One violated CSP invariant. */
struct CspViolation {
    enum class Kind {
        ReadBeforeWrite,  ///< read missed a smaller activator's write
        ReadAfterFuture,  ///< read saw a larger activator's write
        WriteBeforeRead,  ///< write with no preceding read by writer
        WriteOrder,       ///< writes left ascending sequence order
        DuplicateRead,    ///< second read by the same subnet
        DuplicateWrite,   ///< second write by the same subnet
        CommitOrder,      ///< live commit left chain order
    };

    Kind kind = Kind::ReadBeforeWrite;
    LayerId layer;
    int stage = -1;       ///< stage of the offending access (-1 = ?)
    SubnetId first = -1;  ///< the two offending sequence IDs
    SubnetId second = -1;
    std::uint64_t orderFirst = 0;   ///< global log order (0 if live)
    std::uint64_t orderSecond = 0;

    /** Printable rule name ("read-before-write"). */
    const char *kindName() const;

    /** One-line human-readable description. */
    std::string describe() const;
};

/**
 * Audits access histories and commit streams against the CSP
 * invariants. Violations accumulate; ok() / report() summarize.
 * observeCommit() is thread-safe (workers call it concurrently);
 * the audit entry points are coordinator-side.
 */
class CspOracle
{
  public:
    /**
     * Audit one layer's access history (in recorded global order).
     * Appends any violations; returns true iff the layer is clean.
     */
    bool auditLayer(const LayerId &layer,
                    const std::vector<AccessRecord> &history);

    /**
     * Audit every touched layer of @p log. Returns true iff no layer
     * violates the read/write invariants.
     */
    bool auditLog(const AccessLog &log);

    /**
     * Live commit event (CommitGate observer signature): checks that
     * @p rank extends @p layerKey's chain by exactly one and that
     * committing sequence IDs ascend.
     */
    void observeCommit(std::uint64_t layerKey, SubnetId subnet,
                       std::size_t rank, int stage);

    /**
     * Install this oracle as @p gate's commit-event observer. The
     * gate must outlive neither — detach by destroying the gate or
     * overwriting its observer — and the oracle must outlive the run.
     */
    void attach(CommitGate &gate);

    /** True iff no violation has been recorded. */
    bool ok() const;

    /** All recorded violations in detection order. */
    std::vector<CspViolation> violations() const;

    /**
     * Multi-line human-readable report of every violation (empty
     * string when ok()).
     */
    std::string report() const;

    /** Layers audited via auditLayer()/auditLog(). */
    std::size_t auditedLayers() const { return _auditedLayers; }

    /** Access records audited via auditLayer()/auditLog(). */
    std::uint64_t auditedRecords() const { return _auditedRecords; }

    /** Live commits observed via observeCommit(). */
    std::uint64_t observedCommits() const;

    /** Drop all state (violations, chain cursors, counters). */
    void clear();

    /**
     * Drop only the live chain cursors, keeping violations and
     * counters. Call at each recovery epoch of the threaded executor
     * (RuntimeConfig::recoveryObserver): recovery recreates the
     * CommitGate, so every layer's chain legitimately restarts at
     * rank 0 and replayed commits would otherwise trip CommitOrder.
     */
    void resetLiveChains();

  private:
    void addViolation(CspViolation violation);

    /** Live per-layer commit cursor. */
    struct ChainCursor {
        std::size_t nextRank = 0;
        SubnetId lastSubnet = -1;
    };

    mutable RankedMutex _oracleMu{LockRank::VerifyOracle};
    std::vector<CspViolation> _violations;
    std::map<std::uint64_t, ChainCursor> _chains;
    std::size_t _auditedLayers = 0;
    std::uint64_t _auditedRecords = 0;
    std::uint64_t _observedCommits = 0;
};

} // namespace naspipe

#endif // NASPIPE_VERIFY_CSP_ORACLE_H
