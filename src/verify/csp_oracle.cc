#include "verify/csp_oracle.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "exec/commit_gate.h"

namespace naspipe {

namespace {

LayerId
layerFromKey(std::uint64_t key)
{
    return LayerId{static_cast<std::uint32_t>(key >> 32),
                   static_cast<std::uint32_t>(key & 0xffffffffULL)};
}

std::string
layerName(const LayerId &layer)
{
    std::ostringstream oss;
    oss << "layer(block " << layer.block << ", choice " << layer.choice
        << ")";
    return oss.str();
}

std::string
stageName(int stage)
{
    return stage < 0 ? std::string("stage ?")
                     : "stage " + std::to_string(stage);
}

} // namespace

const char *
CspViolation::kindName() const
{
    switch (kind) {
      case Kind::ReadBeforeWrite:
        return "read-before-write";
      case Kind::ReadAfterFuture:
        return "read-after-future-write";
      case Kind::WriteBeforeRead:
        return "write-before-read";
      case Kind::WriteOrder:
        return "write-order";
      case Kind::DuplicateRead:
        return "duplicate-read";
      case Kind::DuplicateWrite:
        return "duplicate-write";
      case Kind::CommitOrder:
        return "commit-order";
    }
    return "?";
}

std::string
CspViolation::describe() const
{
    std::ostringstream oss;
    oss << kindName() << ": " << layerName(layer) << " on "
        << stageName(stage) << ": ";
    switch (kind) {
      case Kind::ReadBeforeWrite:
        oss << "SN" << second << "'s read observed stale parameters"
            << " — SN" << first
            << " (largest smaller activator) had not written yet";
        break;
      case Kind::ReadAfterFuture:
        oss << "SN" << second << "'s read observed SN" << first
            << "'s write, which has a larger (or equal) sequence ID";
        break;
      case Kind::WriteBeforeRead:
        oss << "SN" << second
            << " wrote without a preceding read of its own";
        break;
      case Kind::WriteOrder:
        oss << "writes left sequence order: SN" << second
            << " wrote after SN" << first;
        break;
      case Kind::DuplicateRead:
        oss << "SN" << second << " read the layer twice";
        break;
      case Kind::DuplicateWrite:
        oss << "SN" << second << " wrote the layer twice";
        break;
      case Kind::CommitOrder:
        oss << "commit of SN" << second
            << " did not extend the causal chain by one (last "
            << "committed: SN" << first << ")";
        break;
    }
    if (orderFirst || orderSecond) {
        oss << " [log orders " << orderFirst << ", " << orderSecond
            << "]";
    }
    return oss.str();
}

void
CspOracle::addViolation(CspViolation violation)
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    _violations.push_back(std::move(violation));
}

bool
CspOracle::auditLayer(const LayerId &layer,
                      const std::vector<AccessRecord> &history)
{
    // The layer's activator set is exactly the subnets appearing in
    // its history: every activator reads and writes the layer once.
    std::set<SubnetId> activators;
    for (const AccessRecord &rec : history)
        activators.insert(rec.subnet);

    std::set<SubnetId> reads;
    std::map<SubnetId, std::uint64_t> writeOrder;
    std::map<SubnetId, std::uint64_t> readOrder;
    SubnetId lastWriter = -1;
    std::uint64_t lastWriteOrder = 0;
    std::size_t before;
    {
        std::lock_guard<RankedMutex> lock(_oracleMu);
        before = _violations.size();
    }

    auto add = [&](CspViolation::Kind kind, SubnetId first,
                   SubnetId second, std::uint64_t orderFirst,
                   const AccessRecord &rec) {
        CspViolation v;
        v.kind = kind;
        v.layer = layer;
        v.stage = rec.stage;
        v.first = first;
        v.second = second;
        v.orderFirst = orderFirst;
        v.orderSecond = rec.order;
        addViolation(std::move(v));
    };

    for (const AccessRecord &rec : history) {
        const SubnetId s = rec.subnet;
        if (rec.kind == AccessKind::Read) {
            if (reads.count(s)) {
                add(CspViolation::Kind::DuplicateRead, s, s,
                    readOrder[s], rec);
                continue;
            }
            readOrder[s] = rec.order;
            reads.insert(s);
            // Freshness, missing half: the largest smaller activator
            // must already have written.
            auto it = activators.lower_bound(s);
            if (it != activators.begin()) {
                SubnetId precedent = *std::prev(it);
                if (!writeOrder.count(precedent)) {
                    add(CspViolation::Kind::ReadBeforeWrite,
                        precedent, s, 0, rec);
                }
            }
            // Freshness, overshoot half: no write by an ID >= s may
            // precede s's read.
            if (lastWriter >= s) {
                add(CspViolation::Kind::ReadAfterFuture, lastWriter,
                    s, lastWriteOrder, rec);
            }
        } else {
            if (writeOrder.count(s)) {
                add(CspViolation::Kind::DuplicateWrite, s, s,
                    writeOrder[s], rec);
                continue;
            }
            if (!reads.count(s))
                add(CspViolation::Kind::WriteBeforeRead, s, s, 0, rec);
            if (lastWriter > s) {
                add(CspViolation::Kind::WriteOrder, lastWriter, s,
                    lastWriteOrder, rec);
            }
            writeOrder[s] = rec.order;
            if (s > lastWriter) {
                lastWriter = s;
                lastWriteOrder = rec.order;
            }
        }
    }

    std::lock_guard<RankedMutex> lock(_oracleMu);
    _auditedLayers++;
    _auditedRecords += history.size();
    return _violations.size() == before;
}

bool
CspOracle::auditLog(const AccessLog &log)
{
    bool clean = true;
    for (const LayerId &layer : log.touchedLayers())
        clean = auditLayer(layer, log.layerHistory(layer)) && clean;
    return clean;
}

void
CspOracle::observeCommit(std::uint64_t layerKey, SubnetId subnet,
                         std::size_t rank, int stage)
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    _observedCommits++;
    ChainCursor &cursor = _chains[layerKey];
    if (rank != cursor.nextRank || subnet <= cursor.lastSubnet) {
        CspViolation v;
        v.kind = CspViolation::Kind::CommitOrder;
        v.layer = layerFromKey(layerKey);
        v.stage = stage;
        v.first = cursor.lastSubnet;
        v.second = subnet;
        _violations.push_back(std::move(v));
    }
    // Resync so one skipped commit is reported once, not once per
    // subsequent commit.
    cursor.nextRank = rank + 1;
    cursor.lastSubnet = subnet;
}

void
CspOracle::attach(CommitGate &gate)
{
    gate.onCommitEvent([this](std::uint64_t layerKey, SubnetId subnet,
                              std::size_t rank, int stage) {
        observeCommit(layerKey, subnet, rank, stage);
    });
}

bool
CspOracle::ok() const
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    return _violations.empty();
}

std::vector<CspViolation>
CspOracle::violations() const
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    return _violations;
}

std::string
CspOracle::report() const
{
    std::vector<CspViolation> all = violations();
    if (all.empty())
        return "";
    std::ostringstream oss;
    oss << "CSP invariant violations (" << all.size() << "):\n";
    for (std::size_t i = 0; i < all.size(); i++)
        oss << "  " << (i + 1) << ". " << all[i].describe() << "\n";
    return oss.str();
}

std::uint64_t
CspOracle::observedCommits() const
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    return _observedCommits;
}

void
CspOracle::clear()
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    _violations.clear();
    _chains.clear();
    _auditedLayers = 0;
    _auditedRecords = 0;
    _observedCommits = 0;
}

void
CspOracle::resetLiveChains()
{
    std::lock_guard<RankedMutex> lock(_oracleMu);
    _chains.clear();
}

} // namespace naspipe
