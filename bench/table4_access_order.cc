/**
 * @file
 * Table 4: access and update order of one supernet layer under
 * NASPipe/GPipe/PipeDream on 4 vs 8 GPUs — nF/nB strings exactly as
 * the paper prints them.
 */

#include <algorithm>

#include "bench_util.h"

using namespace naspipe;

namespace {

RunResult
runWith(const SearchSpace &space, const SystemModel &system, int gpus)
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = naspipe::bench::defaultSteps(32);
    config.seed = 7;
    return runTraining(space, config);
}

/** Pick the layer with the longest access history on the reference
 * run (a layer "sampled by several subnets", like the paper's
 * randomly chosen one). */
LayerId
probeLayer(const RunResult &reference)
{
    LayerId best{0, 0};
    std::size_t bestLen = 0;
    for (const LayerId &layer :
         reference.store->accessLog().touchedLayers()) {
        std::size_t len =
            reference.store->accessLog().layerHistory(layer).size();
        if (len > bestLen) {
            bestLen = len;
            best = layer;
        }
    }
    return best;
}

} // namespace

int
main()
{
    // A moderately dense space so one layer is sampled by several
    // subnets within the run.
    SearchSpace space("t4", SpaceFamily::Nlp, 16, 4, 5);

    bench::banner("Table 4: access & update order of one layer "
                  "(nF = read by subnet n's forward, nB = written by "
                  "its backward)");

    struct Row {
        const char *label;
        SystemModel system;
    };
    const Row rows[] = {
        {"NASPipe", naspipeSystem()},
        {"GPipe", gpipeSystem()},
        {"PipeDream", pipedreamSystem()},
    };

    RunResult reference = runWith(space, naspipeSystem(), 4);
    LayerId layer = probeLayer(reference);
    std::printf("probed layer: block %u, choice %u\n\n", layer.block,
                layer.choice);

    TextTable table({"System", "4 GPUs", "8 GPUs", "Invariant"});
    for (const Row &row : rows) {
        RunResult r4 = runWith(space, row.system, 4);
        RunResult r8 = runWith(space, row.system, 8);
        std::string o4 = r4.store->accessLog().renderOrder(layer);
        std::string o8 = r8.store->accessLog().renderOrder(layer);
        table.addRow({row.label, o4, o8,
                      o4 == o8 ? "YES" : "no"});
    }
    table.print(std::cout);
    std::printf("\nOnly the CSP system keeps the order invariant "
                "across GPU counts, which is how NASPipe achieves "
                "reproducibility on any cluster (§5.2).\n");
    return 0;
}
