/**
 * @file
 * Design-choice ablation: sharing density vs CSP pipeline quality.
 *
 * DESIGN.md §4 calibrates the spaces' variable-depth (skip) mass
 * from the paper's Table 2 and EXPERIMENTS.md argues the paper's
 * bubble ratios are only structurally attainable below a certain
 * pair-dependency density. This bench makes that argument visible:
 * it sweeps the skip mass on an NLP.c1-shaped space and charts the
 * measured density against NASPipe's bubble and throughput — the
 * paper's "the larger a supernet spans, the fewer dependencies
 * manifest" insight as a dose-response curve.
 */

#include "bench_util.h"
#include "common/string_util.h"

using namespace naspipe;

int
main()
{
    int steps = naspipe::bench::defaultSteps(96);
    bench::banner("Sharing-density ablation: skip mass -> dependency "
                  "density -> CSP pipeline quality (NLP.c1 shape, "
                  "8 GPUs, " + std::to_string(steps) + " subnets)");

    TextTable table({"Skip mass", "P(pair dep)", "Samples/s",
                     "Subnets/s", "Bubble", "Dep stalls"});
    for (double skip : {0.0, 0.2, 0.37, 0.5, 0.6}) {
        SearchSpace space("NLP.c1-like", SpaceFamily::Nlp, 48, 72, 7,
                          skip);
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = 8;
        config.totalSubnets = steps;
        config.seed = 7;
        config.batch = 128;  // pinned: isolate the scheduling effect
        RunResult r = runTraining(space, config);
        if (r.oom) {
            table.addRow({formatFixed(skip, 2), "-", "OOM", "-", "-",
                          "-"});
            continue;
        }
        table.addRow(
            {formatFixed(skip, 2),
             formatPercent(space.pairDependencyProbability()),
             formatFixed(r.metrics.samplesPerSec, 1),
             formatFixed(r.metrics.subnetsPerHour / 3600.0, 2),
             formatFixed(r.metrics.bubbleRatio, 2),
             std::to_string(r.metrics.stallDependency)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading guide: at skip mass 0 (every subnet full depth, "
        "the literal §3 preliminaries) nearly half of all subnet "
        "pairs conflict and the CSP pipeline serializes; at the "
        "Table 2-calibrated mass (0.37) the density matches the "
        "paper's workload and the bubble approaches its reported "
        "range. The paper's headline efficiency lives in this "
        "density regime.\n");
    return 0;
}
