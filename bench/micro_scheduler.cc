/**
 * @file
 * google-benchmark micro-benchmarks of the scheduler machinery:
 * the paper claims the SCHEDULE() call costs <0.01 s against
 * second-scale subnet executions (§3.2 complexity analysis); these
 * benchmarks verify the claim holds across queue lengths and space
 * sizes, and also time the predictor and the balanced partitioner.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "partition/partitioner.h"
#include "schedule/csp_scheduler.h"
#include "schedule/dependency.h"
#include "schedule/predictor.h"
#include "supernet/sampler.h"

namespace naspipe {
namespace {

/** Minimal StageInfo over a real space for benchmarking. */
class BenchStage : public StageInfo
{
  public:
    BenchStage(const SearchSpace &space, int queueLen,
               std::uint64_t seed)
        : _space(space), _deps(&space)
    {
        UniformSampler sampler(space, seed);
        // Half the queue's worth of unfinished precedents plus the
        // queued candidates themselves.
        int precedents = queueLen / 2;
        for (int i = 0; i < precedents + queueLen; i++) {
            Subnet sn = sampler.next();
            _deps.registerSubnet(sn);
            if (i >= precedents)
                _fwd.push_back(sn.id());
        }
        int perStage = space.numBlocks() / 8;
        _lo = 0;
        _hi = perStage - 1;
    }

    int stageIndex() const override { return 0; }
    int numStages() const override { return 8; }
    const std::vector<SubnetId> &fwdCandidates() const override
    {
        return _fwd;
    }
    const std::vector<SubnetId> &bwdCandidates() const override
    {
        return _bwd;
    }
    const Subnet &subnet(SubnetId id) const override
    {
        return _deps.subnet(id);
    }
    std::pair<int, int> blockRange(SubnetId) const override
    {
        return {_lo, _hi};
    }
    const DependencyTracker &deps() const override { return _deps; }
    bool upstreamWritesDone(SubnetId) const override { return true; }

  private:
    const SearchSpace &_space;
    DependencyTracker _deps;
    std::vector<SubnetId> _fwd;
    std::vector<SubnetId> _bwd;
    int _lo = 0;
    int _hi = 0;
};

void
BM_Schedule(benchmark::State &state)
{
    // NLP.c1-shaped space; queue length is the sweep variable (the
    // paper bounds |L_q| below ~30).
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    BenchStage stage(space, static_cast<int>(state.range(0)), 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CspPolicy::schedulableForward(stage, -1, true));
    }
}
BENCHMARK(BM_Schedule)->Arg(4)->Arg(8)->Arg(16)->Arg(30)->Arg(64);

void
BM_ScheduleBySpaceSize(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48,
                      static_cast<int>(state.range(0)), 7, 0.37);
    BenchStage stage(space, 16, 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            CspPolicy::schedulableForward(stage, -1, true));
    }
}
BENCHMARK(BM_ScheduleBySpaceSize)->Arg(24)->Arg(48)->Arg(72)->Arg(96);

void
BM_PolicyPick(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    BenchStage stage(space, 16, 11);
    CspPolicy policy;
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.pick(stage));
}
BENCHMARK(BM_PolicyPick);

void
BM_PredictorBeforeBackward(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    BenchStage stage(space, 16, 11);
    Predictor predictor;
    int fetches = 0;
    auto fetch = [&fetches](const Task &, PredictReason) {
        fetches++;
    };
    for (auto _ : state) {
        predictor.beforeBackward(stage, 0, {}, fetch);
    }
    benchmark::DoNotOptimize(fetches);
}
BENCHMARK(BM_PredictorBeforeBackward);

void
BM_BalancedPartition(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    Partitioner part(space, 160);
    UniformSampler sampler(space, 13);
    Subnet sn = sampler.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            part.balanced(sn, static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_BalancedPartition)->Arg(4)->Arg(8)->Arg(16);

void
BM_DependencyDensity(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    UniformSampler sampler(space, 17);
    std::vector<Subnet> subnets;
    for (int i = 0; i < 64; i++)
        subnets.push_back(sampler.next());
    for (auto _ : state) {
        double density = 0;
        for (std::size_t i = 1; i < subnets.size(); i++)
            density += subnets[i - 1].sharesLayerWith(subnets[i]);
        benchmark::DoNotOptimize(density);
    }
}
BENCHMARK(BM_DependencyDensity);

} // namespace
} // namespace naspipe

BENCHMARK_MAIN();
