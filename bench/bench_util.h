/**
 * @file
 * Shared configuration for the benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation (§5). They share the evaluation defaults here so
 * numbers are comparable across binaries; NASPIPE_BENCH_STEPS can
 * override the per-run step count for quicker smoke runs.
 */

#ifndef NASPIPE_BENCH_BENCH_UTIL_H
#define NASPIPE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/ablation.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/report.h"

namespace naspipe {
namespace bench {

/** Steps per measured run (override with NASPIPE_BENCH_STEPS). */
inline int
defaultSteps(int fallback = 96)
{
    if (const char *env = std::getenv("NASPIPE_BENCH_STEPS")) {
        int value = std::atoi(env);
        if (value > 0)
            return value;
    }
    return fallback;
}

/** The paper's evaluation defaults (8 GPUs unless a figure varies). */
inline EvaluationDefaults
paperDefaults()
{
    EvaluationDefaults d;
    d.gpus = 8;
    d.steps = defaultSteps();
    d.seed = 7;
    return d;
}

/** Print a section header. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace bench
} // namespace naspipe

#endif // NASPIPE_BENCH_BENCH_UTIL_H
