/**
 * @file
 * Figure 6: ablation study — NASPipe vs NASPipe w/o scheduler,
 * w/o predictor, w/o mirroring, across the seven spaces.
 */

#include "bench_util.h"

using namespace naspipe;

int
main()
{
    EvaluationDefaults defaults = bench::paperDefaults();
    bench::banner("Figure 6: ablation study (8 GPUs, " +
                  std::to_string(defaults.steps) +
                  " subnets per run)");

    std::vector<AblationEntry> all;
    for (const std::string &name : defaultSpaceNames()) {
        SearchSpace space = makeSpaceByName(name);
        auto entries = runAblationStudy(space, defaults);
        all.insert(all.end(), entries.begin(), entries.end());
    }
    buildAblationTable(all).print(std::cout);

    std::printf(
        "\nReading guide (§5.3): w/o scheduler drains the pipeline "
        "between waves (higher bubble); w/o predictor keeps the whole "
        "supernet on GPU (smaller batch, OOM on NLP.c0); w/o "
        "mirroring loses per-subnet balanced partitions.\n");
    return 0;
}
