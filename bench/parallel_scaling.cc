/**
 * @file
 * Threaded-executor scaling: throughput vs worker count.
 *
 * Runs the same training configuration on the ParallelRuntime with
 * 1..hardware_concurrency workers and reports real wall-clock
 * throughput next to the simulator's predicted throughput at the
 * same stage count, plus the per-stage busy/gate-wait/idle breakdown
 * the CommitGate makes observable. Every row also cross-checks that
 * the threaded weights equal the simulator's at that worker count —
 * the scaling sweep is simultaneously a reproducibility sweep.
 *
 * NASPIPE_SCALING_CSV=<path> additionally writes the rows as CSV.
 */

#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exec/parallel_runtime.h"

using namespace naspipe;

int
main()
{
    int steps = bench::defaultSteps(64);
    // Sweep 1..hardware_concurrency, floored at 4 so constrained
    // machines still exercise a real pipeline (oversubscribed
    // workers are correct, just slower). NASPIPE_SCALING_MAX_WORKERS
    // overrides.
    unsigned hw = std::thread::hardware_concurrency();
    int maxWorkers = std::max(hw ? static_cast<int>(hw) : 8, 4);
    if (const char *env = std::getenv("NASPIPE_SCALING_MAX_WORKERS")) {
        int value = std::atoi(env);
        if (value > 0)
            maxWorkers = value;
    }
    bench::banner("Threaded CSP executor scaling (NLP.c1, " +
                  std::to_string(steps) + " subnets, up to " +
                  std::to_string(maxWorkers) + " workers)");

    SearchSpace space = makeSpaceByName("NLP.c1");

    std::vector<int> workerCounts;
    for (int w = 1; w <= maxWorkers; w *= 2)
        workerCounts.push_back(w);
    if (workerCounts.back() != maxWorkers)
        workerCounts.push_back(maxWorkers);

    TextTable table({"Workers", "Batch", "Wall", "Subnets/s",
                     "Speedup", "Busy", "Gate wait", "Idle",
                     "Cache hit", "Sim subnets/s", "Bitwise"});
    CsvWriter csv({"workers", "batch", "wall_s", "subnets_per_s",
                   "speedup", "busy_s", "gate_wait_s", "idle_s",
                   "cache_hit_rate", "sim_subnets_per_s",
                   "bitwise"});

    double baseline = 0.0;
    for (int workers : workerCounts) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = workers;
        config.totalSubnets = steps;
        config.seed = 7;

        RunResult sim = runTraining(space, config);
        RunResult thr = runTrainingThreaded(space, config);
        if (sim.oom || thr.oom) {
            std::printf("%d workers: OOM — skipping\n", workers);
            continue;
        }
        if (thr.failed) {
            std::printf("%d workers: %s\n", workers,
                        thr.error.c_str());
            continue;
        }

        const RunMetrics &m = thr.metrics;
        double subnetsPerSec =
            m.wallSeconds > 0.0 ? steps / m.wallSeconds : 0.0;
        if (baseline == 0.0)
            baseline = subnetsPerSec;
        double busy = 0.0, gateWait = 0.0, idle = 0.0;
        for (int s = 0; s < workers; s++) {
            busy += m.perStageBusySec[static_cast<std::size_t>(s)];
            gateWait +=
                m.perStageGateWaitSec[static_cast<std::size_t>(s)];
            idle += m.perStageIdleSec[static_cast<std::size_t>(s)];
        }
        double simSubnetsPerSec =
            sim.metrics.simSeconds > 0.0
                ? steps / sim.metrics.simSeconds
                : 0.0;
        bool bitwise = sim.supernetHash == thr.supernetHash;

        table.addRow(
            {std::to_string(workers), std::to_string(m.batch),
             formatFixed(m.wallSeconds, 3) + "s",
             formatFixed(subnetsPerSec, 0),
             formatFactor(baseline > 0.0
                              ? subnetsPerSec / baseline
                              : 0.0,
                          2),
             formatFixed(busy, 3) + "s",
             formatFixed(gateWait, 3) + "s",
             formatFixed(idle, 3) + "s",
             formatCacheHitRate(m.cacheHitRate),
             formatFixed(simSubnetsPerSec, 0),
             bitwise ? "yes" : "NO"});
        csv.addRow({std::to_string(workers), std::to_string(m.batch),
                    formatFixed(m.wallSeconds, 6),
                    formatFixed(subnetsPerSec, 2),
                    formatFixed(baseline > 0.0
                                    ? subnetsPerSec / baseline
                                    : 0.0,
                                3),
                    formatFixed(busy, 6), formatFixed(gateWait, 6),
                    formatFixed(idle, 6),
                    m.cacheHitRate ? formatFixed(*m.cacheHitRate, 4)
                                   : std::string("NA"),
                    formatFixed(simSubnetsPerSec, 2),
                    bitwise ? "1" : "0"});
        if (!bitwise) {
            std::printf("ERROR: %d-worker weights diverged from the "
                        "simulator\n",
                        workers);
            return 1;
        }
    }
    table.print(std::cout);
    std::printf(
        "\nThe numeric kernels here are %dx%d digest layers, so one\n"
        "subnet is microseconds of math: gate waits and wakeups\n"
        "dominate, and the sweep measures executor overhead (real\n"
        "GPU kernels would swamp it). 'Bitwise' compares the trained\n"
        "weights against the simulator at the same stage count.\n",
        static_cast<int>(kLayerDim), static_cast<int>(kLayerDim));

    if (const char *path = std::getenv("NASPIPE_SCALING_CSV")) {
        if (csv.writeFile(path))
            std::printf("csv written to %s\n", path);
        else
            std::printf("cannot write csv to %s\n", path);
    }
    return 0;
}
