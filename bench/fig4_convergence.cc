/**
 * @file
 * Figure 4: end-to-end training convergence (score vs wall-clock
 * time) of the four systems on the six Table 3 spaces. Prints a
 * compact series per curve and writes machine-readable CSVs.
 */

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"

using namespace naspipe;

int
main()
{
    EvaluationDefaults defaults = bench::paperDefaults();
    defaults.steps = naspipe::bench::defaultSteps(128);

    bench::banner("Figure 4: training convergence, score vs "
                  "wall-clock (8 GPUs, " +
                  std::to_string(defaults.steps) + " subnets)");

    const char *spaces[] = {"NLP.c1", "NLP.c2", "NLP.c3",
                            "CV.c1",  "CV.c2",  "CV.c3"};

    for (const char *name : spaces) {
        SearchSpace space = makeSpaceByName(name);
        std::printf("\n--- %s (score: %s) ---\n", name,
                    space.family() == SpaceFamily::Nlp
                        ? "BLEU-like"
                        : "top-5-like");
        CsvWriter csv({"system", "time_s", "loss", "score"});
        for (const SystemModel &system : evaluatedSystems()) {
            ExperimentResult res =
                runExperiment(space, system, defaults);
            if (res.run.oom) {
                std::printf("%-10s OOM\n", system.name.c_str());
                continue;
            }
            // Print a 6-point summary of the curve.
            const auto &curve = res.run.curve;
            std::printf("%-10s ", system.name.c_str());
            std::size_t stride =
                std::max<std::size_t>(1, curve.size() / 6);
            for (std::size_t i = 0; i < curve.size(); i += stride) {
                std::printf(" %6.1fs:%s", curve[i].timeSec,
                            formatScore(curve[i].score,
                                        space.family())
                                .c_str());
            }
            std::printf("  final %s @ %.1fs\n",
                        formatScore(res.run.metrics.finalScore,
                                    space.family())
                            .c_str(),
                        res.run.metrics.simSeconds);
            for (const auto &p : curve) {
                csv.addRow({system.name, formatFixed(p.timeSec, 3),
                            formatFixed(p.loss, 6),
                            formatFixed(p.score, 4)});
            }
        }
        std::string path =
            std::string("fig4_") + name + ".csv";
        if (csv.writeFile(path))
            std::printf("(series written to %s)\n", path.c_str());
    }

    std::printf(
        "\nShape check: within a fixed time budget NASPipe reaches "
        "higher scores than GPipe/PipeDream on the larger spaces "
        "because each wall-clock second trains more samples; CSP also "
        "avoids the stale-read noise that degrades ASP's final "
        "score.\n");
    return 0;
}
