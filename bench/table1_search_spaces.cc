/**
 * @file
 * Table 1: the seven search spaces of the evaluation, plus the
 * derived statistics the rest of the evaluation builds on.
 */

#include "bench_util.h"
#include "common/string_util.h"
#include "supernet/supernet.h"

using namespace naspipe;

int
main()
{
    bench::banner("Table 1: default evaluation setup of seven search "
                  "spaces");
    buildTable1(defaultSpaceNames()).print(std::cout);

    bench::banner("Derived space statistics");
    TextTable stats({"Space", "Supernet", "Mean subnet",
                     "log10(archs)", "P(pair dep)"});
    for (const std::string &name : defaultSpaceNames()) {
        SearchSpace space = makeSpaceByName(name);
        stats.addRow({space.name(),
                      formatBytes(space.totalParamBytes()),
                      formatBytes(space.meanSubnetParamBytes()),
                      formatFixed(space.logCandidates(), 1),
                      formatPercent(
                          space.pairDependencyProbability())});
    }
    stats.print(std::cout);
    std::printf("\nP(pair dep): probability two sampled subnets share "
                "a parameterized layer — the paper's 'larger supernet, "
                "fewer dependencies' insight in numbers.\n");
    return 0;
}
