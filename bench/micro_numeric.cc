/**
 * @file
 * google-benchmark micro-benchmarks of the numeric training plane:
 * the per-layer surrogate math, whole-subnet training steps and
 * checkpoint serialization. The numeric plane must stay cheap next
 * to the event simulation so full evaluation sweeps run in seconds.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "supernet/sampler.h"
#include "train/numeric_executor.h"

namespace naspipe {
namespace {

void
BM_LayerForward(benchmark::State &state)
{
    LayerParams params;
    initLayerParams(params, 3, 0, 0);
    Tensor in(kLayerDim), out(kLayerDim);
    in.fill(0.25f);
    for (auto _ : state) {
        layerForward(params, in, out);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_LayerForward);

void
BM_LayerBackward(benchmark::State &state)
{
    LayerParams params;
    initLayerParams(params, 3, 0, 0);
    Tensor in(kLayerDim), gradOut(kLayerDim), gradIn(kLayerDim);
    in.fill(0.25f);
    gradOut.fill(0.1f);
    LayerGrads grads;
    for (auto _ : state) {
        grads.clear();
        layerBackward(params, in, gradOut, gradIn, grads);
        benchmark::DoNotOptimize(grads.weight.data().data());
    }
}
BENCHMARK(BM_LayerBackward);

void
BM_TrainSequentialSubnet(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    config.batch = 160;
    NumericExecutor exec(store, config);
    UniformSampler sampler(space, 13);
    SubnetId id = 0;
    for (auto _ : state) {
        Subnet sn = sampler.next();
        benchmark::DoNotOptimize(exec.trainSequential(sn));
        (void)id;
    }
}
BENCHMARK(BM_TrainSequentialSubnet);

void
BM_EvaluateSubnet(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    NumericExecutor exec(store, config);
    UniformSampler sampler(space, 13);
    Subnet sn = sampler.next();
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.evaluate(sn, 42));
}
BENCHMARK(BM_EvaluateSubnet);

void
BM_SupernetHash(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48,
                      static_cast<int>(state.range(0)), 7, 0.37);
    ParameterStore store(space, 7);
    store.supernetHash();  // materialize once
    for (auto _ : state)
        benchmark::DoNotOptimize(store.supernetHash());
}
BENCHMARK(BM_SupernetHash)->Arg(24)->Arg(72);

void
BM_CheckpointSave(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 24, 7, 0.37);
    ParameterStore store(space, 7);
    store.supernetHash();  // materialize all layers
    for (auto _ : state) {
        std::stringstream buffer;
        benchmark::DoNotOptimize(store.save(buffer));
    }
}
BENCHMARK(BM_CheckpointSave);

} // namespace
} // namespace naspipe

BENCHMARK_MAIN();
