/**
 * @file
 * google-benchmark micro-benchmarks of the numeric training plane:
 * the per-layer surrogate math, whole-subnet training steps and
 * checkpoint serialization. The numeric plane must stay cheap next
 * to the event simulation so full evaluation sweeps run in seconds.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "supernet/sampler.h"
#include "tensor/kernels/reduce.h"
#include "train/numeric_executor.h"

namespace naspipe {
namespace {

void
BM_LayerForward(benchmark::State &state)
{
    LayerParams params;
    initLayerParams(params, 3, 0, 0);
    Tensor in(kLayerDim), out(kLayerDim);
    in.fill(0.25f);
    for (auto _ : state) {
        layerForward(params, in, out);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_LayerForward);

void
BM_LayerBackward(benchmark::State &state)
{
    LayerParams params;
    initLayerParams(params, 3, 0, 0);
    Tensor in(kLayerDim), gradOut(kLayerDim), gradIn(kLayerDim);
    in.fill(0.25f);
    gradOut.fill(0.1f);
    LayerGrads grads;
    for (auto _ : state) {
        grads.clear();
        layerBackward(params, in, gradOut, gradIn, grads);
        benchmark::DoNotOptimize(grads.weight.data().data());
    }
}
BENCHMARK(BM_LayerBackward);

void
BM_TrainSequentialSubnet(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    config.batch = 160;
    NumericExecutor exec(store, config);
    UniformSampler sampler(space, 13);
    SubnetId id = 0;
    for (auto _ : state) {
        Subnet sn = sampler.next();
        benchmark::DoNotOptimize(exec.trainSequential(sn));
        (void)id;
    }
}
BENCHMARK(BM_TrainSequentialSubnet);

void
BM_EvaluateSubnet(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    NumericExecutor exec(store, config);
    UniformSampler sampler(space, 13);
    Subnet sn = sampler.next();
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.evaluate(sn, 42));
}
BENCHMARK(BM_EvaluateSubnet);

void
BM_SupernetHash(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48,
                      static_cast<int>(state.range(0)), 7, 0.37);
    ParameterStore store(space, 7);
    store.supernetHash();  // materialize once
    for (auto _ : state)
        benchmark::DoNotOptimize(store.supernetHash());
}
BENCHMARK(BM_SupernetHash)->Arg(24)->Arg(72);

/** Operand vector for the reduction benchmarks: varied, bounded. */
std::vector<float>
reduceOperands(std::size_t n)
{
    std::vector<float> a(n);
    for (std::size_t i = 0; i < n; i++)
        a[i] = 0.001f * static_cast<float>(i % 97) - 0.05f;
    return a;
}

void
BM_ReduceSequential(benchmark::State &state)
{
    // The pre-kernel-layer baseline: one serial dependency chain.
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<float> a = reduceOperands(n);
    for (auto _ : state) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < n; i++)
            acc += a[i];
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ReduceSequential)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_ReduceTree(benchmark::State &state)
{
    // The kernel layer's fixed-shape pairwise tree: independent
    // adjacent-pair adds the compiler can vectorize, same bits on
    // every platform.
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<float> a = reduceOperands(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::treeSum(a.data(), n));
}
BENCHMARK(BM_ReduceTree)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void
BM_ReduceTreeDot(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<float> a = reduceOperands(n);
    std::vector<float> b = reduceOperands(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::treeDot(a.data(), b.data(), n));
}
BENCHMARK(BM_ReduceTreeDot)->Arg(4096)->Arg(65536);

void
BM_CheckpointSave(benchmark::State &state)
{
    SearchSpace space("bench", SpaceFamily::Nlp, 48, 24, 7, 0.37);
    ParameterStore store(space, 7);
    store.supernetHash();  // materialize all layers
    for (auto _ : state) {
        std::stringstream buffer;
        benchmark::DoNotOptimize(store.save(buffer));
    }
}
BENCHMARK(BM_CheckpointSave);

} // namespace
} // namespace naspipe

BENCHMARK_MAIN();
