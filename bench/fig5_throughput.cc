/**
 * @file
 * Figure 5: normalized training throughput of NASPipe, GPipe,
 * PipeDream and VPipe on the seven search spaces (8 GPUs), with
 * NASPipe's subnets/hour annotated as on the figure's red bars.
 */

#include "bench_util.h"

using namespace naspipe;

int
main()
{
    EvaluationDefaults defaults = bench::paperDefaults();
    bench::banner(
        "Figure 5: normalized throughput, seven spaces x four "
        "systems (8 GPUs, " + std::to_string(defaults.steps) +
        " subnets per run)");

    auto results = runEvaluationMatrix(defaultSpaceNames(),
                                       evaluatedSystems(), defaults);
    buildThroughputTable(results).print(std::cout);

    std::printf(
        "\nNotes: throughput normalized to GPipe per space (to the "
        "first runnable system where GPipe OOMs). NLP.c0 exceeds the "
        "all-resident baselines' GPU memory, as the paper reports. "
        "See EXPERIMENTS.md for the shape comparison against the "
        "paper's 1.1x-7.8x range.\n");
    return 0;
}
