/**
 * @file
 * Figure 1: ASP vs BSP vs CSP pipelines on an ordered subnet list
 * with causal dependencies. Renders each discipline's schedule as an
 * ASCII timeline and reports dependency preservation and bubble
 * rate — the trade-off the figure illustrates.
 */

#include "bench_util.h"
#include "common/string_util.h"
#include "runtime/pipeline_runtime.h"

using namespace naspipe;

namespace {

RunResult
runOn(const SearchSpace &space, const SystemModel &system)
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = 4;
    config.totalSubnets = 8;
    config.seed = 3;
    config.traceEnabled = true;
    return runTraining(space, config);
}

} // namespace

int
main()
{
    // A deliberately dense little space so the 8 subnets manifest
    // visible dependencies, like the figure's example.
    SearchSpace space("fig1", SpaceFamily::Nlp, 8, 3, 3);

    struct Row {
        const char *label;
        SystemModel system;
    };
    const Row rows[] = {
        {"ASP pipeline (PipeDream)", pipedreamSystem()},
        {"BSP pipeline (GPipe)", gpipeSystem()},
        {"CSP pipeline (NASPipe)", naspipeSystem()},
    };

    TextTable summary({"Discipline", "Deps preserved",
                       "Violated layers", "Bubble", "Makespan(s)"});
    for (const Row &row : rows) {
        RunResult r = runOn(space, row.system);
        bench::banner(std::string(row.label) + " — schedule timeline");
        std::printf("%s", r.trace->renderTimeline(4, 96).c_str());
        summary.addRow(
            {row.system.syncName(),
             r.metrics.causalViolations == 0 ? "yes" : "NO",
             std::to_string(r.metrics.causalViolations),
             formatFixed(r.metrics.bubbleRatio, 2),
             formatFixed(r.metrics.simSeconds, 2)});
    }

    bench::banner("Figure 1 summary: only CSP retains every causal "
                  "dependency at a pipeline-worthy bubble rate");
    summary.print(std::cout);
    return 0;
}
