/**
 * @file
 * Fault-recovery overhead: checkpoint interval vs lost work.
 *
 * Sweeps the checkpoint interval for a run that suffers one GPU
 * crash and reports the classic recovery trade-off: frequent
 * checkpoints cost write time on every boundary, sparse checkpoints
 * cost replayed subnets on every failure. Every row terminates with
 * the same supernet weights — the recovery path never trades
 * reproducibility for speed.
 *
 * `--executor threads` runs the same sweep on the threaded executor
 * (supervised workers, watchdog, in-place recovery) instead of the
 * simulator; the bitwise column then certifies that real-thread
 * recovery lands on the same weights too.
 */

#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exec/parallel_runtime.h"

using namespace naspipe;

int
main(int argc, char **argv)
{
    bool threaded = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--executor") == 0 &&
            i + 1 < argc) {
            threaded = std::strcmp(argv[i + 1], "threads") == 0;
            i++;
        }
    }
    int steps = bench::defaultSteps(64);
    bench::banner(
        "Fault recovery: checkpoint interval vs lost work "
        "(NLP.c2, 8 GPUs, one GPU crash at step " +
        std::to_string(3 * steps / 4) + " of " +
        std::to_string(steps) + ", executor " +
        (threaded ? "threads" : "sim") + ")");

    SearchSpace space = makeSpaceByName("NLP.c2");

    RuntimeConfig base;
    base.system = naspipeSystem();
    base.numStages = 8;
    base.totalSubnets = steps;
    base.seed = 7;

    auto run = [&](const RuntimeConfig &config) {
        return threaded ? runTrainingThreaded(space, config)
                        : runTraining(space, config);
    };

    RunResult faultFree = run(base);
    if (faultFree.oom) {
        std::printf("NLP.c2 does not fit on 8 GPUs — skipping\n");
        return 0;
    }
    std::printf("fault-free   %.2fs simulated, weights %016llx\n\n",
                faultFree.metrics.simSeconds,
                static_cast<unsigned long long>(
                    faultFree.supernetHash));

    FaultSpec crash;
    crash.kind = FaultKind::GpuCrash;
    crash.atStep = 3 * steps / 4;
    crash.stage = 2;

    TextTable table({"Interval", "Ckpts", "Ckpt bytes",
                     "Ckpt time", "Replayed", "Lost compute",
                     "Sim time", "Overhead", "Bitwise"});
    for (int interval : {0, 4, 8, 16, 32}) {
        RuntimeConfig config = base;
        config.ckptInterval = interval;
        config.faults = {crash};
        RunResult result = run(config);
        if (result.failed) {
            std::printf("interval %d failed: %s\n", interval,
                        result.error.c_str());
            continue;
        }
        const RunMetrics &m = result.metrics;
        double overhead =
            m.simSeconds / faultFree.metrics.simSeconds - 1.0;
        table.addRow({
            interval == 0 ? "none" : std::to_string(interval),
            std::to_string(m.checkpointsWritten),
            m.checkpointsWritten
                ? formatBytes(m.checkpointBytes)
                : "-",
            formatFixed(m.checkpointSeconds, 3) + "s",
            std::to_string(m.subnetsReplayed),
            formatFixed(m.lostComputeSeconds, 2) + "s",
            formatFixed(m.simSeconds, 2) + "s",
            formatPercent(overhead),
            result.supernetHash == faultFree.supernetHash ? "yes"
                                                          : "NO",
        });
    }
    table.print(std::cout);
    std::printf(
        "\nEvery interval recovers to the fault-free weights; the\n"
        "interval only moves cost between checkpoint writes and\n"
        "replayed subnets (interval `none` restarts from subnet 0).\n");
    return 0;
}
