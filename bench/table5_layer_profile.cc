/**
 * @file
 * Table 5: computation vs swap time for the eight representative
 * layers, plus a self-consistency check of the swap model against
 * the PCIe bandwidth.
 */

#include "bench_util.h"
#include "common/string_util.h"
#include "memory/swap_model.h"

using namespace naspipe;

int
main()
{
    bench::banner("Table 5: comparison of computation and swap time "
                  "for eight representative layers");
    buildTable5().print(std::cout);

    bench::banner("Swap-model self-consistency (swap = params / PCIe "
                  "3.0 x16)");
    SwapModel model;
    TextTable check({"Layer", "Params", "Table swap(ms)",
                     "Model swap(ms)"});
    const LayerKind kinds[] = {
        LayerKind::Conv3x1,    LayerKind::SepConv7x1,
        LayerKind::LightConv5x1, LayerKind::Attention8Head,
        LayerKind::Conv3x3,    LayerKind::SepConv3x3,
        LayerKind::SepConv5x5, LayerKind::DilConv3x3,
    };
    for (LayerKind kind : kinds) {
        const LayerSpec &spec = LayerProfileDb::instance().reference(kind);
        check.addRow({layerKindName(kind),
                      formatBytes(spec.paramBytes),
                      formatFixed(spec.swapMs, 2),
                      formatFixed(model.swapMs(spec.paramBytes), 2)});
    }
    check.print(std::cout);
    std::printf("\nCompute times always dominate swap times, the "
                "property the context manager's overlap relies on "
                "(§3.3).\n");
    return 0;
}
