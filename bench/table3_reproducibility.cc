/**
 * @file
 * Table 3: reproducibility of supernet loss and search accuracy
 * under CSP/BSP/ASP on 4, 8 and 16 GPUs.
 */

#include <algorithm>

#include "bench_util.h"
#include "common/string_util.h"

using namespace naspipe;

namespace {

struct SyncRow {
    const char *label;
    SystemModel system;
};

std::string
fmtLoss(const RunResult &r)
{
    return r.oom ? "OOM" : formatFixed(r.metrics.finalLoss, 6);
}

std::string
fmtAcc(const RunResult &r, SpaceFamily family)
{
    return r.oom ? "OOM" : formatScore(r.searchAccuracy, family);
}

} // namespace

int
main()
{
    int steps = naspipe::bench::defaultSteps(64);
    bench::banner("Table 3: reproducibility — supernet loss and "
                  "search accuracy on 4/8/16 GPUs (" +
                  std::to_string(steps) + " subnets, same seed)");

    const SyncRow syncs[] = {
        {"CSP", naspipeSystem()},
        {"BSP", gpipeSystem()},
        {"ASP", pipedreamSystem()},
    };
    const int gpuCounts[] = {4, 8, 16};

    TextTable table({"Space", "Sync", "Loss 4GPU", "Loss 8GPU",
                     "Loss 16GPU", "Acc 4GPU", "Acc 8GPU",
                     "Acc 16GPU", "Reproducible"});

    // The paper's Table 3 covers NLP.c1-c3 and CV.c1-c3.
    const char *spaces[] = {"NLP.c1", "NLP.c2", "NLP.c3",
                            "CV.c1",  "CV.c2",  "CV.c3"};
    for (const char *name : spaces) {
        SearchSpace space = makeSpaceByName(name);
        table.addSeparator();
        for (const SyncRow &sync : syncs) {
            // Pin the batch across GPU counts (the paper keeps
            // "random seed, batch size and other hyperparameters the
            // same"), using the counts the system can run at all.
            std::vector<int> runnable;
            for (int gpus : gpuCounts) {
                if (Engine::commonBatch(space, sync.system, {gpus}))
                    runnable.push_back(gpus);
            }
            int batch = runnable.empty()
                            ? 0
                            : Engine::commonBatch(space, sync.system,
                                                  runnable);

            std::vector<RunResult> runs;
            for (int gpus : gpuCounts) {
                if (batch == 0 ||
                    std::find(runnable.begin(), runnable.end(),
                              gpus) == runnable.end()) {
                    runs.emplace_back();  // default: oom=false...
                    runs.back().oom = true;
                    continue;
                }
                Engine::Options o;
                o.gpus = gpus;
                o.steps = steps;
                o.seed = 7;
                o.batch = batch;
                runs.push_back(
                    Engine(space, o).trainWith(sync.system));
            }
            bool reproducible =
                !runs[0].oom && !runs[1].oom && !runs[2].oom &&
                runs[0].supernetHash == runs[1].supernetHash &&
                runs[1].supernetHash == runs[2].supernetHash;
            table.addRow({name, sync.label, fmtLoss(runs[0]),
                          fmtLoss(runs[1]), fmtLoss(runs[2]),
                          fmtAcc(runs[0], space.family()),
                          fmtAcc(runs[1], space.family()),
                          fmtAcc(runs[2], space.family()),
                          reproducible ? "YES (bitwise)" : "no"});
        }
    }
    table.print(std::cout);
    std::printf("\nCSP rows must be column-identical (bitwise weight "
                "equality, Definition 1); BSP/ASP rows drift with the "
                "GPU count because their read/write interleavings "
                "change with the cluster.\n");
    return 0;
}
