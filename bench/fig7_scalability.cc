/**
 * @file
 * Figure 7: total GPU ALU utilization of the four systems as the
 * cluster scales from 4 to 16 GPUs on NLP.c1.
 *
 * As in the paper's §5.2/§5.4 methodology, hyperparameters — in
 * particular the batch size — are fixed across GPU counts (each
 * system uses the batch its 8-GPU configuration supports), so the
 * curves isolate the scaling of the *pipeline*, not of the memory
 * budget.
 */

#include <algorithm>

#include "bench_util.h"
#include "common/string_util.h"
#include "memory/swap_model.h"

using namespace naspipe;

int
main()
{
    SearchSpace space = makeNlpC1();
    int steps = naspipe::bench::defaultSteps(96);
    bench::banner("Figure 7: total ALU utilization vs GPU count "
                  "(NLP.c1, " + std::to_string(steps) + " subnets)");

    const int gpuCounts[] = {4, 8, 12, 16};
    TextTable table({"System", "4 GPUs", "8 GPUs", "12 GPUs",
                     "16 GPUs", "Imbal@16", "Batch"});

    for (const SystemModel &system : evaluatedSystems()) {
        // One batch per system, fixed across GPU counts (paper
        // methodology): the largest that fits every count the
        // system can run at all.
        CapacityPlanner planner(space, GpuConfig{});
        std::vector<int> runnable;
        for (int gpus : gpuCounts) {
            if (planner.plan(system, gpus).fits)
                runnable.push_back(gpus);
        }
        int batch = runnable.empty()
                        ? 0
                        : Engine::commonBatch(space, system,
                                              runnable);

        std::vector<std::string> cells = {system.name};
        std::string imbalance = "-";
        for (int gpus : gpuCounts) {
            if (batch == 0 ||
                std::find(runnable.begin(), runnable.end(), gpus) ==
                    runnable.end()) {
                cells.push_back("OOM");
                continue;
            }
            RuntimeConfig config;
            config.system = system;
            config.numStages = gpus;
            config.totalSubnets = steps;
            config.seed = 7;
            config.batch = batch;
            RunResult r = runTraining(space, config);
            cells.push_back(
                formatFactor(r.metrics.totalAluUtilization, 2));
            if (gpus == 16)
                imbalance =
                    formatFactor(r.metrics.aluImbalance(), 1);
        }
        cells.push_back(imbalance);
        cells.push_back(batch > 0 ? std::to_string(batch) : "-");
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    std::printf(
        "\nShape check: NASPipe's usable compute grows with the GPU "
        "count until the causal-dependency chain rate saturates it "
        "(see EXPERIMENTS.md for the structural analysis); the "
        "all-resident baselines cannot even hold NLP.c1 below 8 "
        "GPUs.\n");
    return 0;
}
