/**
 * @file
 * Table 2: resource consumption and micro events for every
 * (space, system) cell — Para., Score, Batch, GPU Mem., GPU ALU,
 * CPU Mem., Exec., Bub., Cache Hit.
 */

#include "bench_util.h"

using namespace naspipe;

int
main()
{
    EvaluationDefaults defaults = bench::paperDefaults();
    bench::banner("Table 2: resource consumption and micro events "
                  "(8 GPUs)");

    // The paper's Table 2 covers the six spaces below (NLP.c0 only
    // appears in the throughput discussion); we include c0 as well
    // to document the OOM rows.
    auto results = runEvaluationMatrix(defaultSpaceNames(),
                                       evaluatedSystems(), defaults);
    buildTable2(results).print(std::cout);

    std::printf(
        "\nReading guide (paper Table 2): NASPipe/VPipe keep only "
        "subnet-sized parameter state on GPU (Para.), freeing memory "
        "for 3-6x larger batches; CPU Mem. holds the pinned supernet "
        "for the swap-based systems; Cache Hit is the predictor's "
        "anticipation rate (N/A when everything is resident).\n");
    return 0;
}
