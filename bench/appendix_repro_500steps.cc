/**
 * @file
 * Artifact appendix, Experiment 1: reproducible parallel training on
 * 1-GPU vs 4-GPU settings over NLP.c0 — all 500 training-step
 * outputs must match in full floating-point precision.
 */

#include <cmath>

#include "bench_util.h"
#include "common/string_util.h"

using namespace naspipe;

int
main()
{
    int steps = naspipe::bench::defaultSteps(500);
    bench::banner("Appendix A.5 Experiment 1: " +
                  std::to_string(steps) +
                  "-step output comparison, 1 GPU vs 4 GPUs "
                  "(NLP.c0, CSP)");

    SearchSpace space = makeNlpC0();
    int batch = Engine::commonBatch(space, naspipeSystem(), {1, 4});
    std::printf("pinned batch across settings: %d\n", batch);
    auto runWith = [&](int gpus) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = steps;
        config.seed = 7;
        config.batch = batch;
        return runTraining(space, config);
    };

    RunResult single = runWith(1);
    RunResult parallel = runWith(4);

    int mismatches = 0;
    float maxDelta = 0.0f;
    for (const auto &[id, loss] : single.losses) {
        float other = parallel.losses.at(id);
        if (loss != other) {
            mismatches++;
            maxDelta = std::max(maxDelta, std::fabs(loss - other));
        }
    }

    std::printf("steps compared:       %zu\n", single.losses.size());
    std::printf("bitwise mismatches:   %d\n", mismatches);
    std::printf("max |delta|:          %g\n", maxDelta);
    std::printf("supernet hash 1 GPU:  %016llx\n",
                static_cast<unsigned long long>(single.supernetHash));
    std::printf("supernet hash 4 GPUs: %016llx\n",
                static_cast<unsigned long long>(
                    parallel.supernetHash));
    bool pass = mismatches == 0 &&
                single.supernetHash == parallel.supernetHash;
    std::printf("\nRESULT: %s — all %d training-step outputs %s in "
                "full precision floating point.\n",
                pass ? "PASS" : "FAIL", steps,
                pass ? "match" : "DO NOT match");
    return pass ? 0 : 1;
}
