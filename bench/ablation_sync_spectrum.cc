/**
 * @file
 * Design-choice ablation: the synchronization spectrum from CSP
 * through bounded-staleness SSP to unchecked ASP, on NASPipe's own
 * runtime (same memory manager, partitions and mirroring — only the
 * dependency discipline varies).
 *
 * §2.3 of the paper dismisses ASP/SSP as "not designed to tackle
 * causal dependencies"; this bench charts exactly what CSP pays for
 * its guarantee and what each unit of tolerated staleness buys:
 * throughput and bubble improve monotonically with staleness while
 * causal violations appear and cross-cluster reproducibility breaks.
 */

#include "bench_util.h"
#include "common/string_util.h"
#include "schedule/ssp_scheduler.h"

using namespace naspipe;

namespace {

RunResult
runWith(const SearchSpace &space, const SystemModel &system, int gpus,
        int steps, int batch)
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = steps;
    config.seed = 7;
    config.batch = batch;
    return runTraining(space, config);
}

} // namespace

int
main()
{
    SearchSpace space = makeNlpC1();
    int steps = naspipe::bench::defaultSteps(96);
    // Pin one batch for every variant and GPU count so the numeric
    // trajectories are comparable.
    int batch = Engine::commonBatch(space, naspipeSystem(), {4, 8});

    bench::banner(
        "Sync-spectrum ablation (NLP.c1, 8 GPUs, batch " +
        std::to_string(batch) + ", " + std::to_string(steps) +
        " subnets): CSP -> SSP(s) -> unchecked");

    std::vector<SystemModel> variants;
    variants.push_back(naspipeSystem());
    for (int s : {1, 2, 4, 8, 16})
        variants.push_back(sspSystem(s));
    SystemModel unchecked = naspipeSystem();
    unchecked.name = "unchecked (ASP-on-NASPipe)";
    unchecked.policy = PolicyKind::Greedy;
    variants.push_back(unchecked);

    TextTable table({"Discipline", "Samples/s", "Bubble",
                     "Violated layers", "Repro 4 vs 8 GPUs"});
    double cspThroughput = 0.0;
    for (const SystemModel &variant : variants) {
        RunResult at8 = runWith(space, variant, 8, steps, batch);
        RunResult at4 = runWith(space, variant, 4, steps, batch);
        if (at8.oom || at4.oom) {
            table.addRow({variant.name, "OOM", "-", "-", "-"});
            continue;
        }
        if (cspThroughput == 0.0)
            cspThroughput = at8.metrics.samplesPerSec;
        bool repro = at4.supernetHash == at8.supernetHash;
        table.addRow(
            {variant.name,
             formatFixed(at8.metrics.samplesPerSec, 1) + " (" +
                 formatFactor(at8.metrics.samplesPerSec /
                                  cspThroughput,
                              2) +
                 ")",
             formatFixed(at8.metrics.bubbleRatio, 2),
             std::to_string(at8.metrics.causalViolations),
             repro ? "bitwise" : "BROKEN"});
    }
    table.print(std::cout);

    std::printf(
        "\nReading guide: only the CSP row combines zero violations "
        "with cross-cluster bitwise equality; every unit of staleness "
        "buys throughput by spending exactly the property NASPipe "
        "exists to provide.\n");
    return 0;
}
