/**
 * @file
 * Access log tests: Table 4 rendering and sequential-equivalence.
 */

#include <gtest/gtest.h>

#include "train/access_log.h"

namespace naspipe {
namespace {

TEST(AccessLog, RendersPaperStyleOrder)
{
    AccessLog log;
    LayerId layer{0, 0};
    // Table 4's NASPipe row: 2F-2B-5F-5B-7F-7B.
    for (SubnetId id : {2, 5, 7}) {
        log.record(layer, id, AccessKind::Read);
        log.record(layer, id, AccessKind::Write);
    }
    EXPECT_EQ(log.renderOrder(layer), "2F-2B-5F-5B-7F-7B");
}

TEST(AccessLog, SequentialEquivalenceAccepts)
{
    AccessLog log;
    LayerId layer{0, 0};
    for (SubnetId id : {2, 5, 7}) {
        log.record(layer, id, AccessKind::Read);
        log.record(layer, id, AccessKind::Write);
    }
    EXPECT_TRUE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, BspBulkOrderIsRejected)
{
    // Table 4's GPipe 8-GPU row: 2F-5F-7F-2B-5B-7B.
    AccessLog log;
    LayerId layer{0, 0};
    for (SubnetId id : {2, 5, 7})
        log.record(layer, id, AccessKind::Read);
    for (SubnetId id : {2, 5, 7})
        log.record(layer, id, AccessKind::Write);
    EXPECT_EQ(log.renderOrder(layer), "2F-5F-7F-2B-5B-7B");
    EXPECT_FALSE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, AspInterleavingIsRejected)
{
    // Table 4's PipeDream 4-GPU row: 2F-2B-5F-7F-5B-7B.
    AccessLog log;
    LayerId layer{0, 0};
    log.record(layer, 2, AccessKind::Read);
    log.record(layer, 2, AccessKind::Write);
    log.record(layer, 5, AccessKind::Read);
    log.record(layer, 7, AccessKind::Read);
    log.record(layer, 5, AccessKind::Write);
    log.record(layer, 7, AccessKind::Write);
    EXPECT_FALSE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, DescendingIdsRejected)
{
    AccessLog log;
    LayerId layer{0, 0};
    log.record(layer, 5, AccessKind::Read);
    log.record(layer, 5, AccessKind::Write);
    log.record(layer, 2, AccessKind::Read);
    log.record(layer, 2, AccessKind::Write);
    EXPECT_FALSE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, WriteWithoutReadRejected)
{
    AccessLog log;
    LayerId layer{0, 0};
    log.record(layer, 1, AccessKind::Write);
    EXPECT_FALSE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, DanglingReadRejected)
{
    AccessLog log;
    LayerId layer{0, 0};
    log.record(layer, 1, AccessKind::Read);
    EXPECT_FALSE(log.sequentiallyEquivalent(layer));
}

TEST(AccessLog, EmptyHistoryIsTriviallyEquivalent)
{
    AccessLog log;
    EXPECT_TRUE(log.sequentiallyEquivalent(LayerId{3, 3}));
    EXPECT_EQ(log.renderOrder(LayerId{3, 3}), "");
}

TEST(AccessLog, GlobalOrderSpansLayers)
{
    AccessLog log;
    log.record(LayerId{0, 0}, 0, AccessKind::Read);
    log.record(LayerId{1, 1}, 0, AccessKind::Read);
    EXPECT_EQ(log.layerHistory(LayerId{0, 0})[0].order, 0u);
    EXPECT_EQ(log.layerHistory(LayerId{1, 1})[0].order, 1u);
    EXPECT_EQ(log.totalRecords(), 2u);
}

TEST(AccessLog, TouchedLayersAndAllCheck)
{
    AccessLog log;
    LayerId good{0, 0}, bad{0, 1};
    log.record(good, 1, AccessKind::Read);
    log.record(good, 1, AccessKind::Write);
    log.record(bad, 2, AccessKind::Write);
    EXPECT_EQ(log.touchedLayers().size(), 2u);
    EXPECT_FALSE(log.allSequentiallyEquivalent());
}

TEST(AccessLog, DisabledLogRecordsNothing)
{
    AccessLog log;
    log.enabled(false);
    log.record(LayerId{0, 0}, 0, AccessKind::Read);
    EXPECT_EQ(log.totalRecords(), 0u);
}

TEST(AccessLog, ClearResets)
{
    AccessLog log;
    log.record(LayerId{0, 0}, 0, AccessKind::Read);
    log.clear();
    EXPECT_EQ(log.totalRecords(), 0u);
    EXPECT_TRUE(log.touchedLayers().empty());
}

} // namespace
} // namespace naspipe
