/**
 * @file
 * Convergence tracker and search tests.
 */

#include <gtest/gtest.h>

#include "supernet/sampler.h"
#include "train/convergence.h"

namespace naspipe {
namespace {

TEST(ConvergenceTracker, FinalLossIsTrailingMean)
{
    ConvergenceTracker t(24.0, 4);
    for (double loss : {4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0})
        t.addSample(static_cast<double>(t.samples()), loss);
    EXPECT_DOUBLE_EQ(t.finalLoss(), 1.0);
    EXPECT_DOUBLE_EQ(t.finalScore(), 12.0);
}

TEST(ConvergenceTracker, CurveDownsamples)
{
    ConvergenceTracker t(24.0, 2);
    for (int i = 0; i < 100; i++)
        t.addSample(i, 1.0 / (1 + i));
    auto curve = t.curve(10);
    EXPECT_LE(curve.size(), 12u);
    EXPECT_GE(curve.size(), 10u);
    // Final point always present.
    EXPECT_DOUBLE_EQ(curve.back().timeSec, 99.0);
}

TEST(ConvergenceTracker, CurveScoresRiseAsLossFalls)
{
    ConvergenceTracker t(24.0, 1);
    t.addSample(0.0, 2.0);
    t.addSample(1.0, 0.5);
    auto curve = t.curve(10);
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_LT(curve[0].score, curve[1].score);
    EXPECT_GT(curve[0].loss, curve[1].loss);
}

TEST(ConvergenceTracker, EmptyCurve)
{
    ConvergenceTracker t(24.0);
    EXPECT_TRUE(t.curve(10).empty());
    EXPECT_DOUBLE_EQ(t.finalLoss(), 0.0);
}

TEST(ConvergenceTracker, ClearResets)
{
    ConvergenceTracker t(24.0);
    t.addSample(0.0, 1.0);
    t.clear();
    EXPECT_EQ(t.samples(), 0u);
}

TEST(ConvergenceTracker, InvalidSamplePanics)
{
    ConvergenceTracker t(24.0);
    EXPECT_THROW(t.addSample(-1.0, 0.5), std::logic_error);
    EXPECT_THROW(t.addSample(1.0, -0.5), std::logic_error);
}

TEST(SearchBestSubnet, PicksLowestEvalLoss)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    NumericExecutor exec(store, config);

    UniformSampler sampler(space, 5);
    std::vector<Subnet> candidates;
    for (int i = 0; i < 8; i++)
        candidates.push_back(sampler.next());

    SearchResult result = searchBestSubnet(exec, candidates, 24.0);
    ASSERT_EQ(result.allEvalLosses.size(), candidates.size());
    for (double loss : result.allEvalLosses)
        EXPECT_GE(loss, result.bestEvalLoss);
    EXPECT_GT(result.accuracy, 0.0);
    EXPECT_LT(result.accuracy, 24.0);
}

TEST(SearchBestSubnet, DeterministicAcrossCalls)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    NumericExecutor exec(store, config);
    UniformSampler sampler(space, 5);
    std::vector<Subnet> candidates;
    for (int i = 0; i < 6; i++)
        candidates.push_back(sampler.next());
    SearchResult a = searchBestSubnet(exec, candidates, 24.0);
    SearchResult b = searchBestSubnet(exec, candidates, 24.0);
    EXPECT_EQ(a.best.id(), b.best.id());
    EXPECT_EQ(a.accuracy, b.accuracy);
}

TEST(SearchBestSubnet, EmptyCandidatesPanics)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    NumericExecutor::Config config;
    NumericExecutor exec(store, config);
    EXPECT_THROW(searchBestSubnet(exec, {}, 24.0), std::logic_error);
}

} // namespace
} // namespace naspipe
