/**
 * @file
 * Numeric executor tests: staged execution equals sequential
 * execution, and the three update semantics behave distinctly.
 */

#include <gtest/gtest.h>

#include "train/numeric_executor.h"

namespace naspipe {
namespace {

struct ExecFixture : ::testing::Test {
    ExecFixture() : space(makeTinySpace()), store(space, 7)
    {
        NumericExecutor::Config config;
        config.dataSeed = 99;
        config.batch = 192;  // the family reference: LR scale 1
        exec = std::make_unique<NumericExecutor>(store, config);
    }

    Subnet
    subnet(SubnetId id, std::vector<std::uint16_t> choices = {0, 1, 2,
                                                              0})
    {
        return Subnet(id, std::move(choices));
    }

    SearchSpace space;
    ParameterStore store;
    std::unique_ptr<NumericExecutor> exec;
};

TEST_F(ExecFixture, SequentialTrainingReducesLoss)
{
    // Train the same architecture repeatedly on its (fixed) batch:
    // loss must drop.
    float first = 0.0f, last = 0.0f;
    for (int i = 0; i < 30; i++) {
        float loss = exec->trainSequential(
            subnet(i, {0, 1, 2, 0}));
        if (i == 0)
            first = loss;
        last = loss;
    }
    // Different subnets get different batches; use the same batch by
    // reusing data seed effects: losses trend down on average.
    (void)first;
    (void)last;
    const auto &history = exec->lossHistory();
    double early = 0, late = 0;
    for (int i = 0; i < 10; i++) {
        early += history[static_cast<std::size_t>(i)];
        late += history[history.size() - 1 - i];
    }
    EXPECT_LT(late, early);
}

TEST_F(ExecFixture, StagedExecutionBitwiseEqualsSequential)
{
    Subnet sn = subnet(0);
    // Staged: two-block stages, immediate semantics.
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 1, UpdateSemantics::Immediate);
    exec->forwardStage(sn, 2, 3, UpdateSemantics::Immediate);
    float stagedLoss = exec->computeLoss(sn);
    exec->backwardStage(sn, 2, 3, UpdateSemantics::Immediate);
    exec->backwardStage(sn, 0, 1, UpdateSemantics::Immediate);
    exec->finishSubnet(sn);

    // Sequential on a fresh store.
    ParameterStore other(space, 7);
    NumericExecutor::Config config;
    config.dataSeed = 99;
    config.batch = 192;
    NumericExecutor seq(other, config);
    float seqLoss = seq.trainSequential(subnet(0));

    EXPECT_EQ(stagedLoss, seqLoss);
    EXPECT_EQ(store.supernetHash(), other.supernetHash());
}

TEST_F(ExecFixture, NonContiguousForwardPanics)
{
    Subnet sn = subnet(0);
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 1, UpdateSemantics::Immediate);
    EXPECT_THROW(
        exec->forwardStage(sn, 3, 3, UpdateSemantics::Immediate),
        std::logic_error);
}

TEST_F(ExecFixture, BackwardBeforeLossPanics)
{
    Subnet sn = subnet(0);
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 3, UpdateSemantics::Immediate);
    EXPECT_THROW(
        exec->backwardStage(sn, 0, 3, UpdateSemantics::Immediate),
        std::logic_error);
}

TEST_F(ExecFixture, FinishBeforeBackwardCompletesPanics)
{
    Subnet sn = subnet(0);
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 3, UpdateSemantics::Immediate);
    exec->computeLoss(sn);
    exec->backwardStage(sn, 2, 3, UpdateSemantics::Immediate);
    EXPECT_THROW(exec->finishSubnet(sn), std::logic_error);
}

TEST_F(ExecFixture, DeferredWritesOnlyAtFlush)
{
    Subnet sn = subnet(0);
    std::uint64_t before = store.touchedHash();
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 3, UpdateSemantics::Deferred);
    exec->computeLoss(sn);
    exec->backwardStage(sn, 0, 3, UpdateSemantics::Deferred);
    // No writes yet: reads materialized layers but no WRITE records.
    for (const auto &rec :
         store.accessLog().layerHistory(sn.layer(0))) {
        EXPECT_EQ(rec.kind, AccessKind::Read);
    }
    (void)before;
    exec->applyDeferredUpdates({0});
    float loss = exec->finishSubnet(sn);
    EXPECT_GT(loss, 0.0f);
    EXPECT_EQ(store.version(sn.layer(0)), 1u);
}

TEST_F(ExecFixture, FinishWithUnappliedDeferredPanics)
{
    Subnet sn = subnet(0);
    exec->beginSubnet(sn);
    exec->forwardStage(sn, 0, 3, UpdateSemantics::Deferred);
    exec->computeLoss(sn);
    exec->backwardStage(sn, 0, 3, UpdateSemantics::Deferred);
    EXPECT_THROW(exec->finishSubnet(sn), std::logic_error);
}

TEST_F(ExecFixture, WeightStashGradsUseForwardVersion)
{
    // Two subnets share every layer. Under WeightStash, SN1's
    // backward uses the weights SN1's forward saw, even though SN0's
    // update landed in between => result differs from recompute
    // (Immediate) semantics under the same interleaving.
    auto interleave = [&](UpdateSemantics semantics) {
        ParameterStore s(space, 7);
        NumericExecutor::Config config;
        config.dataSeed = 99;
        config.batch = 192;
        NumericExecutor e(s, config);
        Subnet a(0, {0, 1, 2, 0}), b(1, {0, 1, 2, 0});
        e.beginSubnet(a);
        e.beginSubnet(b);
        e.forwardStage(a, 0, 3, semantics);
        e.computeLoss(a);
        e.forwardStage(b, 0, 3, semantics);  // reads pre-update
        e.computeLoss(b);
        e.backwardStage(a, 0, 3, semantics);  // a's update lands
        e.backwardStage(b, 0, 3, semantics);
        e.finishSubnet(a);
        e.finishSubnet(b);
        return s.supernetHash();
    };
    EXPECT_NE(interleave(UpdateSemantics::WeightStash),
              interleave(UpdateSemantics::Immediate));
}

TEST_F(ExecFixture, SkipLayersPassThrough)
{
    SearchSpace skippy("s", SpaceFamily::Nlp, 4, 3, 3, 0.4);
    ParameterStore s(skippy, 7);
    NumericExecutor::Config config;
    NumericExecutor e(s, config);
    Subnet sn(0, {0, 0, 0, 0});  // all skip: pure identity chain
    e.beginSubnet(sn);
    e.forwardStage(sn, 0, 3, UpdateSemantics::Immediate);
    float loss = e.computeLoss(sn);
    e.backwardStage(sn, 0, 3, UpdateSemantics::Immediate);
    e.finishSubnet(sn);
    // Identity chain: prediction == input digest; loss is just the
    // input/target MSE, and no parameters were touched.
    EXPECT_GT(loss, 0.0f);
    EXPECT_EQ(s.accessLog().totalRecords(), 0u);
}

TEST_F(ExecFixture, EvaluateIsSideEffectFree)
{
    Subnet sn = subnet(0);
    float a = exec->evaluate(sn, 42);
    float b = exec->evaluate(sn, 42);
    EXPECT_EQ(a, b);
    EXPECT_EQ(store.accessLog().totalRecords(), 0u);
    EXPECT_NE(exec->evaluate(sn, 43), a);  // seed matters
}

TEST_F(ExecFixture, RecentMeanLoss)
{
    for (int i = 0; i < 5; i++)
        exec->trainSequential(subnet(i));
    double mean5 = exec->recentMeanLoss(5);
    double mean2 = exec->recentMeanLoss(2);
    EXPECT_GT(mean5, 0.0);
    EXPECT_GT(mean2, 0.0);
    EXPECT_EQ(exec->recentMeanLoss(100), exec->recentMeanLoss(5));
}

TEST_F(ExecFixture, DoubleBeginPanics)
{
    Subnet sn = subnet(0);
    exec->beginSubnet(sn);
    EXPECT_THROW(exec->beginSubnet(sn), std::logic_error);
}

TEST_F(ExecFixture, InflightTracking)
{
    EXPECT_EQ(exec->inflight(), 0u);
    exec->beginSubnet(subnet(0));
    exec->beginSubnet(subnet(1, {1, 1, 1, 1}));
    EXPECT_EQ(exec->inflight(), 2u);
}

TEST(UpdateSemanticsName, Named)
{
    EXPECT_STREQ(updateSemanticsName(UpdateSemantics::Immediate),
                 "immediate");
    EXPECT_STREQ(updateSemanticsName(UpdateSemantics::WeightStash),
                 "weight-stash");
    EXPECT_STREQ(updateSemanticsName(UpdateSemantics::Deferred),
                 "deferred");
}

} // namespace
} // namespace naspipe
