/**
 * @file
 * Shared parameter store tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "train/param_store.h"

namespace naspipe {
namespace {

struct StoreFixture : ::testing::Test {
    StoreFixture() : space(makeTinySpace()), store(space, 7) {}

    SearchSpace space;
    ParameterStore store;
};

TEST_F(StoreFixture, LazyMaterializationIsDeterministic)
{
    ParameterStore other(space, 7);
    LayerId layer{1, 2};
    EXPECT_TRUE(store.peek(layer).bitwiseEqual(other.peek(layer)));
}

TEST_F(StoreFixture, SeedChangesInitialWeights)
{
    ParameterStore other(space, 8);
    LayerId layer{1, 2};
    EXPECT_FALSE(store.peek(layer).bitwiseEqual(other.peek(layer)));
}

TEST_F(StoreFixture, ReadLogsAndReturnsCurrent)
{
    LayerId layer{0, 1};
    const LayerParams &p = store.read(layer, 3);
    EXPECT_TRUE(p.bitwiseEqual(store.peek(layer)));
    const auto &history = store.accessLog().layerHistory(layer);
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].subnet, 3);
    EXPECT_EQ(history[0].kind, AccessKind::Read);
}

TEST_F(StoreFixture, WriteBumpsVersionAndLogs)
{
    LayerId layer{2, 0};
    EXPECT_EQ(store.version(layer), 0u);
    store.write(layer, 5).weight[0] += 1.0f;
    EXPECT_EQ(store.version(layer), 1u);
    store.write(layer, 6);
    EXPECT_EQ(store.version(layer), 2u);
    EXPECT_EQ(store.accessLog().layerHistory(layer).size(), 2u);
}

TEST_F(StoreFixture, PeekDoesNotLog)
{
    store.peek(LayerId{0, 0});
    EXPECT_EQ(store.accessLog().totalRecords(), 0u);
}

TEST_F(StoreFixture, SupernetHashDeterministicAndSensitive)
{
    ParameterStore other(space, 7);
    EXPECT_EQ(store.supernetHash(), other.supernetHash());
    other.write(LayerId{1, 1}, 0).weight[5] += 0.5f;
    EXPECT_NE(store.supernetHash(), other.supernetHash());
}

TEST_F(StoreFixture, SupernetHashCoversUntouchedLayers)
{
    // Hashing must materialize everything (Definition 1 compares the
    // weights of *all* layers).
    store.supernetHash();
    EXPECT_EQ(store.materializedLayers(),
              static_cast<std::size_t>(space.totalLayers()));
}

TEST_F(StoreFixture, TouchedHashOnlyDependsOnTouched)
{
    ParameterStore a(space, 7), b(space, 7);
    a.peek(LayerId{0, 0});
    b.peek(LayerId{0, 0});
    EXPECT_EQ(a.touchedHash(), b.touchedHash());
    b.peek(LayerId{0, 1});
    EXPECT_NE(a.touchedHash(), b.touchedHash());
}

TEST_F(StoreFixture, CheckpointRoundTripsBitwise)
{
    // Train a little, checkpoint, restore into a fresh store.
    store.write(LayerId{1, 2}, 0).weight[3] = 0.123f;
    store.write(LayerId{0, 0}, 1).bias[7] = -4.5f;
    std::stringstream buffer;
    ASSERT_TRUE(store.save(buffer));

    ParameterStore restored(space, 7);
    ASSERT_TRUE(restored.load(buffer));
    EXPECT_EQ(store.supernetHash(), restored.supernetHash());
    EXPECT_EQ(restored.peek(LayerId{1, 2}).weight[3], 0.123f);
}

TEST_F(StoreFixture, CheckpointFileRoundTrip)
{
    store.write(LayerId{2, 1}, 0).weight[0] = 9.0f;
    std::string path =
        ::testing::TempDir() + "naspipe_store_test.ckpt";
    ASSERT_TRUE(store.saveFile(path));
    ParameterStore restored(space, 7);
    ASSERT_TRUE(restored.loadFile(path));
    EXPECT_EQ(store.supernetHash(), restored.supernetHash());
    std::remove(path.c_str());
}

TEST_F(StoreFixture, CheckpointRejectsGarbage)
{
    std::stringstream buffer("not a checkpoint");
    EXPECT_FALSE(store.load(buffer));
}

TEST_F(StoreFixture, CheckpointRejectsMismatchedStore)
{
    // A mismatched checkpoint is an expected operational condition
    // (wrong file, stale run), not a programming error: load reports
    // it and returns false instead of aborting.
    std::stringstream buffer;
    ASSERT_TRUE(store.save(buffer));
    ParameterStore otherSeed(space, 8);
    EXPECT_FALSE(otherSeed.load(buffer));
    EXPECT_EQ(otherSeed.supernetHash(),
              ParameterStore(space, 8).supernetHash());
}

TEST_F(StoreFixture, CheckpointTruncatedStreamFails)
{
    store.peek(LayerId{0, 0});
    std::stringstream buffer;
    ASSERT_TRUE(store.save(buffer));
    std::string bytes = buffer.str();
    std::stringstream truncated(
        bytes.substr(0, bytes.size() - 10));
    ParameterStore restored(space, 7);
    EXPECT_FALSE(restored.load(truncated));
}

TEST_F(StoreFixture, OutOfSpaceLayerPanics)
{
    EXPECT_THROW(store.peek(LayerId{4, 0}), std::logic_error);
    EXPECT_THROW(store.peek(LayerId{0, 3}), std::logic_error);
}

} // namespace
} // namespace naspipe
