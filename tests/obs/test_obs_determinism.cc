/**
 * @file
 * End-to-end determinism contract of the observability layer:
 * logical-mode trace and metrics exports are byte-identical across
 * identical-seed runs on NLP.c1 and CV.c1 for BOTH executors, the
 * two executors agree modulo the executor tag, and enabling tracing
 * never perturbs the training result (weight hash, final loss).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "obs/logical_schedule.h"
#include "obs/metrics_export.h"
#include "obs/trace_export.h"
#include "runtime/pipeline_runtime.h"

namespace naspipe {
namespace {

constexpr int kStages = 4;
constexpr int kSteps = 16;
constexpr std::uint64_t kSeed = 11;

RuntimeConfig
makeConfig(bool traceEnabled)
{
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = kStages;
    config.totalSubnets = kSteps;
    config.seed = kSeed;
    config.traceEnabled = traceEnabled;
    return config;
}

struct Export {
    std::string trace;
    std::string metrics;
    std::uint64_t hash = 0;
};

/**
 * One full run + logical-mode export, as naspipe_cli would do it.
 * @p deterministicTiming mirrors the CLI default (!threaded) unless
 * overridden: the simulator's seconds are simulated ticks, so they
 * are tagged Stable and survive the logical filter.
 */
Export
runAndExport(const std::string &spaceName, bool threaded,
             int deterministicTiming = -1)
{
    SearchSpace space = makeSpaceByName(spaceName);
    RuntimeConfig config = makeConfig(false);
    RunResult result = threaded ? runTrainingThreaded(space, config)
                                : runTraining(space, config);
    EXPECT_FALSE(result.oom);
    EXPECT_FALSE(result.failed);

    obs::LogicalSchedule logical = obs::buildLogicalSchedule(
        space, result.sampled, result.partitions, kStages,
        result.metrics.batch,
        config.system.effectiveInflight(kStages));

    obs::TraceHeader header;
    header.space = spaceName;
    header.executor = threaded ? "threads" : "sim";
    header.mode = "logical";
    header.seed = kSeed;
    header.steps = kSteps;
    header.numStages = kStages;

    obs::RunMetadata meta;
    meta.space = spaceName;
    meta.executor = header.executor;
    meta.seed = kSeed;
    meta.steps = kSteps;
    meta.numStages = kStages;
    meta.batch = result.metrics.batch;
    meta.wallMode = false;
    meta.deterministicTiming = deterministicTiming < 0
                                   ? !threaded
                                   : deterministicTiming != 0;

    Export out;
    out.trace = obs::chromeTraceJson(logical.spans, header);
    out.metrics = obs::metricsJson(result, &result.observations,
                                   &logical, meta);
    out.hash = result.supernetHash;
    return out;
}

void
replaceAll(std::string &s, const std::string &from,
           const std::string &to)
{
    for (std::size_t pos = s.find(from); pos != std::string::npos;
         pos = s.find(from, pos + to.size()))
        s.replace(pos, from.size(), to);
}

class ObsDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ObsDeterminism, LogicalExportsByteIdenticalSim)
{
    Export a = runAndExport(GetParam(), false);
    Export b = runAndExport(GetParam(), false);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.hash, b.hash);
}

TEST_P(ObsDeterminism, LogicalExportsByteIdenticalThreads)
{
    Export a = runAndExport(GetParam(), true);
    Export b = runAndExport(GetParam(), true);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.hash, b.hash);
}

/** Extract the `"key":value` fragment (through the value). */
std::string
fieldOf(const std::string &json, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t start = json.find(needle);
    if (start == std::string::npos)
        return "<missing " + key + ">";
    std::size_t end = json.find_first_of(",}", start);
    return json.substr(start, end - start);
}

TEST_P(ObsDeterminism, ExecutorsAgreeModuloTag)
{
    // The logical trace is a pure function of (seed, schedule), so
    // sim and threads produce the same bytes once the executor tag
    // in the header is normalized away. The metrics documents differ
    // only in executor identity fields and the per-executor counter
    // set; every shared logical/quality entry must agree exactly.
    Export sim = runAndExport(GetParam(), false, 0);
    Export thr = runAndExport(GetParam(), true);
    EXPECT_EQ(sim.hash, thr.hash);

    std::string thrTrace = thr.trace;
    replaceAll(thrTrace, "\"executor\":\"threads\"",
               "\"executor\":\"sim\"");
    EXPECT_EQ(sim.trace, thrTrace);

    for (const char *key :
         {"quality/supernet_hash", "quality/final_loss",
          "quality/final_score", "quality/causal_violations",
          "logical/makespan_ticks", "logical/gate_wait_ticks",
          "logical/gate_wait_count", "logical/span_count",
          "logical/bubble_ratio", "run/finished_subnets",
          "stage/0/logical_busy_ticks",
          "stage/3/logical_busy_ticks"}) {
        EXPECT_EQ(fieldOf(sim.metrics, key),
                  fieldOf(thr.metrics, key))
            << "divergent shared metric: " << key;
    }
}

TEST_P(ObsDeterminism, TracingDoesNotPerturbTraining)
{
    // Turning observability on must not change a single weight bit
    // or the loss curve, in either executor.
    SearchSpace space = makeSpaceByName(GetParam());

    RunResult simOff = runTraining(space, makeConfig(false));
    RunResult simOn = runTraining(space, makeConfig(true));
    EXPECT_EQ(simOff.supernetHash, simOn.supernetHash);
    EXPECT_EQ(simOff.metrics.finalLoss, simOn.metrics.finalLoss);

    RunResult thrOff = runTrainingThreaded(space, makeConfig(false));
    RunResult thrOn = runTrainingThreaded(space, makeConfig(true));
    EXPECT_EQ(thrOff.supernetHash, thrOn.supernetHash);
    EXPECT_EQ(thrOff.metrics.finalLoss, thrOn.metrics.finalLoss);
    EXPECT_EQ(simOff.supernetHash, thrOn.supernetHash);
}

INSTANTIATE_TEST_SUITE_P(Spaces, ObsDeterminism,
                         ::testing::Values("NLP.c1", "CV.c1"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '.')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace naspipe
