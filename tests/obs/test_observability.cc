/**
 * @file
 * Unit tests of the observability primitives: fixed-bucket
 * histograms, the metrics registry's deterministic export, the
 * Chrome trace exporter, and the logical-schedule builder.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "obs/histogram.h"
#include "obs/logical_schedule.h"
#include "obs/metrics_export.h"
#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "runtime/pipeline_runtime.h"

namespace naspipe {
namespace {

TEST(FixedHistogram, BucketPlacementAndOverflow)
{
    obs::FixedHistogram h({1.0, 10.0, 100.0});
    h.record(0.5);    // bucket 0: < 1
    h.record(1.0);    // bucket 1: upper_bound semantics, 1.0 -> (1,10]
    h.record(5.0);    // bucket 1
    h.record(50.0);   // bucket 2
    h.record(1000.0); // overflow bucket
    EXPECT_EQ(h.counts(),
              (std::vector<std::uint64_t>{1, 2, 1, 1}));
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.sum(), 1056.5);
}

TEST(FixedHistogram, MergeAddsCounts)
{
    obs::FixedHistogram a({1.0, 2.0}), b({1.0, 2.0});
    a.record(0.5);
    b.record(1.5);
    b.record(9.0);
    a.merge(b);
    EXPECT_EQ(a.counts(), (std::vector<std::uint64_t>{1, 1, 1}));
    EXPECT_EQ(a.total(), 3u);

    // Merging into a default-constructed histogram adopts the other.
    obs::FixedHistogram empty;
    empty.merge(a);
    EXPECT_EQ(empty.counts(), a.counts());
}

TEST(FixedHistogram, JsonIsStable)
{
    obs::FixedHistogram h({0.001, 0.01});
    h.record(0.005);
    std::string once = h.toJson(3);
    EXPECT_EQ(once, h.toJson(3));
    EXPECT_NE(once.find("\"bounds\":[0.001,0.010]"),
              std::string::npos);
    EXPECT_NE(once.find("\"counts\":[0,1,0]"), std::string::npos);
}

TEST(MetricsRegistry, ExportsInLexicographicOrder)
{
    obs::MetricsRegistry reg;
    reg.counter("z/last", 1);
    reg.counter("a/first", 2);
    reg.gauge("m/middle", 0.5, 2);
    std::string json = reg.exportJson({}, false);
    std::size_t a = json.find("a/first");
    std::size_t m = json.find("m/middle");
    std::size_t z = json.find("z/last");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
}

TEST(MetricsRegistry, StableOnlyDropsTimingEntries)
{
    obs::MetricsRegistry reg;
    reg.counter("keep/structural", 7);
    reg.gauge("drop/wall_s", 1.25, 3, obs::Stability::Timing);
    obs::FixedHistogram h(obs::latencySecondsBounds());
    h.record(0.002);
    reg.histogram("drop/hist", h, 6, obs::Stability::Timing);

    std::string all = reg.exportJson({}, false);
    EXPECT_NE(all.find("drop/wall_s"), std::string::npos);
    EXPECT_NE(all.find("drop/hist"), std::string::npos);

    std::string stable = reg.exportJson({}, true);
    EXPECT_NE(stable.find("keep/structural"), std::string::npos);
    EXPECT_EQ(stable.find("drop/wall_s"), std::string::npos);
    EXPECT_EQ(stable.find("drop/hist"), std::string::npos);
}

TEST(MetricsRegistry, HeadersAndEscaping)
{
    obs::MetricsRegistry reg;
    reg.text("note", "a \"quoted\"\nvalue");
    std::string json = reg.exportJson({{"space", "NLP.c1"}}, false);
    EXPECT_NE(json.find("\"schema\":\"naspipe-metrics/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"space\":\"NLP.c1\""), std::string::npos);
    EXPECT_NE(json.find("a \\\"quoted\\\"\\nvalue"),
              std::string::npos);
}

TEST(TraceExport, EmitsMetadataAndEscapes)
{
    std::vector<TraceRecord> records{
        {0, 2 * kTicksPerUs, 0, TraceKind::Forward, 3, "de\"tail"},
    };
    obs::TraceHeader header;
    header.space = "NLP.c1";
    header.executor = "sim";
    header.mode = "logical";
    header.numStages = 2;
    std::string json = obs::chromeTraceJson(records, header);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stage 1\""), std::string::npos);
    EXPECT_NE(json.find("fwd SN3"), std::string::npos);
    EXPECT_NE(json.find("de\\\"tail"), std::string::npos);
    EXPECT_NE(json.find("\"schema\":\"naspipe-trace/1\""),
              std::string::npos);
    // Byte-stable for identical input.
    EXPECT_EQ(json, obs::chromeTraceJson(records, header));
}

class LogicalScheduleTest : public ::testing::Test
{
  protected:
    static RunResult run()
    {
        SearchSpace space = makeSpaceByName("NLP.c1");
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = 4;
        config.totalSubnets = 12;
        config.seed = 7;
        RunResult result = runTraining(space, config);
        EXPECT_FALSE(result.oom);
        EXPECT_FALSE(result.failed);
        return result;
    }
};

TEST_F(LogicalScheduleTest, StructureMatchesSchedule)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RunResult result = run();
    ASSERT_EQ(result.sampled.size(), result.partitions.size());

    obs::LogicalSchedule sched = obs::buildLogicalSchedule(
        space, result.sampled, result.partitions, 4,
        result.metrics.batch, 4);

    // Exactly one forward and one backward span per (subnet, stage),
    // plus one Stall span per attributed gate wait.
    std::size_t fwd = 0, bwd = 0, stall = 0;
    for (const TraceRecord &r : sched.spans) {
        ASSERT_GE(r.stage, 0);
        ASSERT_LT(r.stage, 4);
        ASSERT_LE(r.start, r.end);
        if (r.kind == TraceKind::Forward)
            fwd++;
        else if (r.kind == TraceKind::Backward)
            bwd++;
        else if (r.kind == TraceKind::Stall)
            stall++;
    }
    EXPECT_EQ(fwd, result.sampled.size() * 4);
    EXPECT_EQ(bwd, result.sampled.size() * 4);
    EXPECT_EQ(stall, sched.gateWaits.size());

    // Canonically sorted spans; makespan covers every end.
    EXPECT_TRUE(std::is_sorted(
        sched.spans.begin(), sched.spans.end(),
        [](const TraceRecord &a, const TraceRecord &b) {
            return a.start < b.start;
        }));
    Tick maxEnd = 0;
    for (const TraceRecord &r : sched.spans)
        if (r.kind != TraceKind::Stall)
            maxEnd = std::max(maxEnd, r.end);
    EXPECT_EQ(sched.makespan, maxEnd);
    ASSERT_EQ(sched.stageBusyTicks.size(), 4u);
    for (Tick busy : sched.stageBusyTicks)
        EXPECT_LE(busy, sched.makespan);

    // Gate waits name real stages and positive wait lengths.
    Tick waitSum = 0;
    for (const obs::LogicalGateWait &w : sched.gateWaits) {
        EXPECT_GE(w.stage, 0);
        EXPECT_LT(w.stage, 4);
        EXPECT_GT(w.ticks, 0u);
        EXPECT_LT(w.blocker, w.waiter);
        waitSum += w.ticks;
    }
    EXPECT_EQ(waitSum, sched.totalGateWaitTicks);
}

TEST_F(LogicalScheduleTest, DeterministicAcrossCalls)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RunResult result = run();
    obs::LogicalSchedule a = obs::buildLogicalSchedule(
        space, result.sampled, result.partitions, 4,
        result.metrics.batch, 4);
    obs::LogicalSchedule b = obs::buildLogicalSchedule(
        space, result.sampled, result.partitions, 4,
        result.metrics.batch, 4);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.totalGateWaitTicks, b.totalGateWaitTicks);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); i++) {
        EXPECT_EQ(a.spans[i].start, b.spans[i].start);
        EXPECT_EQ(a.spans[i].end, b.spans[i].end);
        EXPECT_EQ(a.spans[i].stage, b.spans[i].stage);
        EXPECT_EQ(a.spans[i].subnet, b.spans[i].subnet);
        EXPECT_EQ(a.spans[i].detail, b.spans[i].detail);
    }
}

} // namespace
} // namespace naspipe
