/**
 * @file
 * CspOracle unit tests: every violation kind fires on the minimal
 * history that exhibits it, clean histories stay clean, and the
 * report names the layer, stage and offending sequence IDs.
 */

#include <gtest/gtest.h>

#include "exec/commit_gate.h"
#include "train/access_log.h"
#include "verify/csp_oracle.h"

using namespace naspipe;

namespace {

const LayerId kLayer{3, 1};

/** Build a history from (subnet, kind, stage) triples. */
std::vector<AccessRecord>
history(std::initializer_list<std::tuple<SubnetId, AccessKind, int>>
            accesses)
{
    std::vector<AccessRecord> records;
    std::uint64_t order = 1;
    for (const auto &[subnet, kind, stage] : accesses)
        records.push_back(AccessRecord{order++, subnet, kind, stage});
    return records;
}

constexpr AccessKind R = AccessKind::Read;
constexpr AccessKind W = AccessKind::Write;

} // namespace

TEST(CspOracle, SequentialHistoryIsClean)
{
    CspOracle oracle;
    EXPECT_TRUE(oracle.auditLayer(
        kLayer, history({{2, R, 0}, {2, W, 0}, {5, R, 1}, {5, W, 1},
                         {7, R, 0}, {7, W, 0}})));
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(oracle.auditedLayers(), 1u);
    EXPECT_EQ(oracle.auditedRecords(), 6u);
    EXPECT_EQ(oracle.report(), "");
}

TEST(CspOracle, SingleActivatorIsClean)
{
    CspOracle oracle;
    EXPECT_TRUE(oracle.auditLayer(kLayer, history({{4, R, 2},
                                                   {4, W, 2}})));
    EXPECT_TRUE(oracle.ok());
}

TEST(CspOracle, EmptyHistoryIsClean)
{
    CspOracle oracle;
    EXPECT_TRUE(oracle.auditLayer(kLayer, {}));
    EXPECT_TRUE(oracle.ok());
}

TEST(CspOracle, ReadBeforePrecedingWrite)
{
    // SN5 reads before SN2 (its largest smaller activator) wrote.
    CspOracle oracle;
    EXPECT_FALSE(oracle.auditLayer(
        kLayer, history({{2, R, 0}, {5, R, 1}, {2, W, 0}, {5, W, 1}})));
    ASSERT_FALSE(oracle.ok());
    const CspViolation v = oracle.violations().front();
    EXPECT_EQ(v.kind, CspViolation::Kind::ReadBeforeWrite);
    EXPECT_EQ(v.first, 2);
    EXPECT_EQ(v.second, 5);
    EXPECT_EQ(v.stage, 1);
}

TEST(CspOracle, ReadObservesFutureWrite)
{
    // SN2's read arrives after SN5 already wrote: stale-free but
    // future-contaminated.
    CspOracle oracle;
    oracle.auditLayer(
        kLayer, history({{5, R, 1}, {5, W, 1}, {2, R, 0}, {2, W, 0}}));
    ASSERT_FALSE(oracle.ok());
    bool sawFuture = false;
    for (const CspViolation &v : oracle.violations()) {
        if (v.kind == CspViolation::Kind::ReadAfterFuture) {
            sawFuture = true;
            EXPECT_EQ(v.first, 5);
            EXPECT_EQ(v.second, 2);
        }
    }
    EXPECT_TRUE(sawFuture);
}

TEST(CspOracle, WriteWithoutRead)
{
    CspOracle oracle;
    oracle.auditLayer(kLayer, history({{3, W, 0}}));
    ASSERT_FALSE(oracle.ok());
    EXPECT_EQ(oracle.violations().front().kind,
              CspViolation::Kind::WriteBeforeRead);
}

TEST(CspOracle, DuplicateAccesses)
{
    CspOracle oracle;
    oracle.auditLayer(kLayer, history({{3, R, 0}, {3, R, 0}, {3, W, 0},
                                       {3, W, 0}}));
    ASSERT_EQ(oracle.violations().size(), 2u);
    EXPECT_EQ(oracle.violations()[0].kind,
              CspViolation::Kind::DuplicateRead);
    EXPECT_EQ(oracle.violations()[1].kind,
              CspViolation::Kind::DuplicateWrite);
}

TEST(CspOracle, SwappedWritesAreRejected)
{
    // The negative path of the acceptance criteria: take the clean
    // two-activator history and swap the two writes.
    CspOracle oracle;
    EXPECT_FALSE(oracle.auditLayer(
        kLayer, history({{1, R, 0}, {2, W, 1}, {2, R, 1}, {1, W, 0}})));
    bool sawOrder = false;
    for (const CspViolation &v : oracle.violations()) {
        if (v.kind == CspViolation::Kind::WriteOrder) {
            sawOrder = true;
            // Report names the two swapped sequence IDs.
            EXPECT_EQ(v.first, 2);
            EXPECT_EQ(v.second, 1);
        }
    }
    EXPECT_TRUE(sawOrder);
}

TEST(CspOracle, ReportNamesLayerStageAndSequenceIds)
{
    CspOracle oracle;
    oracle.auditLayer(LayerId{7, 2},
                      history({{2, R, 3}, {5, R, 4}, {2, W, 3},
                               {5, W, 4}}));
    std::string report = oracle.report();
    EXPECT_NE(report.find("layer(block 7, choice 2)"),
              std::string::npos);
    EXPECT_NE(report.find("stage 4"), std::string::npos);
    EXPECT_NE(report.find("SN2"), std::string::npos);
    EXPECT_NE(report.find("SN5"), std::string::npos);
    EXPECT_NE(report.find("read-before-write"), std::string::npos);
}

TEST(CspOracle, AuditLogCoversEveryTouchedLayer)
{
    AccessLog log;
    log.record(LayerId{0, 0}, 1, R, 0);
    log.record(LayerId{0, 0}, 1, W, 0);
    log.record(LayerId{1, 2}, 1, R, 1);
    log.record(LayerId{1, 2}, 1, W, 1);
    CspOracle oracle;
    EXPECT_TRUE(oracle.auditLog(log));
    EXPECT_EQ(oracle.auditedLayers(), 2u);
    EXPECT_EQ(oracle.auditedRecords(), 4u);
}

TEST(CspOracle, LiveCommitsInChainOrderAreClean)
{
    CspOracle oracle;
    oracle.observeCommit(kLayer.key(), 2, 0, 0);
    oracle.observeCommit(kLayer.key(), 5, 1, 1);
    oracle.observeCommit(kLayer.key(), 7, 2, 0);
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(oracle.observedCommits(), 3u);
}

TEST(CspOracle, LiveCommitRankSkipIsRejected)
{
    CspOracle oracle;
    oracle.observeCommit(kLayer.key(), 2, 0, 0);
    oracle.observeCommit(kLayer.key(), 7, 2, 0);  // skipped rank 1
    ASSERT_FALSE(oracle.ok());
    EXPECT_EQ(oracle.violations().front().kind,
              CspViolation::Kind::CommitOrder);
    // Cursor resyncs: the next in-order commit is not re-reported.
    oracle.observeCommit(kLayer.key(), 9, 3, 0);
    EXPECT_EQ(oracle.violations().size(), 1u);
}

TEST(CspOracle, LiveCommitSubnetRegressionIsRejected)
{
    CspOracle oracle;
    oracle.observeCommit(kLayer.key(), 5, 0, 0);
    oracle.observeCommit(kLayer.key(), 2, 1, 1);  // IDs must ascend
    ASSERT_FALSE(oracle.ok());
    const CspViolation v = oracle.violations().front();
    EXPECT_EQ(v.kind, CspViolation::Kind::CommitOrder);
    EXPECT_EQ(v.first, 5);
    EXPECT_EQ(v.second, 2);
    EXPECT_EQ(v.stage, 1);
}

TEST(CspOracle, ChainsAreIndependent)
{
    CspOracle oracle;
    oracle.observeCommit(LayerId{0, 0}.key(), 2, 0, 0);
    oracle.observeCommit(LayerId{1, 0}.key(), 1, 0, 0);
    oracle.observeCommit(LayerId{0, 0}.key(), 4, 1, 0);
    oracle.observeCommit(LayerId{1, 0}.key(), 3, 1, 0);
    EXPECT_TRUE(oracle.ok());
}

TEST(CspOracle, AttachObservesRealCommitGate)
{
    CommitGate gate;
    gate.registerActivation(kLayer.key(), 2);
    gate.registerActivation(kLayer.key(), 5);
    CspOracle oracle;
    oracle.attach(gate);
    gate.commit(gate.resolve(kLayer.key(), 2), 0);
    gate.commit(gate.resolve(kLayer.key(), 5), 1);
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(oracle.observedCommits(), 2u);
}

TEST(CspOracle, ClearResetsEverything)
{
    CspOracle oracle;
    oracle.auditLayer(kLayer, history({{3, W, 0}}));
    oracle.observeCommit(kLayer.key(), 3, 1, 0);
    EXPECT_FALSE(oracle.ok());
    oracle.clear();
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(oracle.auditedLayers(), 0u);
    EXPECT_EQ(oracle.auditedRecords(), 0u);
    EXPECT_EQ(oracle.observedCommits(), 0u);
    // Chain cursors were dropped too: rank 0 is fresh again.
    oracle.observeCommit(kLayer.key(), 3, 0, 0);
    EXPECT_TRUE(oracle.ok());
}
