/**
 * @file
 * Pipeline runtime tests: the end-to-end simulated training loop.
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/pipeline_runtime.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

RuntimeConfig
smallConfig(const SystemModel &system, int gpus, int subnets)
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = subnets;
    config.seed = 11;
    config.traceEnabled = true;
    return config;
}

TEST(PipelineRuntime, NaspipeCompletesAllSubnets)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    RunResult result =
        runTraining(space, smallConfig(naspipeSystem(), 4, 12));
    ASSERT_FALSE(result.oom);
    EXPECT_EQ(result.metrics.finishedSubnets, 12);
    EXPECT_EQ(result.losses.size(), 12u);
    EXPECT_GT(result.metrics.samplesPerSec, 0.0);
    EXPECT_GT(result.metrics.simSeconds, 0.0);
}

TEST(PipelineRuntime, AllSystemsComplete)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    for (const SystemModel &system :
         {naspipeSystem(), gpipeSystem(), pipedreamSystem(),
          vpipeSystem()}) {
        RunResult result =
            runTraining(space, smallConfig(system, 4, 12));
        ASSERT_FALSE(result.oom) << system.name;
        EXPECT_EQ(result.metrics.finishedSubnets, 12)
            << system.name;
    }
}

TEST(PipelineRuntime, CspPreservesSequentialEquivalence)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 3, 3);
    RunResult result =
        runTraining(space, smallConfig(naspipeSystem(), 4, 16));
    ASSERT_FALSE(result.oom);
    // Every layer's access history must look like sequential
    // training: R/W pairs in ascending subnet order.
    EXPECT_EQ(result.metrics.causalViolations, 0);
    EXPECT_TRUE(result.store->accessLog().allSequentiallyEquivalent());
}

TEST(PipelineRuntime, CspMatchesSequentialExecutionBitwise)
{
    // Train pipelined CSP, then replay the same subnets purely
    // sequentially on a fresh store: final weights must be bitwise
    // identical (Definition 1's ground truth).
    SearchSpace space("small", SpaceFamily::Nlp, 8, 3, 3);
    RunResult pipelined =
        runTraining(space, smallConfig(naspipeSystem(), 4, 16));
    ASSERT_FALSE(pipelined.oom);

    ParameterStore store(space, 11);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(11, "data");
    ec.batch = pipelined.metrics.batch;
    NumericExecutor exec(store, ec);
    for (const Subnet &sn : pipelined.sampled)
        exec.trainSequential(sn);
    EXPECT_EQ(pipelined.supernetHash, store.supernetHash());
}

TEST(PipelineRuntime, BspViolatesDependenciesInLargeBulks)
{
    // With a tiny choice count, consecutive subnets share layers
    // almost surely; BSP's in-bulk parallelism must produce
    // non-sequential access histories.
    SearchSpace space("small", SpaceFamily::Nlp, 8, 2, 3);
    RunResult result =
        runTraining(space, smallConfig(gpipeSystem(), 4, 16));
    ASSERT_FALSE(result.oom);
    EXPECT_GT(result.metrics.causalViolations, 0);
}

TEST(PipelineRuntime, TraceRecordsAllTasks)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    RunResult result =
        runTraining(space, smallConfig(naspipeSystem(), 4, 8));
    ASSERT_FALSE(result.oom);
    auto fwd = result.trace->byKind(TraceKind::Forward);
    auto bwd = result.trace->byKind(TraceKind::Backward);
    // 8 subnets x 4 stages, one forward and one backward each.
    EXPECT_EQ(fwd.size(), 32u);
    EXPECT_EQ(bwd.size(), 32u);
}

TEST(PipelineRuntime, SingleGpuDegeneratesToSequential)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    RunResult result =
        runTraining(space, smallConfig(naspipeSystem(), 1, 6));
    ASSERT_FALSE(result.oom);
    EXPECT_EQ(result.metrics.finishedSubnets, 6);
    EXPECT_EQ(result.metrics.causalViolations, 0);
}

TEST(PipelineRuntime, EngineFacadeRuns)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    Engine::Options options;
    options.gpus = 4;
    options.steps = 8;
    Engine engine(space, options);
    RunResult result = engine.train();
    ASSERT_FALSE(result.oom);
    EXPECT_EQ(result.metrics.finishedSubnets, 8);
}

} // namespace
} // namespace naspipe
