/**
 * @file
 * Run-metrics helpers.
 */

#include <gtest/gtest.h>

#include "runtime/metrics.h"
#include "runtime/pipeline_runtime.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

TEST(KernelEfficiency, SaturatesWithBatch)
{
    EXPECT_DOUBLE_EQ(kernelEfficiency(100, 0), 1.0);
    EXPECT_DOUBLE_EQ(kernelEfficiency(100, 100), 0.5);
    EXPECT_GT(kernelEfficiency(192, 114), kernelEfficiency(32, 114));
    EXPECT_THROW(kernelEfficiency(0, 10), std::logic_error);
}

TEST(RunMetrics, SummaryMentionsKeyNumbers)
{
    RunMetrics m;
    m.finishedSubnets = 42;
    m.simSeconds = 10.0;
    m.samplesPerSec = 123.4;
    m.bubbleRatio = 0.39;
    m.totalAluUtilization = 3.9;
    m.cacheHitRate = 0.864;
    std::string s = m.summary();
    EXPECT_NE(s.find("42 subnets"), std::string::npos);
    EXPECT_NE(s.find("123.4"), std::string::npos);
    EXPECT_NE(s.find("0.39"), std::string::npos);
    EXPECT_NE(s.find("3.9x"), std::string::npos);
    EXPECT_NE(s.find("86.4%"), std::string::npos);
}

TEST(RunMetrics, AluImbalance)
{
    RunMetrics m;
    EXPECT_DOUBLE_EQ(m.aluImbalance(), 1.0);  // no data: even
    m.perGpuAlu = {0.5, 0.25, 0.5};
    EXPECT_DOUBLE_EQ(m.aluImbalance(), 2.0);
    m.perGpuAlu = {0.0, 0.5};
    EXPECT_DOUBLE_EQ(m.aluImbalance(), 1.0);  // idle GPU: undefined
}

TEST(RunMetrics, PerGpuAluPopulatedByRuns)
{
    SearchSpace space = makeTinySpace();
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = 3;
    config.totalSubnets = 6;
    config.seed = 7;
    RunResult r = runTraining(space, config);
    ASSERT_FALSE(r.oom);
    ASSERT_EQ(r.metrics.perGpuAlu.size(), 3u);
    double total = 0.0;
    for (double u : r.metrics.perGpuAlu) {
        EXPECT_GT(u, 0.0);
        total += u;
    }
    EXPECT_NEAR(total, r.metrics.totalAluUtilization, 1e-9);
}

TEST(RunMetrics, SummaryShowsNaForAllResidentCache)
{
    RunMetrics m;
    m.cacheHitRate = std::nullopt;  // AllResident: no cache exists
    EXPECT_NE(m.summary().find("N/A"), std::string::npos);
}

} // namespace
} // namespace naspipe
