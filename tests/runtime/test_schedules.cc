/**
 * @file
 * Schedule-level behavioural tests: each system's discipline must be
 * visible in the recorded task timeline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "runtime/pipeline_runtime.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

RunResult
tracedRun(const SystemModel &system, int gpus = 4, int subnets = 12)
{
    SearchSpace space("sched", SpaceFamily::Nlp, 8, 6, 3);
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = subnets;
    config.seed = 11;
    config.traceEnabled = true;
    return runTraining(space, config);
}

/** Completion tick of subnet @p id's backward at stage 0. */
Tick
retireTick(const Trace &trace, SubnetId id)
{
    for (const auto &r : trace.records()) {
        if (r.kind == TraceKind::Backward && r.stage == 0 &&
            r.subnet == id) {
            return r.end;
        }
    }
    ADD_FAILURE() << "SN" << id << " never retired";
    return 0;
}

TEST(Schedules, BspBulksNeverOverlap)
{
    // GPipe with D = 4: bulks {0..3}, {4..7}, {8..11}. No task of
    // bulk k+1 may start before every member of bulk k retired.
    RunResult r = tracedRun(gpipeSystem());
    ASSERT_FALSE(r.oom);
    for (int bulk = 0; bulk < 2; bulk++) {
        Tick bulkDone = 0;
        for (SubnetId id = bulk * 4; id < (bulk + 1) * 4; id++)
            bulkDone = std::max(bulkDone, retireTick(*r.trace, id));
        for (const auto &rec : r.trace->taskTimeline()) {
            if (rec.subnet >= (bulk + 1) * 4 &&
                rec.subnet < (bulk + 2) * 4) {
                EXPECT_GE(rec.start, bulkDone)
                    << traceKindName(rec.kind) << " of SN"
                    << rec.subnet;
            }
        }
    }
}

TEST(Schedules, CspOverlapsAcrossBulkBoundaries)
{
    // NASPipe has no flush: some subnet >= 4 must start before
    // subnet 3 retires (with this seed the stream is not fully
    // serialized).
    RunResult r = tracedRun(naspipeSystem());
    ASSERT_FALSE(r.oom);
    Tick firstBulkDone = 0;
    for (SubnetId id = 0; id < 4; id++)
        firstBulkDone =
            std::max(firstBulkDone, retireTick(*r.trace, id));
    bool overlapped = false;
    for (const auto &rec : r.trace->taskTimeline()) {
        if (rec.subnet >= 4 && rec.start < firstBulkDone)
            overlapped = true;
    }
    EXPECT_TRUE(overlapped);
}

TEST(Schedules, PipedreamInflightBoundedByDepth)
{
    // 1F1B: at no instant are more than D subnets between their
    // first forward start and their retirement.
    RunResult r = tracedRun(pipedreamSystem());
    ASSERT_FALSE(r.oom);

    std::map<SubnetId, Tick> firstStart, retire;
    for (const auto &rec : r.trace->taskTimeline()) {
        if (!firstStart.count(rec.subnet))
            firstStart[rec.subnet] = rec.start;
        if (rec.kind == TraceKind::Backward && rec.stage == 0)
            retire[rec.subnet] = rec.end;
    }
    for (const auto &[probe, start] : firstStart) {
        (void)probe;
        int inflight = 0;
        for (const auto &[id, s] : firstStart) {
            if (s <= start && retire.at(id) > start)
                inflight++;
        }
        EXPECT_LE(inflight, 4);
    }
}

TEST(Schedules, EveryTaskRunsExactlyOncePerStage)
{
    for (const SystemModel &system :
         {naspipeSystem(), gpipeSystem(), pipedreamSystem(),
          vpipeSystem()}) {
        RunResult r = tracedRun(system);
        ASSERT_FALSE(r.oom) << system.name;
        std::map<std::tuple<int, int, SubnetId>, int> counts;
        for (const auto &rec : r.trace->taskTimeline()) {
            counts[{static_cast<int>(rec.kind), rec.stage,
                    rec.subnet}]++;
        }
        // 12 subnets x 4 stages x {fwd,bwd} = 96 distinct tasks.
        EXPECT_EQ(counts.size(), 96u) << system.name;
        for (const auto &[key, count] : counts) {
            (void)key;
            EXPECT_EQ(count, 1) << system.name;
        }
    }
}

TEST(Schedules, ForwardPrecedesBackwardPerSubnetStage)
{
    RunResult r = tracedRun(naspipeSystem());
    ASSERT_FALSE(r.oom);
    std::map<std::pair<int, SubnetId>, Tick> fwdEnd;
    for (const auto &rec : r.trace->taskTimeline()) {
        if (rec.kind == TraceKind::Forward)
            fwdEnd[{rec.stage, rec.subnet}] = rec.end;
    }
    for (const auto &rec : r.trace->taskTimeline()) {
        if (rec.kind == TraceKind::Backward) {
            EXPECT_GE(rec.start,
                      fwdEnd.at({rec.stage, rec.subnet}));
        }
    }
}

TEST(Schedules, BackwardCascadesTailToHead)
{
    RunResult r = tracedRun(vpipeSystem());
    ASSERT_FALSE(r.oom);
    std::map<std::pair<int, SubnetId>, Tick> bwdStart;
    for (const auto &rec : r.trace->taskTimeline()) {
        if (rec.kind == TraceKind::Backward)
            bwdStart[{rec.stage, rec.subnet}] = rec.start;
    }
    for (const auto &[key, start] : bwdStart) {
        auto [stage, id] = key;
        if (stage + 1 < 4) {
            EXPECT_GE(start, bwdStart.at({stage + 1, id}));
        }
    }
}

} // namespace
} // namespace naspipe
