/**
 * @file
 * Replay/comparison tests.
 */

#include <gtest/gtest.h>

#include "runtime/replay.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

RunResult
smallRun(const SystemModel &system, int gpus, std::uint64_t seed = 11)
{
    SearchSpace space("small", SpaceFamily::Nlp, 8, 6, 3);
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = 10;
    config.seed = seed;
    config.batch = 16;  // pinned so cross-GPU runs share a trajectory
    config.traceEnabled = true;
    return runTraining(space, config);
}

TEST(ScheduleSignature, ExtractsTasksInStartOrder)
{
    Trace trace;
    trace.add({20, 30, 1, TraceKind::Forward, 1, ""});
    trace.add({0, 10, 0, TraceKind::Backward, 0, ""});
    trace.add({5, 6, 0, TraceKind::Prefetch, 0, ""});
    ScheduleSignature sig(trace);
    ASSERT_EQ(sig.size(), 2u);
    EXPECT_EQ(sig.steps()[0].type, TaskType::Backward);
    EXPECT_EQ(sig.steps()[1].subnet, 1);
}

TEST(ScheduleSignature, HashDiscriminates)
{
    Trace a, b;
    a.add({0, 10, 0, TraceKind::Forward, 0, ""});
    b.add({0, 10, 1, TraceKind::Forward, 0, ""});
    EXPECT_NE(ScheduleSignature(a).hash(), ScheduleSignature(b).hash());
    EXPECT_EQ(ScheduleSignature(a).hash(), ScheduleSignature(a).hash());
}

TEST(Replay, IdenticalConfigReplaysIdenticalSchedule)
{
    RunResult a = smallRun(naspipeSystem(), 4);
    RunResult b = smallRun(naspipeSystem(), 4);
    EXPECT_EQ(ScheduleSignature(*a.trace), ScheduleSignature(*b.trace));
    RunComparison cmp = compareRuns(a, b);
    EXPECT_TRUE(cmp.reproducible());
}

TEST(Replay, DifferentGpuCountsDifferInScheduleNotOutcome)
{
    RunResult a = smallRun(naspipeSystem(), 2);
    RunResult b = smallRun(naspipeSystem(), 4);
    EXPECT_NE(ScheduleSignature(*a.trace).hash(),
              ScheduleSignature(*b.trace).hash());
    RunComparison cmp = compareRuns(a, b);
    EXPECT_TRUE(cmp.sameWeights);
    EXPECT_TRUE(cmp.sameLosses);
    EXPECT_TRUE(cmp.reproducible());
}

TEST(Replay, SeedChangeBreaksComparison)
{
    RunResult a = smallRun(naspipeSystem(), 4, 11);
    RunResult b = smallRun(naspipeSystem(), 4, 12);
    RunComparison cmp = compareRuns(a, b);
    EXPECT_FALSE(cmp.sameWeights);
}

TEST(Replay, BspOutcomeVariesWithGpuCount)
{
    RunResult a = smallRun(gpipeSystem(), 2);
    RunResult b = smallRun(gpipeSystem(), 4);
    RunComparison cmp = compareRuns(a, b);
    EXPECT_FALSE(cmp.reproducible());
    EXPECT_FALSE(cmp.sameWeights);
}

TEST(Replay, DescribeComparison)
{
    RunComparison good;
    good.sameWeights = good.sameLosses = good.sameSearch = true;
    EXPECT_NE(describeComparison(good).find("REPRODUCIBLE"),
              std::string::npos);
    RunComparison bad;
    EXPECT_NE(describeComparison(bad).find("NOT reproducible"),
              std::string::npos);
}

} // namespace
} // namespace naspipe
