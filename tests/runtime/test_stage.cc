/**
 * @file
 * Stage state tests.
 */

#include <gtest/gtest.h>

#include "runtime/stage.h"

namespace naspipe {
namespace {

struct StageFixture : ::testing::Test {
    StageFixture()
        : space(makeTinySpace()), gpu(sim, 0, GpuConfig{})
    {
        Stage::Hooks hooks;
        hooks.blockRange = [](SubnetId) {
            return std::pair<int, int>{0, 1};
        };
        hooks.upstreamWritesDone = [](SubnetId) { return true; };
        stage = std::make_unique<Stage>(sim, space, gpu, 0, 4,
                                        MemoryMode::PredictivePrefetch,
                                        std::move(hooks));
    }

    Simulator sim;
    SearchSpace space;
    Gpu gpu;
    std::unique_ptr<Stage> stage;
};

TEST_F(StageFixture, StageInfoBasics)
{
    EXPECT_EQ(stage->stageIndex(), 0);
    EXPECT_EQ(stage->numStages(), 4);
    EXPECT_EQ(stage->blockRange(0), (std::pair<int, int>{0, 1}));
    EXPECT_TRUE(stage->upstreamWritesDone(0));
}

TEST_F(StageFixture, QueueLifecycle)
{
    stage->registerSubnet(Subnet(0, {0, 1, 2, 0}));
    stage->pushFwd(0);
    EXPECT_EQ(stage->fwdCandidates().size(), 1u);
    stage->popFwd(0);
    EXPECT_TRUE(stage->fwdCandidates().empty());
}

TEST_F(StageFixture, BwdQueueCarriesMetadata)
{
    stage->registerSubnet(Subnet(0, {0, 1, 2, 0}));
    std::vector<PendingBackward> meta = {{3, 3}};
    stage->pushBwd(0, meta);
    EXPECT_EQ(stage->bwdCandidates().size(), 1u);
    auto out = stage->popBwd(0);
    EXPECT_EQ(out, meta);
    EXPECT_TRUE(stage->bwdCandidates().empty());
}

TEST_F(StageFixture, DoublePushPanics)
{
    stage->registerSubnet(Subnet(0, {0, 1, 2, 0}));
    stage->pushFwd(0);
    EXPECT_THROW(stage->pushFwd(0), std::logic_error);
    stage->pushBwd(0, {});
    EXPECT_THROW(stage->pushBwd(0, {}), std::logic_error);
}

TEST_F(StageFixture, PopMissingPanics)
{
    EXPECT_THROW(stage->popFwd(9), std::logic_error);
    EXPECT_THROW(stage->popBwd(9), std::logic_error);
}

TEST_F(StageFixture, SubnetLookupThroughDeps)
{
    Subnet sn(0, {0, 1, 2, 0});
    stage->registerSubnet(sn);
    EXPECT_EQ(stage->subnet(0), sn);
}

TEST_F(StageFixture, BusySecondsReflectEngine)
{
    EXPECT_DOUBLE_EQ(stage->busySeconds(), 0.0);
    stage->gpu().compute().reserve(ticksFromSec(2.0));
    EXPECT_DOUBLE_EQ(stage->busySeconds(), 2.0);
}

TEST(StageHooks, MissingHooksPanic)
{
    Simulator sim;
    SearchSpace space = makeTinySpace();
    Gpu gpu(sim, 0, GpuConfig{});
    Stage::Hooks empty;
    EXPECT_THROW(Stage(sim, space, gpu, 0, 2,
                       MemoryMode::AllResident, std::move(empty)),
                 std::logic_error);
}

} // namespace
} // namespace naspipe
