/**
 * @file
 * Swap-time model tests.
 */

#include <gtest/gtest.h>

#include "memory/swap_model.h"

namespace naspipe {
namespace {

TEST(SwapModel, MatchesTable5Times)
{
    SwapModel model;  // PCIe 3.0 x16 default
    // Conv 3x1: 27.7 MB -> ~1.76 ms (Table 5).
    const LayerSpec &conv =
        LayerProfileDb::instance().reference(LayerKind::Conv3x1);
    EXPECT_NEAR(model.swapMs(conv.paramBytes), conv.swapMs, 0.05);
    // Attention: ~2.07 ms.
    const LayerSpec &attn =
        LayerProfileDb::instance().reference(
            LayerKind::Attention8Head);
    EXPECT_NEAR(model.swapMs(attn.paramBytes), attn.swapMs, 0.05);
}

TEST(SwapModel, ZeroBytesIsInstant)
{
    SwapModel model;
    EXPECT_EQ(model.swapTime(0), 0u);
}

TEST(SwapModel, LatencyIncluded)
{
    SwapModel model(1e9, ticksFromMs(1.0));
    // 1 MB at 1 GB/s = 1 ms, plus 1 ms latency.
    EXPECT_NEAR(model.swapMs(1'000'000), 2.0, 0.01);
}

TEST(SwapModel, InvalidBandwidthPanics)
{
    EXPECT_THROW(SwapModel(0.0), std::logic_error);
}

TEST(ActivationModel, FamilyDefaults)
{
    ActivationModel nlp = defaultActivationModel(SpaceFamily::Nlp);
    ActivationModel cv = defaultActivationModel(SpaceFamily::Cv);
    EXPECT_EQ(nlp.maxBatch, 192);
    EXPECT_EQ(cv.maxBatch, 64);
    EXPECT_GT(cv.bytesPerSample, nlp.bytesPerSample);
    EXPECT_GT(nlp.overheadBatch, cv.overheadBatch);
}

} // namespace
} // namespace naspipe
