/**
 * @file
 * Capacity planner tests: Table 2's batch/memory columns and the
 * NLP.c0 OOM behaviour.
 */

#include <gtest/gtest.h>

#include "memory/swap_model.h"

namespace naspipe {
namespace {

struct PlannerFixture : ::testing::Test {
    GpuConfig gpu;  // 11 GB 2080Ti defaults
};

TEST_F(PlannerFixture, Nlpc0OomsAllResidentSystems)
{
    SearchSpace space = makeNlpC0();
    CapacityPlanner planner(space, gpu);
    EXPECT_FALSE(planner.plan(gpipeSystem(), 8).fits);
    EXPECT_FALSE(planner.plan(pipedreamSystem(), 8).fits);
    EXPECT_TRUE(planner.plan(naspipeSystem(), 8).fits);
    EXPECT_TRUE(planner.plan(vpipeSystem(), 8).fits);
}

TEST_F(PlannerFixture, Nlpc1BatchOrdering)
{
    // Table 2 ordering: NASPipe ~ VPipe >> GPipe > PipeDream.
    SearchSpace space = makeNlpC1();
    CapacityPlanner planner(space, gpu);
    int naspipe = planner.plan(naspipeSystem(), 8).batch;
    int vpipe = planner.plan(vpipeSystem(), 8).batch;
    int gpipeB = planner.plan(gpipeSystem(), 8).batch;
    int pipedream = planner.plan(pipedreamSystem(), 8).batch;
    EXPECT_GT(naspipe, 2 * gpipeB);
    EXPECT_GT(gpipeB, pipedream);
    EXPECT_NEAR(naspipe, vpipe, vpipe / 10 + 4);
    // Ballpark of the paper's 32 for GPipe.
    EXPECT_GT(gpipeB, 16);
    EXPECT_LT(gpipeB, 96);
}

TEST_F(PlannerFixture, BatchGrowsAsSupernetShrinks)
{
    CapacityPlanner c1(makeNlpC1(), gpu);
    CapacityPlanner c2(makeNlpC2(), gpu);
    CapacityPlanner c3(makeNlpC3(), gpu);
    SystemModel gp = gpipeSystem();
    int b1 = c1.plan(gp, 8).batch;
    int b2 = c2.plan(gp, 8).batch;
    int b3 = c3.plan(gp, 8).batch;
    EXPECT_LT(b1, b2);
    EXPECT_LT(b2, b3);
}

TEST_F(PlannerFixture, MaxBatchCapRespected)
{
    CapacityPlanner planner(makeNlpC3(), gpu);
    EXPECT_LE(planner.plan(naspipeSystem(), 8).batch, 192);
    CapacityPlanner cv(makeCvC3(), gpu);
    EXPECT_LE(cv.plan(naspipeSystem(), 8).batch, 64);
}

TEST_F(PlannerFixture, CpuMemoryOnlyForSwapSystems)
{
    SearchSpace space = makeNlpC1();
    CapacityPlanner planner(space, gpu);
    EXPECT_EQ(planner.plan(gpipeSystem(), 8).cpuMemBytesTotal, 0u);
    EXPECT_EQ(planner.plan(naspipeSystem(), 8).cpuMemBytesTotal,
              space.totalParamBytes());
    EXPECT_EQ(planner.plan(vpipeSystem(), 8).cpuMemBytesTotal,
              space.totalParamBytes());
}

TEST_F(PlannerFixture, ReportedParamsMatchResidencyStrategy)
{
    SearchSpace space = makeNlpC1();
    CapacityPlanner planner(space, gpu);
    EXPECT_EQ(planner.plan(gpipeSystem(), 8).reportedParamBytes,
              space.totalParamBytes());
    EXPECT_EQ(planner.plan(vpipeSystem(), 8).reportedParamBytes,
              space.meanSubnetParamBytes());
    // NASPipe's cache: previous + current + next (~3x one subnet).
    EXPECT_EQ(planner.plan(naspipeSystem(), 8).reportedParamBytes,
              3 * space.meanSubnetParamBytes());
}

TEST_F(PlannerFixture, SubnetCacheIsTinyNextToSupernet)
{
    SearchSpace space = makeNlpC1();
    CapacityPlanner planner(space, gpu);
    auto naspipe = planner.plan(naspipeSystem(), 8);
    auto gpipe = planner.plan(gpipeSystem(), 8);
    EXPECT_LT(naspipe.residentParamBytesPerGpu * 10,
              gpipe.residentParamBytesPerGpu);
}

TEST_F(PlannerFixture, WeightStashInflatesPipedreamFootprint)
{
    SearchSpace space = makeNlpC1();
    CapacityPlanner planner(space, gpu);
    auto pd = planner.plan(pipedreamSystem(), 8);
    auto gp = planner.plan(gpipeSystem(), 8);
    EXPECT_GT(pd.residentParamBytesPerGpu,
              gp.residentParamBytesPerGpu);
}

TEST_F(PlannerFixture, MoreGpusRelieveAllResidentPressure)
{
    SearchSpace space = makeNlpC0();
    CapacityPlanner planner(space, gpu);
    EXPECT_FALSE(planner.plan(gpipeSystem(), 8).fits);
    EXPECT_TRUE(planner.plan(gpipeSystem(), 16).fits);
}

TEST_F(PlannerFixture, CvBatchesInPaperBallpark)
{
    CapacityPlanner planner(makeCvC1(), gpu);
    int gpipeB = planner.plan(gpipeSystem(), 8).batch;
    int pipedream = planner.plan(pipedreamSystem(), 8).batch;
    // Paper: 24 and 12.
    EXPECT_GT(gpipeB, 12);
    EXPECT_LT(gpipeB, 48);
    EXPECT_GT(pipedream, 4);
    EXPECT_LT(pipedream, 24);
}

} // namespace
} // namespace naspipe
