/**
 * @file
 * Context manager tests: prefetch, sync fetch, eviction, hit rates.
 */

#include <gtest/gtest.h>

#include "memory/context_manager.h"

namespace naspipe {
namespace {

struct ContextFixture : ::testing::Test {
    ContextFixture()
        : space("x", SpaceFamily::Nlp, 8, 4, 3),
          gpu(sim, 0, GpuConfig{})
    {
    }

    Subnet
    subnet(SubnetId id = 0)
    {
        return Subnet(id, {0, 1, 2, 3, 0, 1, 2, 3});
    }

    Simulator sim;
    SearchSpace space;
    Gpu gpu;
};

TEST_F(ContextFixture, AllResidentIsAlwaysReady)
{
    ContextManager ctx(sim, space, gpu, MemoryMode::AllResident);
    Tick ready = ctx.ensureResident(subnet(), 0, 7);
    EXPECT_EQ(ready, sim.now());
    EXPECT_EQ(ctx.memory().hitStats().total(), 0u);
    EXPECT_EQ(ctx.stats().syncFetches, 0u);
}

TEST_F(ContextFixture, PrefetchMakesLaterAccessAHit)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.prefetch(subnet(), 0, 3);
    EXPECT_GT(ctx.stats().prefetchedBytes, 0u);
    Tick ready = ctx.ensureResident(subnet(), 0, 3);
    // All four layers anticipated: all hits.
    EXPECT_EQ(ctx.memory().hitStats().hits(), 4u);
    EXPECT_EQ(ctx.memory().hitStats().misses(), 0u);
    EXPECT_EQ(ctx.stats().syncFetches, 0u);
    // The copies still take PCIe time.
    EXPECT_GT(ready, sim.now());
}

TEST_F(ContextFixture, ColdAccessIsAMissWithSyncFetch)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 3);
    EXPECT_EQ(ctx.memory().hitStats().misses(), 4u);
    EXPECT_EQ(ctx.stats().syncFetches, 4u);
    EXPECT_DOUBLE_EQ(ctx.cacheHitRate(), 0.0);
}

TEST_F(ContextFixture, SecondAccessHits)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 3);
    ctx.ensureResident(subnet(), 0, 3);  // e.g. the backward pass
    EXPECT_EQ(ctx.memory().hitStats().hits(), 4u);
    EXPECT_DOUBLE_EQ(ctx.cacheHitRate(), 0.5);
}

TEST_F(ContextFixture, EvictionFreesAndCopiesBack)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 3);
    std::uint64_t resident = ctx.memory().residentBytes();
    ASSERT_GT(resident, 0u);
    ctx.evictSubnet(subnet(), 0, 3);
    EXPECT_EQ(ctx.memory().residentBytes(), 0u);
    EXPECT_EQ(ctx.stats().evictedBytes, resident);
}

TEST_F(ContextFixture, PrefetchIsNoOpOutsidePredictiveMode)
{
    ContextManager ctx(sim, space, gpu, MemoryMode::SwapOnDemand);
    ctx.prefetch(subnet(), 0, 3);
    EXPECT_EQ(ctx.stats().prefetchedBytes, 0u);
    EXPECT_EQ(ctx.memory().residentLayers(), 0u);
}

TEST_F(ContextFixture, SwapOnDemandEvictsPreviousContext)
{
    ContextManager ctx(sim, space, gpu, MemoryMode::SwapOnDemand);
    Subnet a(0, {0, 0, 0, 0, 0, 0, 0, 0});
    Subnet b(1, {1, 1, 1, 1, 1, 1, 1, 1});
    ctx.ensureResident(a, 0, 3);
    std::uint64_t afterA = ctx.memory().residentBytes();
    ctx.ensureResident(b, 0, 3);
    // a's layers were evicted; only b's context remains.
    EXPECT_GT(ctx.stats().evictedBytes, 0u);
    EXPECT_EQ(ctx.memory().residentLayers(), 4u);
    EXPECT_GT(afterA, 0u);
}

TEST_F(ContextFixture, SwapOnDemandKeepsSharedLayers)
{
    ContextManager ctx(sim, space, gpu, MemoryMode::SwapOnDemand);
    Subnet a(0, {0, 0, 2, 3, 0, 1, 2, 3});
    Subnet b(1, {0, 0, 1, 1, 0, 1, 2, 3});  // shares blocks 0,1
    ctx.ensureResident(a, 0, 3);
    ctx.ensureResident(b, 0, 3);
    // Blocks 0 and 1 stayed resident => 2 hits.
    EXPECT_EQ(ctx.memory().hitStats().hits(), 2u);
}

TEST_F(ContextFixture, SkipLayersNeverTouchTheCache)
{
    SearchSpace skippy("s", SpaceFamily::Nlp, 8, 4, 3, 0.4);
    ContextManager ctx(sim, skippy, gpu,
                       MemoryMode::PredictivePrefetch);
    Subnet sn(0, {0, 0, 1, 2, 0, 0, 1, 2});  // 4 skip blocks
    ctx.ensureResident(sn, 0, 7);
    EXPECT_EQ(ctx.memory().hitStats().total(), 4u);
    EXPECT_EQ(ctx.memory().residentLayers(), 4u);
}

TEST_F(ContextFixture, BudgetForcesLruEviction)
{
    // Budget fits roughly half the subnet's context: the memory
    // limit check (§4.2) must push out idle layers as new ones come.
    std::uint64_t full = subnet().paramBytes(space);
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch, full / 2);
    // Touch layers at increasing times so LRU order is well-defined.
    sim.scheduleAt(0, [&] { ctx.ensureResident(subnet(), 0, 1); });
    sim.scheduleAt(kTicksPerMs,
                   [&] { ctx.ensureResident(subnet(), 2, 3); });
    sim.scheduleAt(2 * kTicksPerMs,
                   [&] { ctx.ensureResident(subnet(), 4, 7); });
    sim.run();
    EXPECT_GT(ctx.stats().forcedEvictions, 0u);
    EXPECT_LE(ctx.memory().residentBytes(),
              full / 2 + (64ULL << 20));  // at most one layer over
}

TEST_F(ContextFixture, BudgetNeverEvictsLayersInUse)
{
    // Budget smaller than one task's context: the check must admit
    // over budget instead of evicting what the task is touching.
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch, 1);
    ctx.ensureResident(subnet(), 0, 7);
    EXPECT_EQ(ctx.memory().residentLayers(), 8u);
    EXPECT_GT(ctx.stats().overBudgetFetches, 0u);
}

TEST_F(ContextFixture, UnlimitedBudgetNeverForcesEviction)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 7);
    EXPECT_EQ(ctx.stats().forcedEvictions, 0u);
    EXPECT_EQ(ctx.stats().overBudgetFetches, 0u);
}

TEST_F(ContextFixture, StatsCountingCanBeSuppressed)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 3, /*countStats=*/false);
    EXPECT_EQ(ctx.memory().hitStats().total(), 0u);
}

TEST_F(ContextFixture, ResetClearsState)
{
    ContextManager ctx(sim, space, gpu,
                       MemoryMode::PredictivePrefetch);
    ctx.ensureResident(subnet(), 0, 3);
    ctx.reset();
    EXPECT_EQ(ctx.memory().residentBytes(), 0u);
    EXPECT_EQ(ctx.stats().syncFetches, 0u);
}

} // namespace
} // namespace naspipe
