/**
 * @file
 * GPU resident-set manager tests.
 */

#include <gtest/gtest.h>

#include "memory/gpu_memory.h"

namespace naspipe {
namespace {

TEST(GpuMemoryManager, AdmitAndQuery)
{
    GpuMemoryManager mem;
    LayerId layer{1, 2};
    EXPECT_FALSE(mem.tracked(layer));
    mem.admit(layer, 100, 50);
    EXPECT_TRUE(mem.tracked(layer));
    EXPECT_FALSE(mem.usable(layer, 49));  // copy in flight
    EXPECT_TRUE(mem.usable(layer, 50));
    EXPECT_EQ(mem.residentBytes(), 100u);
}

TEST(GpuMemoryManager, DoubleAdmitKeepsFirstCopy)
{
    GpuMemoryManager mem;
    LayerId layer{0, 0};
    Tick first = mem.admit(layer, 100, 10);
    Tick second = mem.admit(layer, 100, 99);
    EXPECT_EQ(first, 10u);
    EXPECT_EQ(second, 10u);  // earlier copy wins
    EXPECT_EQ(mem.residentBytes(), 100u);  // not double counted
}

TEST(GpuMemoryManager, EvictReleasesBytes)
{
    GpuMemoryManager mem;
    LayerId a{0, 0}, b{0, 1};
    mem.admit(a, 100, 0);
    mem.admit(b, 50, 0);
    EXPECT_EQ(mem.evict(a), 100u);
    EXPECT_EQ(mem.residentBytes(), 50u);
    EXPECT_EQ(mem.evict(a), 0u);  // idempotent
    EXPECT_EQ(mem.residentLayers(), 1u);
}

TEST(GpuMemoryManager, PeakBytesHighWaterMark)
{
    GpuMemoryManager mem;
    mem.admit(LayerId{0, 0}, 100, 0);
    mem.admit(LayerId{0, 1}, 100, 0);
    mem.evict(LayerId{0, 0});
    mem.admit(LayerId{0, 2}, 50, 0);
    EXPECT_EQ(mem.peakBytes(), 200u);
}

TEST(GpuMemoryManager, AvailabilityQueryPanicsOnUnknown)
{
    GpuMemoryManager mem;
    EXPECT_THROW(mem.availableAt(LayerId{9, 9}), std::logic_error);
}

TEST(GpuMemoryManager, TouchUpdatesLru)
{
    GpuMemoryManager mem;
    LayerId a{0, 0}, b{0, 1};
    mem.admit(a, 10, 0);
    mem.admit(b, 10, 0);
    mem.touch(a, 100);
    mem.touch(b, 50);
    LayerId victim;
    ASSERT_TRUE(mem.lruVictim(victim, 200));
    EXPECT_EQ(victim, b);  // least recently used
}

TEST(GpuMemoryManager, LruVictimRespectsCutoff)
{
    GpuMemoryManager mem;
    LayerId a{0, 0};
    mem.admit(a, 10, 0);
    mem.touch(a, 100);
    LayerId victim;
    EXPECT_FALSE(mem.lruVictim(victim, 50));
    // A layer used at exactly the cutoff instant is still in use.
    EXPECT_FALSE(mem.lruVictim(victim, 100));
    EXPECT_TRUE(mem.lruVictim(victim, 101));
}

TEST(GpuMemoryManager, HitStatsIntegration)
{
    GpuMemoryManager mem;
    mem.hitStats().hit(9);
    mem.hitStats().miss();
    EXPECT_DOUBLE_EQ(mem.hitStats().rate(), 0.9);
}

TEST(GpuMemoryManager, ResetClearsEverything)
{
    GpuMemoryManager mem;
    mem.admit(LayerId{0, 0}, 10, 0);
    mem.hitStats().hit();
    mem.reset();
    EXPECT_EQ(mem.residentBytes(), 0u);
    EXPECT_EQ(mem.peakBytes(), 0u);
    EXPECT_EQ(mem.hitStats().total(), 0u);
}

} // namespace
} // namespace naspipe
