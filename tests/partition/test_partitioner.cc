/**
 * @file
 * Balanced partitioner tests.
 */

#include <gtest/gtest.h>

#include "partition/partitioner.h"
#include "supernet/sampler.h"

namespace naspipe {
namespace {

TEST(SubnetPartition, BasicQueries)
{
    SubnetPartition p({0, 3, 5}, 8);
    EXPECT_EQ(p.numStages(), 3);
    EXPECT_EQ(p.numBlocks(), 8);
    EXPECT_EQ(p.firstBlock(0), 0);
    EXPECT_EQ(p.lastBlock(0), 2);
    EXPECT_EQ(p.firstBlock(2), 5);
    EXPECT_EQ(p.lastBlock(2), 7);
    EXPECT_EQ(p.blockCount(1), 2);
}

TEST(SubnetPartition, StageOf)
{
    SubnetPartition p({0, 3, 5}, 8);
    EXPECT_EQ(p.stageOf(0), 0);
    EXPECT_EQ(p.stageOf(2), 0);
    EXPECT_EQ(p.stageOf(3), 1);
    EXPECT_EQ(p.stageOf(4), 1);
    EXPECT_EQ(p.stageOf(7), 2);
}

TEST(SubnetPartition, EmptyStagesAllowed)
{
    SubnetPartition p({0, 2, 2}, 4);
    EXPECT_EQ(p.blockCount(1), 0);
    EXPECT_FALSE(p.stageNonEmpty(1));
    EXPECT_GT(p.firstBlock(1), p.lastBlock(1));
}

TEST(SubnetPartition, InvalidConstructionPanics)
{
    EXPECT_THROW(SubnetPartition({1, 2}, 4), std::logic_error);
    EXPECT_THROW(SubnetPartition({0, 3, 2}, 4), std::logic_error);
    EXPECT_THROW(SubnetPartition({0, 9}, 4), std::logic_error);
}

TEST(Partitioner, EvenPartitionSplitsEqually)
{
    SubnetPartition p = Partitioner::even(48, 8);
    for (int s = 0; s < 8; s++)
        EXPECT_EQ(p.blockCount(s), 6);
}

TEST(Partitioner, EvenPartitionHandlesRemainders)
{
    SubnetPartition p = Partitioner::even(10, 4);
    int total = 0;
    for (int s = 0; s < 4; s++) {
        total += p.blockCount(s);
        EXPECT_GE(p.blockCount(s), 2);
        EXPECT_LE(p.blockCount(s), 3);
    }
    EXPECT_EQ(total, 10);
}

TEST(Partitioner, BalancedNeverWorseThanEven)
{
    SearchSpace space("x", SpaceFamily::Nlp, 16, 6, 13);
    Partitioner part(space, space.referenceBatch());
    UniformSampler sampler(space, 23);
    for (int i = 0; i < 20; i++) {
        Subnet sn = sampler.next();
        auto balanced = part.balanced(sn, 4);
        auto even = Partitioner::even(sn.size(), 4);
        double balancedMax = part.cost(sn, balanced).maxMs;
        double evenMax = part.cost(sn, even).maxMs;
        EXPECT_LE(balancedMax, evenMax + 1e-9) << sn.toString();
    }
}

TEST(Partitioner, BalancedIsOptimalOnSmallInstance)
{
    // Brute-force the min-max partition of a small subnet and check
    // the DP finds the same bottleneck.
    SearchSpace space("x", SpaceFamily::Nlp, 6, 4, 3);
    Partitioner part(space, space.referenceBatch());
    Subnet sn(0, {0, 1, 2, 3, 0, 1});
    auto costs = part.blockCosts(sn);

    double best = 1e18;
    // Two cut points over 6 blocks into 3 stages.
    for (int c1 = 0; c1 <= 6; c1++) {
        for (int c2 = c1; c2 <= 6; c2++) {
            double s0 = 0, s1 = 0, s2 = 0;
            for (int b = 0; b < c1; b++)
                s0 += costs[static_cast<std::size_t>(b)];
            for (int b = c1; b < c2; b++)
                s1 += costs[static_cast<std::size_t>(b)];
            for (int b = c2; b < 6; b++)
                s2 += costs[static_cast<std::size_t>(b)];
            best = std::min(best, std::max({s0, s1, s2}));
        }
    }
    auto partition = part.balanced(sn, 3);
    EXPECT_NEAR(part.cost(sn, partition).maxMs, best, 1e-9);
}

TEST(Partitioner, CostTotalsMatchBlockSum)
{
    SearchSpace space("x", SpaceFamily::Cv, 8, 4, 3);
    Partitioner part(space, 32);
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    auto costs = part.blockCosts(sn);
    double sum = 0;
    for (double c : costs)
        sum += c;
    auto partition = part.balanced(sn, 3);
    EXPECT_NEAR(part.cost(sn, partition).totalMs, sum, 1e-9);
}

TEST(Partitioner, ImbalanceMetric)
{
    PartitionCost cost;
    cost.stageMs = {1.0, 1.0, 2.0};
    cost.maxMs = 2.0;
    cost.totalMs = 4.0;
    EXPECT_NEAR(cost.imbalance(), 1.5, 1e-9);
}

TEST(Partitioner, DeterministicResult)
{
    SearchSpace space("x", SpaceFamily::Nlp, 24, 8, 5);
    Partitioner part(space, space.referenceBatch());
    UniformSampler sampler(space, 3);
    Subnet sn = sampler.next();
    EXPECT_EQ(part.balanced(sn, 8), part.balanced(sn, 8));
}

TEST(Partitioner, MoreStagesThanBlocks)
{
    SearchSpace tiny = makeTinySpace();
    Partitioner part(tiny, tiny.referenceBatch());
    Subnet sn(0, {0, 1, 2, 0});
    auto p = part.balanced(sn, 6);
    // All 4 blocks assigned; at least two stages must be empty (the
    // DP may also merge cheap blocks, leaving more empties).
    int total = 0, empty = 0;
    for (int s = 0; s < 6; s++) {
        total += p.blockCount(s);
        empty += p.blockCount(s) == 0;
    }
    EXPECT_EQ(total, 4);
    EXPECT_GE(empty, 2);
}

} // namespace
} // namespace naspipe
