/**
 * @file
 * Home placement tests.
 */

#include <gtest/gtest.h>

#include "partition/placement.h"

namespace naspipe {
namespace {

TEST(HomePlacement, BlocksSplitEvenly)
{
    SearchSpace space("x", SpaceFamily::Nlp, 48, 6, 3);
    HomePlacement placement(space, 8);
    for (int s = 0; s < 8; s++) {
        EXPECT_EQ(placement.lastBlock(s) - placement.firstBlock(s) + 1,
                  6);
    }
    EXPECT_EQ(placement.homeStage(0), 0);
    EXPECT_EQ(placement.homeStage(47), 7);
}

TEST(HomePlacement, EveryBlockHasExactlyOneHome)
{
    SearchSpace space("x", SpaceFamily::Nlp, 10, 4, 3);
    HomePlacement placement(space, 3);
    std::vector<int> owned(10, 0);
    for (int s = 0; s < 3; s++) {
        for (int b = placement.firstBlock(s);
             b <= placement.lastBlock(s); b++) {
            owned[static_cast<std::size_t>(b)]++;
        }
    }
    for (int count : owned)
        EXPECT_EQ(count, 1);
}

TEST(HomePlacement, StageBytesSumToSupernet)
{
    SearchSpace space("x", SpaceFamily::Cv, 16, 5, 9);
    HomePlacement placement(space, 4);
    std::uint64_t total = 0;
    for (int s = 0; s < 4; s++)
        total += placement.stageParamBytes(s);
    EXPECT_EQ(total, space.totalParamBytes());
}

TEST(HomePlacement, StageBytesRoughlyBalanced)
{
    SearchSpace space = makeNlpC2();
    HomePlacement placement(space, 8);
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (int s = 0; s < 8; s++) {
        lo = std::min(lo, placement.stageParamBytes(s));
        hi = std::max(hi, placement.stageParamBytes(s));
    }
    // Even block counts with random layer sizes: within 2x.
    EXPECT_LT(static_cast<double>(hi),
              2.0 * static_cast<double>(lo));
}

TEST(HomePlacement, OutOfRangeStagePanics)
{
    SearchSpace tiny = makeTinySpace();
    HomePlacement placement(tiny, 2);
    EXPECT_THROW(placement.stageParamBytes(2), std::logic_error);
}

} // namespace
} // namespace naspipe
