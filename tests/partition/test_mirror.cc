/**
 * @file
 * Mirror planner tests.
 */

#include <gtest/gtest.h>

#include "partition/mirror.h"

namespace naspipe {
namespace {

struct MirrorFixture : ::testing::Test {
    MirrorFixture()
        : space("x", SpaceFamily::Nlp, 8, 4, 3),
          placement(space, 4), planner(space, placement)
    {
    }

    SearchSpace space;
    HomePlacement placement;
    MirrorPlanner planner;
};

TEST_F(MirrorFixture, NoMirrorsUnderHomePartition)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    // Execute under the exact home partition: nothing to mirror.
    auto entries = planner.plan(sn, placement.partition());
    EXPECT_TRUE(entries.empty());
}

TEST_F(MirrorFixture, ShiftedPartitionCreatesMirrors)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    // Home: stages of 2 blocks each. Shifted: stage 0 takes 3 blocks.
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    auto entries = planner.plan(sn, shifted);
    ASSERT_FALSE(entries.empty());
    for (const auto &e : entries) {
        EXPECT_NE(e.homeStage, e.execStage);
        EXPECT_GT(e.paramBytes, 0u);
    }
}

TEST_F(MirrorFixture, ActivateCountsNewAndReused)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    auto entries = planner.plan(sn, shifted);
    std::uint64_t bytesFirst = planner.activate(entries);
    EXPECT_GT(bytesFirst, 0u);
    EXPECT_EQ(planner.stats().mirrorsCreated, entries.size());
    // Re-activating the same mirrors is free.
    std::uint64_t bytesSecond = planner.activate(entries);
    EXPECT_EQ(bytesSecond, 0u);
    EXPECT_EQ(planner.stats().mirrorsReused, entries.size());
}

TEST_F(MirrorFixture, IsMirroredQuery)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    auto entries = planner.plan(sn, shifted);
    planner.activate(entries);
    EXPECT_TRUE(planner.isMirrored(entries[0].layer,
                                   entries[0].execStage));
    EXPECT_FALSE(planner.isMirrored(entries[0].layer,
                                    entries[0].homeStage));
}

TEST_F(MirrorFixture, SyncPushAccountsBytes)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    auto entries = planner.plan(sn, shifted);
    std::uint64_t expected = 0;
    for (const auto &e : entries)
        expected += e.paramBytes;
    EXPECT_EQ(planner.recordSyncPush(entries), expected);
    EXPECT_EQ(planner.stats().syncBytes, expected);
    EXPECT_EQ(planner.stats().syncPushes, entries.size());
}

TEST_F(MirrorFixture, ResetClearsState)
{
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    planner.activate(planner.plan(sn, shifted));
    planner.reset();
    EXPECT_EQ(planner.liveMirrors(), 0u);
    EXPECT_EQ(planner.stats().mirrorsCreated, 0u);
}

TEST(MirrorSkip, ParameterFreeLayersNeverMirrored)
{
    SearchSpace space("s", SpaceFamily::Nlp, 8, 4, 3, 0.5);
    HomePlacement placement(space, 4);
    MirrorPlanner planner(space, placement);
    // All-skip subnet under a shifted partition: nothing to mirror.
    Subnet sn(0, {0, 0, 0, 0, 0, 0, 0, 0});
    SubnetPartition shifted({0, 3, 5, 7}, 8);
    EXPECT_TRUE(planner.plan(sn, shifted).empty());
}

} // namespace
} // namespace naspipe
