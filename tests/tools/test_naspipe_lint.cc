/**
 * @file
 * Unit tests of the naspipe_lint engine (tools/lint_rules.h): each
 * rule fires on its minimal hazard, stays quiet on the clean variant
 * and on comment/string occurrences, respects reasoned allow()
 * suppressions, and the baseline keys are line-number-independent.
 *
 * Every hazard snippet lives in a string literal, which the scanner's
 * code view blanks — so the lint run over tests/ never flags this
 * file's own test data.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint_rules.h"

using namespace naspipe::lint;
namespace analysis = naspipe::analysis;

namespace {

std::vector<std::string>
rulesOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> rules;
    for (const Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

} // namespace

TEST(LintRules, TableListsEveryRule)
{
    std::vector<std::string> names;
    for (const RuleInfo &rule : ruleTable())
        names.push_back(rule.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{
                  "unordered-iteration", "raw-random",
                  "pointer-key-container", "det-suppression",
                  "wall-clock", "float-reduce-outside-kernels",
                  "relaxed-memory-order", "raw-mutex",
                  "lock-rank-order", "lock-cycle",
                  "blocking-under-lock", "unknown-lock-rank",
                  "ambiguous-lock-name"}));
}

TEST(LintRules, WallClockFiresOutsideObs)
{
    std::string src =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(rulesOf(scanSource("src/exec/worker.cc", src)),
              std::vector<std::string>{"wall-clock"});
    EXPECT_EQ(rulesOf(scanSource(
                  "tools/some_tool.cc",
                  "std::chrono::system_clock::now();\n")),
              std::vector<std::string>{"wall-clock"});
    EXPECT_EQ(rulesOf(scanSource(
                  "tests/t.cc",
                  "using C = std::chrono::high_resolution_clock;\n")),
              std::vector<std::string>{"wall-clock"});
}

TEST(LintRules, WallClockSkipsObsAndBench)
{
    std::string src =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(scanSource("src/obs/wall_clock.cc", src).empty());
    EXPECT_TRUE(scanSource("bench/micro_numeric.cc", src).empty());
    // Mentions in comments or strings never fire.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "// steady_clock is banned here\n"
                           "const char *s = \"steady_clock\";\n")
                    .empty());
    // Durations without a clock are fine.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "std::chrono::duration<double> d{};\n")
                    .empty());
}

TEST(LintRules, UnorderedIterationFires)
{
    std::string src = "#include <unordered_map>\n"
                      "void f() {\n"
                      "    std::unordered_map<int, int> sched;\n"
                      "    for (auto &kv : sched) { (void)kv; }\n"
                      "}\n";
    std::vector<Finding> findings = scanSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iteration");
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_EQ(findings[0].excerpt,
              "for (auto &kv : sched) { (void)kv; }");
}

TEST(LintRules, UnorderedLookupIsClean)
{
    // Point lookups are order-independent; only iteration is a hazard.
    std::string src = "std::unordered_map<int, int> sched;\n"
                      "int g(int k) { return sched.at(k); }\n";
    EXPECT_TRUE(scanSource("src/a.cc", src).empty());
}

TEST(LintRules, OrderedIterationIsClean)
{
    std::string src = "std::map<int, int> sched;\n"
                      "void f() { for (auto &kv : sched) (void)kv; }\n";
    EXPECT_TRUE(scanSource("src/a.cc", src).empty());
}

TEST(LintRules, RawRandomFires)
{
    EXPECT_EQ(rulesOf(scanSource("src/a.cc", "int x = rand();\n")),
              std::vector<std::string>{"raw-random"});
    EXPECT_EQ(rulesOf(scanSource("src/a.cc", "srand(42);\n")),
              std::vector<std::string>{"raw-random"});
    EXPECT_EQ(rulesOf(scanSource("src/a.cc",
                                 "std::random_device rd;\n")),
              std::vector<std::string>{"raw-random"});
    EXPECT_EQ(rulesOf(scanSource("src/a.cc",
                                 "long t = time(nullptr);\n")),
              std::vector<std::string>{"raw-random"});
}

TEST(LintRules, RawRandomSkipsMembersAndRngHome)
{
    // Member functions named time() are not the C library clock.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "double t = sim.time();\n")
                    .empty());
    EXPECT_TRUE(scanSource("src/a.cc",
                           "double t = clock->time();\n")
                    .empty());
    // Identifiers merely containing the substrings are clean.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "int wallTime(int operand);\n")
                    .empty());
    // The seeded RNG implementation is the one sanctioned home.
    EXPECT_TRUE(scanSource("src/common/rng.cc",
                           "std::random_device entropy;\n")
                    .empty());
}

TEST(LintRules, PointerKeyContainerFires)
{
    std::string src = "std::map<void *, int> byAddr;\n";
    std::vector<Finding> findings = scanSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "pointer-key-container");
    EXPECT_EQ(rulesOf(scanSource(
                  "src/b.cc", "std::set<Layer *> live;\n")),
              std::vector<std::string>{"pointer-key-container"});
    // Value-typed maps and pointer *values* are fine.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "std::map<int, Layer *> byId;\n")
                    .empty());
}

TEST(LintRules, FloatReduceFiresOnAccumulatorLoops)
{
    std::string src = "float total = 0.0f;\n"
                      "void f(const float *a, int n) {\n"
                      "    for (int i = 0; i < n; i++)\n"
                      "        total += a[i];\n"
                      "}\n";
    std::vector<Finding> findings = scanSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "float-reduce-outside-kernels");
    EXPECT_EQ(findings[0].line, 4);

    // All three zero-initializer spellings seed an accumulator.
    EXPECT_EQ(rulesOf(scanSource("src/b.cc",
                                 "float s = 0;\ns += x;\n")),
              std::vector<std::string>{
                  "float-reduce-outside-kernels"});
    EXPECT_EQ(rulesOf(scanSource("src/b.cc",
                                 "float s = 0.f;\ns += x;\n")),
              std::vector<std::string>{
                  "float-reduce-outside-kernels"});
}

TEST(LintRules, FloatReduceFiresOnStdAccumulate)
{
    EXPECT_EQ(rulesOf(scanSource(
                  "src/a.cc",
                  "float s = std::accumulate(v.begin(), v.end(), "
                  "1.0f);\n")),
              std::vector<std::string>{
                  "float-reduce-outside-kernels"});
}

TEST(LintRules, FloatReduceSkipsKernelsAndNonReductions)
{
    // The kernel layer is the sanctioned home of reduction loops.
    EXPECT_TRUE(scanSource("src/tensor/kernels/reduce.cc",
                           "float s = 0.0f;\ns += a[i];\n")
                    .empty());
    // A zero-initialized float that is only ever assigned is a
    // running value, not a reduction.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "float loss = 0.0f;\nloss = next();\n")
                    .empty());
    // A nonzero initializer is not a reduction seed.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "float gain = 0.5f;\ngain += bump;\n")
                    .empty());
    // Integer accumulators carry no rounding order.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "int count = 0;\ncount += n;\n")
                    .empty());
}

TEST(LintRules, RelaxedMemoryOrderFiresRepoWideUnderSrc)
{
    // Originally restricted to src/exec/; the atomics pass now holds
    // every subsystem to the same reviewed-ordering bar.
    std::string src = "n.load(std::memory_order_relaxed);\n";
    EXPECT_EQ(rulesOf(scanSource("src/exec/gate.cc", src)),
              std::vector<std::string>{"relaxed-memory-order"});
    EXPECT_EQ(rulesOf(scanSource("src/common/stats.cc", src)),
              std::vector<std::string>{"relaxed-memory-order"});
    EXPECT_EQ(rulesOf(scanSource("src/serve/pool.cc", src)),
              std::vector<std::string>{"relaxed-memory-order"});
    // Non-src trees (tools, tests) stay out of scope.
    EXPECT_TRUE(scanSource("tools/naspipe_bench.cc", src).empty());
}

TEST(LintRules, DetSuppressionFiresEvenInComments)
{
    // Built by concatenation so this test file's own raw lines never
    // contain the marker the rule scans for.
    std::string src = std::string("// TO") + "DO(det): revisit\n";
    std::vector<Finding> findings = scanSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "det-suppression");
}

TEST(LintRules, CommentsAndStringsDoNotFire)
{
    std::string src = "// calls rand() in hash order\n"
                      "const char *msg = \"rand() time()\";\n"
                      "/* std::map<void *, int> */\n";
    EXPECT_TRUE(scanSource("src/a.cc", src).empty());
}

TEST(LintRules, AllowWithReasonSuppresses)
{
    std::string allow =
        "// naspipe-lint: allow(raw-random) seeding the demo only\n";
    EXPECT_TRUE(
        scanSource("src/a.cc", allow + "int x = rand();\n").empty());
    // Same-line form.
    EXPECT_TRUE(scanSource("src/a.cc",
                           "int x = rand();  "
                           "// naspipe-lint: allow(raw-random) demo\n")
                    .empty());
}

TEST(LintRules, BareAllowDoesNotSuppress)
{
    std::string src = "// naspipe-lint: allow(raw-random)\n"
                      "int x = rand();\n";
    EXPECT_EQ(rulesOf(scanSource("src/a.cc", src)),
              std::vector<std::string>{"raw-random"});
}

TEST(LintRules, AllowOnlyCoversItsOwnRule)
{
    std::string src =
        "// naspipe-lint: allow(unordered-iteration) wrong rule\n"
        "int x = rand();\n";
    EXPECT_EQ(rulesOf(scanSource("src/a.cc", src)),
              std::vector<std::string>{"raw-random"});
}

TEST(LintRules, BaselineKeyIgnoresLineNumbers)
{
    std::string hazard = "int x = rand();\n";
    Finding atTop = scanSource("src/a.cc", hazard).front();
    Finding shifted =
        scanSource("src/a.cc", "\n\n\n" + hazard).front();
    EXPECT_NE(atTop.line, shifted.line);
    EXPECT_EQ(analysis::baselineKey(atTop), analysis::baselineKey(shifted));
}

TEST(LintRules, ApplyBaselineCountsOnlyFreshFindings)
{
    std::vector<Finding> findings =
        scanSource("src/a.cc", "int x = rand();\nsrand(9);\n");
    ASSERT_EQ(findings.size(), 2u);
    std::set<std::string> baseline{analysis::baselineKey(findings[0])};
    EXPECT_EQ(analysis::applyBaseline(findings, baseline), 1u);
    EXPECT_TRUE(findings[0].baselined);
    EXPECT_FALSE(findings[1].baselined);
}

TEST(LintRules, RenderedBaselineRoundTrips)
{
    std::vector<Finding> findings =
        scanSource("src/a.cc", "int x = rand();\n");
    std::string rendered = analysis::renderBaseline(findings);
    // Comments and the finding key survive a parse of the rendering.
    EXPECT_NE(rendered.find(analysis::baselineKey(findings[0])),
              std::string::npos);
}

TEST(LintRules, MissingBaselineFileIsEmptyNotError)
{
    std::set<std::string> baseline;
    std::string error;
    EXPECT_TRUE(loadBaseline("does/not/exist.txt", baseline, &error));
    EXPECT_TRUE(baseline.empty());
}

TEST(LintRules, DescribeNamesFileLineAndRule)
{
    Finding f = scanSource("src/a.cc", "int x = rand();\n").front();
    EXPECT_EQ(f.describe(), "src/a.cc:1: [raw-random] int x = rand();");
}
