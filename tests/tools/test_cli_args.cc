/**
 * @file
 * naspipe_cli argument-parsing and exit-code contract tests. Each
 * case launches the real binary (path injected by CMake as
 * NASPIPE_CLI_PATH) and checks the documented exit codes: 0 success,
 * 2 argument error / OOM, 3 run failure, 4 CSP verification failure,
 * 5 recovery retries exhausted.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CliResult {
    int exitCode = -1;
    std::string output;  ///< stdout + stderr interleaved
};

CliResult
runCli(const std::string &args)
{
    std::string command =
        std::string(NASPIPE_CLI_PATH) + " " + args + " 2>&1";
    CliResult result;
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << command;
    if (!pipe)
        return result;
    std::array<char, 512> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe))
        result.output += buffer.data();
    int status = pclose(pipe);
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

} // namespace

TEST(CliArgs, HelpExitsZeroAndPrintsUsage)
{
    CliResult r = runCli("--help");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
    EXPECT_NE(r.output.find("--verify-csp"), std::string::npos);
    EXPECT_NE(r.output.find("--executor sim|threads"),
              std::string::npos);
}

TEST(CliArgs, UnknownArgumentExitsTwo)
{
    CliResult r = runCli("--no-such-flag");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("unknown argument"), std::string::npos);
}

TEST(CliArgs, BadExecutorExitsTwo)
{
    CliResult r = runCli("--executor gpu");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("want sim or threads"),
              std::string::npos);
}

TEST(CliArgs, MissingValueExitsTwo)
{
    EXPECT_EQ(runCli("--space").exitCode, 2);
    EXPECT_EQ(runCli("--seed").exitCode, 2);
}

TEST(CliArgs, OutOfRangeValueExitsTwo)
{
    EXPECT_EQ(runCli("--gpus 0").exitCode, 2);
    EXPECT_EQ(runCli("--steps -3").exitCode, 2);
    EXPECT_EQ(runCli("--seed banana").exitCode, 2);
}

TEST(CliArgs, BadFaultSpecExitsTwo)
{
    CliResult r = runCli("--inject-fault explode@5");
    EXPECT_EQ(r.exitCode, 2);
}

TEST(CliArgs, MissingResumeCheckpointExitsThree)
{
    CliResult r = runCli("--space CV.c1 --steps 8 --quiet "
                         "--resume /nonexistent/run.ckpt");
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(CliArgs, SimRunWithVerifyCspExitsZero)
{
    CliResult r =
        runCli("--space CV.c1 --steps 8 --verify-csp");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("verify-csp  ok"), std::string::npos);
}

TEST(CliArgs, ThreadedRunWithVerifyCspExitsZero)
{
    CliResult r = runCli("--space CV.c1 --steps 8 --gpus 2 "
                         "--executor threads --verify-csp");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("verify-csp  ok"), std::string::npos);
    // The threaded run observed live commits, not just the log.
    EXPECT_EQ(r.output.find(" 0 live commits"), std::string::npos);
}

TEST(CliArgs, QuietSuppressesTheReportBlock)
{
    CliResult r =
        runCli("--space CV.c1 --steps 8 --verify-csp --quiet");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output.find("throughput"), std::string::npos);
}

TEST(CliArgs, FaultAndCheckpointFlagsParse)
{
    CliResult r = runCli("--space CV.c1 --steps 12 --quiet "
                         "--inject-fault crash@6 --ckpt-interval 4");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(CliArgs, ThreadsRejectsNonCspSystemExitsTwo)
{
    // ParallelRuntime::supported()'s reason string surfaces verbatim
    // in the exit-2 diagnostic.
    CliResult r = runCli("--space CV.c1 --steps 8 --quiet "
                         "--executor threads --system gpipe");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("threaded executor requires a CSP "
                            "system"),
              std::string::npos);
}

TEST(CliArgs, ThreadsCrashRecoversAndVerifiesCspExitsZero)
{
    // Fault injection is executor-agnostic now: a threaded run that
    // loses a stage worker recovers from the last drained checkpoint
    // and still passes the live + post-hoc CSP audit.
    CliResult r =
        runCli("--space CV.c1 --steps 12 --gpus 2 "
               "--executor threads --verify-csp --ckpt-interval 4 "
               "--inject-fault crash@6,stage=1");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verify-csp  ok"), std::string::npos);
    EXPECT_NE(r.output.find("1 recoveries"), std::string::npos);
}

TEST(CliArgs, ThreadsRetriesExhaustedExitsFive)
{
    // --recovery-retries 0 refuses the first retry, so the first
    // fail-stop fault is terminal: the documented exit code 5.
    CliResult r =
        runCli("--space CV.c1 --steps 12 --gpus 2 --quiet "
               "--executor threads --ckpt-interval 4 "
               "--recovery-retries 0 --inject-fault crash@6,stage=1");
    EXPECT_EQ(r.exitCode, 5) << r.output;
    EXPECT_NE(r.output.find("recovery retries exhausted"),
              std::string::npos);
}

TEST(CliArgs, ThreadsCorruptResumeCheckpointExitsThree)
{
    // A corrupt checkpoint file must be a clean run failure (exit 3),
    // never an abort: the loader validates magic/version/checksum.
    std::string ckpt =
        ::testing::TempDir() + "naspipe_cli_corrupt.ckpt";
    {
        FILE *f = fopen(ckpt.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[] = "NOT A CHECKPOINT";
        fwrite(junk, 1, sizeof(junk), f);
        fclose(f);
    }
    CliResult r = runCli("--space CV.c1 --steps 8 --gpus 2 --quiet "
                         "--executor threads --resume " +
                         ckpt);
    EXPECT_EQ(r.exitCode, 3) << r.output;
    EXPECT_NE(r.output.find("error:"), std::string::npos);
    std::remove(ckpt.c_str());
}

TEST(CliArgs, ThreadsCheckpointThenResumeExitsZero)
{
    // Drained-barrier checkpoints are no longer simulator-only: a
    // threaded run may write them and resume from them.
    std::string ckpt =
        ::testing::TempDir() + "naspipe_cli_thr.ckpt";
    std::remove(ckpt.c_str());
    CliResult writer =
        runCli("--space CV.c1 --steps 12 --gpus 2 --quiet "
               "--executor threads --ckpt-interval 4 --ckpt " +
               ckpt);
    EXPECT_EQ(writer.exitCode, 0) << writer.output;
    CliResult reader =
        runCli("--space CV.c1 --steps 12 --gpus 2 --quiet "
               "--executor threads --verify-csp --resume " +
               ckpt);
    EXPECT_EQ(reader.exitCode, 0) << reader.output;
    std::remove(ckpt.c_str());
}

TEST(CliArgs, ThreadsMissingResumeCheckpointExitsThree)
{
    CliResult r = runCli("--space CV.c1 --steps 8 --gpus 2 --quiet "
                         "--executor threads "
                         "--resume /nonexistent/run.ckpt");
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_NE(r.output.find("error:"), std::string::npos);
}
