/**
 * @file
 * Lock-discipline pass tests (tools/analysis/lock_pass.*).
 *
 * Fixture sources are in-memory string literals — the repo's own
 * lint run blanks string contents, so nothing here registers as a
 * real declaration or acquisition. The suite leans on negative
 * paths: a seeded rank cycle, blocking calls under held guards, raw
 * mutexes and bad registry references must all FAIL the pass, so a
 * green `lint` target means the discipline is actually checked, not
 * vacuously clean.
 */

#include "analysis/lock_pass.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/source_model.h"
#include "lint_rules.h"

namespace naspipe {
namespace {

using analysis::Finding;
using analysis::LockRegistry;
using analysis::SourceFile;
using analysis::makeSourceFile;

/** A three-rank fixture registry shaped like the real lock_rank.h. */
const char *const kRegistrySource =
    "namespace naspipe {\n"
    "enum class LockRank : int {\n"
    "    Outer = 10,\n"
    "    Middle = 20,\n"
    "    Inner = 30,\n"
    "};\n"
    "}\n";

SourceFile
registryFile()
{
    return makeSourceFile("src/common/lock_rank.h",
                          kRegistrySource);
}

LockRegistry
fixtureRegistry()
{
    return LockRegistry::parse(registryFile());
}

std::vector<std::string>
rulesOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> rules;
    for (const Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

bool
hasRule(const std::vector<Finding> &findings, const std::string &rule)
{
    for (const Finding &f : findings)
        if (f.rule == rule)
            return true;
    return false;
}

TEST(LockRegistry, ParsesTheEnumBlock)
{
    LockRegistry registry = fixtureRegistry();
    EXPECT_FALSE(registry.empty());
    EXPECT_EQ(registry.levelOf("Outer"), 10);
    EXPECT_EQ(registry.levelOf("Middle"), 20);
    EXPECT_EQ(registry.levelOf("Inner"), 30);
    EXPECT_EQ(registry.levelOf("Nonexistent"), -1);
    EXPECT_EQ(registry.ranksByLevel(),
              (std::vector<std::string>{"Outer", "Middle", "Inner"}));
}

TEST(LockRegistry, ParsesTheRealLockRankHeader)
{
    SourceFile real;
    std::string error;
    // ctest runs from build/; the source tree is a sibling of it.
    for (const char *candidate :
         {"../src/common/lock_rank.h", "src/common/lock_rank.h",
          "../../src/common/lock_rank.h"}) {
        if (analysis::loadSourceFile(candidate, real, &error)) {
            LockRegistry registry = LockRegistry::parse(real);
            EXPECT_GE(registry.ranksByLevel().size(), 11u);
            EXPECT_EQ(registry.levelOf("ExecQueue"), 50);
            EXPECT_LT(registry.levelOf("ServeClient"),
                      registry.levelOf("VerifyOracle"));
            return;
        }
    }
    GTEST_SKIP() << "source tree not reachable from test cwd";
}

TEST(LockPass, CleanAscendingNestingProducesNoFindings)
{
    SourceFile decl = makeSourceFile(
        "src/fake/widget.h",
        "struct Widget {\n"
        "    RankedMutex outerMu{LockRank::Outer};\n"
        "    RankedMutex innerMu{LockRank::Inner};\n"
        "};\n");
    SourceFile use = makeSourceFile(
        "src/fake/widget.cc",
        "void Widget::update()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(outerMu);\n"
        "    std::lock_guard<RankedMutex> g2(innerMu);\n"
        "    refresh();\n"
        "}\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {decl, use});
    EXPECT_TRUE(findings.empty()) << findings.size() << " findings";
}

// The acceptance-criteria test: a seeded rank cycle in fixture
// source must demonstrably fail the pass.
TEST(LockPass, SeededRankCycleFailsThePass)
{
    SourceFile decl = makeSourceFile(
        "src/fake/pair.h",
        "struct Pair {\n"
        "    RankedMutex leftMu{LockRank::Outer};\n"
        "    RankedMutex rightMu{LockRank::Inner};\n"
        "};\n");
    SourceFile forward = makeSourceFile(
        "src/fake/forward.cc",
        "void transferForward()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(leftMu);\n"
        "    std::lock_guard<RankedMutex> g2(rightMu);\n"
        "}\n");
    SourceFile backward = makeSourceFile(
        "src/fake/backward.cc",
        "void transferBackward()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(rightMu);\n"
        "    std::lock_guard<RankedMutex> g2(leftMu);\n"
        "}\n");
    std::vector<Finding> findings = analysis::runLockPass(
        fixtureRegistry(), {decl, forward, backward});

    // The backward direction violates the declared order...
    ASSERT_TRUE(hasRule(findings, "lock-rank-order"))
        << "rank-order violation not detected";
    // ...and the pair of sites forms a cycle in the lock-order
    // graph — the classic AB/BA deadlock, reported on both edges.
    ASSERT_TRUE(hasRule(findings, "lock-cycle"))
        << "AB/BA cycle not detected";
    std::size_t cycleFindings = 0;
    for (const Finding &f : findings)
        if (f.rule == "lock-cycle")
            cycleFindings++;
    EXPECT_EQ(cycleFindings, 2u) << "one finding per cycle edge";
    for (const Finding &f : findings) {
        if (f.rule == "lock-rank-order") {
            EXPECT_EQ(f.file, "src/fake/backward.cc");
        }
        if (f.rule == "lock-cycle") {
            EXPECT_NE(f.excerpt.find("cycle"), std::string::npos);
        }
    }
}

TEST(LockPass, BlockingCallsUnderAGuardAreFindings)
{
    SourceFile decl = makeSourceFile(
        "src/fake/owner.h",
        "struct Owner {\n"
        "    RankedMutex stateMu{LockRank::Middle};\n"
        "};\n");
    SourceFile use = makeSourceFile(
        "src/fake/owner.cc",
        "void Owner::bad()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g(stateMu);\n"
        "    ExecTask task = inbox.pop();\n"
        "}\n"
        "void Owner::alsoBad()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g(stateMu);\n"
        "    worker.join();\n"
        "}\n"
        "void Owner::pushToo()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g(stateMu);\n"
        "    inbox.push(task);\n"
        "}\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {decl, use});
    EXPECT_EQ(rulesOf(findings),
              (std::vector<std::string>{"blocking-under-lock",
                                        "blocking-under-lock",
                                        "blocking-under-lock"}));
}

TEST(LockPass, ConditionWaitOnOwnSoleUniqueLockIsSanctioned)
{
    SourceFile decl = makeSourceFile(
        "src/fake/cvowner.h",
        "struct CvOwner {\n"
        "    RankedMutex cvMu{LockRank::Middle};\n"
        "    RankedMutex auxMu{LockRank::Inner};\n"
        "};\n");
    SourceFile good = makeSourceFile(
        "src/fake/cv_good.cc",
        "void CvOwner::waitForWork()\n"
        "{\n"
        "    std::unique_lock<RankedMutex> lock(cvMu);\n"
        "    cv.wait(lock, [this] { return ready; });\n"
        "    cv.wait_for(lock, pollInterval);\n"
        "}\n");
    EXPECT_TRUE(analysis::runLockPass(fixtureRegistry(),
                                      {decl, good})
                    .empty())
        << "cv wait on the caller's own sole unique_lock is the "
           "sanctioned pattern";

    // Waiting while a SECOND lock is held still blocks that rank.
    SourceFile bad = makeSourceFile(
        "src/fake/cv_bad.cc",
        "void CvOwner::waitHoldingTwo()\n"
        "{\n"
        "    std::unique_lock<RankedMutex> lock(cvMu);\n"
        "    std::lock_guard<RankedMutex> aux(auxMu);\n"
        "    cv.wait(lock, [this] { return ready; });\n"
        "}\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {decl, bad});
    EXPECT_TRUE(hasRule(findings, "blocking-under-lock"));
}

TEST(LockPass, ExplicitUnlockReleasesTheGuard)
{
    SourceFile decl = makeSourceFile(
        "src/fake/relock.h",
        "struct Relock {\n"
        "    RankedMutex loopMu{LockRank::Middle};\n"
        "};\n");
    SourceFile use = makeSourceFile(
        "src/fake/relock.cc",
        "void Relock::poll()\n"
        "{\n"
        "    std::unique_lock<RankedMutex> lock(loopMu);\n"
        "    lock.unlock();\n"
        "    heavyScan.join();\n"  // guard released: not blocking
        "    lock.lock();\n"
        "    consume();\n"
        "}\n");
    EXPECT_TRUE(
        analysis::runLockPass(fixtureRegistry(), {decl, use})
            .empty())
        << "the unlock()..lock() window must not count as held";
}

TEST(LockPass, GuardScopeEndsAtItsClosingBrace)
{
    SourceFile decl = makeSourceFile(
        "src/fake/scoped.h",
        "struct Scoped {\n"
        "    RankedMutex flagMu{LockRank::Middle};\n"
        "};\n");
    SourceFile use = makeSourceFile(
        "src/fake/scoped.cc",
        "void Scoped::signal()\n"
        "{\n"
        "    {\n"
        "        std::lock_guard<RankedMutex> lock(flagMu);\n"
        "        flag = true;\n"
        "    }\n"
        "    worker.join();\n"  // outside the guard's scope
        "}\n");
    EXPECT_TRUE(
        analysis::runLockPass(fixtureRegistry(), {decl, use})
            .empty());
}

TEST(LockPass, RawMutexDeclarationsAreFindings)
{
    using analysis::runRawMutexRule;
    EXPECT_EQ(rulesOf(runRawMutexRule(makeSourceFile(
                  "src/fake/raw.h", "std::mutex plainMu;\n"))),
              std::vector<std::string>{"raw-mutex"});
    EXPECT_EQ(rulesOf(runRawMutexRule(
                  makeSourceFile("src/fake/raw2.h",
                                 "std::shared_mutex tableMu;\n"))),
              std::vector<std::string>{"raw-mutex"});
    EXPECT_EQ(rulesOf(runRawMutexRule(makeSourceFile(
                  "src/fake/raw3.h",
                  "std::condition_variable readyCv;\n"))),
              std::vector<std::string>{"raw-mutex"});

    // condition_variable_any pairs with RankedMutex: not a finding.
    EXPECT_TRUE(runRawMutexRule(
                    makeSourceFile(
                        "src/fake/ok.h",
                        "std::condition_variable_any readyCv;\n"))
                    .empty());
    // Template mentions are uses, not declarations.
    EXPECT_TRUE(
        runRawMutexRule(
            makeSourceFile(
                "src/fake/ok2.cc",
                "std::lock_guard<std::mutex> lock(peerMu);\n"))
            .empty());
    // The wrapper itself owns the only sanctioned raw primitives.
    EXPECT_TRUE(runRawMutexRule(
                    makeSourceFile("src/common/lock_rank.h",
                                   "std::mutex _mu;\n"))
                    .empty());
    // Out-of-src trees (tests may use plain mutexes in harnesses).
    EXPECT_TRUE(runRawMutexRule(
                    makeSourceFile("tests/fake/test_x.cc",
                                   "std::mutex harnessMu;\n"))
                    .empty());
}

TEST(LockPass, UnknownRankAndAmbiguousNameAreFindings)
{
    SourceFile unknown = makeSourceFile(
        "src/fake/unknown.h",
        "RankedMutex mysteryMu{LockRank::Nonexistent};\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {unknown});
    EXPECT_EQ(rulesOf(findings),
              std::vector<std::string>{"unknown-lock-rank"});

    SourceFile first = makeSourceFile(
        "src/fake/first.h",
        "RankedMutex sharedNameMu{LockRank::Outer};\n");
    SourceFile second = makeSourceFile(
        "src/fake/second.h",
        "RankedMutex sharedNameMu{LockRank::Inner};\n");
    findings =
        analysis::runLockPass(fixtureRegistry(), {first, second});
    EXPECT_EQ(rulesOf(findings),
              std::vector<std::string>{"ambiguous-lock-name"});
    EXPECT_EQ(findings[0].file, "src/fake/second.h");
}

TEST(LockPass, ReasonedAllowSuppresses)
{
    SourceFile decl = makeSourceFile(
        "src/fake/allow.h",
        "struct Allowed {\n"
        "    RankedMutex hiMu{LockRank::Inner};\n"
        "    RankedMutex loMu{LockRank::Outer};\n"
        "};\n");
    // With a reasoned allow() on the offending line: suppressed.
    SourceFile allowed = makeSourceFile(
        "src/fake/allowed.cc",
        "void Allowed::inverted()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(hiMu);\n"
        "    // naspipe-lint: allow(lock-rank-order) startup path\n"
        "    std::lock_guard<RankedMutex> g2(loMu);\n"
        "}\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {decl, allowed});
    EXPECT_FALSE(hasRule(findings, "lock-rank-order"));

    // A bare allow() without a reason does not suppress.
    SourceFile bare = makeSourceFile(
        "src/fake/bare.cc",
        "void Allowed::inverted()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(hiMu);\n"
        "    // naspipe-lint: allow(lock-rank-order)\n"
        "    std::lock_guard<RankedMutex> g2(loMu);\n"
        "}\n");
    findings =
        analysis::runLockPass(fixtureRegistry(), {decl, bare});
    EXPECT_TRUE(hasRule(findings, "lock-rank-order"));
}

TEST(LockPass, BaselineRoundTripMasksOldFindingsOnly)
{
    SourceFile decl = makeSourceFile(
        "src/fake/base.h",
        "struct Base {\n"
        "    RankedMutex upMu{LockRank::Inner};\n"
        "    RankedMutex downMu{LockRank::Outer};\n"
        "};\n");
    SourceFile bad = makeSourceFile(
        "src/fake/base.cc",
        "void Base::inverted()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(upMu);\n"
        "    std::lock_guard<RankedMutex> g2(downMu);\n"
        "}\n");
    std::vector<Finding> findings =
        analysis::runLockPass(fixtureRegistry(), {decl, bad});
    ASSERT_FALSE(findings.empty());

    // Round-trip every finding through the baseline: none are new.
    std::set<std::string> baseline;
    for (const Finding &f : findings)
        baseline.insert(analysis::baselineKey(f));
    EXPECT_EQ(analysis::applyBaseline(findings, baseline), 0u);
    for (const Finding &f : findings)
        EXPECT_TRUE(f.baselined);

    // A baseline for a DIFFERENT site leaves these findings new.
    std::set<std::string> unrelated{"lock-rank-order|other.cc|x"};
    EXPECT_EQ(analysis::applyBaseline(findings, unrelated),
              findings.size());
}

TEST(LockDiscipline, FacadeDiscoversTheRegistryInTheSet)
{
    SourceFile decl = makeSourceFile(
        "src/fake/auto.h",
        "struct Auto {\n"
        "    RankedMutex aMu{LockRank::Inner};\n"
        "    RankedMutex bMu{LockRank::Outer};\n"
        "};\n");
    SourceFile bad = makeSourceFile(
        "src/fake/auto.cc",
        "void Auto::inverted()\n"
        "{\n"
        "    std::lock_guard<RankedMutex> g1(aMu);\n"
        "    std::lock_guard<RankedMutex> g2(bMu);\n"
        "}\n");
    // With the registry in the set, the violation resolves.
    std::vector<Finding> findings =
        lint::scanLockDiscipline({registryFile(), decl, bad});
    EXPECT_TRUE(hasRule(findings, "lock-rank-order"));

    // Without it, ranks cannot be audited: every declaration is an
    // unknown-lock-rank finding instead of silent acceptance.
    findings = lint::scanLockDiscipline({decl, bad});
    EXPECT_EQ(rulesOf(findings),
              (std::vector<std::string>{"unknown-lock-rank",
                                        "unknown-lock-rank"}));
}

} // namespace
} // namespace naspipe
