/**
 * @file
 * Engine facade tests.
 */

#include <gtest/gtest.h>

#include "core/engine.h"

namespace naspipe {
namespace {

TEST(Engine, ConfigForMirrorsOptions)
{
    SearchSpace space = makeTinySpace();
    Engine::Options options;
    options.gpus = 3;
    options.steps = 21;
    options.seed = 5;
    options.batch = 12;
    options.trace = true;
    options.evolutionSearch = true;
    Engine engine(space, options);
    RuntimeConfig config = engine.configFor(gpipeSystem());
    EXPECT_EQ(config.numStages, 3);
    EXPECT_EQ(config.totalSubnets, 21);
    EXPECT_EQ(config.seed, 5u);
    EXPECT_EQ(config.batch, 12);
    EXPECT_TRUE(config.traceEnabled);
    EXPECT_TRUE(config.evolutionSearch);
    EXPECT_EQ(config.system.name, "GPipe");
}

TEST(Engine, InvalidOptionsPanic)
{
    SearchSpace space = makeTinySpace();
    Engine::Options bad;
    bad.gpus = 0;
    EXPECT_THROW(Engine(space, bad), std::logic_error);
    Engine::Options badSteps;
    badSteps.steps = 0;
    EXPECT_THROW(Engine(space, badSteps), std::logic_error);
}

TEST(Engine, CommonBatchIsMinAcrossCounts)
{
    SearchSpace space = makeNlpC2();
    int common =
        Engine::commonBatch(space, naspipeSystem(), {4, 8, 16});
    CapacityPlanner planner(space, GpuConfig{});
    for (int gpus : {4, 8, 16})
        EXPECT_LE(common, planner.plan(naspipeSystem(), gpus).batch);
    EXPECT_GT(common, 0);
}

TEST(Engine, CommonBatchZeroWhenAnyCountOoms)
{
    SearchSpace space = makeNlpC1();
    // GPipe cannot hold NLP.c1 on 4 GPUs.
    EXPECT_EQ(Engine::commonBatch(space, gpipeSystem(), {4, 8}), 0);
}

TEST(Engine, TrainWithUsesPinnedBatch)
{
    SearchSpace space = makeTinySpace();
    Engine::Options options;
    options.gpus = 2;
    options.steps = 6;
    options.batch = 24;
    Engine engine(space, options);
    RunResult r = engine.train();
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.metrics.batch, 24);
}

TEST(Engine, VerifyReproducibilityRejectsEmptyCounts)
{
    SearchSpace space = makeTinySpace();
    EXPECT_THROW(Engine::verifyReproducibility(space, naspipeSystem(),
                                               {}, Engine::Options{}),
                 std::logic_error);
}

TEST(Engine, VerifyReproducibilitySingleCountIsVacuous)
{
    SearchSpace space = makeTinySpace();
    Engine::Options options;
    options.steps = 6;
    auto comparisons = Engine::verifyReproducibility(
        space, naspipeSystem(), {2}, options);
    EXPECT_TRUE(comparisons.empty());
}

} // namespace
} // namespace naspipe
