/**
 * @file
 * Report-builder tests.
 */

#include <gtest/gtest.h>

#include "core/report.h"

namespace naspipe {
namespace {

ExperimentResult
fakeResult(const std::string &space, const std::string &system,
           bool oom = false)
{
    ExperimentResult r;
    r.spaceName = space;
    r.systemName = system;
    r.run.oom = oom;
    if (!oom) {
        r.run.metrics.reportedParamBytes = 474ULL << 20;
        r.run.metrics.batch = 192;
        r.run.metrics.gpuMemFactor = 7.8;
        r.run.metrics.totalAluUtilization = 3.9;
        r.run.metrics.cpuMemBytes = 57ULL << 30;
        r.run.metrics.meanExecSeconds = 1.13;
        r.run.metrics.bubbleRatio = 0.39;
        r.run.metrics.cacheHitRate = 0.864;
        r.run.metrics.samplesPerSec = 800.0;
        r.run.metrics.subnetsPerHour = 15000.0;
        r.run.searchAccuracy = 22.17;
    }
    return r;
}

TEST(Report, Table2RowFormatsPaperStyle)
{
    auto row = fakeResult("NLP.c1", "NASPipe");
    auto cells = table2Row(row);
    ASSERT_EQ(cells.size(), 11u);
    EXPECT_EQ(cells[0], "NLP.c1");
    EXPECT_EQ(cells[2], "124M");      // 474 MB => 124M fp32 params
    EXPECT_EQ(cells[3], "22.17");     // NLP => BLEU-like
    EXPECT_EQ(cells[4], "192");
    EXPECT_EQ(cells[5], "7.8x");
    EXPECT_EQ(cells[9], "0.39");
    EXPECT_EQ(cells[10], "86.4%");
}

TEST(Report, Table2RowOom)
{
    auto cells = table2Row(fakeResult("NLP.c0", "GPipe", true));
    EXPECT_EQ(cells[2], "OOM");
}

TEST(Report, Table2RowCvUsesPercentScore)
{
    auto row = fakeResult("CV.c1", "NASPipe");
    row.run.searchAccuracy = 82.4;
    EXPECT_EQ(table2Row(row)[3], "82.4%");
}

TEST(Report, Table2RowCacheNa)
{
    auto row = fakeResult("NLP.c1", "GPipe");
    row.run.metrics.cacheHitRate = std::nullopt;
    EXPECT_EQ(table2Row(row)[10], "N/A");
}

TEST(Report, BuildTable2SeparatesSpaces)
{
    std::vector<ExperimentResult> results = {
        fakeResult("NLP.c1", "NASPipe"),
        fakeResult("NLP.c1", "GPipe"),
        fakeResult("NLP.c2", "NASPipe"),
    };
    TextTable table = buildTable2(results);
    EXPECT_EQ(table.rows(), 3u);
    // Three dash lines: header + space separator... at least 2.
    std::string out = table.render();
    EXPECT_NE(out.find("NLP.c2"), std::string::npos);
}

TEST(Report, ThroughputTableNormalizesToGpipe)
{
    auto naspipe = fakeResult("NLP.c1", "NASPipe");
    auto gpipe = fakeResult("NLP.c1", "GPipe");
    gpipe.run.metrics.samplesPerSec = 200.0;
    TextTable table = buildThroughputTable({naspipe, gpipe});
    std::string out = table.render();
    // NASPipe: 800/200 = 4x.
    EXPECT_NE(out.find("4.00x"), std::string::npos);
    EXPECT_NE(out.find("1.00x"), std::string::npos);
}

TEST(Report, ThroughputTableFallsBackWhenGpipeOoms)
{
    auto naspipe = fakeResult("NLP.c0", "NASPipe");
    auto gpipe = fakeResult("NLP.c0", "GPipe", true);
    TextTable table = buildThroughputTable({naspipe, gpipe});
    std::string out = table.render();
    EXPECT_NE(out.find("OOM"), std::string::npos);
    EXPECT_NE(out.find("1.00x"), std::string::npos);
}

TEST(Report, Table5HasEightRows)
{
    EXPECT_EQ(buildTable5().rows(), 8u);
}

TEST(Report, Table1HasSevenRows)
{
    EXPECT_EQ(buildTable1(defaultSpaceNames()).rows(), 7u);
}

} // namespace
} // namespace naspipe
