/**
 * @file
 * Experiment-helper tests.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace naspipe {
namespace {

TEST(Experiment, EvaluatedSystemsPaperOrder)
{
    auto systems = evaluatedSystems();
    ASSERT_EQ(systems.size(), 4u);
    EXPECT_EQ(systems[0].name, "NASPipe");
    EXPECT_EQ(systems[1].name, "GPipe");
    EXPECT_EQ(systems[2].name, "PipeDream");
    EXPECT_EQ(systems[3].name, "VPipe");
}

TEST(Experiment, AblationSystemsStartWithFull)
{
    auto systems = ablationSystems();
    ASSERT_EQ(systems.size(), 4u);
    EXPECT_EQ(systems[0].name, "NASPipe");
    EXPECT_EQ(systems[1].name, "NASPipe w/o scheduler");
}

TEST(Experiment, OptionsFromDefaults)
{
    EvaluationDefaults d;
    d.gpus = 12;
    d.steps = 33;
    d.seed = 9;
    d.trace = true;
    Engine::Options o = optionsFrom(d);
    EXPECT_EQ(o.gpus, 12);
    EXPECT_EQ(o.steps, 33);
    EXPECT_EQ(o.seed, 9u);
    EXPECT_TRUE(o.trace);
}

TEST(Experiment, RunExperimentLabelsResult)
{
    SearchSpace space = makeTinySpace();
    EvaluationDefaults d;
    d.gpus = 2;
    d.steps = 6;
    ExperimentResult r = runExperiment(space, vpipeSystem(), d);
    EXPECT_EQ(r.spaceName, "tiny");
    EXPECT_EQ(r.systemName, "VPipe");
    EXPECT_FALSE(r.run.oom);
}

TEST(Experiment, NormalizedThroughputEdgeCases)
{
    RunResult good;
    good.metrics.samplesPerSec = 100.0;
    RunResult oom;
    oom.oom = true;
    RunResult zero;
    EXPECT_DOUBLE_EQ(normalizedThroughput(good, oom), 0.0);
    EXPECT_DOUBLE_EQ(normalizedThroughput(oom, good), 0.0);
    EXPECT_DOUBLE_EQ(normalizedThroughput(good, zero), 0.0);
    EXPECT_DOUBLE_EQ(normalizedThroughput(good, good), 1.0);
}

TEST(Experiment, MatrixKeepsSpaceMajorOrder)
{
    EvaluationDefaults d;
    d.gpus = 2;
    d.steps = 4;
    auto results = runEvaluationMatrix(
        {"CV.c3"}, {naspipeSystem(), vpipeSystem()}, d);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].systemName, "NASPipe");
    EXPECT_EQ(results[1].systemName, "VPipe");
    EXPECT_EQ(results[0].spaceName, "CV.c3");
}

} // namespace
} // namespace naspipe
