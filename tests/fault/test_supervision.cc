/**
 * @file
 * Supervision-layer unit tests: the recovery policy's bounded
 * retries and exponential backoff, the heartbeat watchdog's crash
 * and hang detection, and the seeded fault plan's determinism (the
 * executor-agnostic contract — one seed, one event sequence,
 * everywhere).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/heartbeat.h"
#include "fault/recovery_policy.h"
#include "fault/watchdog.h"

namespace naspipe {
namespace {

using fault::RecoveryPolicy;
using fault::Watchdog;
using fault::WorkerHeartbeat;
using fault::WorkerState;

TEST(RecoveryPolicy, BacksOffExponentiallyWithCap)
{
    RecoveryPolicy policy(
        RecoveryPolicy::Config{10, /*base=*/1.0, /*max=*/5.0});
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 4.0);
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 5.0);  // capped
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 5.0);
    EXPECT_EQ(policy.totalRecoveries(), 5);
}

TEST(RecoveryPolicy, BoundsConsecutiveRetries)
{
    RecoveryPolicy policy(RecoveryPolicy::Config{2, 1.0, 60.0});
    EXPECT_TRUE(policy.allowRetry());
    policy.nextBackoffSeconds();
    EXPECT_TRUE(policy.allowRetry());
    policy.nextBackoffSeconds();
    EXPECT_FALSE(policy.allowRetry());
    EXPECT_EQ(policy.consecutiveFailures(), 2);
}

TEST(RecoveryPolicy, ZeroRetriesRefusesTheFirstAttempt)
{
    RecoveryPolicy policy(RecoveryPolicy::Config{0, 1.0, 60.0});
    EXPECT_FALSE(policy.allowRetry());
}

TEST(RecoveryPolicy, ProgressResetsTheConsecutiveCountNotTheTotal)
{
    RecoveryPolicy policy(RecoveryPolicy::Config{2, 1.0, 60.0});
    policy.nextBackoffSeconds();
    policy.nextBackoffSeconds();
    EXPECT_FALSE(policy.allowRetry());
    policy.noteProgress();
    EXPECT_TRUE(policy.allowRetry());
    EXPECT_EQ(policy.consecutiveFailures(), 0);
    EXPECT_EQ(policy.totalRecoveries(), 2);
    // Backoff restarts at the base after progress.
    EXPECT_DOUBLE_EQ(policy.nextBackoffSeconds(), 1.0);
}

TEST(WorkerHeartbeat, TracksProgressAndState)
{
    WorkerHeartbeat hb;
    EXPECT_EQ(hb.progress(), 0u);
    EXPECT_EQ(hb.state(), WorkerState::Running);
    hb.beat();
    hb.beat();
    EXPECT_EQ(hb.progress(), 2u);
    hb.setState(WorkerState::Crashed);
    EXPECT_EQ(hb.state(), WorkerState::Crashed);
    EXPECT_STREQ(fault::workerStateName(WorkerState::Crashed),
                 "crashed");
    EXPECT_STREQ(fault::workerStateName(WorkerState::Stalled),
                 "stalled");
}

TEST(Watchdog, DetectsACrashedWorker)
{
    std::vector<WorkerHeartbeat> hearts(3);
    std::promise<std::pair<int, std::string>> incident;
    auto fired = incident.get_future();
    Watchdog dog(
        Watchdog::Config{},
        {&hearts[0], &hearts[1], &hearts[2]},
        [&incident](int worker, const std::string &reason) {
            incident.set_value({worker, reason});
        });
    hearts[1].setState(WorkerState::Crashed);
    ASSERT_EQ(fired.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    auto [worker, reason] = fired.get();
    EXPECT_EQ(worker, 1);
    EXPECT_NE(reason.find("crashed"), std::string::npos);
    EXPECT_EQ(dog.incidents(), 1);
}

TEST(Watchdog, FiresAtMostOncePerLifetime)
{
    std::vector<WorkerHeartbeat> hearts(2);
    std::atomic<int> fires{0};
    std::promise<void> first;
    auto firstFired = first.get_future();
    Watchdog dog(Watchdog::Config{}, {&hearts[0], &hearts[1]},
                 [&](int, const std::string &) {
                     if (fires.fetch_add(1) == 0)
                         first.set_value();
                 });
    hearts[0].setState(WorkerState::Crashed);
    ASSERT_EQ(firstFired.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    // A second crash must not re-fire the same watchdog — the
    // runtime re-arms by constructing a fresh one per phase.
    hearts[1].setState(WorkerState::Crashed);
    std::promise<void> settle;
    settle.get_future().wait_for(std::chrono::milliseconds(20));
    EXPECT_EQ(fires.load(), 1);
    EXPECT_EQ(dog.incidents(), 1);
}

TEST(Watchdog, QuietWhileWorkersAreHealthy)
{
    std::vector<WorkerHeartbeat> hearts(2);
    std::atomic<int> fires{0};
    {
        Watchdog dog(Watchdog::Config{}, {&hearts[0], &hearts[1]},
                     [&](int, const std::string &) { fires++; });
        // Exited is a clean drain, not an incident.
        hearts[0].setState(WorkerState::Exited);
        hearts[1].beat();
        std::promise<void> settle;
        settle.get_future().wait_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(fires.load(), 0);
}

TEST(Watchdog, WallDeadlineIsOptInAndDetectsHangs)
{
    std::vector<WorkerHeartbeat> hearts(2);
    std::promise<std::pair<int, std::string>> incident;
    auto fired = incident.get_future();
    Watchdog::Config config;
    config.wallDeadline = true;
    config.deadlineSeconds = 0.01;
    config.pollMs = 1;
    hearts[0].setState(WorkerState::Exited);  // hung victim is [1]
    Watchdog dog(config, {&hearts[0], &hearts[1]},
                 [&incident](int worker, const std::string &reason) {
                     incident.set_value({worker, reason});
                 });
    ASSERT_EQ(fired.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    auto [worker, reason] = fired.get();
    EXPECT_EQ(worker, 1);
    EXPECT_NE(reason.find("no logical progress"), std::string::npos);
}

TEST(FaultPlan, SeededPlanIsAPureFunctionOfItsArguments)
{
    auto a = FaultInjector::randomPlan(42, 6, 100, 8);
    auto b = FaultInjector::randomPlan(42, 6, 100, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].describe(), b[i].describe());

    auto c = FaultInjector::randomPlan(43, 6, 100, 8);
    std::string seqA, seqC;
    for (const FaultSpec &f : a)
        seqA += f.describe() + ";";
    for (const FaultSpec &f : c)
        seqC += f.describe() + ";";
    EXPECT_NE(seqA, seqC);
}

TEST(FaultPlan, InjectorFiresEachSpecExactlyOnce)
{
    FaultSpec crash;
    crash.kind = FaultKind::GpuCrash;
    crash.atStep = 5;
    FaultInjector injector({crash});
    EXPECT_TRUE(injector.due(4).empty());
    EXPECT_EQ(injector.due(5).size(), 1u);
    // A recovery rewinds the completion clock below the trigger and
    // replays through it; the fired flag prevents a refire.
    EXPECT_TRUE(injector.due(5).empty());
    EXPECT_EQ(injector.firedCount(), 1);
    EXPECT_FALSE(injector.anyPending());
}

} // namespace
} // namespace naspipe
