/**
 * @file
 * Reproducibility integration tests (paper Definition 1, Tables 3/4).
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "runtime/replay.h"

namespace naspipe {
namespace {

Engine::Options
options(int steps = 24)
{
    Engine::Options o;
    o.steps = steps;
    o.seed = 7;
    return o;
}

TEST(Reproducibility, CspBitwiseIdenticalAcrossGpuCounts)
{
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    auto comparisons = Engine::verifyReproducibility(
        space, naspipeSystem(), {2, 4, 8}, options());
    ASSERT_EQ(comparisons.size(), 2u);
    for (const auto &cmp : comparisons) {
        EXPECT_TRUE(cmp.sameWeights);
        EXPECT_TRUE(cmp.sameLosses);
        EXPECT_TRUE(cmp.sameSearch);
    }
}

TEST(Reproducibility, BspDivergesAcrossGpuCounts)
{
    // GPipe's bulk size follows the GPU count, so the in-bulk
    // read/write interleaving — and hence the trained weights —
    // change with the cluster (Table 3's BSP rows).
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    auto comparisons = Engine::verifyReproducibility(
        space, gpipeSystem(), {2, 4, 8}, options());
    bool anyDiverged = false;
    for (const auto &cmp : comparisons)
        anyDiverged |= !cmp.sameWeights;
    EXPECT_TRUE(anyDiverged);
}

TEST(Reproducibility, AspDivergesAcrossGpuCounts)
{
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    auto comparisons = Engine::verifyReproducibility(
        space, pipedreamSystem(), {2, 4, 8}, options());
    bool anyDiverged = false;
    for (const auto &cmp : comparisons)
        anyDiverged |= !cmp.sameWeights;
    EXPECT_TRUE(anyDiverged);
}

TEST(Reproducibility, CspAblationsRemainReproducible)
{
    // Disabling the predictor or mirroring changes performance, not
    // semantics: CSP's guarantee must survive every ablation.
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    for (const SystemModel &system :
         {naspipeWithoutScheduler(), naspipeWithoutPredictor(),
          naspipeWithoutMirroring()}) {
        auto comparisons = Engine::verifyReproducibility(
            space, system, {2, 4}, options(16));
        for (const auto &cmp : comparisons) {
            EXPECT_TRUE(cmp.reproducible()) << system.name;
        }
    }
}

TEST(Reproducibility, Table4AccessOrderInvariantForCsp)
{
    // Find a layer touched by at least three subnets and check its
    // access string matches across GPU counts (Table 4's CSP row).
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    Engine e2(space, [] {
        auto o = options();
        o.gpus = 2;
        return o;
    }());
    Engine e4(space, [] {
        auto o = options();
        o.gpus = 4;
        return o;
    }());
    RunResult r2 = e2.train();
    RunResult r4 = e4.train();
    ASSERT_FALSE(r2.oom);
    ASSERT_FALSE(r4.oom);

    int checked = 0;
    for (const LayerId &layer : r2.store->accessLog().touchedLayers()) {
        if (r2.store->accessLog().layerHistory(layer).size() >= 6) {
            EXPECT_EQ(r2.store->accessLog().renderOrder(layer),
                      r4.store->accessLog().renderOrder(layer));
            checked++;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(Reproducibility, Table4AccessOrderVariesForBsp)
{
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    Engine::Options o2 = options();
    o2.gpus = 2;
    Engine::Options o8 = options();
    o8.gpus = 8;
    RunResult r2 = Engine(space, o2).trainWith(gpipeSystem());
    RunResult r8 = Engine(space, o8).trainWith(gpipeSystem());
    ASSERT_FALSE(r2.oom);
    ASSERT_FALSE(r8.oom);

    bool anyDiffer = false;
    for (const LayerId &layer : r2.store->accessLog().touchedLayers()) {
        if (r2.store->accessLog().renderOrder(layer) !=
            r8.store->accessLog().renderOrder(layer)) {
            anyDiffer = true;
            break;
        }
    }
    EXPECT_TRUE(anyDiffer);
}

TEST(Reproducibility, EvolutionSearchReproducibleWithFeedbackLag)
{
    // Feedback-driven exploration closes a loop through completion
    // timing; the logical feedback lag (RuntimeConfig::feedbackLag)
    // makes the sampler's view a pure function of (seed, losses by
    // ID), so even evolution search replays bitwise on any cluster.
    SearchSpace space("repro-evo", SpaceFamily::Nlp, 12, 4, 5);
    Engine::Options o = options(40);
    o.evolutionSearch = true;
    auto comparisons = Engine::verifyReproducibility(
        space, naspipeSystem(), {2, 4, 8}, o);
    for (const auto &cmp : comparisons)
        EXPECT_TRUE(cmp.reproducible());
}

TEST(Reproducibility, FeedbackLagBoundsSamplerView)
{
    // With lag L, subnet i must only ever be drawn after the scores
    // of subnets <= i - L were delivered — verify via a run whose
    // sampled stream is identical across GPU counts (the stream *is*
    // the sampler's decisions).
    SearchSpace space("repro-evo", SpaceFamily::Nlp, 12, 4, 5);
    auto runWith = [&space](int gpus) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 32;
        config.seed = 7;
        config.batch = 16;
        config.evolutionSearch = true;
        config.feedbackLag = 6;
        return runTraining(space, config);
    };
    RunResult a = runWith(2);
    RunResult b = runWith(8);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    ASSERT_EQ(a.sampled.size(), b.sampled.size());
    for (std::size_t i = 0; i < a.sampled.size(); i++)
        EXPECT_EQ(a.sampled[i], b.sampled[i]) << "draw " << i;
}

TEST(Reproducibility, RepeatedRunsIdenticalEvenForBaselines)
{
    // Our simulation is deterministic per configuration: the
    // *within-configuration* repeatability the paper attributes to
    // deterministic kernels holds for every system; only the
    // cross-cluster invariance is CSP-exclusive.
    SearchSpace space("repro", SpaceFamily::Nlp, 12, 4, 5);
    Engine::Options o = options(16);
    o.gpus = 4;
    Engine engine(space, o);
    RunResult a = engine.trainWith(pipedreamSystem());
    RunResult b = engine.trainWith(pipedreamSystem());
    EXPECT_TRUE(compareRuns(a, b).reproducible());
}

} // namespace
} // namespace naspipe
